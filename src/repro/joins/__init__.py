"""Join algorithms: the paper's four implementations plus baselines.

* :class:`SortMergeJoinUM` / :class:`SortMergeJoinOM` — Sections 3.1, 4.2
* :class:`PartitionedHashJoinUM` (bucket chains) — Section 3.2
* :class:`PartitionedHashJoin` (PHJ-OM, radix) — Section 4.3
* :class:`NonPartitionedHashJoin` (cuDF-style) — Section 5.2.2
* :class:`CPURadixJoin` (Balkesen-style baseline) — Figure 8
* :func:`recommend_join_algorithm` — the Figure 18 decision trees
* :class:`JoinPipeline` — sequences of joins (Figure 16)
"""

from .base import JoinAlgorithm, JoinConfig, JoinResult, detect_unique_keys
from .cost_planner import (
    PrimitiveCalibration,
    calibrate_primitives,
    estimate_join_seconds,
    price_all,
    recommend_join_algorithm_costbased,
)
from .cpu_radix import CPURadixJoin
from .fused import FusedJoinAggregate, FusedResult
from .npj import NonPartitionedHashJoin
from .out_of_core import OutOfCoreJoin, OutOfCoreResult, estimate_join_footprint
from .phj import PartitionedHashJoin, derive_partition_bits
from .phj_bucket import PartitionedHashJoinUM, demonstrate_gftr_incompatibility
from .pipeline import JoinPipeline, PipelineResult
from .planner import (
    JoinWorkloadProfile,
    Recommendation,
    make_algorithm,
    planner_choice,
    recommend_join_algorithm,
    recommend_smj_variant,
)
from .smj import SortMergeJoinOM, SortMergeJoinUM

#: The paper's four principal implementations, keyed by their short names.
ALGORITHMS = {
    "SMJ-UM": SortMergeJoinUM,
    "SMJ-OM": SortMergeJoinOM,
    "PHJ-UM": PartitionedHashJoinUM,
    "PHJ-OM": PartitionedHashJoin,
}

__all__ = [
    "ALGORITHMS",
    "CPURadixJoin",
    "FusedJoinAggregate",
    "FusedResult",
    "OutOfCoreJoin",
    "OutOfCoreResult",
    "estimate_join_footprint",
    "PrimitiveCalibration",
    "calibrate_primitives",
    "estimate_join_seconds",
    "price_all",
    "recommend_join_algorithm_costbased",
    "JoinAlgorithm",
    "JoinConfig",
    "JoinPipeline",
    "JoinResult",
    "JoinWorkloadProfile",
    "NonPartitionedHashJoin",
    "PartitionedHashJoin",
    "PartitionedHashJoinUM",
    "PipelineResult",
    "Recommendation",
    "demonstrate_gftr_incompatibility",
    "derive_partition_bits",
    "detect_unique_keys",
    "make_algorithm",
    "planner_choice",
    "recommend_join_algorithm",
    "recommend_smj_variant",
    "SortMergeJoinOM",
    "SortMergeJoinUM",
]
