"""Figure 15: effect of data types.

Regenerates the experiment table into ``bench_results/fig15.txt``.
Run: ``pytest benchmarks/bench_fig15.py --benchmark-only -s``
"""

from repro.bench.experiments import fig15

from _common import SWEEP_SCALE, run_and_report


def test_fig15(benchmark):
    result = run_and_report(benchmark, fig15.run, SWEEP_SCALE)
    assert result.findings["phj_om_best_all_types"] == 1.0
