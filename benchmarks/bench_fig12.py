"""Figure 12: effect of payload column count.

Regenerates the experiment table into ``bench_results/fig12.txt``.
Run: ``pytest benchmarks/bench_fig12.py --benchmark-only -s``
"""

from repro.bench.experiments import fig12

from _common import SWEEP_SCALE, run_and_report


def test_fig12(benchmark):
    result = run_and_report(benchmark, fig12.run, SWEEP_SCALE)
    assert result.findings["phj_om_over_phj_um_widest"] > 1.5
