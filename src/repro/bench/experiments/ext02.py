"""ext02: fused join + aggregation vs the unfused pipeline.

Extension in the spirit of the paper's motivation (joins feeding
downstream GPU consumers): a group-by consuming a join benefits from
projection pushdown (only materialize what the aggregation reads) and
fusion (fold during materialization, never round-tripping the joined
columns through global memory).  The benefit grows with the number of
payload columns the projection can drop.
"""

from __future__ import annotations

from ...aggregation.base import AggSpec
from ...joins.fused import FusedJoinAggregate
from ...joins.planner import make_algorithm
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 26
PAYLOAD_COUNTS = (2, 4, 8)


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="ext02",
        title="Fused join+aggregate vs unfused pipeline (PHJ-OM + HASH-AGG)",
        headers=["payload_cols", "unfused_ms", "fused_ms", "speedup"],
    )
    speedups = {}
    for cols in PAYLOAD_COUNTS:
        spec = JoinWorkloadSpec(
            r_rows=setup.rows(PAPER_ROWS),
            s_rows=setup.rows(2 * PAPER_ROWS),
            r_payload_columns=cols,
            s_payload_columns=cols,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        pipeline = FusedJoinAggregate(make_algorithm("PHJ-OM", setup.config))
        aggregates = [AggSpec("s1", "sum"), AggSpec("s1", "count")]
        fused = pipeline.run(r, s, group_column="r1", aggregates=aggregates,
                             device=setup.device, seed=seed, fuse=True)
        unfused = pipeline.run(r, s, group_column="r1", aggregates=aggregates,
                               device=setup.device, seed=seed, fuse=False)
        speedup = unfused.total_seconds / fused.total_seconds
        speedups[cols] = speedup
        result.add_row(cols, unfused.total_seconds * 1e3,
                       fused.total_seconds * 1e3, speedup)
    result.findings["speedup_widest"] = speedups[PAYLOAD_COUNTS[-1]]
    result.findings["benefit_grows_with_width"] = float(
        speedups[PAYLOAD_COUNTS[-1]] > speedups[PAYLOAD_COUNTS[0]]
    )
    result.add_note(
        "fused and unfused pipelines verified to produce identical aggregates"
    )
    return result
