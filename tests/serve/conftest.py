"""Shared fixtures for the serving-layer suite.

Relations are tiny (hundreds of rows at full device geometry) because
these tests pin *behaviour* — bit-identity with ``execute()``,
admission arithmetic, cache invalidation — not regimes.  The regime
behaviour is ext06's job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational.relation import Relation

#: The executor seed shared by every oracle comparison in this suite.
SERVE_SEED = 7


def make_relation(rows: int, seed: int, prefix: str, fanout: int = 1) -> Relation:
    """A small relation with a shuffled dense key domain."""
    rng = np.random.default_rng(seed)
    keys = rng.permutation(np.arange(rows, dtype=np.int32).repeat(fanout))
    payloads = [
        rng.integers(0, 1 << 20, size=keys.size).astype(np.int32),
        rng.integers(0, 1 << 10, size=keys.size).astype(np.int32),
    ]
    return Relation.from_key_payloads(keys, payloads, payload_prefix=prefix)


@pytest.fixture(scope="module")
def r():
    return make_relation(256, seed=11, prefix="r")


@pytest.fixture(scope="module")
def s():
    return make_relation(256, seed=22, prefix="s", fanout=2)


@pytest.fixture(scope="module")
def t():
    return make_relation(256, seed=33, prefix="t")


def assert_bit_identical(actual, expected) -> None:
    """Outputs match column-for-column, value-for-value, in order."""
    if isinstance(expected, Relation):
        assert isinstance(actual, Relation)
        actual_cols, expected_cols = actual.columns(), expected.columns()
    else:
        actual_cols, expected_cols = actual, expected
    assert list(actual_cols) == list(expected_cols)
    for name in expected_cols:
        np.testing.assert_array_equal(
            actual_cols[name], expected_cols[name], err_msg=name
        )
