"""Columnar relations.

Relations are stored column-wise as contiguous numpy arrays, exactly as
the paper stores them in GPU memory (Section 3).  A relation
``R(k, r_1, ..., r_n)`` has one key column and ``n`` payload (non-key)
columns; tuples are identified by physical IDs (explicit positions) or
virtual IDs (implied positions) depending on the join pattern.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidRelationError
from .types import column_type


class Relation:
    """An in-memory columnar relation with one designated key column.

    Parameters
    ----------
    columns:
        Mapping or iterable of ``(name, numpy array)`` pairs; all arrays
        must be 1-D, equally long, and of a supported integer dtype.
    key:
        Name of the (join) key column.
    name:
        Optional display name for reports.
    """

    def __init__(self, columns, key: str, name: str = ""):
        if isinstance(columns, dict):
            items: Iterable[Tuple[str, np.ndarray]] = columns.items()
        else:
            items = columns
        self._columns: "OrderedDict[str, np.ndarray]" = OrderedDict()
        length: Optional[int] = None
        for col_name, array in items:
            array = np.asarray(array)
            if array.ndim != 1:
                raise InvalidRelationError(
                    f"column {col_name!r} must be 1-D, got shape {array.shape}"
                )
            column_type(array.dtype)  # validates supported dtype
            if length is None:
                length = array.size
            elif array.size != length:
                raise InvalidRelationError(
                    f"column {col_name!r} has {array.size} rows, expected {length}"
                )
            self._columns[col_name] = np.ascontiguousarray(array)
        if not self._columns:
            raise InvalidRelationError("a relation needs at least one column")
        if key not in self._columns:
            raise InvalidRelationError(
                f"key column {key!r} not among columns {list(self._columns)}"
            )
        self.key = key
        self.name = name

    # -- construction -------------------------------------------------------

    @classmethod
    def from_key_payloads(
        cls,
        key_values: np.ndarray,
        payloads: Sequence[np.ndarray],
        key: str = "key",
        payload_prefix: str = "p",
        name: str = "",
    ) -> "Relation":
        """Build a relation from a key array and positional payload arrays."""
        columns: List[Tuple[str, np.ndarray]] = [(key, key_values)]
        for i, payload in enumerate(payloads, start=1):
            columns.append((f"{payload_prefix}{i}", payload))
        return cls(columns, key=key, name=name)

    # -- shape --------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return int(next(iter(self._columns.values())).size)

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def payload_names(self) -> List[str]:
        return [c for c in self._columns if c != self.key]

    @property
    def num_payload_columns(self) -> int:
        return len(self._columns) - 1

    @property
    def total_bytes(self) -> int:
        return sum(int(a.nbytes) for a in self._columns.values())

    # -- access ---------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise InvalidRelationError(
                f"no column {name!r} in relation (have {list(self._columns)})"
            ) from None

    @property
    def key_values(self) -> np.ndarray:
        return self._columns[self.key]

    def payload_columns(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(
            (n, a) for n, a in self._columns.items() if n != self.key
        )

    def columns(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    # -- transforms ------------------------------------------------------------

    def take(self, indices: np.ndarray, name: str = "") -> "Relation":
        """A new relation with rows at *indices* (in that order)."""
        return Relation(
            [(n, a[indices]) for n, a in self._columns.items()],
            key=self.key,
            name=name or self.name,
        )

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """A new relation with columns renamed per *mapping*."""
        columns = [(mapping.get(n, n), a) for n, a in self._columns.items()]
        return Relation(columns, key=mapping.get(self.key, self.key), name=self.name)

    def head(self, n: int = 5) -> "Relation":
        return Relation(
            [(name, a[:n]) for name, a in self._columns.items()],
            key=self.key,
            name=self.name,
        )

    # -- comparison --------------------------------------------------------------

    def sorted_by_all_columns(self) -> "Relation":
        """Rows in a canonical order (for order-insensitive comparison)."""
        arrays = list(self._columns.values())
        order = np.lexsort(tuple(reversed(arrays)))
        return self.take(order)

    def equals_unordered(self, other: "Relation") -> bool:
        """True if both relations contain the same multiset of rows."""
        if self.column_names != other.column_names:
            return False
        if self.num_rows != other.num_rows:
            return False
        a = self.sorted_by_all_columns()
        b = other.sorted_by_all_columns()
        return all(
            np.array_equal(a.column(n), b.column(n)) for n in self.column_names
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(
            f"{n}:{a.dtype}{'*' if n == self.key else ''}"
            for n, a in self._columns.items()
        )
        label = f" {self.name!r}" if self.name else ""
        return f"Relation{label}({cols}) [{self.num_rows} rows]"
