"""Figure 13: effect of match ratio.

Regenerates the experiment table into ``bench_results/fig13.txt``.
Run: ``pytest benchmarks/bench_fig13.py --benchmark-only -s``
"""

from repro.bench.experiments import fig13

from _common import SWEEP_SCALE, run_and_report


def test_fig13(benchmark):
    result = run_and_report(benchmark, fig13.run, SWEEP_SCALE)
    assert result.findings["high_ratio_winner_is_om"] == 1.0
