"""Aggregation strategies produce exactly the reference group-by."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import AggSpec, make_groupby_algorithm
from repro.errors import AggregationConfigError
from repro.relational import reference_groupby
from repro.workloads import GroupByWorkloadSpec, generate_groupby_workload

ALL_STRATEGIES = ["HASH-AGG", "SORT-AGG", "SORT-AGG/gfur", "PART-AGG", "PART-AGG/gfur"]

WORKLOADS = {
    "mid_cardinality": GroupByWorkloadSpec(rows=4000, groups=200, value_columns=2, seed=1),
    "few_groups": GroupByWorkloadSpec(rows=4000, groups=3, value_columns=2, seed=2),
    "all_distinct": GroupByWorkloadSpec(rows=1000, groups=100000, value_columns=1, seed=3),
    "skewed": GroupByWorkloadSpec(rows=4000, groups=500, zipf_factor=1.5, seed=4),
    "wide_types": GroupByWorkloadSpec(
        rows=2000, groups=64, value_columns=2, key_type="int64",
        value_type="int64", seed=5,
    ),
}


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
def test_sum_matches_reference(strategy, workload):
    keys, values = generate_groupby_workload(WORKLOADS[workload])
    expected = reference_groupby(keys, values, {"v1": "sum"})
    result = make_groupby_algorithm(strategy).group_by(
        keys, values, [AggSpec("v1", "sum")], seed=0
    )
    assert np.array_equal(result.output["group_key"], expected["group_key"])
    assert np.array_equal(result.output["sum_v1"], expected["sum_v1"])
    assert result.groups == expected["group_key"].size
    assert result.rows == keys.size


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("op", ["sum", "count", "min", "max", "mean"])
def test_every_operator(strategy, op):
    keys, values = generate_groupby_workload(WORKLOADS["mid_cardinality"])
    expected = reference_groupby(keys, values, {"v1": op})
    result = make_groupby_algorithm(strategy).group_by(
        keys, values, [AggSpec("v1", op)], seed=0
    )
    name = f"{op}_v1"
    if op == "mean":
        np.testing.assert_allclose(result.output[name], expected[name])
    else:
        assert np.array_equal(result.output[name], expected[name])


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_multiple_aggregates_in_one_pass(strategy):
    keys, values = generate_groupby_workload(WORKLOADS["mid_cardinality"])
    aggs = [AggSpec("v1", "sum"), AggSpec("v2", "max"), AggSpec("v1", "count")]
    result = make_groupby_algorithm(strategy).group_by(keys, values, aggs, seed=0)
    assert list(result.output) == ["group_key", "sum_v1", "max_v2", "count_v1"]
    ref = reference_groupby(keys, values, {"v2": "max"})
    assert np.array_equal(result.output["max_v2"], ref["max_v2"])


class TestValidation:
    def test_missing_column_rejected(self):
        keys = np.arange(10, dtype=np.int32)
        with pytest.raises(AggregationConfigError, match="missing column"):
            make_groupby_algorithm("HASH-AGG").group_by(
                keys, {}, [AggSpec("nope", "sum")]
            )

    def test_unknown_operator_rejected(self):
        with pytest.raises(AggregationConfigError, match="unsupported"):
            AggSpec("v", "median")

    def test_unknown_strategy(self):
        with pytest.raises(KeyError, match="HASH-AGG"):
            make_groupby_algorithm("MAGIC-AGG")

    def test_count_without_values_allowed(self):
        keys = np.array([1, 1, 2], dtype=np.int32)
        result = make_groupby_algorithm("HASH-AGG").group_by(
            keys, {}, [AggSpec("anything", "count")]
        )
        assert list(result.output["count_anything"]) == [2, 1]


class TestSingleGroupAndSingleRow:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_single_group(self, strategy):
        keys = np.zeros(100, dtype=np.int32)
        values = {"v": np.arange(100, dtype=np.int32)}
        result = make_groupby_algorithm(strategy).group_by(
            keys, values, [AggSpec("v", "sum")], seed=0
        )
        assert result.groups == 1
        assert result.output["sum_v"][0] == 4950

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_single_row(self, strategy):
        keys = np.array([42], dtype=np.int32)
        values = {"v": np.array([7], dtype=np.int32)}
        result = make_groupby_algorithm(strategy).group_by(
            keys, values, [AggSpec("v", "min")], seed=0
        )
        assert list(result.output["group_key"]) == [42]
        assert list(result.output["min_v"]) == [7]


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(st.tuples(st.integers(0, 8), st.integers(0, 100)),
                  min_size=1, max_size=80),
    strategy=st.sampled_from(ALL_STRATEGIES),
)
def test_property_sum(rows, strategy):
    keys = np.asarray([k for k, _ in rows], dtype=np.int32)
    vals = np.asarray([v for _, v in rows], dtype=np.int32)
    expected = reference_groupby(keys, {"v": vals}, {"v": "sum"})
    result = make_groupby_algorithm(strategy).group_by(
        keys, {"v": vals}, [AggSpec("v", "sum")], seed=0
    )
    assert np.array_equal(result.output["sum_v"], expected["sum_v"])
