"""ext07: chaos soak over the reliability layer.

Regenerates the experiment table into ``bench_results/ext07.txt``.
Run: ``pytest benchmarks/bench_ext07.py --benchmark-only -s``
"""

from repro.bench.experiments import ext07

from _common import SWEEP_SCALE, run_and_report


def test_ext07(benchmark):
    result = run_and_report(benchmark, ext07.run, SWEEP_SCALE)
    assert result.findings["no_stalls_all_outcomes_recorded"] == 1.0
    assert result.findings["zero_reservation_leaks"] == 1.0
    assert result.findings["completed_bit_identical"] == 1.0
    assert result.findings["non_completed_all_typed"] == 1.0
    assert result.findings["deterministic_replay"] == 1.0
    assert result.findings["greedy_peak_concurrency"] <= 1.0
    assert result.findings["polite_completed_under_flood"] > 0
    assert result.findings["cancelled_total"] > 0
    assert result.findings["soak_simulated_seconds"] >= 1000.0
