"""Property-based tests for the DeviceMemory allocator (hypothesis).

The fault framework leans on the allocator being exactly right: the
capacity_frac injection point shrinks ``capacity_bytes`` and the whole
graceful-degradation ladder keys off the resulting
:class:`DeviceOutOfMemoryError`.  These properties pin the allocator's
accounting invariants under arbitrary alloc/free interleavings, beyond
the example-based cases in test_memory.py.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import AllocationError, DeviceOutOfMemoryError
from repro.gpusim.memory import DeviceMemory

sizes = st.integers(min_value=1, max_value=4096)
labels = st.sampled_from(["", "keys", "payload", "hash_table", "matches"])


class DeviceMemoryMachine(RuleBasedStateMachine):
    """Arbitrary alloc/free interleavings preserve the accounting."""

    def __init__(self):
        super().__init__()
        self.mem = DeviceMemory()
        self.live = []
        self.freed = []
        self.model_peak = 0

    @rule(size=sizes, label=labels)
    def alloc(self, size, label):
        arr = self.mem.alloc(size, np.int8, label)
        self.live.append(arr)
        self.model_peak = max(self.model_peak, self._model_bytes())

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        index = data.draw(st.integers(0, len(self.live) - 1), label="victim")
        arr = self.live.pop(index)
        self.mem.free(arr)
        self.freed.append(arr)

    @precondition(lambda self: self.freed)
    @rule(data=st.data())
    def double_free_rejected(self, data):
        index = data.draw(st.integers(0, len(self.freed) - 1), label="victim")
        with pytest.raises(AllocationError):
            self.mem.free(self.freed[index])

    @precondition(lambda self: self.freed)
    @rule(data=st.data())
    def use_after_free_rejected(self, data):
        index = data.draw(st.integers(0, len(self.freed) - 1), label="victim")
        with pytest.raises(AllocationError):
            _ = self.freed[index].data

    def _model_bytes(self):
        return sum(arr.nbytes for arr in self.live)

    @invariant()
    def bytes_conserved(self):
        assert self.mem.current_bytes == self._model_bytes()
        assert self.mem.live_count == len(self.live)

    @invariant()
    def peak_is_high_water_mark(self):
        assert self.mem.peak_bytes == self.model_peak
        assert self.mem.peak_bytes >= self.mem.current_bytes

    @invariant()
    def counts_balance(self):
        assert self.mem.alloc_count - self.mem.free_count == len(self.live)

    @invariant()
    def live_allocations_sorted_and_complete(self):
        pairs = self.mem.live_allocations()
        assert sorted(pairs, key=lambda p: (-p[1], p[0])) == pairs
        assert sum(n for _, n in pairs) == self.mem.current_bytes


TestDeviceMemoryMachine = DeviceMemoryMachine.TestCase


@settings(max_examples=50, deadline=None)
@given(st.lists(sizes, min_size=1, max_size=32), st.integers(1, 1 << 16))
def test_capacity_never_exceeded(allocation_sizes, capacity):
    """With a capacity the allocator either admits or raises — usage can
    never cross capacity, and a refused allocation changes nothing."""
    mem = DeviceMemory(capacity_bytes=capacity)
    for size in allocation_sizes:
        before = mem.current_bytes
        try:
            mem.alloc(size, np.int8)
        except DeviceOutOfMemoryError as err:
            assert before + size > capacity
            assert mem.current_bytes == before
            assert err.requested == size
            assert err.in_use == before
            assert err.capacity == capacity
            assert sum(n for _, n in err.top_live) == before
        else:
            assert mem.current_bytes == before + size
        assert mem.current_bytes <= capacity


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.sampled_from(["spill", "scratch", "output"]),
        min_size=1,
        max_size=8,
    ),
    st.sets(st.sampled_from(["spill", "scratch", "output"])),
)
def test_assert_no_leaks_honors_allowed_labels(live_labels, allowed):
    mem = DeviceMemory()
    for label in live_labels:
        mem.alloc(1, np.int8, label)
    if set(live_labels) <= allowed:
        mem.assert_no_leaks(allowed_labels=allowed)
    else:
        with pytest.raises(AllocationError) as info:
            mem.assert_no_leaks(allowed_labels=allowed)
        leaked = next(l for l in live_labels if l not in allowed)
        assert leaked in str(info.value)


@settings(max_examples=50, deadline=None)
@given(st.lists(sizes, min_size=1, max_size=16))
def test_free_all_then_reset_clears_everything(allocation_sizes):
    mem = DeviceMemory()
    arrays = [mem.alloc(size, np.int8) for size in allocation_sizes]
    assert mem.peak_bytes == sum(allocation_sizes)
    mem.free_all(arrays)
    assert mem.current_bytes == 0
    assert mem.live_count == 0
    mem.reset_peak()
    assert mem.peak_bytes == 0
    mem.assert_no_leaks()
