"""agg03: wide aggregations, GFTR vs GFUR folds.

Regenerates the experiment table into ``bench_results/agg03.txt``.
Run: ``pytest benchmarks/bench_agg03.py --benchmark-only -s``
"""

from repro.bench.experiments import agg03

from _common import REPORT_SCALE, run_and_report


def test_agg03(benchmark):
    result = run_and_report(benchmark, agg03.run, REPORT_SCALE)
    assert result.findings["gftr_wins_all_widths"] == 1.0
