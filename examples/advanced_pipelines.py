"""Advanced pipelines: fused aggregation, projection pushdown, out-of-core.

Three production patterns built on the library's extension features:

1. **projection pushdown** — a join that only materializes the columns
   its consumer reads;
2. **fused join + aggregation** — the group-by folds during
   materialization, never round-tripping joined columns through memory;
3. **out-of-core staging** — the same join when the inputs do not fit
   device memory, co-partitioned on the host and staged over PCIe.

Run: ``python examples/advanced_pipelines.py``
"""

import numpy as np

from repro import A100, AggSpec, JoinConfig, scaled_device
from repro.joins import (
    FusedJoinAggregate,
    OutOfCoreJoin,
    PartitionedHashJoin,
    estimate_join_footprint,
)
from repro.workloads import JoinWorkloadSpec, generate_join_workload

SCALE = 2.0 ** -9
DEVICE = scaled_device(A100, SCALE)
BASE = dict(
    tuples_per_partition=max(32, int(4096 * SCALE)),
    bucket_tuples=max(32, int(4096 * SCALE)),
)

spec = JoinWorkloadSpec(
    r_rows=1 << 17, s_rows=1 << 18,
    r_payload_columns=4, s_payload_columns=4, seed=11,
)
r, s = generate_join_workload(spec)
print(f"workload: {r.num_rows} x {s.num_rows} rows, "
      f"{r.num_payload_columns}+{s.num_payload_columns} payload columns\n")

# --- 1. Projection pushdown ---------------------------------------------
full = PartitionedHashJoin(JoinConfig(**BASE)).join(r, s, device=DEVICE, seed=0)
thin = PartitionedHashJoin(
    JoinConfig(**BASE, projection=("r1", "s1"))
).join(r, s, device=DEVICE, seed=0)
print("1. projection pushdown (materialize 2 of 8 payload columns)")
print(f"   full join:      {full.total_seconds * 1e3:7.3f} ms "
      f"({full.output.num_payload_columns} payload columns)")
print(f"   projected join: {thin.total_seconds * 1e3:7.3f} ms "
      f"({thin.output.num_payload_columns} payload columns) -> "
      f"{full.total_seconds / thin.total_seconds:.2f}x\n")

# --- 2. Fused join + aggregation ------------------------------------------
pipeline = FusedJoinAggregate(PartitionedHashJoin(JoinConfig(**BASE)))
aggregates = [AggSpec("s1", "sum"), AggSpec("s1", "count")]
fused = pipeline.run(r, s, group_column="r1", aggregates=aggregates,
                     device=DEVICE, seed=0)
unfused = pipeline.run(r, s, group_column="r1", aggregates=aggregates,
                       device=DEVICE, seed=0, fuse=False)
assert np.array_equal(fused.output["sum_s1"], unfused.output["sum_s1"])
print("2. fused join + group-by (SELECT r1, SUM(s1) ... GROUP BY r1)")
print(f"   unfused: {unfused.total_seconds * 1e3:7.3f} ms")
print(f"   fused:   {fused.total_seconds * 1e3:7.3f} ms -> "
      f"{unfused.total_seconds / fused.total_seconds:.2f}x "
      f"({fused.groupby_result.groups} groups)\n")

# --- 3. Out-of-core staging -------------------------------------------------
footprint = estimate_join_footprint(r, s)
print(f"3. out-of-core join (footprint ~{footprint / 1e6:.1f} MB)")
for label, budget in (
    ("fits in memory", footprint * 2),
    ("1/2 of footprint", footprint // 2),
    ("1/8 of footprint", footprint // 8),
):
    ooc = OutOfCoreJoin(
        PartitionedHashJoin(JoinConfig(**BASE)), device_budget_bytes=int(budget)
    )
    result = ooc.join(r, s, device=DEVICE, seed=0)
    assert result.matches == full.matches  # identical output, any budget
    print(
        f"   {label:18s} chunks={result.num_chunks:2d} "
        f"host={result.host_partition_seconds * 1e3:6.3f} ms "
        f"pcie={result.transfer_seconds * 1e3:6.3f} ms "
        f"device={result.device_seconds * 1e3:6.3f} ms "
        f"total={result.total_seconds * 1e3:6.3f} ms"
    )
print("\nall three patterns verified against the monolithic join's output")
