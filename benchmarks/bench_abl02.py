"""abl02: single vs double Merge Path pass.

Regenerates the experiment table into ``bench_results/abl02.txt``.
Run: ``pytest benchmarks/bench_abl02.py --benchmark-only -s``
"""

from repro.bench.experiments import abl02

from _common import REPORT_SCALE, run_and_report


def test_abl02(benchmark):
    result = run_and_report(benchmark, abl02.run, REPORT_SCALE)
    assert result.findings["match_phase_saving"] > 1.2
