"""Nsight-Compute-style counters for simulated kernels.

Table 4 of the paper compares a clustered and an unclustered GATHER with
profiler counters: total cycles, warp instructions, average cycles per
warp instruction, memory read volume, and average sectors per load
request.  :class:`Profiler` reproduces those counters for any sequence of
simulated kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .costmodel import CostModel
from .device import SECTOR_BYTES, WARP_SIZE, DeviceSpec
from .kernel import KernelRecord, KernelStats

#: Rough number of instructions a warp executes per processed item in a
#: memory-bound primitive (load map, compute address, load value, store).
INSTRUCTIONS_PER_ITEM = 18.5


@dataclass(frozen=True)
class ProfileCounters:
    """Aggregated Nsight-like counters (Table 4 layout)."""

    items: int
    total_cycles: float
    warp_instructions: float
    memory_read_bytes: float
    load_requests: int
    sector_touches: int

    @property
    def cycles_per_warp_instruction(self) -> float:
        if not self.warp_instructions:
            return 0.0
        return self.total_cycles / self.warp_instructions

    @property
    def sectors_per_request(self) -> float:
        if not self.load_requests:
            return 0.0
        return self.sector_touches / self.load_requests

    def as_table_rows(self) -> List[tuple]:
        """Rows in the order Table 4 presents them."""
        return [
            ("Number of items", self.items),
            ("Total cycles", round(self.total_cycles)),
            ("Number of warp instructions", round(self.warp_instructions)),
            ("Avg. cycles per warp instruction", round(self.cycles_per_warp_instruction, 2)),
            ("Memory reads (bytes)", round(self.memory_read_bytes)),
            ("Avg. sectors read per load request", round(self.sectors_per_request, 2)),
        ]


def aggregate_counters(entries: Iterable[Tuple[KernelStats, float]]) -> ProfileCounters:
    """Fold ``(stats, cycles)`` pairs into one Table-4 counter set.

    Shared by :class:`Profiler` (which derives cycles from its device's
    clock) and the trace report exporter (whose kernel events carry the
    cycle count of whichever device submitted them).
    """
    items = 0
    cycles = 0.0
    warp_instr = 0.0
    read_bytes = 0.0
    requests = 0
    sectors = 0
    for stats, kernel_cycles in entries:
        items += stats.items
        cycles += kernel_cycles
        # items/WARP_SIZE warps, each executing INSTRUCTIONS_PER_ITEM
        # instructions per item handled by its lanes.
        warp_instr += (stats.items / WARP_SIZE) * INSTRUCTIONS_PER_ITEM
        read_bytes += stats.seq_read_bytes + stats.random_sector_touches * SECTOR_BYTES
        requests += stats.random_requests
        sectors += stats.random_sector_touches
    return ProfileCounters(
        items=items,
        total_cycles=cycles,
        warp_instructions=warp_instr,
        memory_read_bytes=read_bytes,
        load_requests=requests,
        sector_touches=sectors,
    )


class Profiler:
    """Collects per-kernel records and derives aggregate counters."""

    def __init__(self, device: DeviceSpec):
        self.device = device
        self._cost = CostModel(device)
        self._records: List[KernelRecord] = []

    def record(self, record: KernelRecord) -> None:
        self._records.append(record)

    def record_many(self, records: List[KernelRecord]) -> None:
        self._records.extend(records)

    def clear(self) -> None:
        self._records.clear()

    @property
    def records(self) -> List[KernelRecord]:
        return list(self._records)

    def counters(self, name_filter: Optional[str] = None) -> ProfileCounters:
        """Aggregate counters over recorded kernels.

        ``name_filter`` restricts aggregation to kernels whose stats name
        contains the given substring (e.g. ``"gather"``).
        """
        return aggregate_counters(
            (r.stats, r.seconds * self.device.clock_hz)
            for r in self._records
            if name_filter is None or name_filter in r.stats.name
        )

    def profile_kernel(self, stats: KernelStats) -> ProfileCounters:
        """One-off counters for a single kernel without recording it."""
        record = KernelRecord(stats=stats, seconds=self._cost.time(stats))
        saved = self._records
        self._records = [record]
        try:
            return self.counters()
        finally:
            self._records = saved
