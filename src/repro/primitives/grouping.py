"""Sort-based group identification: a fast, exact `np.unique` replacement.

``np.unique(keys, return_inverse=True)`` on high-cardinality integer
keys is dominated by a hash-based distinct pass that runs ~15x slower
than an explicit sort + boundary scan on this workload.  Every group-by
variant and the join planner need exactly that operation, so this module
centralizes a sort-based implementation whose outputs are *bit-identical*
to ``np.unique`` (sorted group keys, first-occurrence inverse mapping)
— the oracle tests in ``tests/primitives/test_grouping.py`` pin the
equivalence against ``np.unique`` directly, so every caller (including
``relational/validation.py``'s reference implementations, which now use
:func:`group_identify` too) rides the sort-based path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def group_identify(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted distinct keys plus the inverse mapping.

    Exactly equivalent to ``np.unique(keys, return_inverse=True)``:
    ``group_keys`` is sorted ascending and
    ``group_keys[inverse] == keys``.  A non-stable argsort is safe here
    because the inverse depends only on key *values*, never on the order
    of equal elements.
    """
    n = int(keys.size)
    if n == 0:
        return keys[:0].copy(), np.empty(0, dtype=np.intp)
    order = np.argsort(keys, kind="quicksort")
    sorted_keys = keys[order]
    boundaries = _boundaries(sorted_keys)
    group_ids = np.cumsum(boundaries)
    group_ids -= 1
    inverse = np.empty(n, dtype=np.intp)
    inverse[order] = group_ids
    return sorted_keys[boundaries], inverse


def groups_from_sorted(sorted_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Like :func:`group_identify` but for *already sorted* keys.

    Skips the argsort entirely: the inverse is just the running count of
    group boundaries.  Equivalent to
    ``np.unique(sorted_keys, return_inverse=True)`` when the input is
    sorted ascending.
    """
    n = int(sorted_keys.size)
    if n == 0:
        return sorted_keys[:0].copy(), np.empty(0, dtype=np.intp)
    boundaries = _boundaries(sorted_keys)
    inverse = np.cumsum(boundaries).astype(np.intp, copy=False)
    inverse -= 1
    return sorted_keys[boundaries], inverse


def count_distinct(keys: np.ndarray) -> int:
    """Number of distinct values, via sort + boundary count.

    Equivalent to ``np.unique(keys).size`` but avoids the hash-based
    unique pass (~15x faster on high-cardinality ints) and materializes
    no distinct-key array.
    """
    n = int(keys.size)
    if n == 0:
        return 0
    sorted_keys = np.sort(keys, kind="quicksort")
    return 1 + int(np.count_nonzero(sorted_keys[1:] != sorted_keys[:-1]))


def distinct_sorted(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct values — ``np.unique(keys)`` without the hash pass."""
    if keys.size == 0:
        return keys[:0].copy()
    sorted_keys = np.sort(keys, kind="quicksort")
    return sorted_keys[_boundaries(sorted_keys)]


def stable_key_order(keys: np.ndarray) -> np.ndarray:
    """A stable sort permutation of *keys*, fast for narrow integer keys.

    A comparison argsort of 4-byte ints costs seconds per 2^24 elements
    on one core; numpy's *stable* argsort of <= 2-byte unsigned ints is
    an O(n) LSD radix sort and roughly 5x faster.  Tiered strategy:

    1. keys of <= 2 bytes — numpy's stable argsort is already radix;
    2. value range fits 16 bits after shifting by the minimum — one
       radix argsort of the shifted keys (stability and order are
       preserved under the monotonic shift);
    3. keys are a dense permutation of ``[min, min + n)`` (verified by
       histogram) — the stable order is the inverse permutation, one
       O(n) scatter;
    4. other 4-byte integers — two chained 16-bit radix argsorts, LSD
       composition of (2) over the low/high halves;
    5. 8-byte integers whose span fits 32 bits (hash slots, tuple ids)
       — shift by the minimum into uint32, then the same two-pass
       radix as (4);
    6. anything else — numpy's stable argsort.

    Every tier returns the *bit-identical* permutation
    ``np.argsort(keys, kind="stable")`` would.  The shifted values in
    tiers 2-3 fit the key dtype (span <= 2^16 or span == n < 2^31), so
    the subtraction cannot overflow.
    """
    n = int(keys.size)
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if keys.dtype.kind in "iu":
        if keys.dtype.itemsize <= 2:
            return np.argsort(keys, kind="stable")
        lo = int(keys.min())
        span = int(keys.max()) - lo + 1
        if span <= 1 << 16:
            shifted = keys if lo == 0 else keys - lo
            return np.argsort(shifted.astype(np.uint16), kind="stable")
        if span == n:
            shifted = keys if lo == 0 else keys - lo
            counts = np.bincount(shifted, minlength=n)
            if counts.max() == 1:
                # A permutation of [lo, lo + n): invert it.
                order = np.empty(n, dtype=np.intp)
                order[shifted] = np.arange(n, dtype=np.intp)
                return order
        if keys.dtype.itemsize == 4:
            # LSD radix over two 16-bit digits; the sign bit of the high
            # half is flipped so unsigned digit order matches signed order.
            u = keys.view(np.uint32)
            low = (u & np.uint32(0xFFFF)).astype(np.uint16)
            high = (u >> np.uint32(16)).astype(np.uint16)
            if keys.dtype.kind == "i":
                high ^= np.uint16(0x8000)
            order = np.argsort(low, kind="stable")
            order = order[np.argsort(high[order], kind="stable")]
            return order
        if span <= 1 << 32:
            # 8-byte ints whose values span < 2^32 (hash slots, tuple
            # ids): shift into uint32 and run the same two-pass radix.
            u = (keys - lo).astype(np.uint32)
            low = (u & np.uint32(0xFFFF)).astype(np.uint16)
            high = (u >> np.uint32(16)).astype(np.uint16)
            order = np.argsort(low, kind="stable")
            order = order[np.argsort(high[order], kind="stable")]
            return order
    return np.argsort(keys, kind="stable")


def _boundaries(sorted_keys: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each run in sorted keys."""
    boundaries = np.empty(sorted_keys.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundaries[1:])
    return boundaries
