"""Multi-tenant serving: concurrent streams, caches, admission control.

Stands up a :class:`repro.QueryServer` over two relations and walks the
serving story end to end — a concurrent closed-loop burst vs. serial
execution, result-cache hits after repeats, invalidation on relation
update, backpressure under a tiny admission queue, and a fault-injected
query that degrades alone while its neighbours finish untouched.

Everything is simulated time on one process; outputs are bit-identical
to one-at-a-time ``execute()`` throughout.

Run: ``python examples/query_server.py``
"""

import numpy as np

from repro import AdmissionError, QueryServer, Relation
from repro.faults import FaultPlan
from repro.query import Join, Scan, execute

rng = np.random.default_rng(11)

num_users = 30_000
users = Relation.from_key_payloads(
    rng.permutation(num_users).astype(np.int32),
    [rng.integers(0, 40, num_users).astype(np.int32)],
    payload_prefix="u",
    name="users",
)
num_events = 120_000
events = Relation.from_key_payloads(
    rng.integers(0, num_users, num_events).astype(np.int32),
    [rng.integers(1, 1000, num_events).astype(np.int32)],
    payload_prefix="e",
    name="events",
)

plan = Join(Scan(users), Scan(events))

# --- Concurrency: a closed-loop burst vs. serial execution -------------
serial = QueryServer(streams=1, seed=0, enable_plan_cache=False,
                     enable_result_cache=False)
concurrent = QueryServer(streams=4, seed=0, enable_plan_cache=False,
                         enable_result_cache=False)
for server in (serial, concurrent):
    for _ in range(8):
        server.submit(plan, at_s=0.0)
    server.run()
speedup = serial.report().makespan_s / concurrent.report().makespan_s
print("Served 8 concurrent joins:")
print(f"  1 stream : {serial.report().makespan_s * 1e3:8.3f} ms makespan")
print(f"  4 streams: {concurrent.report().makespan_s * 1e3:8.3f} ms makespan "
      f"({speedup:.2f}x)")
print(f"  mean stretch at 4 streams: "
      f"{concurrent.report().mean_stretch:.2f}x per query")

# --- Caching: repeats collapse to a lookup -----------------------------
server = QueryServer(streams=4, seed=0)
server.register("users", users)
server.register("events", events)
first = server.query(plan)
again = server.query(plan)
assert again.result_cache_hit and not first.result_cache_hit
assert first.output.equals_unordered(again.output)
print(f"\nResult cache: {first.service_s * 1e3:.3f} ms cold, "
      f"{again.service_s * 1e3:.6f} ms hot")

# Updating a registered relation evicts every dependent entry — a stale
# read is structurally impossible.
events2 = Relation.from_key_payloads(
    rng.integers(0, num_users, num_events).astype(np.int32),
    [rng.integers(1, 1000, num_events).astype(np.int32)],
    payload_prefix="e",
    name="events-v2",
)
evicted = server.update("events", events2)
fresh = server.query(Join(Scan(users), Scan(events2)))
print(f"update('events') invalidated {evicted} cache entries; "
      f"next query re-executed: cache_hit={fresh.result_cache_hit}")

# --- Backpressure: a saturated admission queue rejects, typed ----------
tiny = QueryServer(streams=1, queue_depth=1, seed=0)
for _ in range(5):
    tiny.submit(plan, at_s=0.0)
outcomes = tiny.run()
rejected = [o for o in outcomes if o.status == "rejected"]
assert all(isinstance(o.error, AdmissionError) for o in rejected)
print(f"\nOverload: {len(outcomes) - len(rejected)} served, "
      f"{len(rejected)} rejected with "
      f"AdmissionError(reason={rejected[0].error.reason!r})")

# --- Faults degrade one tenant, never the server -----------------------
mixed = QueryServer(streams=2, seed=0)
faulty_id = mixed.submit(plan, at_s=0.0,
                         fault_plan=FaultPlan(seed=3, kernel_fault_rate=0.3),
                         tag="faulty")
clean_id = mixed.submit(plan, at_s=0.0, tag="clean")
by_id = {o.query_id: o for o in mixed.run()}
oracle = execute(plan, seed=0)
for query_id in (faulty_id, clean_id):
    outcome = by_id[query_id]
    assert outcome.status == "completed"
    assert outcome.output.equals_unordered(oracle.output)
print(f"\nFault injection: 'faulty' retried its kernels "
      f"(stretch {by_id[faulty_id].stretch:.2f}x) while 'clean' ran "
      f"{by_id[clean_id].solo_seconds * 1e3:.3f} ms solo work unharmed; "
      f"both match execute() exactly")

print(f"\nServed {sum(s.report().completed for s in (serial, concurrent, server, tiny, mixed))} "
      f"queries across 5 servers on the simulated clock")
