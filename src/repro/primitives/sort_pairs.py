"""SORT-PAIRS primitive: CUB-style least-significant-digit radix sort.

``SORT-PAIRS(kin, vin, kout, vout)`` sorts value arrays by their keys
(Section 2.3).  The CUB implementation is an LSD radix sort processing 8
bits per pass, so sorting 4-byte keys takes 4 passes, each reading and
writing the key and payload arrays — the "about 17 sequential passes"
the paper counts for a 4B/4B sort (Section 4.2).  Sorting is stable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from .grouping import stable_key_order
from .radix_partition import MAX_BITS_PER_PASS


def key_bits_for_dtype(dtype: np.dtype) -> int:
    """Radix bits CUB sorts for a key dtype (full width)."""
    return np.dtype(dtype).itemsize * 8


def sort_passes_for_dtype(dtype: np.dtype) -> int:
    """Number of LSD radix passes for a key dtype (8 bits per pass)."""
    bits = key_bits_for_dtype(dtype)
    return -(-bits // MAX_BITS_PER_PASS)


def sort_pairs(
    ctx: GPUContext,
    keys: np.ndarray,
    payloads: Sequence[np.ndarray],
    phase: Optional[str] = None,
    key_bits: Optional[int] = None,
    label: str = "",
    order: Optional[np.ndarray] = None,
    return_order: bool = False,
) -> tuple:
    """Stably sort *payloads* (and the keys) by *keys*.

    Returns ``(keys_sorted, payloads_sorted)`` — plus the sort
    permutation when ``return_order=True``.  Charges one kernel per
    8-bit LSD pass, each streaming the key and payload arrays once in
    and once out.

    ``order`` supplies a precomputed stable sort permutation of *keys*
    (from an earlier ``return_order=True`` call on the same keys).  The
    charged kernels are identical — the simulated GPU still runs the
    full sort — only the host-side permutation computation is skipped,
    which is what Algorithm 1's lazy per-column transforms exploit.
    """
    if key_bits is None:
        key_bits = key_bits_for_dtype(keys.dtype)
    passes = max(1, -(-key_bits // MAX_BITS_PER_PASS))

    if order is None:
        order = stable_key_order(keys)
    keys_sorted = keys[order]
    payloads_sorted: List[np.ndarray] = [p[order] for p in payloads]

    payload_bytes = sum(int(p.nbytes) for p in payloads)
    per_pass_bytes = int(keys.nbytes) + payload_bytes
    stats = KernelStats(
        name=f"sort_pairs:{label}" if label else "sort_pairs",
        items=int(keys.size),
        # fused digit/histogram read + data read, then data write
        seq_read_bytes=int(keys.nbytes) + per_pass_bytes,
        seq_write_bytes=per_pass_bytes,
        atomic_ops=1 << MAX_BITS_PER_PASS,
    )
    ctx.submit_many([stats] * passes, phase=phase)
    if return_order:
        return keys_sorted, payloads_sorted, order
    return keys_sorted, payloads_sorted


def argsort_cost_only(
    ctx: GPUContext,
    num_items: int,
    key_bytes: int,
    payload_bytes_per_item: int,
    phase: Optional[str] = None,
    key_bits: Optional[int] = None,
    label: str = "",
) -> None:
    """Charge SORT-PAIRS traffic without moving data (planning helpers)."""
    if key_bits is None:
        key_bits = key_bytes * 8
    passes = max(1, -(-key_bits // MAX_BITS_PER_PASS))
    per_pass = num_items * (key_bytes + payload_bytes_per_item)
    stats = KernelStats(
        name=f"sort_pairs:{label}" if label else "sort_pairs",
        items=num_items,
        seq_read_bytes=num_items * key_bytes + per_pass,
        seq_write_bytes=per_pass,
        atomic_ops=1 << MAX_BITS_PER_PASS,
    )
    ctx.submit_many([stats] * passes, phase=phase)
