"""Column types and dictionary encoding."""

import numpy as np
import pytest

from repro.relational import INT32, INT64, DictionaryEncoder, column_type
from repro.relational.types import id_dtype


class TestTypes:
    def test_itemsizes(self):
        assert INT32.itemsize == 4
        assert INT64.itemsize == 8

    def test_coerce_from_name(self):
        assert column_type("int32") is INT32
        assert column_type("int64") is INT64

    def test_coerce_from_dtype(self):
        assert column_type(np.dtype(np.int32)) is INT32

    def test_coerce_passthrough(self):
        assert column_type(INT64) is INT64

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="int32"):
            column_type("float16")

    def test_unsupported_dtype(self):
        with pytest.raises(KeyError, match="supported"):
            column_type(np.dtype(np.float32))

    def test_str(self):
        assert str(INT32) == "int32"

    def test_id_dtype(self):
        assert id_dtype(100) == np.dtype(np.int32)
        assert id_dtype(2 ** 40) == np.dtype(np.int64)


class TestDictionaryEncoder:
    def test_roundtrip(self):
        enc = DictionaryEncoder()
        codes = enc.encode(["air", "rail", "air", "ship"])
        assert list(codes) == [0, 1, 0, 2]
        assert enc.decode(codes) == ["air", "rail", "air", "ship"]

    def test_deterministic_first_seen_order(self):
        enc = DictionaryEncoder()
        enc.encode(["b", "a"])
        assert enc.lookup("b") == 0
        assert enc.lookup("a") == 1

    def test_cardinality(self):
        enc = DictionaryEncoder()
        enc.encode(["x", "y", "x"])
        assert enc.cardinality == 2

    def test_code_dtype(self):
        enc32 = DictionaryEncoder(INT32)
        assert enc32.encode(["a"]).dtype == np.int32
        enc64 = DictionaryEncoder(INT64)
        assert enc64.encode(["a"]).dtype == np.int64

    def test_invalid_code_type(self):
        with pytest.raises(ValueError):
            DictionaryEncoder("int32")

    def test_decode_unknown_code(self):
        enc = DictionaryEncoder()
        enc.encode(["a"])
        with pytest.raises(KeyError):
            enc.decode([5])

    def test_lookup_unknown_value(self):
        with pytest.raises(KeyError):
            DictionaryEncoder().lookup("missing")

    def test_incremental_encoding_is_stable(self):
        enc = DictionaryEncoder()
        first = enc.encode(["p", "q"])
        second = enc.encode(["q", "r", "p"])
        assert list(first) == [0, 1]
        assert list(second) == [1, 2, 0]
