"""Sort-merge joins: SMJ-UM (GFUR) and SMJ-OM (GFTR).

``SMJ-UM`` (Section 3.1) sorts ``(key, physical ID)`` pairs, merges, and
materializes payloads with *unclustered* gathers through the permuted
physical IDs.

``SMJ-OM`` (Section 4.2, Figure 5) sorts every payload column together
with the keys, merges with *virtual* IDs, and materializes with
*clustered* gathers from the sorted payload columns — trading ~4 extra
sequential radix passes per payload column for the removal of the random
scan, which the paper shows is a large net win on wide, high-match-ratio
joins.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from ..primitives.gather import gather
from ..primitives.merge_path import match_bounds
from ..primitives.sort_pairs import sort_pairs
from ..relational.relation import Relation
from .base import (
    MATCH,
    MATERIALIZE,
    TRANSFORM,
    JoinAlgorithm,
    init_tuple_ids,
    output_column_names,
)
from .matching import expand_bounds
from .narrow import narrow_sort_merge


def _sort_temp_bytes(n: int) -> int:
    """CUB radix-sort intermediate storage (per-block histograms etc.)."""
    return 256 * 8 * max(1, n // 4096) + 4096


def _charge_match_output(
    ctx: GPUContext, matches: int, key_bytes: int, id_bytes: int = 4
) -> None:
    """Write the output keys and the two match-ID arrays sequentially."""
    ctx.submit(
        KernelStats(
            name="write_matches",
            items=matches,
            seq_write_bytes=matches * (key_bytes + 2 * id_bytes),
        ),
        phase=MATCH,
    )


class SortMergeJoinUM(JoinAlgorithm):
    """Sort-merge join with unoptimized materialization (GFUR)."""

    name = "SMJ-UM"
    pattern = "gfur"

    def _execute_narrow(self, ctx, r, s, unique_build_keys):
        return narrow_sort_merge(ctx, r, s, unique_build_keys, self.config)

    def _execute(
        self, ctx: GPUContext, r: Relation, s: Relation, unique_build_keys: bool
    ) -> List[Tuple[str, np.ndarray]]:
        transformed = {}
        with ctx.phase(TRANSFORM):
            for side, rel in (("r", r), ("s", s)):
                ids = init_tuple_ids(ctx, rel.num_rows, TRANSFORM, side, dtype=rel.key_values.dtype)
                a_ids = ctx.mem.adopt(ids, f"ids_{side}")
                temp = ctx.mem.alloc(_sort_temp_bytes(rel.num_rows), np.uint8, "sort_temp")
                keys_sorted, (ids_sorted,) = sort_pairs(
                    ctx, rel.key_values, [ids], phase=TRANSFORM, label=side
                )
                ctx.mem.free(temp)
                ctx.mem.free(a_ids)
                transformed[side] = (
                    ctx.mem.adopt(keys_sorted, f"keys_sorted_{side}"),
                    ctx.mem.adopt(ids_sorted, f"ids_sorted_{side}"),
                )

        with ctx.phase(MATCH):
            rk, r_ids = transformed["r"]
            sk, s_ids = transformed["s"]
            lo, hi = match_bounds(
                ctx,
                rk.data,
                sk.data,
                unique_build_keys and not self.config.double_merge_pass,
                phase=MATCH,
            )
            r_pos, s_pos = expand_bounds(lo, hi)
            out_key = sk.data[s_pos]
            # Physical IDs are fetched through the (clustered) match
            # positions — these reads are cheap; the expensive part is the
            # materialization gathers below that use the *values* fetched
            # here as maps.
            id_r = gather(ctx, r_ids.data, r_pos, phase=MATCH, label="id_r")
            id_s = gather(ctx, s_ids.data, s_pos, phase=MATCH, label="id_s")
            _charge_match_output(ctx, out_key.size, rk.data.dtype.itemsize)
            a_id_r = ctx.mem.adopt(id_r, "match_ids_r")
            a_id_s = ctx.mem.adopt(id_s, "match_ids_s")
            for arr in (rk, r_ids, sk, s_ids):
                ctx.mem.free(arr)

        columns: List[Tuple[str, np.ndarray]] = [("key", out_key)]
        with ctx.phase(MATERIALIZE):
            for side, source, out_name in output_column_names(r, s, self.config.projection):
                if out_name == "key":
                    continue
                rel = r if side == "r" else s
                ids = id_r if side == "r" else id_s
                columns.append(
                    (out_name, gather(ctx, rel.column(source), ids, phase=MATERIALIZE, label=out_name))
                )
            ctx.mem.free(a_id_r)
            ctx.mem.free(a_id_s)
        return columns


class SortMergeJoinOM(JoinAlgorithm):
    """Sort-merge join with optimized materialization (GFTR, ours)."""

    name = "SMJ-OM"
    pattern = "gftr"

    def _execute_narrow(self, ctx, r, s, unique_build_keys):
        # Narrow joins coincide with SMJ-UM (nothing extra to sort).
        return narrow_sort_merge(ctx, r, s, unique_build_keys, self.config)

    def _execute(
        self, ctx: GPUContext, r: Relation, s: Relation, unique_build_keys: bool
    ) -> List[Tuple[str, np.ndarray]]:
        first_payload = {}
        sorted_keys = {}
        key_orders = {}
        with ctx.phase(TRANSFORM):
            for side, rel in (("r", r), ("s", s)):
                payload_names = rel.payload_names
                first = payload_names[0] if payload_names else None
                payloads = [rel.column(first)] if first else []
                temp = ctx.mem.alloc(_sort_temp_bytes(rel.num_rows), np.uint8, "sort_temp")
                keys_sorted, payloads_sorted, key_orders[side] = sort_pairs(
                    ctx, rel.key_values, payloads, phase=TRANSFORM, label=side,
                    return_order=True,
                )
                ctx.mem.free(temp)
                sorted_keys[side] = ctx.mem.adopt(keys_sorted, f"keys_sorted_{side}")
                if first:
                    first_payload[side] = (
                        first,
                        ctx.mem.adopt(payloads_sorted[0], f"payload1_{side}"),
                    )

        with ctx.phase(MATCH):
            rk = sorted_keys["r"]
            sk = sorted_keys["s"]
            lo, hi = match_bounds(
                ctx,
                rk.data,
                sk.data,
                unique_build_keys and not self.config.double_merge_pass,
                phase=MATCH,
            )
            vid_r, vid_s = expand_bounds(lo, hi)
            out_key = sk.data[vid_s]
            _charge_match_output(ctx, out_key.size, rk.data.dtype.itemsize)
            a_vid_r = ctx.mem.adopt(vid_r.astype(np.int32, copy=False), "match_vids_r")
            a_vid_s = ctx.mem.adopt(vid_s.astype(np.int32, copy=False), "match_vids_s")
            ctx.mem.free(rk)
            ctx.mem.free(sk)

        columns: List[Tuple[str, np.ndarray]] = [("key", out_key)]
        with ctx.phase(MATERIALIZE):
            for side, source, out_name in output_column_names(r, s, self.config.projection):
                if out_name == "key":
                    continue
                rel = r if side == "r" else s
                vids = a_vid_r.data if side == "r" else a_vid_s.data
                first = first_payload.get(side)
                if first and first[0] == source:
                    transformed = first[1]
                    columns.append(
                        (out_name, gather(ctx, transformed.data, vids, phase=MATERIALIZE, label=out_name))
                    )
                    ctx.mem.free(transformed)
                    continue
                # Lazily transform this payload column with the keys
                # (Algorithm 1, lines 5 and 8), then gather clustered.
                # The stable permutation from the transform-phase sort of
                # the same keys is reused host-side.
                temp = ctx.mem.alloc(_sort_temp_bytes(rel.num_rows), np.uint8, "sort_temp")
                tk, (tcol,) = sort_pairs(
                    ctx, rel.key_values, [rel.column(source)], phase=MATERIALIZE, label=out_name,
                    order=key_orders[side],
                )
                ctx.mem.free(temp)
                a_tk = ctx.mem.adopt(tk, f"keys_resorted_{out_name}")
                a_tcol = ctx.mem.adopt(tcol, f"payload_sorted_{out_name}")
                ctx.mem.free(a_tk)  # the re-sorted key column is not needed
                columns.append(
                    (out_name, gather(ctx, a_tcol.data, vids, phase=MATERIALIZE, label=out_name))
                )
                ctx.mem.free(a_tcol)
            # A projection may skip the eagerly transformed first payloads.
            for _, handle in first_payload.values():
                if not handle.freed:
                    ctx.mem.free(handle)
            ctx.mem.free(a_vid_r)
            ctx.mem.free(a_vid_s)
        return columns
