"""Shuffle byte accounting: property-based conservation laws.

The load-bearing invariant of the scale-out layer: for *arbitrary*
inputs, the per-link byte matrix a shuffle charges to the interconnect
sums — per source device — to exactly the bytes that device's
off-device rows occupy, and every row lands on exactly one device with
equal keys co-located.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterContext,
    block_ranges,
    device_assignments,
    shuffle_columns,
)


@st.composite
def shuffle_cases(draw):
    num_devices = draw(st.sampled_from([1, 2, 3, 4, 8]))
    dtype = draw(st.sampled_from([np.int32, np.int64]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    locals_ = []
    for _ in range(num_devices):
        rows = draw(st.integers(0, 200))
        keys = rng.integers(0, 50, size=rows).astype(dtype)
        locals_.append(
            {
                "k": keys,
                "v1": rng.integers(0, 1000, size=rows).astype(np.int64),
                "v2": rng.random(rows),
            }
        )
    return num_devices, locals_


class TestDeviceAssignments:
    def test_equal_keys_colocate(self):
        keys = np.array([5, 9, 5, 9, 5], dtype=np.int64)
        for n in (1, 2, 3, 4, 8):
            a = device_assignments(keys, n)
            assert a[0] == a[2] == a[4]
            assert a[1] == a[3]
            assert ((0 <= a) & (a < n)).all()

    def test_single_device_is_all_zero(self):
        assert device_assignments(np.arange(100), 1).tolist() == [0] * 100

    def test_dtype_does_not_change_assignment(self):
        keys32 = np.arange(256, dtype=np.int32)
        keys64 = keys32.astype(np.int64)
        for n in (2, 4, 8):
            assert np.array_equal(
                device_assignments(keys32, n), device_assignments(keys64, n)
            )

    def test_invalid_device_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            device_assignments(np.arange(4), 0)


class TestBlockRanges:
    @pytest.mark.parametrize("rows", [0, 1, 7, 64, 1000])
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8])
    def test_cover_and_balance(self, rows, n):
        ranges = block_ranges(rows, n)
        assert len(ranges) == n
        assert ranges[0][0] == 0 and ranges[-1][1] == rows
        sizes = [stop - start for start, stop in ranges]
        assert sum(sizes) == rows
        assert max(sizes) - min(sizes) <= 1
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start


class TestShuffleConservation:
    @settings(max_examples=40, deadline=None)
    @given(shuffle_cases())
    def test_per_link_bytes_sum_to_emitted_bytes(self, case):
        """matrix row sums == bytes each device's off-device rows occupy."""
        num_devices, locals_ = case
        cluster = ClusterContext(num_devices=num_devices)
        result = shuffle_columns(cluster, locals_, "k")

        for src, columns in enumerate(locals_):
            assignment = device_assignments(columns["k"], num_devices)
            expected_emitted = sum(
                int(sum(a[assignment == dst].nbytes for a in columns.values()))
                for dst in range(num_devices)
                if dst != src
            )
            assert result.emitted_bytes[src] == expected_emitted
            # Full matrix row (incl. diagonal) covers every local byte.
            local_bytes = sum(int(a.nbytes) for a in columns.values())
            assert result.matrix[src].sum() == local_bytes

        # Conservation: everything emitted is received, nothing else.
        assert result.emitted_bytes.sum() == result.received_bytes.sum()
        assert np.array_equal(cluster.link_bytes().sum(axis=1), result.emitted_bytes)

    @settings(max_examples=40, deadline=None)
    @given(shuffle_cases())
    def test_rows_partition_exactly(self, case):
        """Every input row lands on exactly one device, keys co-located."""
        num_devices, locals_ = case
        cluster = ClusterContext(num_devices=num_devices)
        result = shuffle_columns(cluster, locals_, "k")

        total_in = sum(c["k"].size for c in locals_)
        total_out = sum(shard["k"].size for shard in result.shards)
        assert total_out == total_in

        for d, shard in enumerate(result.shards):
            assert (device_assignments(shard["k"], num_devices) == d).all()

        # Multiset of (key, v1) pairs is preserved.
        def pairs(key_arrays, val_arrays):
            k = np.concatenate([np.asarray(a, dtype=np.int64) for a in key_arrays])
            v = np.concatenate([np.asarray(a, dtype=np.int64) for a in val_arrays])
            return sorted(zip(k.tolist(), v.tolist()))

        assert pairs(
            [c["k"] for c in locals_], [c["v1"] for c in locals_]
        ) == pairs(
            [s["k"] for s in result.shards], [s["v1"] for s in result.shards]
        )

    def test_stability_preserves_global_row_order(self):
        """Within a destination, rows keep (source, local) order."""
        keys = np.array([4, 4, 4, 4, 4, 4], dtype=np.int64)
        order = np.arange(6)
        cluster = ClusterContext(num_devices=2)
        locals_ = [
            {"k": keys[:3], "pos": order[:3]},
            {"k": keys[3:], "pos": order[3:]},
        ]
        result = shuffle_columns(cluster, locals_, "k")
        dst = int(device_assignments(keys[:1], 2)[0])
        assert result.shards[dst]["pos"].tolist() == [0, 1, 2, 3, 4, 5]
        assert result.shards[1 - dst]["pos"].size == 0

    def test_partition_kernels_charged_to_each_nonempty_device(self):
        cluster = ClusterContext(num_devices=2)
        locals_ = [
            {"k": np.arange(100, dtype=np.int64)},
            {"k": np.empty(0, dtype=np.int64)},
        ]
        result = shuffle_columns(cluster, locals_, "k")
        busy = result.partition_step.device_seconds
        assert busy[0] > 0.0
        assert busy[1] == 0.0  # empty block charges nothing
