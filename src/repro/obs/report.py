"""Human-readable per-query trace report.

Reproduces the Table 4 counter layout (total cycles, warp instructions,
cycles per warp instruction, memory read volume, sectors per load
request) *per operator span* of a traced run, followed by the session's
flat counter totals — the text analogue of opening the Chrome trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from ..gpusim.profiler import aggregate_counters
from .session import ALGORITHM, OPERATOR, TraceSession


def _format_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def per_operator_report(session: TraceSession) -> str:
    """Render Table-4-style counters for each operator of the session."""
    lines: List[str] = [f"== trace report: {session.name} =="]
    lines.append(
        f"simulated total: {session.total_seconds * 1e3:.4f} ms, "
        f"{len(session.kernel_events())} kernels"
    )

    spans = session.spans(category=OPERATOR)
    if not spans:  # bare algorithm runs outside a query plan
        spans = session.spans(category=ALGORITHM)
    for index, span in spans:
        kernels = session.kernels_under(index)
        lines.append("")
        lines.append(
            f"-- {span.name} ({span.duration_s * 1e3:.4f} ms, "
            f"{len(kernels)} kernels) --"
        )
        if not kernels:
            lines.append("   (no kernels)")
            continue
        counters = aggregate_counters((e.record.stats, e.cycles) for e in kernels)
        for label, value in counters.as_table_rows():
            lines.append(f"   {label:36s} {_format_value(value)}")
        phases = {}
        for event in kernels:
            phase = str(event.args.get("phase") or "other")
            phases[phase] = phases.get(phase, 0.0) + event.duration_s
        breakdown = ", ".join(f"{p}={s * 1e3:.4f}ms" for p, s in phases.items())
        lines.append(f"   phases: {breakdown}")

    lines.append("")
    lines.append("-- session counters --")
    for name, value in session.metrics.rows():
        lines.append(f"   {name:36s} {_format_value(value)}")
    return "\n".join(lines)


def write_report(session: TraceSession, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(per_operator_report(session) + "\n")
    return path
