"""Figure 18: decision-tree validation.

Regenerates the experiment table into ``bench_results/fig18.txt``.
Run: ``pytest benchmarks/bench_fig18.py --benchmark-only -s``
"""

from repro.bench.experiments import fig18

from _common import SWEEP_SCALE, run_and_report


def test_fig18(benchmark):
    result = run_and_report(benchmark, fig18.run, SWEEP_SCALE)
    assert result.findings["planner_accuracy"] >= 0.8
