"""Shared conventions for the benchmark targets.

Each ``bench_<id>.py`` regenerates one table or figure of the paper
(DESIGN.md's per-experiment index) by invoking the matching experiment
module, timing it under pytest-benchmark, printing the rendered table
(visible with ``-s``), and persisting it to ``bench_results/<id>.txt``.

``REPORT_SCALE`` is the workload scale relative to the paper's 2^27-tuple
microbenchmarks; the device geometry is scaled identically (see
``repro.gpusim.device.scaled_device``), so regime boundaries match paper
scale.  Heavy sweeps use ``SWEEP_SCALE`` to keep wall time reasonable.

Pass ``--trace-dir DIR`` to any benchmark invocation to capture a
``repro.obs.TraceSession`` per benchmark (see ``conftest.py``): each
test writes ``DIR/<test>.trace.json`` (open in ``chrome://tracing`` or
https://ui.perfetto.dev), ``<test>.counters.csv`` and
``<test>.report.txt``.  Tracing is zero-overhead when the flag is
absent.
"""

from repro.bench.reporting import print_and_save

REPORT_SCALE = 2.0 ** -9
SWEEP_SCALE = 2.0 ** -10


def run_and_report(benchmark, runner, scale):
    """Benchmark one experiment run and persist its rendered table."""
    result = benchmark.pedantic(runner, kwargs={"scale": scale}, rounds=1, iterations=1)
    print_and_save(result)
    assert result.rows, "experiment produced no rows"
    return result
