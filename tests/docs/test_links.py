"""Docs stay navigable: every relative link and anchor resolves.

Runs the same checker as the CI ``docs`` job (``tools/check_docs.py``)
over the four narrative documents, so a broken cross-reference fails
tier-1 locally before it fails CI.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOCS = ["README.md", "ARCHITECTURE.md", "DESIGN.md", "EXPERIMENTS.md"]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()


def test_all_docs_exist():
    for name in DOCS:
        assert (REPO / name).is_file(), f"{name} is missing"


def test_relative_links_and_anchors_resolve():
    slug_cache = {}
    errors = []
    for name in DOCS:
        errors.extend(check_docs.check_file(REPO / name, slug_cache))
    assert not errors, "broken docs links:\n" + "\n".join(errors)


#: Sections other docs, tests and CI point readers at; renaming one of
#: these headings must fail tier-1, mirroring the CI --require list.
REQUIRED_SECTIONS = [
    "ARCHITECTURE.md#the-serving-layer-reproserve",
    "ARCHITECTURE.md#fault-model--graceful-degradation-reprofaults",
    "EXPERIMENTS.md#serving-throughput-ext06",
    "EXPERIMENTS.md#resilience-ext05",
    "EXPERIMENTS.md#scale-out-ext04",
]


@pytest.mark.parametrize("requirement", REQUIRED_SECTIONS)
def test_required_sections_exist(requirement):
    base, _, anchor = requirement.partition("#")
    errors = check_docs.check_required_anchor(
        f"{REPO / base}#{anchor}", slug_cache={}
    )
    assert not errors, "\n".join(errors)


def test_readme_links_architecture():
    assert "ARCHITECTURE.md" in (REPO / "README.md").read_text(encoding="utf-8")


@pytest.mark.parametrize(
    "heading,expected",
    [
        ("Scale-out (ext04)", "scale-out-ext04"),
        ("How the simulation works (and why it is faithful)",
         "how-the-simulation-works-and-why-it-is-faithful"),
        ("`repro.cluster` — scale-out", "reprocluster--scale-out"),
    ],
)
def test_github_slug_rules(heading, expected):
    assert check_docs.github_slug(heading, {}) == expected


def test_github_slug_deduplicates():
    seen = {}
    assert check_docs.github_slug("Setup", seen) == "setup"
    assert check_docs.github_slug("Setup", seen) == "setup-1"


def test_checker_flags_broken_anchor(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("# Only Heading\n\n[bad](#nope)\n[ok](#only-heading)\n")
    errors = check_docs.check_file(doc, {})
    assert len(errors) == 1 and "#nope" in errors[0]


def test_checker_ignores_links_in_code_blocks(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```\n[not a link](missing.md)\n```\nand `[also](gone.md)` text\n")
    assert check_docs.check_file(doc, {}) == []
