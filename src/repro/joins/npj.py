"""Non-partitioned hash join — the cuDF-style baseline (Section 5.2.2).

No transformation phase: R's keys go straight into one global-memory
hash table, which S's keys then probe.  Construction and probing are
random global-memory accesses (the table does not fit in shared memory),
which is why the paper finds this join up to 4x slower than the
partitioned algorithms despite doing less total work.

Materialization follows GFUR for the build side (the stored physical IDs
are effectively random), but the probe side materializes *clustered*:
matches stream out in probe order, so probe-side gathers are cheap —
exactly the nuance Figure 10 notes ("it has a lower materialization cost
than *-UM since materializing the probe table is clustered").
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from ..primitives.gather import gather
from ..primitives.hash_table import (
    SLOT_BYTES,
    build_table,
    probe_table,
    table_capacity,
)
from ..primitives.sector_analysis import analyze_indices
from ..relational.relation import Relation
from .base import MATCH, MATERIALIZE, JoinAlgorithm, output_column_names


def _charge_table_traffic(
    ctx: GPUContext,
    touched_slots: np.ndarray,
    capacity: int,
    items: int,
    extra_seq_read: int,
    extra_seq_write: int,
    name: str,
) -> None:
    """Random slot traffic measured from the actual probe sequences."""
    ctx.count("hash_table_probe_slots", int(touched_slots.size))
    sector = analyze_indices(touched_slots, SLOT_BYTES)
    ctx.submit(
        KernelStats(
            name=name,
            items=items,
            seq_read_bytes=extra_seq_read,
            seq_write_bytes=extra_seq_write,
            random_requests=sector.requests,
            random_sector_touches=sector.sector_touches,
            random_cold_sectors=sector.cold_sectors,
            locality_footprint_bytes=sector.mean_warp_span_bytes,
        ),
        phase=MATCH,
    )


class NonPartitionedHashJoin(JoinAlgorithm):
    """Global-hash-table join in the style of cuDF's default inner join."""

    name = "NPJ"
    pattern = "gfur"

    def _execute(
        self, ctx: GPUContext, r: Relation, s: Relation, unique_build_keys: bool
    ) -> List[Tuple[str, np.ndarray]]:
        del unique_build_keys  # the table handles duplicates uniformly
        capacity = table_capacity(r.num_rows)

        with ctx.phase(MATCH):
            table = ctx.mem.alloc(capacity, np.int64, "hash_table")
            build_ids = np.arange(r.num_rows, dtype=np.int64)
            build = build_table(r.key_values, build_ids, capacity)
            _charge_table_traffic(
                ctx,
                build.touched_slots,
                capacity,
                items=r.num_rows,
                extra_seq_read=int(r.key_values.nbytes) + int(build_ids.nbytes // 2),
                extra_seq_write=0,
                name="npj_build",
            )
            probe = probe_table(build.table_keys, build.table_values, s.key_values)
            id_r = probe.build_values
            id_s = probe.probe_indices
            out_key = s.key_values[id_s]
            _charge_table_traffic(
                ctx,
                probe.touched_slots,
                capacity,
                items=s.num_rows,
                extra_seq_read=int(s.key_values.nbytes),
                extra_seq_write=int(
                    out_key.nbytes + id_r.size * 4 + id_s.size * 4
                ),
                name="npj_probe",
            )
            a_id_r = ctx.mem.adopt(id_r.astype(np.int32, copy=False), "match_ids_r")
            a_id_s = ctx.mem.adopt(id_s.astype(np.int32, copy=False), "match_ids_s")
            ctx.mem.free(table)

        columns: List[Tuple[str, np.ndarray]] = [("key", out_key)]
        with ctx.phase(MATERIALIZE):
            for side, source, out_name in output_column_names(r, s, self.config.projection):
                if out_name == "key":
                    continue
                rel = r if side == "r" else s
                ids = a_id_r.data if side == "r" else a_id_s.data
                columns.append(
                    (out_name, gather(ctx, rel.column(source), ids, phase=MATERIALIZE, label=out_name))
                )
            ctx.mem.free(a_id_r)
            ctx.mem.free(a_id_s)
        return columns
