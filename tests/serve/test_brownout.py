"""Brownout load-shedding: the controller state machine and its effect
on serving (degraded execution, door shedding, hysteretic recovery)."""

import pytest

from repro.errors import ServeConfigError
from repro.query import execute
from repro.query.plan import Join, Scan
from repro.serve import (
    DEGRADED,
    NORMAL,
    SHED,
    BrownoutController,
    BrownoutPolicy,
    QueryServer,
)

from tests.serve.conftest import SERVE_SEED, assert_bit_identical


@pytest.fixture
def plan(r, s):
    return Join(Scan(r), Scan(s))


# -- the controller in isolation ---------------------------------------------


def test_policy_validation():
    with pytest.raises(ServeConfigError):
        BrownoutPolicy(degrade_enter=0.5, degrade_exit=0.6)  # exit > enter
    with pytest.raises(ServeConfigError):
        BrownoutPolicy(shed_enter=0.5, degrade_enter=0.7)  # shed below degrade
    with pytest.raises(ServeConfigError):
        BrownoutPolicy(shed_fraction=1.5)


def test_pressure_is_the_max_of_the_three_signals():
    ctl = BrownoutController()
    ctl.update(0.0, queue_frac=0.1, occupancy=0.75, memory_frac=0.2)
    assert ctl.pressure == 0.75
    assert ctl.level == DEGRADED  # default degrade_enter=0.70


def test_escalation_is_immediate_recovery_is_stepped():
    ctl = BrownoutController(
        BrownoutPolicy(degrade_enter=0.6, degrade_exit=0.3,
                       shed_enter=0.9, shed_exit=0.5)
    )
    # NORMAL -> SHED in a single update: no intermediate dwell.
    assert ctl.update(0.0, 0.95, 0.0, 0.0) == SHED
    # Recovery steps down one level at a time through the exits.
    assert ctl.update(1.0, 0.45, 0.0, 0.0) == DEGRADED  # <= shed_exit
    assert ctl.update(2.0, 0.45, 0.0, 0.0) == DEGRADED  # holds: > degrade_exit
    assert ctl.update(3.0, 0.2, 0.0, 0.0) == NORMAL
    # A deep collapse while shedding skips straight to NORMAL.
    ctl.update(4.0, 0.95, 0.0, 0.0)
    assert ctl.update(5.0, 0.1, 0.0, 0.0) == NORMAL


def test_hysteresis_band_holds_the_level():
    ctl = BrownoutController(
        BrownoutPolicy(degrade_enter=0.6, degrade_exit=0.3)
    )
    ctl.update(0.0, 0.7, 0.0, 0.0)
    # Pressure falls below the enter threshold but stays above the exit:
    # the level must not flap back to NORMAL.
    assert ctl.update(1.0, 0.5, 0.0, 0.0) == DEGRADED
    assert ctl.update(2.0, 0.35, 0.0, 0.0) == DEGRADED
    assert ctl.update(3.0, 0.3, 0.0, 0.0) == NORMAL


def test_transitions_and_time_in_level_are_recorded():
    ctl = BrownoutController(
        BrownoutPolicy(degrade_enter=0.6, degrade_exit=0.3)
    )
    ctl.update(0.0, 0.7, 0.0, 0.0)
    ctl.update(10.0, 0.1, 0.0, 0.0)
    assert [(t.from_level, t.to_level) for t in ctl.transitions] == [
        (NORMAL, DEGRADED), (DEGRADED, NORMAL)
    ]
    assert ctl.transitions[0].describe()
    assert ctl.level_seconds[DEGRADED] == pytest.approx(10.0)
    assert ctl.level_name == "normal"
    assert not ctl.degraded and not ctl.shedding


# -- the server under pressure ------------------------------------------------


def test_degraded_admission_disables_fusion_but_stays_bit_identical(plan):
    baseline = execute(plan, seed=SERVE_SEED).output
    server = QueryServer(
        streams=2,
        seed=SERVE_SEED,
        queue_depth=8,
        enable_result_cache=False,
        # Any queued query pushes queue_frac past the enter threshold.
        brownout=BrownoutPolicy(degrade_enter=0.1, degrade_exit=0.05,
                                shed_enter=0.95, shed_exit=0.5),
    )
    for _ in range(6):
        server.submit(plan, at_s=0.0)
    outcomes = server.run()
    assert all(o.status == "completed" for o in outcomes)
    degraded = [o for o in outcomes if o.brownout_degraded]
    assert degraded  # some queries were admitted under brownout
    for o in outcomes:
        assert_bit_identical(o.output, baseline)
    assert server.metrics.value("serve.brownout_degraded_queries") == len(
        degraded
    )
    # Load has drained: the controller recovered to NORMAL.
    assert server.brownout.level == NORMAL
    assert server.metrics.value("serve.brownout_transitions") >= 2


def test_shedding_drops_low_priority_queued_and_door_rejects(plan):
    server = QueryServer(
        streams=1,
        seed=SERVE_SEED,
        queue_depth=4,
        enable_result_cache=False,
        brownout=BrownoutPolicy(degrade_enter=0.2, degrade_exit=0.1,
                                shed_enter=0.5, shed_exit=0.3,
                                shed_fraction=0.5, shed_priority_max=0),
    )
    # Flood at one instant; the high-priority query must survive the shed.
    vip = server.submit(plan, at_s=0.0, priority=5)
    ids = [server.submit(plan, at_s=0.0) for _ in range(5)]
    outcomes = {o.query_id: o for o in server.run()}
    shed = [
        i for i in ids
        if outcomes[i].status == "rejected"
        and outcomes[i].error.reason == "brownout-shed"
    ]
    assert shed
    assert outcomes[vip].status == "completed"
    assert server.metrics.value("serve.brownout_shed_queued") >= 1
    assert server.brownout.level == NORMAL  # recovered after the drain
    assert server.memory.reserved_bytes == 0


def test_cache_population_is_suspended_while_degraded(plan):
    server = QueryServer(
        streams=2,
        seed=SERVE_SEED,
        queue_depth=8,
        # A 6-query flood exceeds these; a lone query stays below them.
        brownout=BrownoutPolicy(degrade_enter=0.6, degrade_exit=0.3,
                                shed_enter=0.95, shed_exit=0.65),
    )
    for _ in range(6):
        server.submit(plan, at_s=0.0)
    outcomes = server.run()
    degraded = [o for o in outcomes if o.brownout_degraded]
    assert degraded
    # Degraded admissions never populated the result cache, so at most
    # the non-degraded admissions' single entry exists.
    assert len(server.result_cache) <= 1
    # After recovery a fresh query populates again.
    assert server.brownout.level == NORMAL
    server.submit(plan)
    server.run()
    post = server.outcomes[-1]
    assert not post.brownout_degraded
    assert len(server.result_cache) == 1
    assert server.query(plan).result_cache_hit


def test_brownout_true_uses_the_default_policy(plan):
    server = QueryServer(streams=2, seed=SERVE_SEED, brownout=True)
    assert isinstance(server.brownout, BrownoutController)
    server.submit(plan)
    assert server.run()[0].status == "completed"


def test_no_brownout_by_default(plan):
    server = QueryServer(streams=1, seed=SERVE_SEED)
    assert server.brownout is None
