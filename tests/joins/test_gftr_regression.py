"""Section 4.3 regression: why GFTR needs the stable radix partitioner."""

import numpy as np
import pytest

from repro.gpusim import GPUContext
from repro.joins import demonstrate_gftr_incompatibility
from repro.primitives.bucket_chain import bucket_chain_partition
from repro.primitives.radix_partition import radix_partition


@pytest.fixture
def columns():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 64, 2000).astype(np.int32)
    p1 = rng.integers(0, 10 ** 6, 2000).astype(np.int32)
    p2 = rng.integers(0, 10 ** 6, 2000).astype(np.int32)
    return keys, p1, p2


def test_bucket_chain_layouts_disagree_across_runs(columns):
    keys, p1, p2 = columns
    assert demonstrate_gftr_incompatibility(keys, p1, p2)


def test_radix_partition_layouts_agree_across_runs(columns):
    """The property PHJ-OM relies on: run-to-run determinism."""
    keys, p1, p2 = columns
    ctx_a = GPUContext(seed=1)
    ctx_b = GPUContext(seed=2)
    run_a = radix_partition(ctx_a, keys, [p1, p2], total_bits=6)
    run_b = radix_partition(ctx_b, keys, [p1, p2], total_bits=6)
    assert np.array_equal(run_a.payloads[0], run_b.payloads[0])
    assert np.array_equal(run_a.payloads[1], run_b.payloads[1])


def test_independent_column_partitions_stay_aligned_with_radix(columns):
    """Partitioning (k, c1) and (k, c2) separately — Algorithm 1's lazy
    transforms — must reconstruct the same tuples row by row."""
    keys, p1, p2 = columns
    run1 = radix_partition(GPUContext(seed=1), keys, [p1], total_bits=6)
    run2 = radix_partition(GPUContext(seed=2), keys, [p2], total_bits=6)
    # Row i of both runs must come from the same original tuple: check
    # via a fingerprint relation between p1 and p2.
    original_pairs = {(int(a), int(b)) for a, b in zip(p1, p2)}
    reconstructed = set(zip(run1.payloads[0].tolist(), run2.payloads[0].tolist()))
    assert reconstructed == original_pairs


def test_independent_column_partitions_misalign_with_bucket_chain(columns):
    """The same composition over bucket chains corrupts tuples."""
    keys, p1, p2 = columns
    run1 = bucket_chain_partition(GPUContext(seed=1), keys, [p1], total_bits=6)
    run2 = bucket_chain_partition(GPUContext(seed=2), keys, [p2], total_bits=6)
    original_pairs = {(int(a), int(b)) for a, b in zip(p1, p2)}
    reconstructed = set(zip(run1.payloads[0].tolist(), run2.payloads[0].tolist()))
    assert reconstructed != original_pairs
