"""Human-readable per-query trace report.

Reproduces the Table 4 counter layout (total cycles, warp instructions,
cycles per warp instruction, memory read volume, sectors per load
request) *per operator span* of a traced run, followed by the session's
flat counter totals — the text analogue of opening the Chrome trace.
When the run carried a :class:`~repro.faults.FaultPlan`, a recovery
overhead summary breaks the injected faults and their simulated
recovery cost down by mechanism.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from ..gpusim.profiler import aggregate_counters
from .session import ALGORITHM, OPERATOR, TraceSession


def _format_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


#: (report label, counter, is_seconds) rows of the recovery table, in
#: fault-kind order: kernel retry, OOM degradation, link retransmit,
#: device replay, straggler.
_RECOVERY_ROWS = (
    ("kernel faults injected", "faults_injected_kernel", False),
    ("kernel retries", "fault_kernel_retries", False),
    ("kernel retry seconds", "fault_retry_seconds", True),
    ("OOM events", "faults_injected_oom", False),
    ("operators degraded", "degraded_operators", False),
    ("degradation extra passes", "degraded_extra_passes", False),
    ("link failures injected", "faults_injected_link", False),
    ("retransmitted bytes", "fault_retransmit_bytes", False),
    ("retransmit seconds", "fault_retransmit_seconds", True),
    ("device failures injected", "faults_injected_device", False),
    ("superstep replays", "fault_replays", False),
    ("replay seconds", "fault_replay_seconds", True),
    ("stragglers injected", "faults_injected_straggler", False),
    ("straggler seconds", "fault_straggler_seconds", True),
)


def recovery_summary(session: TraceSession) -> List[str]:
    """Recovery-overhead table lines, empty when no faults fired.

    Shows every nonzero fault/recovery counter plus the total simulated
    recovery time and its share of the session clock — the cost of
    surviving the injected fault plan.
    """
    from ..faults.plan import FAULT_COUNTERS

    metrics = session.metrics
    if not any(metrics.value(counter) for counter in FAULT_COUNTERS):
        return []
    lines = ["", "-- recovery overhead --"]
    recovery_seconds = 0.0
    for label, counter, is_seconds in _RECOVERY_ROWS:
        value = metrics.value(counter)
        if not value:
            continue
        if is_seconds:
            recovery_seconds += value
            lines.append(f"   {label:36s} {value * 1e3:.4f} ms")
        else:
            lines.append(f"   {label:36s} {_format_value(value)}")
    lines.append(
        f"   {'total recovery seconds':36s} {recovery_seconds * 1e3:.4f} ms"
    )
    total = session.total_seconds
    if total > 0:
        lines.append(
            f"   {'recovery share of session clock':36s} "
            f"{recovery_seconds / total:.1%}"
        )
    return lines


def per_operator_report(session: TraceSession) -> str:
    """Render Table-4-style counters for each operator of the session."""
    lines: List[str] = [f"== trace report: {session.name} =="]
    lines.append(
        f"simulated total: {session.total_seconds * 1e3:.4f} ms, "
        f"{len(session.kernel_events())} kernels"
    )

    spans = session.spans(category=OPERATOR)
    if not spans:  # bare algorithm runs outside a query plan
        spans = session.spans(category=ALGORITHM)
    for index, span in spans:
        kernels = session.kernels_under(index)
        lines.append("")
        lines.append(
            f"-- {span.name} ({span.duration_s * 1e3:.4f} ms, "
            f"{len(kernels)} kernels) --"
        )
        if not kernels:
            lines.append("   (no kernels)")
            continue
        counters = aggregate_counters((e.record.stats, e.cycles) for e in kernels)
        for label, value in counters.as_table_rows():
            lines.append(f"   {label:36s} {_format_value(value)}")
        phases = {}
        for event in kernels:
            phase = str(event.args.get("phase") or "other")
            phases[phase] = phases.get(phase, 0.0) + event.duration_s
        breakdown = ", ".join(f"{p}={s * 1e3:.4f}ms" for p, s in phases.items())
        lines.append(f"   phases: {breakdown}")

    lines.append("")
    lines.append("-- session counters --")
    for name, value in session.metrics.rows():
        lines.append(f"   {name:36s} {_format_value(value)}")
    lines.extend(recovery_summary(session))
    return "\n".join(lines)


def write_report(session: TraceSession, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(per_operator_report(session) + "\n")
    return path
