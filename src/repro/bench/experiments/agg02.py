"""agg02: grouped aggregation under key skew.

Zipf-skewed group keys over a mid-size group domain.  Skew concentrates
folds on hot accumulators: the global hash table serializes on atomic
contention while the partitioned strategy stays flat (its partition pass
is balanced by construction, like RADIX-PARTITION in Figure 14).
"""

from __future__ import annotations

from ...aggregation.base import AggSpec
from ...aggregation.planner import make_groupby_algorithm
from ...workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 27
GROUP_FRACTION = 2 ** -8
ZIPF_FACTORS = (0.0, 0.5, 1.0, 1.5, 1.75)
ALGORITHMS = ("HASH-AGG", "SORT-AGG", "PART-AGG")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    groups = max(4, int(rows * GROUP_FRACTION))
    result = ExperimentResult(
        experiment_id="agg02",
        title="Grouped aggregation under Zipf-skewed keys (total ms)",
        headers=["zipf"] + list(ALGORITHMS) + ["winner"],
    )
    part_times = {}
    for zipf in ZIPF_FACTORS:
        keys, values = generate_groupby_workload(
            GroupByWorkloadSpec(
                rows=rows, groups=groups, value_columns=1,
                zipf_factor=zipf, seed=seed,
            )
        )
        times = {}
        for name in ALGORITHMS:
            res = make_groupby_algorithm(name).group_by(
                keys, values, [AggSpec("v1", "sum")], device=setup.device, seed=seed
            )
            times[name] = res.total_seconds * 1e3
        part_times[zipf] = times["PART-AGG"]
        result.add_row(zipf, *[times[a] for a in ALGORITHMS],
                       min(times, key=times.get))
    result.findings["part_agg_flatness"] = (
        part_times[ZIPF_FACTORS[-1]] / part_times[0.0]
    )
    return result
