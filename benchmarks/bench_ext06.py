"""ext06: serving throughput over concurrent streams and caches.

Regenerates the experiment table into ``bench_results/ext06.txt``.
Run: ``pytest benchmarks/bench_ext06.py --benchmark-only -s``
"""

from repro.bench.experiments import ext06

from _common import SWEEP_SCALE, run_and_report


def test_ext06(benchmark):
    result = run_and_report(benchmark, ext06.run, SWEEP_SCALE)
    assert result.findings["results_bit_identical_all_paths"] == 1.0
    assert result.findings["throughput_gain_at_4_streams"] > 1.0
    assert result.findings["caching_speedup_at_same_streams"] > 1.0
    assert result.findings["open_loop_backpressure_rejections"] > 0
    assert result.findings["faulted_queries_all_complete"] == 1.0
