"""ext04: scale-out sweep across simulated devices.

Regenerates the experiment table into ``bench_results/ext04.txt``.
Run: ``pytest benchmarks/bench_ext04.py --benchmark-only -s``
"""

from repro.bench.experiments import ext04

from _common import SWEEP_SCALE, run_and_report


def test_ext04(benchmark):
    result = run_and_report(benchmark, ext04.run, SWEEP_SCALE)
    assert result.findings["results_bit_identical_all_points"] == 1.0
    assert result.findings["one_device_cluster_matches_single"] == 1.0
    assert result.findings["join_nvlink_speedup_at_max"] > 1.0
