"""abl03: radix-partition fan-out sweep.

Forces the PHJ-OM partition fan-out from 4 to 16 bits.  Too few bits
leave build partitions larger than the shared-memory hash table, so the
probe side is re-streamed per sub-partition (block-nested-loop); too
many bits add RADIX-PARTITION passes (every 8 bits = one more pass per
column pair).  The derived setting should sit at or near the optimum.
"""

from __future__ import annotations

from ...joins.base import JoinConfig
from ...joins.phj import derive_partition_bits
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup, run_algorithm

PAPER_ROWS = 1 << 27
BIT_SETTINGS = (4, 8, 12, 16)


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS),
        s_rows=setup.rows(2 * PAPER_ROWS),
        r_payload_columns=2,
        s_payload_columns=2,
        seed=seed,
    )
    r, s = generate_join_workload(spec)
    derived = derive_partition_bits(r.num_rows, setup.config.tuples_per_partition)

    result = ExperimentResult(
        experiment_id="abl03",
        title="Partition fan-out sweep (PHJ-OM)",
        headers=["bits", "passes", "transform_ms", "match_ms", "total_ms"],
    )
    times = {}
    for bits in sorted(set(BIT_SETTINGS) | {derived}):
        cfg = JoinConfig(
            tuples_per_partition=setup.config.tuples_per_partition,
            bucket_tuples=setup.config.bucket_tuples,
            partition_bits=bits,
        )
        res = run_algorithm("PHJ-OM", r, s, setup, config=cfg)
        times[bits] = res.total_seconds
        result.add_row(
            f"{bits}{' (derived)' if bits == derived else ''}",
            -(-bits // 8),
            res.phase_seconds.get("transform", 0.0) * 1e3,
            res.phase_seconds.get("match", 0.0) * 1e3,
            res.total_seconds * 1e3,
        )
    best_bits = min(times, key=times.get)
    result.findings["derived_bits"] = float(derived)
    result.findings["best_bits"] = float(best_bits)
    result.findings["derived_regret"] = times[derived] / times[best_bits] - 1.0
    return result
