"""Figure 16: sequences of joins.

Regenerates the experiment table into ``bench_results/fig16.txt``.
Run: ``pytest benchmarks/bench_fig16.py --benchmark-only -s``
"""

from repro.bench.experiments import fig16

from _common import SWEEP_SCALE, run_and_report


def test_fig16(benchmark):
    result = run_and_report(benchmark, fig16.run, SWEEP_SCALE)
    assert result.findings["advantage_grows"] == 1.0
