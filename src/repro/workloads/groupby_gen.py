"""Synthetic grouped-aggregation workloads.

Evaluation axes mirror the join microbenchmarks: group cardinality
(the aggregation analogue of the match ratio), key skew, number of
value columns (the analogue of payload width), and data types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import WorkloadError
from ..relational.types import INT32, ColumnType, column_type
from .zipf import sample_zipf


@dataclass
class GroupByWorkloadSpec:
    """Parameters of a synthetic aggregation workload."""

    rows: int
    groups: int
    value_columns: int = 1
    key_type: ColumnType = INT32
    value_type: ColumnType = INT32
    zipf_factor: float = 0.0
    seed: int = 0

    def validate(self) -> None:
        if self.rows <= 0:
            raise WorkloadError("rows must be positive")
        if self.groups <= 0:
            raise WorkloadError("groups must be positive")
        if self.value_columns < 0:
            raise WorkloadError("value_columns must be >= 0")
        if self.zipf_factor < 0:
            raise WorkloadError("zipf_factor must be >= 0")


def generate_groupby_workload(
    spec: GroupByWorkloadSpec,
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Materialize ``(keys, value columns)`` for a workload spec.

    Keys are drawn uniformly (or Zipf-skewed) from ``[0, groups)``; with
    skew, low-rank groups dominate just as hot foreign keys do in the
    join study.
    """
    spec.validate()
    rng = np.random.default_rng(spec.seed)
    key_t = column_type(spec.key_type)
    val_t = column_type(spec.value_type)
    keys = sample_zipf(spec.groups, spec.rows, spec.zipf_factor, rng).astype(key_t.dtype)
    values = {
        f"v{i + 1}": rng.integers(0, 1 << 16, spec.rows).astype(val_t.dtype)
        for i in range(spec.value_columns)
    }
    return keys, values
