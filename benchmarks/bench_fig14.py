"""Figure 14: effect of foreign-key skewness.

Regenerates the experiment table into ``bench_results/fig14.txt``.
Run: ``pytest benchmarks/bench_fig14.py --benchmark-only -s``
"""

from repro.bench.experiments import fig14

from _common import SWEEP_SCALE, run_and_report


def test_fig14(benchmark):
    result = run_and_report(benchmark, fig14.run, SWEEP_SCALE)
    assert result.findings["phj_om_always_best"] == 1.0
