"""KernelStats invariants and merging."""

import pytest

from repro.gpusim.kernel import KernelStats


class TestValidate:
    def test_defaults_valid(self):
        KernelStats(name="k").validate()

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="seq_read_bytes"):
            KernelStats(name="k", seq_read_bytes=-1).validate()

    def test_cold_exceeding_touches_rejected(self):
        with pytest.raises(ValueError, match="cold sectors"):
            KernelStats(
                name="k", random_sector_touches=5, random_cold_sectors=6
            ).validate()

    def test_conflict_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="atomic_conflict_factor"):
            KernelStats(name="k", atomic_conflict_factor=0.5).validate()


class TestDerived:
    def test_total_seq_bytes(self):
        stats = KernelStats(name="k", seq_read_bytes=10, seq_write_bytes=5)
        assert stats.total_seq_bytes == 15

    def test_sectors_per_request(self):
        stats = KernelStats(name="k", random_requests=4, random_sector_touches=40)
        assert stats.sectors_per_request == 10.0

    def test_sectors_per_request_zero_requests(self):
        assert KernelStats(name="k").sectors_per_request == 0.0


class TestMerge:
    def test_merge_adds_counters(self):
        a = KernelStats(name="a", items=10, seq_read_bytes=100, launches=1)
        b = KernelStats(name="b", items=20, seq_write_bytes=50, launches=2)
        merged = a.merged_with(b, name="ab")
        assert merged.name == "ab"
        assert merged.items == 30
        assert merged.seq_read_bytes == 100
        assert merged.seq_write_bytes == 50
        assert merged.launches == 3

    def test_merge_weights_footprint_by_touches(self):
        a = KernelStats(
            name="a", random_sector_touches=100, locality_footprint_bytes=10.0
        )
        b = KernelStats(
            name="b", random_sector_touches=300, locality_footprint_bytes=50.0
        )
        merged = a.merged_with(b)
        assert merged.locality_footprint_bytes == pytest.approx(40.0)

    def test_merge_weights_conflicts_by_atomics(self):
        a = KernelStats(name="a", atomic_ops=100, atomic_conflict_factor=1.0)
        b = KernelStats(name="b", atomic_ops=100, atomic_conflict_factor=3.0)
        merged = a.merged_with(b)
        assert merged.atomic_conflict_factor == pytest.approx(2.0)

    def test_merge_without_random_traffic(self):
        merged = KernelStats(name="a").merged_with(KernelStats(name="b"))
        assert merged.locality_footprint_bytes == 0.0
        assert merged.atomic_conflict_factor == 1.0
