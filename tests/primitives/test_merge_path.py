"""Merge Path bounds and the single-pass PK-FK optimization."""

import numpy as np
import pytest

from repro.gpusim import A100, GPUContext
from repro.primitives.merge_path import lower_bounds, match_bounds, upper_bounds


@pytest.fixture
def ctx():
    return GPUContext(device=A100)


class TestBounds:
    def test_lower_bounds(self, ctx):
        r = np.array([1, 3, 5], dtype=np.int32)
        s = np.array([0, 3, 6], dtype=np.int32)
        assert list(lower_bounds(ctx, r, s)) == [0, 1, 3]

    def test_upper_bounds(self, ctx):
        r = np.array([1, 3, 3, 5], dtype=np.int32)
        s = np.array([3, 5], dtype=np.int32)
        assert list(upper_bounds(ctx, r, s)) == [3, 4]

    def test_match_bounds_unique_single_pass(self, ctx):
        r = np.array([1, 3, 5], dtype=np.int32)
        s = np.array([3, 4, 5], dtype=np.int32)
        lo, hi = match_bounds(ctx, r, s, unique_build_keys=True)
        counts = hi - lo
        assert list(counts) == [1, 0, 1]
        assert ctx.timeline.kernel_count() == 1  # one Merge Path pass

    def test_match_bounds_duplicates_two_passes(self, ctx):
        r = np.array([2, 2, 2, 7], dtype=np.int32)
        s = np.array([2, 7, 9], dtype=np.int32)
        lo, hi = match_bounds(ctx, r, s, unique_build_keys=False)
        assert list(hi - lo) == [3, 1, 0]
        assert ctx.timeline.kernel_count() == 2  # lower + upper

    def test_empty_build_side(self, ctx):
        lo, hi = match_bounds(
            ctx, np.empty(0, dtype=np.int32), np.array([1, 2], dtype=np.int32),
            unique_build_keys=True,
        )
        assert list(hi - lo) == [0, 0]

    def test_empty_probe_side(self, ctx):
        lo, hi = match_bounds(
            ctx, np.array([1], dtype=np.int32), np.empty(0, dtype=np.int32),
            unique_build_keys=True,
        )
        assert lo.size == 0 and hi.size == 0

    def test_merge_pass_streams_both_inputs(self, ctx):
        r = np.arange(1000, dtype=np.int32)
        s = np.arange(2000, dtype=np.int32)
        lower_bounds(ctx, r, s)
        stats = ctx.timeline.records()[-1].stats
        assert stats.seq_read_bytes == r.nbytes + s.nbytes

    def test_unique_bounds_match_nonunique_on_unique_data(self, ctx):
        rng = np.random.default_rng(0)
        r = np.unique(rng.integers(0, 10000, 500)).astype(np.int32)
        s = np.sort(rng.integers(0, 10000, 800)).astype(np.int32)
        lo1, hi1 = match_bounds(ctx, r, s, unique_build_keys=True)
        lo2, hi2 = match_bounds(ctx, r, s, unique_build_keys=False)
        assert np.array_equal(hi1 - lo1, hi2 - lo2)
