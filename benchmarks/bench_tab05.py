"""Table 5: peak memory usage.

Regenerates the experiment table into ``bench_results/tab05.txt``.
Run: ``pytest benchmarks/bench_tab05.py --benchmark-only -s``
"""

from repro.bench.experiments import tab05

from _common import SWEEP_SCALE, run_and_report


def test_tab05(benchmark):
    result = run_and_report(benchmark, tab05.run, SWEEP_SCALE)
    assert result.findings["om_over_um_worst_ratio"] < 1.15
