"""Columnar relations, physical types, dictionary encoding, references."""

from .dictionary import DictionaryEncoder
from .keys import MAX_PACKED_BITS, PackedKeyCodec, pack_columns
from .relation import Relation
from .types import INT32, INT64, ColumnType, column_type, id_dtype
from .validation import (
    assert_join_equal,
    join_match_indices,
    reference_groupby,
    reference_join,
)

__all__ = [
    "ColumnType",
    "DictionaryEncoder",
    "MAX_PACKED_BITS",
    "PackedKeyCodec",
    "pack_columns",
    "INT32",
    "INT64",
    "Relation",
    "assert_join_equal",
    "column_type",
    "id_dtype",
    "join_match_indices",
    "reference_groupby",
    "reference_join",
]
