"""Fault matrix: fixed seeds x every injection mechanism vs the oracle.

The framework's acceptance bar (run by CI as its own matrix job): for
any fixed fault seed with every rate nonzero, join, group-by, executor
and cluster results must be bit-identical to the fault-free run —
joins up to row order when degradation re-chunks them, group-bys and
query outputs exactly.
"""

import numpy as np
import pytest

from repro.aggregation import AggSpec
from repro.cluster import sharded_group_by, sharded_join
from repro.faults import FaultPlan, resilient_group_by, resilient_join
from repro.gpusim import A100
from repro.query import Aggregate, Join, Scan, execute
from repro.workloads import JoinWorkloadSpec, generate_join_workload
from repro.workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload

FAULT_SEEDS = (3, 17, 123)
DEVICE = A100.with_overrides(global_mem_bytes=1 << 20)


def harsh_plan(seed: int) -> FaultPlan:
    """Every single-device and cluster mechanism armed at once."""
    return FaultPlan(
        seed=seed,
        kernel_fault_rate=0.2,
        capacity_frac=0.05,
        link_failure_rate=0.3,
        straggler_rate=0.3,
        device_failure_rate=0.2,
    )


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=4096, s_rows=8192, r_payload_columns=2,
                         s_payload_columns=2, seed=0)
    )


@pytest.fixture(scope="module")
def groupby_workload():
    spec = GroupByWorkloadSpec(rows=1 << 14, groups=2048, value_columns=2, seed=0)
    keys, values = generate_groupby_workload(spec)
    return keys, values, [AggSpec("v1", "sum"), AggSpec("v2", "max")]


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
def test_join_matches_fault_free_oracle(relations, fault_seed):
    r, s = relations
    oracle = resilient_join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0)
    res = resilient_join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0,
                         fault_plan=harsh_plan(fault_seed))
    assert res.degraded  # capacity_frac=0.05 forces the OOC re-plan
    assert res.output.equals_unordered(oracle.output)


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
def test_group_by_matches_fault_free_oracle(groupby_workload, fault_seed):
    keys, values, aggs = groupby_workload
    oracle = resilient_group_by(keys, dict(values), aggs,
                                algorithm="HASH-AGG", device=DEVICE, seed=0)
    res = resilient_group_by(keys, dict(values), aggs,
                             algorithm="HASH-AGG", device=DEVICE, seed=0,
                             fault_plan=harsh_plan(fault_seed))
    assert set(res.output) == set(oracle.output)
    for column in oracle.output:
        np.testing.assert_array_equal(res.output[column],
                                      oracle.output[column])


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
def test_executor_query_matches_fault_free_oracle(relations, fault_seed):
    r, s = relations
    plan = Aggregate(Join(Scan(r), Scan(s)), "r1", (AggSpec("s1", "sum"),))
    oracle = execute(plan, device=DEVICE, seed=0)
    res = execute(plan, device=DEVICE, seed=0,
                  fault_plan=harsh_plan(fault_seed))
    assert list(res.output) == list(oracle.output)
    for column, array in oracle.output.items():
        np.testing.assert_array_equal(res.output[column], array), column


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
def test_sharded_join_matches_fault_free_oracle(relations, fault_seed):
    r, s = relations
    plan = harsh_plan(fault_seed).without_capacity()
    oracle = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0)
    res = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0,
                       fault_plan=plan)
    for column, array in oracle.output.columns().items():
        np.testing.assert_array_equal(res.output.column(column), array)


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
def test_sharded_group_by_matches_fault_free_oracle(groupby_workload, fault_seed):
    keys, values, aggs = groupby_workload
    plan = harsh_plan(fault_seed).without_capacity()
    oracle = sharded_group_by(keys, values, aggs, algorithm="HASH-AGG",
                              num_devices=4, seed=0)
    res = sharded_group_by(keys, values, aggs, algorithm="HASH-AGG",
                           num_devices=4, seed=0, fault_plan=plan)
    for column in oracle.output:
        np.testing.assert_array_equal(res.output[column],
                                      oracle.output[column])
