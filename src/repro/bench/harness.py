"""Experiment harness: scaled setups, runners, and result tables.

Every benchmark in ``benchmarks/`` drives one experiment module in
``repro.bench.experiments``; each experiment reproduces one table or
figure of the paper (see DESIGN.md's per-experiment index).

Scaling convention: the paper's microbenchmarks join 2^27-tuple
relations on a physical A100.  We run the same experiments at
``DEFAULT_SCALE`` of that size with the device *geometry* (caches,
shared memory, launch overhead) scaled identically — see
:func:`repro.gpusim.device.scaled_device` — so every regime boundary
(L2 residency, partition pass counts, shared-memory table sizes) sits
where it does at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..gpusim.device import A100, CPU_SERVER, DeviceSpec, scaled_device
from ..joins.base import JoinConfig, JoinResult
from ..joins.planner import make_algorithm
from ..obs import TraceSession, export_session
from ..relational.relation import Relation

#: Default workload scale relative to the paper (2^27 -> 2^18 tuples).
DEFAULT_SCALE = 2.0 ** -9

#: The paper's default microbenchmark row count.
PAPER_ROWS = 1 << 27

#: Shared-memory co-partition target at paper scale (Section 4.3).
PAPER_TUPLES_PER_PARTITION = 4096


@dataclass
class Setup:
    """A scaled device + matching join configuration."""

    device: DeviceSpec
    cpu_device: DeviceSpec
    config: JoinConfig
    scale: float

    def rows(self, paper_rows: int) -> int:
        """Scale a paper-scale row count (>= 64 rows)."""
        return max(64, int(paper_rows * self.scale))


def make_setup(
    scale: float = DEFAULT_SCALE,
    device: DeviceSpec = A100,
    config_overrides: Optional[dict] = None,
) -> Setup:
    """Build the standard scaled experiment setup."""
    tuples = max(32, int(PAPER_TUPLES_PER_PARTITION * scale))
    overrides = dict(tuples_per_partition=tuples, bucket_tuples=tuples)
    overrides.update(config_overrides or {})
    return Setup(
        device=scaled_device(device, scale),
        cpu_device=scaled_device(CPU_SERVER, scale),
        config=JoinConfig(**overrides),
        scale=scale,
    )


def run_algorithm(
    name: str,
    r: Relation,
    s: Relation,
    setup: Setup,
    seed: int = 7,
    config: Optional[JoinConfig] = None,
) -> JoinResult:
    """Run one named join algorithm under a setup."""
    algorithm = make_algorithm(name, config or setup.config)
    device = setup.cpu_device if name == "CPU" else setup.device
    return algorithm.join(r, s, device=device, seed=seed)


def run_traced(runner: Callable, name: str, trace_dir) -> tuple:
    """Run ``runner()`` under a :class:`TraceSession` and export it.

    Writes ``<name>.trace.json`` (Chrome trace / Perfetto),
    ``<name>.counters.csv`` and ``<name>.report.txt`` under *trace_dir*.
    Returns ``(runner result, session)``.  The shared implementation
    behind ``python -m repro.bench --trace`` and the benchmarks' pytest
    ``--trace`` option.
    """
    with TraceSession(name) as session:
        result = runner()
    export_session(session, Path(trace_dir), name)
    return result, session


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class ExperimentResult:
    """A rendered reproduction of one paper table/figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: named scalar findings (speedups, fractions) for tests/EXPERIMENTS.md
    findings: Dict[str, float] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Plain-text table in the paper's row/series layout."""
        widths = [len(h) for h in self.headers]
        formatted_rows = []
        for row in self.rows:
            cells = [_format_cell(v) for v in row]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            formatted_rows.append(cells)
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in formatted_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        for key, value in self.findings.items():
            lines.append(f"finding: {key} = {_format_cell(value)}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def phase_columns(result: JoinResult) -> List[float]:
    """[transform, match, materialize] milliseconds of a join result."""
    return [
        result.phase_seconds.get("transform", 0.0) * 1e3,
        result.phase_seconds.get("match", 0.0) * 1e3,
        result.phase_seconds.get("materialize", 0.0) * 1e3,
    ]


def throughput_mtuples(result) -> float:
    """Throughput in million tuples per (simulated) second."""
    return result.throughput_tuples_per_s / 1e6
