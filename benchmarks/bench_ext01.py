"""ext01: out-of-core joins across the memory boundary.

Regenerates the experiment table into ``bench_results/ext01.txt``.
Run: ``pytest benchmarks/bench_ext01.py --benchmark-only -s``
"""

from repro.bench.experiments import ext01

from _common import REPORT_SCALE, run_and_report


def test_ext01(benchmark):
    result = run_and_report(benchmark, ext01.run, REPORT_SCALE)
    assert result.findings["in_memory_over_smallest_budget"] > 1.2
