"""FaultPlan / FaultInjector: determinism, validation, site isolation."""

import zlib

import pytest

from repro.errors import FaultPlanError
from repro.faults import FaultPlan, site_seed


class TestValidation:
    @pytest.mark.parametrize(
        "field", ["kernel_fault_rate", "link_failure_rate",
                  "straggler_rate", "device_failure_rate"]
    )
    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_rates_must_be_in_unit_interval(self, field, rate):
        with pytest.raises(FaultPlanError, match=field):
            FaultPlan(**{field: rate})

    @pytest.mark.parametrize("frac", [0.0, -0.5, 1.5])
    def test_capacity_frac_range(self, frac):
        with pytest.raises(FaultPlanError, match="capacity_frac"):
            FaultPlan(capacity_frac=frac)

    def test_straggler_slowdown_at_least_one(self):
        with pytest.raises(FaultPlanError, match="straggler_slowdown"):
            FaultPlan(straggler_slowdown=0.5)

    def test_max_retries_at_least_one(self):
        with pytest.raises(FaultPlanError, match="max_retries"):
            FaultPlan(max_retries=0)

    def test_negative_backoff_rejected(self):
        with pytest.raises(FaultPlanError, match="backoff_base_s"):
            FaultPlan(backoff_base_s=-1e-6)

    def test_default_plan_injects_nothing(self):
        assert not FaultPlan().injects_anything

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kernel_fault_rate": 0.1},
            {"capacity_frac": 0.5},
            {"link_failure_rate": 0.1},
            {"straggler_rate": 0.1},
            {"device_failure_rate": 0.1},
        ],
    )
    def test_any_rate_makes_it_inject(self, kwargs):
        assert FaultPlan(**kwargs).injects_anything


class TestDeterminism:
    def test_site_seed_is_crc32_mix(self):
        # Platform-independent by construction: crc32 is stable.
        assert site_seed(0, "gpu") == zlib.crc32(b"gpu")
        assert site_seed(3, "gpu") == 3 ^ zlib.crc32(b"gpu")

    def test_same_seed_same_site_same_draws(self):
        # A fresh injector from an equal plan replays the stream exactly.
        a = FaultPlan(seed=42, kernel_fault_rate=0.5).injector("gpu0")
        b = FaultPlan(seed=42, kernel_fault_rate=0.5).injector("gpu0")
        assert [a.kernel_faults(f"k{i}") for i in range(20)] == [
            b.kernel_faults(f"k{i}") for i in range(20)
        ]

    def test_different_sites_draw_independent_streams(self):
        plan = FaultPlan(seed=42, kernel_fault_rate=0.5)
        a = plan.injector("gpu0")
        b = plan.injector("gpu1")
        stream_a = [a.kernel_faults(f"k{i}") for i in range(50)]
        stream_b = [b.kernel_faults(f"k{i}") for i in range(50)]
        assert stream_a != stream_b  # overwhelmingly likely at rate 0.5

    def test_draws_at_one_site_do_not_perturb_another(self):
        plan = FaultPlan(seed=7, kernel_fault_rate=0.5)
        solo = plan.injector("gpu1")
        expected = [solo.kernel_faults(f"k{i}") for i in range(20)]
        noisy_other = plan.injector("gpu0")
        for i in range(100):
            noisy_other.kernel_faults(f"noise{i}")
        fresh = plan.injector("gpu1")
        assert [fresh.kernel_faults(f"k{i}") for i in range(20)] == expected

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, kernel_fault_rate=0.5).injector("gpu")
        b = FaultPlan(seed=2, kernel_fault_rate=0.5).injector("gpu")
        assert [a.kernel_faults(f"k{i}") for i in range(50)] != [
            b.kernel_faults(f"k{i}") for i in range(50)
        ]


class TestInjectorBehavior:
    def test_zero_rate_never_fires(self):
        injector = FaultPlan(seed=0).injector("gpu")
        assert all(injector.kernel_faults(f"k{i}") == 0 for i in range(100))
        assert injector.events == []
        assert injector.counts == {}

    def test_failures_capped_at_max_retries(self):
        plan = FaultPlan(seed=0, kernel_fault_rate=0.99, max_retries=3)
        injector = plan.injector("gpu")
        draws = [injector.kernel_faults(f"k{i}") for i in range(200)]
        assert max(draws) <= 3
        assert any(draws)  # at 0.99 something must fire

    def test_events_record_site_kind_and_attempts(self):
        plan = FaultPlan(seed=0, kernel_fault_rate=0.9)
        injector = plan.injector("gpu3")
        failures = 0
        name = None
        for i in range(50):
            got = injector.kernel_faults(f"k{i}")
            if got:
                failures, name = got, f"k{i}"
                break
        event = injector.events[0]
        assert event.kind == "kernel"
        assert event.site == "gpu3"
        assert event.detail == name
        assert event.attempts == failures + 1
        assert injector.counts["kernel"] >= 1

    def test_straggler_factor_is_one_or_slowdown(self):
        plan = FaultPlan(seed=0, straggler_rate=0.5, straggler_slowdown=4.0)
        injector = plan.injector("cluster")
        factors = {injector.straggler_factor(f"d{i}") for i in range(100)}
        assert factors == {1.0, 4.0}


class TestPlanArithmetic:
    def test_backoff_is_exponential(self):
        plan = FaultPlan(backoff_base_s=1e-4)
        assert plan.backoff_seconds(0) == 1e-4
        assert plan.backoff_seconds(1) == 2e-4
        assert plan.backoff_seconds(2) == 4e-4

    def test_capacity_bytes_scales_device(self):
        from repro.gpusim import A100

        plan = FaultPlan(capacity_frac=0.25)
        assert plan.capacity_bytes(A100) == int(A100.global_mem_bytes * 0.25)
        assert FaultPlan().capacity_bytes(A100) is None

    def test_without_capacity_strips_only_capacity(self):
        plan = FaultPlan(seed=5, kernel_fault_rate=0.2, capacity_frac=0.1,
                         link_failure_rate=0.3)
        stripped = plan.without_capacity()
        assert stripped.capacity_frac is None
        assert stripped.seed == 5
        assert stripped.kernel_fault_rate == 0.2
        assert stripped.link_failure_rate == 0.3
        no_capacity = FaultPlan(seed=5)
        assert no_capacity.without_capacity() is no_capacity

    def test_plan_is_frozen(self):
        plan = FaultPlan()
        with pytest.raises(Exception):
            plan.seed = 1
