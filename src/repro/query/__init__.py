"""Composable query plans over the library's join/aggregation operators."""

from .executor import QueryExecutor, execute
from .plan import (
    Aggregate,
    Join,
    OperatorTrace,
    Project,
    QueryResult,
    Scan,
    validate_plan,
)

__all__ = [
    "Aggregate",
    "Join",
    "OperatorTrace",
    "Project",
    "QueryExecutor",
    "QueryResult",
    "Scan",
    "execute",
    "validate_plan",
]
