"""Named counters aggregated over a traced run.

The registry mirrors the counter surface of an Nsight capture: most
counters derive mechanically from the :class:`~repro.gpusim.kernel.KernelStats`
records the algorithms already submit (bytes streamed, sector touches,
atomic ops, ...), while a handful of algorithm-level counters
(``partition_passes``, ``hash_table_probe_slots``, ``fusion_credit_s``)
are incremented explicitly through :meth:`GPUContext.count
<repro.gpusim.context.GPUContext.count>` — a no-op when tracing is off.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Counters lifted from every submitted kernel's stats record:
#: (counter name, KernelStats attribute).
STAT_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("kernel_launches", "launches"),
    ("items", "items"),
    ("seq_read_bytes", "seq_read_bytes"),
    ("seq_write_bytes", "seq_write_bytes"),
    ("random_requests", "random_requests"),
    ("random_sector_touches", "random_sector_touches"),
    ("random_cold_sectors", "random_cold_sectors"),
    ("host_transfer_bytes", "host_transfer_bytes"),
    ("atomic_ops", "atomic_ops"),
)


class MetricsRegistry:
    """A flat map of named counters with float/int values."""

    def __init__(self):
        self._counters: Dict[str, float] = {}

    def increment(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def record_max(self, name: str, value: float) -> None:
        """Keep the maximum observed value under *name* (a high-water
        gauge: queue depth, concurrent streams, reserved bytes)."""
        if value > self._counters.get(name, float("-inf")):
            self._counters[name] = value

    def record_kernel_stats(self, stats) -> None:
        """Fold one kernel's traffic description into the counters."""
        for counter, attribute in STAT_COUNTERS:
            value = getattr(stats, attribute)
            if value:
                self.increment(counter, value)

    def value(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def as_dict(self, derived: bool = True) -> Dict[str, float]:
        """All counters (sorted by name), optionally with derived ratios."""
        counters = dict(self._counters)
        if derived:
            counters["bytes_streamed"] = counters.get(
                "seq_read_bytes", 0.0
            ) + counters.get("seq_write_bytes", 0.0)
            requests = counters.get("random_requests", 0.0)
            counters["sectors_per_request"] = (
                counters.get("random_sector_touches", 0.0) / requests
                if requests
                else 0.0
            )
        return dict(sorted(counters.items()))

    def rows(self, derived: bool = True) -> List[Tuple[str, float]]:
        """(name, value) rows for the CSV exporter."""
        return list(self.as_dict(derived=derived).items())

    def merged_with(self, other: "MetricsRegistry") -> "MetricsRegistry":
        merged = MetricsRegistry()
        for source in (self, other):
            for name, value in source._counters.items():
                merged.increment(name, value)
        return merged
