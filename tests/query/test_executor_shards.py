"""Query executor with shards>1: sharded operators, unchanged answers."""

import numpy as np
import pytest

from repro.aggregation import AggSpec
from repro.errors import JoinConfigError
from repro.query import Aggregate, Join, Scan, execute
from repro.workloads import JoinWorkloadSpec, generate_join_workload


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=1024, s_rows=4096, r_payload_columns=2,
                         s_payload_columns=2, seed=21)
    )


@pytest.fixture(scope="module")
def plan(relations):
    r, s = relations
    return Aggregate(
        Join(Scan(r), Scan(s)), "r1", (AggSpec("s1", "sum"),)
    )


def test_invalid_shards_rejected(relations):
    r, s = relations
    with pytest.raises(JoinConfigError, match="shards"):
        execute(Join(Scan(r), Scan(s)), shards=0)


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_plan_matches_unsharded(plan, shards):
    baseline = execute(plan, seed=9, optimize=False)
    sharded = execute(plan, seed=9, shards=shards)
    assert list(sharded.output) == list(baseline.output)
    for column, array in baseline.output.items():
        assert np.array_equal(sharded.output[column], array), column


def test_operator_traces_are_labelled_with_shards(plan):
    result = execute(plan, seed=9, shards=2)
    descriptions = [t.description for t in result.trace]
    assert any("Join[" in d and "x2" in d for d in descriptions)
    assert any("Aggregate[" in d and "x2" in d for d in descriptions)
    # Sharded operators expose their step breakdown as extras.
    join_trace = next(t for t in result.trace if "Join[" in t.description)
    assert "shuffle" in " ".join(join_trace.extras)


def test_fusion_disabled_under_sharding(plan):
    fused = execute(plan, seed=9, shards=1)
    sharded = execute(plan, seed=9, shards=2)
    assert any("Fused" in t.description for t in fused.trace)
    assert not any("Fused" in t.description for t in sharded.trace)


def test_shards_one_is_the_single_device_executor(plan):
    one = execute(plan, seed=9, shards=1, optimize=False)
    base = execute(plan, seed=9, optimize=False)
    assert one.total_seconds == base.total_seconds
    for column, array in base.output.items():
        assert np.array_equal(one.output[column], array)
