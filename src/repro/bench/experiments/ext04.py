"""ext04: scale-out sweep — sharded joins/aggregations on 1..8 devices.

The paper measures a single GPU; this extension asks how its fastest
operators behave when the same workload is hash-sharded across a
simulated multi-GPU cluster (:mod:`repro.cluster`).  Each device count
runs the identical workload: inputs are radix-shuffled on the key over
the interconnect, every device runs the unchanged single-device
algorithm on its shard, and the cluster clock is the max over device
timelines plus shuffle drains.  Results stay bit-identical to the
single-device run at every point of the sweep — the only thing that
changes is simulated time.

The table reports, per (workload, interconnect, devices): total and
shuffle milliseconds, speedup over the 1-device cluster, and scaling
efficiency (speedup / devices).  The expected shape: an all-to-all
shuffle moves ~(N-1)/N of the data, so going 1 -> 2 devices pays the
largest communication bill for the smallest compute split; efficiency
recovers at higher device counts, and the shared PCIe host bridge
(serialized transfers) trails the NVLink point-to-point mesh.

Calibration caveat: the paper publishes no multi-GPU numbers, so unlike
fig*/tab* experiments this sweep has no ground truth to band against —
the findings only assert internal consistency (bit-identical results,
exact 1-device equivalence, NVLink >= PCIe).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ...aggregation.base import AggSpec
from ...cluster import sharded_group_by, sharded_join, write_cluster_trace
from ...joins.planner import make_algorithm
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ...workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 27
PAPER_GROUPS = 1 << 16
JOIN_ALGORITHM = "PHJ-OM"
GROUPBY_ALGORITHM = "HASH-AGG"
INTERCONNECTS = ("nvlink-mesh", "pcie-host")


def _join_outputs_identical(a, b) -> bool:
    """Same rows (shard concatenation permutes join output order)."""
    return a.equals_unordered(b)


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    devices: Sequence[int] = (1, 2, 4, 8),
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="ext04",
        title=f"Scale-out: {JOIN_ALGORITHM} join and {GROUPBY_ALGORITHM} "
        "group-by sharded across simulated devices",
        headers=[
            "workload", "interconnect", "devices",
            "total_ms", "shuffle_ms", "speedup", "efficiency",
        ],
    )

    join_spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS),
        s_rows=setup.rows(PAPER_ROWS),
        r_payload_columns=2,
        s_payload_columns=2,
        seed=seed,
    )
    r, s = generate_join_workload(join_spec)
    groupby_spec = GroupByWorkloadSpec(
        rows=setup.rows(PAPER_ROWS),
        groups=max(64, int(PAPER_GROUPS * scale)),
        value_columns=2,
        seed=seed,
    )
    keys, values = generate_groupby_workload(groupby_spec)
    aggregates = [AggSpec("v1", "sum"), AggSpec("v2", "max")]

    # Plain single-device run: the 1-device cluster must reproduce it.
    single = make_algorithm(JOIN_ALGORITHM, setup.config).join(
        r, s, device=setup.device, seed=seed
    )

    identical = True
    one_device_exact = True
    speedups = {}
    for interconnect in INTERCONNECTS:
        join_baseline = None
        for n in devices:
            res = sharded_join(
                r, s,
                algorithm=JOIN_ALGORITHM,
                num_devices=n,
                interconnect=interconnect,
                device=setup.device,
                config=setup.config,
                seed=seed,
            )
            if join_baseline is None:
                join_baseline = res.total_seconds
                one_device_exact &= n != 1 or (
                    res.total_seconds == single.total_seconds
                )
            identical &= _join_outputs_identical(res.output, single.output)
            speedup = join_baseline / res.total_seconds
            speedups[("join", interconnect, n)] = speedup
            result.add_row(
                "join", interconnect, n,
                res.total_seconds * 1e3, res.shuffle_seconds * 1e3,
                speedup, speedup / n,
            )
            if trace_dir is not None:
                write_cluster_trace(
                    res.cluster,
                    Path(trace_dir) / f"ext04-join-{interconnect}-x{n}.trace.json",
                    name=f"ext04 join {interconnect} x{n}",
                )

        agg_single = None
        agg_baseline = None
        for n in devices:
            res = sharded_group_by(
                keys, values, aggregates,
                algorithm=GROUPBY_ALGORITHM,
                num_devices=n,
                interconnect=interconnect,
                device=setup.device,
                seed=seed,
            )
            if agg_single is None:
                agg_single = res.output
                agg_baseline = res.total_seconds
            identical &= all(
                np.array_equal(res.output[name], agg_single[name])
                for name in agg_single
            )
            speedup = agg_baseline / res.total_seconds
            speedups[("group-by", interconnect, n)] = speedup
            result.add_row(
                "group-by", interconnect, n,
                res.total_seconds * 1e3, res.shuffle_seconds * 1e3,
                speedup, speedup / n,
            )

    max_n = max(devices)
    result.findings["results_bit_identical_all_points"] = float(identical)
    result.findings["one_device_cluster_matches_single"] = float(one_device_exact)
    if max_n > 1:
        result.findings["join_nvlink_speedup_at_max"] = speedups[
            ("join", "nvlink-mesh", max_n)
        ]
        result.findings["nvlink_no_slower_than_pcie"] = float(
            speedups[("join", "nvlink-mesh", max_n)]
            >= speedups[("join", "pcie-host", max_n)] * 0.999
        )
    result.add_note(
        "all-to-all shuffle moves ~(N-1)/N of the input, so N=2 pays the "
        "largest relative communication bill; efficiency recovers with N"
    )
    result.add_note(
        "no published multi-GPU baseline exists for this paper; findings "
        "assert internal consistency only (see EXPERIMENTS.md, Scale-out)"
    )
    return result
