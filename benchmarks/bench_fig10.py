"""Figure 10: time breakdown of wide joins.

Regenerates the experiment table into ``bench_results/fig10.txt``.
Run: ``pytest benchmarks/bench_fig10.py --benchmark-only -s``
"""

from repro.bench.experiments import fig10

from _common import SWEEP_SCALE, run_and_report


def test_fig10(benchmark):
    result = run_and_report(benchmark, fig10.run, SWEEP_SCALE)
    assert result.findings["phj_om_speedup_over_phj_um"] > 1.7
