"""Simulated device memory with peak tracking.

The paper dedicates Section 4.4 (Tables 1 and 2) and Table 5 to the
*peak memory consumption* of the GFUR vs. GFTR patterns.  To reproduce
that analysis, all device-resident arrays in this library are allocated
through a :class:`DeviceMemory` allocator that tracks current and peak
usage, supports scoped phase accounting, and raises
:class:`~repro.errors.DeviceOutOfMemoryError` when the simulated device
capacity is exceeded.

Arrays are real numpy arrays wrapped in :class:`DeviceArray`; freeing a
DeviceArray releases its simulated bytes (the numpy buffer is dropped so
Python can reclaim host memory too).
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import AllocationError, DeviceOutOfMemoryError


class BufferPool:
    """Recycles the *host* ndarrays backing freed device arrays.

    At paper scale (2^27 tuples) joins and group-bys allocate and free
    the same handful of array shapes once per operator; materializing a
    fresh numpy buffer each time dominates host wall-clock.  The pool
    keeps freed backing buffers keyed by ``(shape, dtype)`` and hands
    them back to subsequent allocations.

    Only *simulation-host* cost changes: every allocation served from
    the pool still goes through :meth:`DeviceMemory._register`, so
    ``alloc_count``, current/peak bytes and OOM checks are identical
    with and without pooling.  A freed buffer is recycled only when the
    :class:`DeviceArray` held the sole reference (checked by refcount)
    and owns its memory outright — adopted views or aliased arrays are
    dropped as before.

    ``sink`` mirrors the counters into an observability session as
    ``pool.*`` metrics (any object with ``count(name, value)`` and a
    ``metrics.record_max`` — duck-typed so gpusim stays import-free of
    obs).  :class:`~repro.gpusim.context.GPUContext` wires its trace
    session in automatically.
    """

    def __init__(self, max_bytes: int = 8 << 30, sink=None):
        self.max_bytes = int(max_bytes)
        self.sink = sink
        self.pooled_bytes = 0
        self.hits = 0
        self.misses = 0
        self.recycled = 0
        self.dropped = 0
        self._buffers: Dict[Tuple[tuple, str], List[np.ndarray]] = {}

    def _emit(self, name: str, value: float = 1.0) -> None:
        if self.sink is not None:
            self.sink.count(name, value)

    def take(self, shape, dtype) -> Optional[np.ndarray]:
        """A pooled buffer of exactly ``(shape, dtype)``, or ``None``."""
        shape_t = tuple(shape) if isinstance(shape, (tuple, list)) else (int(shape),)
        key = (shape_t, np.dtype(dtype).str)
        stack = self._buffers.get(key)
        if stack:
            data = stack.pop()
            self.pooled_bytes -= data.nbytes
            self.hits += 1
            self._emit("pool.take_hit")
            return data
        self.misses += 1
        self._emit("pool.take_miss")
        return None

    def give(self, data: np.ndarray) -> bool:
        """Offer a buffer back to the pool; False when dropped (pool full)."""
        if self.pooled_bytes + data.nbytes > self.max_bytes:
            self.dropped += 1
            self._emit("pool.dropped")
            return False
        key = (data.shape, data.dtype.str)
        self._buffers.setdefault(key, []).append(data)
        self.pooled_bytes += data.nbytes
        self.recycled += 1
        self._emit("pool.recycled")
        if self.sink is not None:
            self.sink.metrics.record_max("pool.pooled_bytes_peak", self.pooled_bytes)
        return True

    def clear(self) -> int:
        """Drop all pooled buffers; returns the bytes released."""
        released = self.pooled_bytes
        self._buffers.clear()
        self.pooled_bytes = 0
        if released:
            self._emit("pool.cleared_bytes", released)
        return released


class DeviceArray:
    """A device-resident array handle.

    Wraps a numpy array (``.data``) plus the accounting hooks of the
    allocator that produced it.  The underlying numpy semantics are real;
    only the residency accounting is simulated.
    """

    __slots__ = ("_data", "_allocator", "label", "_freed", "nbytes")

    def __init__(self, data: np.ndarray, allocator: "DeviceMemory", label: str):
        self._data = data
        self._allocator = allocator
        self.label = label
        self._freed = False
        self.nbytes = int(data.nbytes)

    @property
    def data(self) -> np.ndarray:
        if self._freed:
            raise AllocationError(f"use after free of device array {self.label!r}")
        return self._data

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Release this array's simulated bytes back to the device."""
        self._allocator.free(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._freed else f"{self.nbytes} B"
        return f"DeviceArray({self.label!r}, {state})"


class MemoryReservation:
    """A bytes-only claim on a :class:`DeviceMemory` with no backing array.

    The serving layer's admission controller reserves each admitted
    query's estimated working set up front, so concurrent queries cannot
    collectively over-commit the device.  A reservation participates in
    capacity checks, current/peak accounting and the live-allocation
    listing exactly like a :class:`DeviceArray`, but never materializes
    host memory (reserving a simulated 40 GB costs nothing real).
    """

    __slots__ = ("nbytes", "label", "_allocator", "_freed")

    def __init__(self, allocator: "DeviceMemory", nbytes: int, label: str):
        self._allocator = allocator
        self.nbytes = int(nbytes)
        self.label = label
        self._freed = False

    @property
    def freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Release the reserved bytes back to the device."""
        self._allocator.release(self)

    def __enter__(self) -> "MemoryReservation":
        return self

    def __exit__(self, *exc) -> None:
        if not self._freed:
            self.free()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._freed else f"{self.nbytes} B"
        return f"MemoryReservation({self.label!r}, {state})"


class DeviceMemory:
    """Tracking allocator for a simulated device.

    Parameters
    ----------
    capacity_bytes:
        Simulated device capacity.  ``None`` disables the OOM check
        (useful for scaled-down unit tests).
    pool:
        An optional :class:`BufferPool` recycling the host buffers of
        freed arrays.  Purely a host-side optimization — simulated
        accounting (counts, current/peak bytes, OOM) is unaffected.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        pool: Optional[BufferPool] = None,
    ):
        self.capacity_bytes = capacity_bytes
        self.pool = pool
        self.current_bytes = 0
        self.peak_bytes = 0
        self._live: Dict[int, DeviceArray] = {}
        self._reservations: Dict[int, MemoryReservation] = {}
        self._phase_peaks: Dict[str, int] = {}
        self._current_phase: Optional[str] = None
        self.alloc_count = 0
        self.free_count = 0
        self.reserve_count = 0
        self.release_count = 0

    # -- allocation --------------------------------------------------------

    def alloc(self, shape, dtype, label: str = "", zeroed: bool = True) -> DeviceArray:
        """Allocate a device array, zero-initialized unless ``zeroed=False``.

        ``zeroed=False`` skips initialization (``np.empty`` semantics) for
        scratch whose contents are never read before being written — e.g.
        accounting-only hash tables.  Simulated accounting is identical.
        """
        data = self.pool.take(shape, dtype) if self.pool is not None else None
        if data is not None:
            if zeroed:
                data.fill(0)
        elif zeroed:
            data = np.zeros(shape, dtype=dtype)
        else:
            data = np.empty(shape, dtype=dtype)
        return self._register(data, label)

    def from_host(self, array: np.ndarray, label: str = "") -> DeviceArray:
        """Copy a host numpy array onto the device (counts toward usage)."""
        if self.pool is not None:
            data = self.pool.take(array.shape, array.dtype)
            if data is not None:
                np.copyto(data, array)
                return self._register(data, label)
        return self._register(np.ascontiguousarray(array).copy(), label)

    def adopt(self, array: np.ndarray, label: str = "") -> DeviceArray:
        """Register an already-materialized array as device resident.

        Unlike :meth:`from_host` this does not copy; use it when the array
        was just produced by a primitive and is logically device memory.
        """
        return self._register(np.ascontiguousarray(array), label)

    def _register(self, data: np.ndarray, label: str) -> DeviceArray:
        nbytes = int(data.nbytes)
        if (
            self.capacity_bytes is not None
            and self.current_bytes + nbytes > self.capacity_bytes
        ):
            raise DeviceOutOfMemoryError(
                nbytes,
                self.current_bytes,
                self.capacity_bytes,
                label=label,
                top_live=self.live_allocations(),
            )
        arr = DeviceArray(data, self, label)
        self._live[id(arr)] = arr
        self.current_bytes += nbytes
        self.alloc_count += 1
        self._note_usage()
        return arr

    def reserve(self, nbytes: int, label: str = "") -> MemoryReservation:
        """Reserve *nbytes* of simulated capacity without a backing array.

        Raises :class:`~repro.errors.DeviceOutOfMemoryError` exactly like
        an allocation would when the reservation does not fit; release
        with :meth:`MemoryReservation.free` (or use it as a context
        manager).
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise AllocationError(f"cannot reserve {nbytes} bytes")
        if (
            self.capacity_bytes is not None
            and self.current_bytes + nbytes > self.capacity_bytes
        ):
            raise DeviceOutOfMemoryError(
                nbytes,
                self.current_bytes,
                self.capacity_bytes,
                label=label,
                top_live=self.live_allocations(),
            )
        reservation = MemoryReservation(self, nbytes, label)
        self._reservations[id(reservation)] = reservation
        self.current_bytes += nbytes
        self.reserve_count += 1
        self._note_usage()
        return reservation

    def release(self, reservation: MemoryReservation) -> None:
        if reservation._freed:
            raise AllocationError(
                f"double release of reservation {reservation.label!r}"
            )
        if id(reservation) not in self._reservations:
            raise AllocationError(
                f"reservation {reservation.label!r} not owned by this allocator"
            )
        del self._reservations[id(reservation)]
        self.current_bytes -= reservation.nbytes
        self.release_count += 1
        reservation._freed = True

    def free(self, arr: DeviceArray) -> None:
        if arr._freed:
            raise AllocationError(f"double free of device array {arr.label!r}")
        if id(arr) not in self._live:
            raise AllocationError(f"array {arr.label!r} not owned by this allocator")
        del self._live[id(arr)]
        self.current_bytes -= arr.nbytes
        self.free_count += 1
        arr._freed = True
        data = arr._data
        arr._data = None  # type: ignore[assignment]
        if (
            self.pool is not None
            and data is not None
            and data.base is None
            and data.flags.c_contiguous
            # arr held the only other reference (local + getrefcount arg
            # + nothing else) — adopted/aliased buffers are never pooled.
            and sys.getrefcount(data) == 2
        ):
            self.pool.give(data)

    def free_all(self, arrays: Iterable[DeviceArray]) -> None:
        for arr in arrays:
            if not arr.freed:
                self.free(arr)

    def free_by_prefix(self, *prefixes: str) -> int:
        """Free all live arrays whose label starts with any prefix."""
        victims = [
            arr for arr in self._live.values() if arr.label.startswith(prefixes)
        ]
        for arr in victims:
            self.free(arr)
        return len(victims)

    # -- accounting --------------------------------------------------------

    def _note_usage(self) -> None:
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        if self._current_phase is not None:
            prev = self._phase_peaks.get(self._current_phase, 0)
            if self.current_bytes > prev:
                self._phase_peaks[self._current_phase] = self.current_bytes

    def set_phase(self, phase: Optional[str]) -> None:
        """Attribute subsequent peak tracking to *phase*."""
        self._current_phase = phase
        if phase is not None:
            prev = self._phase_peaks.get(phase, 0)
            self._phase_peaks[phase] = max(prev, self.current_bytes)

    @property
    def phase_peaks(self) -> Dict[str, int]:
        """Peak bytes observed while each phase was active."""
        return dict(self._phase_peaks)

    @property
    def live_labels(self) -> list:
        """Labels of currently live arrays and reservations."""
        return sorted(
            [arr.label for arr in self._live.values()]
            + [res.label for res in self._reservations.values()]
        )

    def live_allocations(self) -> list:
        """Live ``(label, nbytes)`` pairs, largest first.

        Includes bytes-only reservations — they hold simulated capacity
        just like arrays.  The payload attached to
        :class:`~repro.errors.DeviceOutOfMemoryError` so OOM reports name
        the arrays actually holding device memory.  Ties break on the
        label so the order is deterministic.
        """
        live = [(arr.label, arr.nbytes) for arr in self._live.values()]
        live += [(res.label, res.nbytes) for res in self._reservations.values()]
        return sorted(live, key=lambda pair: (-pair[1], pair[0]))

    @property
    def live_count(self) -> int:
        return len(self._live) + len(self._reservations)

    @property
    def reserved_bytes(self) -> int:
        """Bytes currently held by reservations (no backing arrays)."""
        return sum(res.nbytes for res in self._reservations.values())

    def reset_peak(self) -> None:
        """Forget peak history (current usage is kept)."""
        self.peak_bytes = self.current_bytes
        self._phase_peaks.clear()

    def assert_no_leaks(self, allowed_labels: Iterable[str] = ()) -> None:
        """Raise :class:`AllocationError` if unexpected arrays are live."""
        allowed = set(allowed_labels)
        leaked = [label for label in self.live_labels if label not in allowed]
        if leaked:
            raise AllocationError(f"leaked device arrays: {leaked}")
