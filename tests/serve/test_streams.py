"""StreamScheduler: the processor-sharing occupancy model, exactly."""

import pytest

from repro.errors import ServeConfigError
from repro.serve import StreamScheduler, WorkItem


def drain_all(sched):
    completions = []
    while True:
        done = sched.advance_to(float("inf"))
        if done is None:
            return completions
        completions.append(done)


def test_config_validation():
    with pytest.raises(ServeConfigError, match="streams"):
        StreamScheduler(0)
    with pytest.raises(ServeConfigError, match="interference"):
        StreamScheduler(2, interference=-0.1)
    with pytest.raises(ServeConfigError, match="interference"):
        StreamScheduler(2, interference=1.01)


def test_share_model_shape():
    sched = StreamScheduler(8, interference=0.6)
    assert sched.share(1) == 1.0
    assert sched.share(2) == pytest.approx(1.0 / 1.6)
    assert sched.share(4) == pytest.approx(1.0 / (1.0 + 0.6 * 3))
    # Aggregate rate k*share(k) grows with k and stays below 1/interference.
    rates = [k * sched.share(k) for k in range(1, 9)]
    assert rates == sorted(rates)
    assert all(rate <= 1.0 / 0.6 + 1e-12 for rate in rates)


def test_single_query_runs_at_solo_speed():
    sched = StreamScheduler(4, interference=0.6)
    sched.start(7, [WorkItem("build", 0.25), WorkItem("probe", 0.75)], at_s=0.0)
    done = sched.advance_to(float("inf"))
    assert done.query_id == 7
    assert done.finish_s == pytest.approx(1.0)
    assert [item.name for item in sched.history] == ["build", "probe"]
    assert all(item.stretch == pytest.approx(1.0) for item in sched.history)


def test_two_equal_queries_stretch_and_tie_break_by_stream():
    sched = StreamScheduler(2, interference=0.5)
    assert sched.start(0, [WorkItem("k", 1.0)], at_s=0.0) == 0
    assert sched.start(1, [WorkItem("k", 1.0)], at_s=0.0) == 1
    first, second = drain_all(sched)
    # Both drain at rate share(2) = 2/3: finish at 1.5; stream 0 retires first.
    assert (first.query_id, second.query_id) == (0, 1)
    assert first.finish_s == pytest.approx(1.5)
    assert second.finish_s == pytest.approx(1.5)
    assert sched.peak_concurrency == 2


def test_interference_zero_is_perfect_overlap():
    sched = StreamScheduler(2, interference=0.0)
    sched.start(0, [WorkItem("k", 1.0)], at_s=0.0)
    sched.start(1, [WorkItem("k", 1.0)], at_s=0.0)
    assert all(c.finish_s == pytest.approx(1.0) for c in drain_all(sched))


def test_interference_one_is_pure_time_slicing():
    sched = StreamScheduler(2, interference=1.0)
    sched.start(0, [WorkItem("k", 1.0)], at_s=0.0)
    sched.start(1, [WorkItem("k", 1.0)], at_s=0.0)
    assert all(c.finish_s == pytest.approx(2.0) for c in drain_all(sched))


def test_rate_recovers_when_a_query_departs():
    # Under pure time-slicing: both run at 1/2 until q0 ends at 2.0, then
    # q1 runs alone and its remaining 2.0 solo-seconds take 2.0 more.
    sched = StreamScheduler(2, interference=1.0)
    sched.start(0, [WorkItem("short", 1.0)], at_s=0.0)
    sched.start(1, [WorkItem("long", 3.0)], at_s=0.0)
    first, second = drain_all(sched)
    assert first.query_id == 0
    assert first.finish_s == pytest.approx(2.0)
    assert second.finish_s == pytest.approx(4.0)


def test_kernel_boundaries_do_not_change_rates():
    # Splitting a query's work into more kernels must not change when
    # anything finishes: only starts/departures move the share.
    split = StreamScheduler(2, interference=0.5)
    split.start(0, [WorkItem("a", 0.5), WorkItem("b", 0.5)], at_s=0.0)
    split.start(1, [WorkItem("k", 1.0)], at_s=0.0)
    whole = StreamScheduler(2, interference=0.5)
    whole.start(0, [WorkItem("ab", 1.0)], at_s=0.0)
    whole.start(1, [WorkItem("k", 1.0)], at_s=0.0)
    split_done = drain_all(split)
    whole_done = drain_all(whole)
    for got, want in zip(split_done, whole_done):
        assert got.finish_s == pytest.approx(want.finish_s)
    # The intermediate kernel boundary itself lands mid-share: 0.5 / (2/3).
    boundary = next(item for item in split.history if item.name == "a")
    assert boundary.end_s == pytest.approx(0.75)


def test_staggered_start_advances_clock():
    sched = StreamScheduler(2, interference=1.0)
    sched.start(0, [WorkItem("k", 1.0)], at_s=0.0)
    sched.advance_to(0.5)
    sched.start(1, [WorkItem("k", 1.0)], at_s=0.5)
    first, second = drain_all(sched)
    # q0: 0.5 solo + 0.5 remaining at half rate -> 1.5; q1 then solo.
    assert first.finish_s == pytest.approx(1.5)
    assert second.finish_s == pytest.approx(2.0)


def test_start_validation_and_noop_work():
    sched = StreamScheduler(1)
    sched.start(0, [WorkItem("k", 1.0)], at_s=0.0)
    with pytest.raises(ServeConfigError, match="free stream"):
        sched.start(1, [WorkItem("k", 1.0)], at_s=0.0)
    drain_all(sched)
    with pytest.raises(ServeConfigError, match="cannot start"):
        sched.start(2, [WorkItem("k", 1.0)], at_s=0.0)
    # Zero-duration work still occupies the stream for an instant.
    done = sched.start(3, [WorkItem("empty", 0.0)], at_s=sched.clock_s)
    assert done == 0
    completion = sched.advance_to(float("inf"))
    assert completion.query_id == 3


def test_advance_to_horizon_parks_clock_and_preserves_progress():
    sched = StreamScheduler(1)
    sched.start(0, [WorkItem("k", 1.0)], at_s=0.0)
    assert sched.advance_to(0.4) is None
    assert sched.clock_s == pytest.approx(0.4)
    done = sched.advance_to(float("inf"))
    assert done.finish_s == pytest.approx(1.0)
