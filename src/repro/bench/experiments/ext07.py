"""ext07: chaos soak — faults, overload, deadlines, tenants, updates.

The reliability extension's acceptance harness.  One
:class:`~repro.serve.server.QueryServer` (quotas, retry budget,
brownout, deadlines all armed) is driven through five consecutive chaos
phases on the simulated clock, each spanning hundreds of simulated
seconds so the whole soak covers thousands:

* ``baseline`` — light mixed-tenant load; everything should complete.
* ``fault-storm`` — transient kernel faults on most queries plus a few
  shrunken-capacity plans that force degradation ladders; the retry
  budget bounds server-wide recovery time.
* ``overload`` — synchronized arrival bursts overwhelm the queue; the
  brownout controller degrades and sheds, tight deadlines cancel
  queries at kernel/superstep/stream boundaries.
* ``greedy-tenant`` — one tenant floods the server under a concurrency
  quota; the quota must demonstrably cap it without starving the
  polite tenant.
* ``update-storm`` — registered relations are replaced mid-run,
  invalidating caches while queries are queued and in flight.

After the soak, the harness asserts the reliability invariants:

1. **no stalls** — the server drains; every submission has exactly one
   outcome;
2. **zero leaks** — reserved bytes, live allocations and per-tenant
   accounting all return to zero after every outcome type;
3. **bit-identity** — every completed query's output equals a direct
   ``execute()`` of the same plan *version* (fault-injected queries:
   equal up to row order, the fault framework's contract);
4. **typed outcomes** — every non-completed query carries a typed
   error with a machine-readable reason;
5. **determinism** — the entire soak replays bit-identically for the
   same seed (the whole scenario is run twice and compared).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...aggregation.base import AggSpec
from ...faults import FaultPlan
from ...query.executor import execute
from ...query.plan import Aggregate, Join, Scan
from ...serve.brownout import BrownoutPolicy
from ...serve.quota import RetryBudget, TenantQuota
from ...serve.server import QueryServer
from ...serve.trace import write_serve_trace
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, Setup, make_setup
from .ext06 import _outputs_equal

#: Serving queries are interactive-scale: 1/8 the microbenchmark rows.
PAPER_ROWS = 1 << 24
STREAMS = 4
QUEUE_DEPTH = 8
#: Simulated seconds per chaos phase; five phases -> a soak measured in
#: thousands of simulated seconds (queries themselves take ~1e-4 s, so
#: the horizon is dominated by arrival spacing, which is free).
PHASE_SPAN_S = 600.0
QUERIES_PER_PHASE = 20
FAULT_RATE = 0.3
PHASES = ("baseline", "fault-storm", "overload", "greedy-tenant", "update-storm")


def _relations(setup: Setup, seed: int):
    spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS),
        s_rows=setup.rows(PAPER_ROWS),
        r_payload_columns=1,
        s_payload_columns=1,
        seed=seed,
    )
    return generate_join_workload(spec)


def _templates(r, s):
    return {
        "join": Join(Scan(r), Scan(s)),
        "agg": Aggregate(
            Join(Scan(r), Scan(s)),
            group_column="r1",
            aggregates=(AggSpec("s1", "sum"),),
        ),
    }


class _Soak:
    """One full chaos scenario against one server (deterministic per seed)."""

    def __init__(self, setup: Setup, seed: int, queries_per_phase: int,
                 phase_span_s: float):
        self.setup = setup
        self.seed = seed
        self.queries_per_phase = queries_per_phase
        self.phase_span_s = phase_span_s
        self.version = 0
        self.relations = _relations(setup, seed)
        self.mean_solo_s = self._measure_solo()
        self.storm_retry_s = self._measure_retry()
        self.server = QueryServer(
            streams=STREAMS,
            device=setup.device,
            config=setup.config,
            seed=seed,
            queue_depth=QUEUE_DEPTH,
            tenants={
                "greedy": TenantQuota(max_concurrent=1, max_queue_depth=6),
            },
            # Enough budget for roughly the first half of the fault storm
            # (sized from a probed faulted run, since absolute backoff
            # constants dwarf scaled-down kernel times), then a slow
            # refill: the storm's tail is deterministically turned away
            # instead of monopolizing the device.
            retry_budget=RetryBudget(
                initial_s=self.storm_retry_s * (queries_per_phase / 2),
                refill_per_s=self.storm_retry_s / phase_span_s,
            ),
            brownout=BrownoutPolicy(
                degrade_enter=0.60, degrade_exit=0.30,
                shed_enter=0.95, shed_exit=0.50, shed_fraction=0.5,
            ),
        )
        self.server.register("r", self.relations[0])
        self.server.register("s", self.relations[1])
        self.truth: Dict[str, object] = {}
        self.meta: Dict[int, Tuple[str, bool]] = {}  # query_id -> (tag, faulted)
        self.phase_rows: List[tuple] = []
        self.rng = np.random.default_rng(seed + 100)

    def _measure_solo(self) -> float:
        result = execute(
            _templates(*self.relations)["join"],
            device=self.setup.device,
            config=self.setup.config,
            seed=self.seed,
        )
        solo = result.total_seconds
        del result
        return max(solo, 1e-9)

    def _measure_retry(self) -> float:
        """Mean retry seconds one storm query spends (budget sizing).

        Probes both storm shapes — the plain transient-fault join and
        the capacity-squeezed one whose degradation ladder multiplies
        retries — since absolute backoff constants make retry time
        incomparable to kernel time across scales.
        """
        from ...obs.session import TraceSession
        from ...query.executor import QueryExecutor

        plan = _templates(*self.relations)["join"]
        spends = []
        for fault_plan in self._storm_plans():
            session = TraceSession("ext07-retry-probe")
            QueryExecutor(
                device=self.setup.device,
                config=self.setup.config,
                seed=self.seed,
                fault_plan=fault_plan,
            ).execute(plan, trace=session)
            spends.append(session.metrics.value("fault_retry_seconds"))
        # Weight like the storm itself: 3 plain for every squeezed.
        storm_s, squeeze_s = spends
        return max((3 * storm_s + squeeze_s) / 4, 1e-9)

    def _storm_plans(self) -> Tuple[FaultPlan, FaultPlan]:
        storm = FaultPlan(seed=self.seed + 17, kernel_fault_rate=FAULT_RATE)
        squeeze = FaultPlan(
            seed=self.seed + 18, kernel_fault_rate=FAULT_RATE,
            capacity_frac=0.02,
        )
        return storm, squeeze

    def _truth_for(self, name: str, plan) -> str:
        tag = f"{name}@v{self.version}"
        if tag not in self.truth:
            self.truth[tag] = execute(
                plan,
                device=self.setup.device,
                config=self.setup.config,
                seed=self.seed,
            ).output
        return tag

    def _submit(self, name: str, plan, at_s: float, **kwargs) -> int:
        tag = self._truth_for(name, plan)
        query_id = self.server.submit(plan, at_s=at_s, tag=tag, **kwargs)
        self.meta[query_id] = (tag, kwargs.get("fault_plan") is not None)
        return query_id

    def _record_phase(self, phase: str, first_outcome: int) -> None:
        outcomes = self.server.outcomes[first_outcome:]
        by_status = {
            status: sum(1 for o in outcomes if o.status == status)
            for status in ("completed", "rejected", "cancelled", "failed")
        }
        self.phase_rows.append((
            phase,
            len(outcomes),
            by_status["completed"],
            by_status["rejected"],
            by_status["cancelled"],
            by_status["failed"],
            self.server.clock_s,
            self.server.brownout.level_name,
        ))

    # -- phases ------------------------------------------------------------

    def run(self) -> None:
        start = 0.0
        for phase in PHASES:
            first = len(self.server.outcomes)
            getattr(self, "_phase_" + phase.replace("-", "_"))(start)
            self.server.run(until_s=start + self.phase_span_s)
            self._record_phase(phase, first)
            start += self.phase_span_s
        self.server.run()  # drain whatever the horizon left queued

    def _phase_baseline(self, start: float) -> None:
        templates = _templates(*self.relations)
        names = list(templates)
        for index in range(self.queries_per_phase):
            at = start + (index + 1) * self.phase_span_s / (
                self.queries_per_phase + 2
            )
            name = names[int(self.rng.integers(0, len(names)))]
            tenant = "polite" if index % 3 else "greedy"
            self._submit(
                name, templates[name], at,
                tenant=tenant, deadline_s=self.mean_solo_s * 200,
            )

    def _phase_fault_storm(self, start: float) -> None:
        templates = _templates(*self.relations)
        storm, squeeze = self._storm_plans()
        for index in range(self.queries_per_phase):
            at = start + (index + 1) * self.phase_span_s / (
                self.queries_per_phase + 2
            )
            plan = storm if index % 4 else squeeze
            self._submit(
                "join", templates["join"], at,
                fault_plan=plan, deadline_s=self.mean_solo_s * 500,
            )

    def _phase_overload(self, start: float) -> None:
        # Each burst query joins its own fresh (unregistered) relation
        # pair: the bursts are real device work, not cache hits, so the
        # queue genuinely backs up and deadlines genuinely bind.
        bursts = 2
        per_burst = max(1, self.queries_per_phase // bursts)
        for burst in range(bursts):
            at = start + (burst + 1) * self.phase_span_s / (bursts + 1)
            for index in range(per_burst):
                r, s = _relations(
                    self.setup, self.seed + 500 + 50 * burst + index
                )
                # A mix of tight deadlines (cancel mid-execution), binding
                # ones (cancel while queued or on the stream) and holes
                # (no deadline at all).  The first two per burst are
                # forced so every seed exercises both cancel paths.
                draw = (
                    0 if index == 0
                    else 1 if index == 1
                    else int(self.rng.integers(0, 3))
                )
                deadline = (
                    self.mean_solo_s * 0.5 if draw == 0
                    else self.mean_solo_s * 6 if draw == 1
                    else None
                )
                self._submit(
                    f"ov{burst}-{index}", Join(Scan(r), Scan(s)), at,
                    priority=int(self.rng.integers(0, 2)),
                    deadline_s=deadline,
                )

    def _phase_greedy_tenant(self, start: float) -> None:
        templates = _templates(*self.relations)
        at = start + self.phase_span_s / 4
        greedy = (2 * self.queries_per_phase) // 3
        for index in range(greedy):
            self._submit("join", templates["join"], at, tenant="greedy")
        for index in range(self.queries_per_phase - greedy):
            self._submit(
                "agg", templates["agg"],
                at + index * self.mean_solo_s,
                tenant="polite",
            )

    def _phase_update_storm(self, start: float) -> None:
        waves = 3
        per_wave = max(1, self.queries_per_phase // waves)
        for wave in range(waves):
            wave_start = start + wave * self.phase_span_s / waves
            if wave:
                # Advance the serving clock into the wave, then swap the
                # catalog out from under queued/cached state.
                self.server.run(until_s=wave_start)
                self.version += 1
                self.relations = _relations(
                    self.setup, self.seed + 1000 * self.version
                )
                self.server.update("r", self.relations[0])
                self.server.update("s", self.relations[1])
            templates = _templates(*self.relations)
            names = list(templates)
            for index in range(per_wave):
                at = wave_start + (index + 1) * (
                    self.phase_span_s / waves / (per_wave + 2)
                )
                name = names[int(self.rng.integers(0, len(names)))]
                self._submit(name, templates[name], max(at, self.server.clock_s))

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> Dict[str, float]:
        server = self.server
        outcomes = server.outcomes
        submitted = len(self.meta)
        drained = len(outcomes) == submitted and not server._inflight
        no_leaks = (
            server.memory.reserved_bytes == 0
            and server.memory.current_bytes == 0
            and all(
                state.inflight == 0
                and state.reserved_bytes == 0
                and state.queued == 0
                for state in server.tenants.values()
            )
        )
        identical = True
        typed = True
        for outcome in outcomes:
            tag, faulted = self.meta[outcome.query_id]
            if outcome.status == "completed":
                identical &= _outputs_equal(
                    self.truth[tag], outcome.output, unordered=faulted
                )
            else:
                typed &= outcome.error is not None and bool(
                    getattr(outcome.error, "reason", "")
                )
        greedy_peak = self._peak_overlap("greedy")
        polite_done = sum(
            1
            for o in outcomes
            if o.tenant == "polite" and o.status == "completed"
        )
        return {
            "drained": float(drained),
            "no_leaks": float(no_leaks),
            "identical": float(identical),
            "typed": float(typed),
            "greedy_peak_concurrency": float(greedy_peak),
            "polite_completed": float(polite_done),
        }

    def _peak_overlap(self, tenant: str) -> int:
        """Max queries of *tenant* simultaneously in service."""
        events = []
        for o in self.server.outcomes:
            if o.tenant == tenant and o.status in ("completed", "cancelled",
                                                   "failed") and o.stream >= 0:
                events.append((o.admitted_s, 1))
                events.append((o.finish_s, -1))
        peak = live = 0
        # Departures before arrivals at equal instants: the server frees
        # a finishing query's slot before admitting the next one.
        for _, delta in sorted(events):
            live += delta
            peak = max(peak, live)
        return peak

    def signature(self) -> List[tuple]:
        """Replay-comparable digest of the entire soak."""
        return [
            (
                o.query_id,
                o.status,
                o.tenant,
                round(o.finish_s, 9),
                getattr(o.error, "reason", None),
                o.stream,
            )
            for o in self.server.outcomes
        ]


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    queries_per_phase: int = QUERIES_PER_PHASE,
    phase_span_s: float = PHASE_SPAN_S,
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="ext07",
        title="Chaos soak: faults + overload + deadlines + tenants + "
        "updates under the reliability invariants",
        headers=[
            "phase", "queries", "done", "rej", "cancel", "fail",
            "clock_s", "brownout",
        ],
    )

    soak = _Soak(setup, seed, queries_per_phase, phase_span_s)
    soak.run()
    for row in soak.phase_rows:
        result.add_row(*row)
    invariants = soak.check_invariants()

    # Determinism: the identical scenario must replay bit-for-bit.
    replay = _Soak(setup, seed, queries_per_phase, phase_span_s)
    replay.run()
    deterministic = soak.signature() == replay.signature()

    report = soak.server.report()
    counters = report.counters
    result.findings["soak_simulated_seconds"] = soak.server.clock_s
    result.findings["no_stalls_all_outcomes_recorded"] = invariants["drained"]
    result.findings["zero_reservation_leaks"] = invariants["no_leaks"]
    result.findings["completed_bit_identical"] = invariants["identical"]
    result.findings["non_completed_all_typed"] = invariants["typed"]
    result.findings["deterministic_replay"] = float(deterministic)
    result.findings["greedy_peak_concurrency"] = invariants[
        "greedy_peak_concurrency"
    ]
    result.findings["polite_completed_under_flood"] = invariants[
        "polite_completed"
    ]
    result.findings["cancelled_total"] = float(report.cancelled)
    result.findings["brownout_transitions"] = counters.get(
        "serve.brownout_transitions", 0.0
    )
    result.findings["retry_budget_rejections"] = counters.get(
        "serve.rejected_retry_budget", 0.0
    )
    result.add_note(
        f"soak horizon {soak.server.clock_s:.0f} simulated seconds across "
        f"{len(PHASES)} phases; greedy tenant quota max_concurrent=1 "
        f"observed peak {invariants['greedy_peak_concurrency']:.0f}"
    )
    result.add_note(
        "every completed output checked against a direct execute() of the "
        "same catalog version; fault-injected queries compared unordered "
        "(the fault framework's contract)"
    )
    if trace_dir is not None:
        write_serve_trace(soak.server, f"{trace_dir}/ext07-soak.trace.json")
    return result
