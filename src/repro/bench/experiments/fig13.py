"""Figure 13: effect of the match ratio (1.5G ⋈ 1.5G, 2 payloads/side).

High match ratios materialize more data, favouring *-OM; below ~25% the
unclustered gathers touch little data and *-UM (especially PHJ-UM) win.
This is the crossover that drives the Figure 18 decision tree.
"""

from __future__ import annotations

from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    run_algorithm,
    throughput_mtuples,
)

PAPER_ROWS = 1 << 27
MATCH_RATIOS = (0.03, 0.125, 0.25, 0.5, 0.75, 1.0)
ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    result = ExperimentResult(
        experiment_id="fig13",
        title="Effect of match ratio (throughput, Mtuples/s)",
        headers=["match_ratio"] + list(ALGORITHMS) + ["winner"],
    )
    winners = {}
    for ratio in MATCH_RATIOS:
        spec = JoinWorkloadSpec(
            r_rows=rows,
            s_rows=rows,
            r_payload_columns=2,
            s_payload_columns=2,
            match_ratio=ratio,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        throughputs = {
            name: throughput_mtuples(run_algorithm(name, r, s, setup))
            for name in ALGORITHMS
        }
        winner = max(throughputs, key=throughputs.get)
        winners[ratio] = winner
        result.add_row(ratio, *[throughputs[a] for a in ALGORITHMS], winner)
    result.findings["low_ratio_winner_is_um"] = float(
        winners[MATCH_RATIOS[0]].endswith("UM")
    )
    result.findings["high_ratio_winner_is_om"] = float(
        winners[1.0].endswith("OM")
    )
    result.add_note("paper: *-OM win above ~25% match; PHJ-UM best at low ratios")
    return result
