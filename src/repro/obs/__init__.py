"""Unified observability: trace sessions, counters, and exporters.

Activate a :class:`TraceSession` around any library call — a raw
``join()``, a planned query, a whole experiment — and every layer
reports into it::

    from repro.obs import TraceSession, write_chrome_trace

    with TraceSession("demo") as session:
        result = join(r, s)

    write_chrome_trace(session, "trace.json")   # open in chrome://tracing
    print(per_operator_report(session))         # Table-4 counters per operator

With no active session every hook is a single ``is None`` check —
tracing is strictly zero-overhead when disabled and adds no
dependencies beyond the standard library.
"""

from .export import (
    counters_csv,
    export_session,
    to_chrome_trace,
    write_chrome_trace,
    write_counters_csv,
)
from .metrics import STAT_COUNTERS, MetricsRegistry
from .report import per_operator_report, recovery_summary, write_report
from .session import TraceEvent, TraceSession, current_session

__all__ = [
    "MetricsRegistry",
    "STAT_COUNTERS",
    "TraceEvent",
    "TraceSession",
    "counters_csv",
    "current_session",
    "export_session",
    "per_operator_report",
    "recovery_summary",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_counters_csv",
    "write_report",
]
