"""Cost-based placement policy for the segment cache.

A clock-style policy with two inputs beyond recency:

* **per-segment access counters** (recorded in ``obs`` as ``tier.*``
  metrics) with exponential decay, so bursts age out; and
* **template popularity** fed by the serving layer's Zipf workload
  stats (:meth:`PlacementPolicy.note_popularity`), so segments of
  relations referenced by popular templates win placement even before
  their own access history accumulates.

Admission evicts victims only with *hysteresis*: a resident segment is
evictable once it has been resident for ``min_residency_ticks``
placement passes **and** the candidate outscores it by the
``hysteresis`` ratio.  Segments touched by the operator currently being
placed are pinned for the duration of that pass, so one operator never
thrashes its own working set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .segments import SegmentKey


@dataclass
class SegmentStats:
    """Decayed access history of one segment."""

    accesses: float = 0.0
    last_tick: int = 0
    admitted_tick: int = -1


@dataclass
class PlacementDecision:
    """Outcome of one admission attempt (for placement-decision spans)."""

    key: SegmentKey
    admitted: bool
    score: float
    evicted: Tuple[SegmentKey, ...] = ()
    reason: str = ""


class PlacementPolicy:
    """Scores segments and picks eviction victims.

    ``score = decayed_accesses * relation_popularity / segment_bytes`` —
    expected near-term hits per resident byte.  The CPU-vs-GPU benefit
    per byte is a device-pair constant here (all segments move between
    the same two tiers), so it scales every score equally and is folded
    out of the comparison.
    """

    def __init__(
        self,
        min_residency_ticks: int = 2,
        hysteresis: float = 1.25,
        access_decay: float = 0.85,
        popularity_decay: float = 0.98,
    ):
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
        self.min_residency_ticks = int(min_residency_ticks)
        self.hysteresis = float(hysteresis)
        self.access_decay = float(access_decay)
        self.popularity_decay = float(popularity_decay)
        self._stats: Dict[SegmentKey, SegmentStats] = {}
        self._popularity: Dict[str, Tuple[float, int]] = {}
        self.tick = 0

    # -- inputs --------------------------------------------------------------

    def begin_pass(self) -> int:
        """Advance the placement clock; one tick per operator placement."""
        self.tick += 1
        return self.tick

    def note_access(self, key: SegmentKey, weight: float = 1.0) -> None:
        """Record one access to *key* (decays previous history)."""
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = SegmentStats(last_tick=self.tick)
        else:
            stats.accesses *= self.access_decay ** (self.tick - stats.last_tick)
            stats.last_tick = self.tick
        stats.accesses += weight

    def note_admitted(self, key: SegmentKey) -> None:
        stats = self._stats.setdefault(key, SegmentStats(last_tick=self.tick))
        stats.admitted_tick = self.tick

    def note_evicted(self, key: SegmentKey) -> None:
        stats = self._stats.get(key)
        if stats is not None:
            stats.admitted_tick = -1

    def note_popularity(self, relation: str, weight: float = 1.0) -> None:
        """Fold one workload arrival touching *relation* into its EMA.

        The serving layer calls this per submitted query per scanned
        relation.  The EMA decays with the placement *clock*, not per
        arrival, so its steady state is proportional to the relation's
        arrival rate: a template drawn every pass converges ~25x higher
        than one drawn every 50 passes (at the default decay), which is
        what lets scoring separate a Zipf head from its tail.
        """
        value, last_tick = self._popularity.get(relation, (0.0, self.tick))
        value *= self.popularity_decay ** (self.tick - last_tick)
        self._popularity[relation] = (value + weight, self.tick)

    def popularity(self, relation: str) -> float:
        """Popularity multiplier; 1.0 for relations never reported."""
        entry = self._popularity.get(relation)
        if entry is None:
            return 1.0
        value, last_tick = entry
        return 1.0 + value * self.popularity_decay ** (self.tick - last_tick)

    # -- scoring -------------------------------------------------------------

    def effective_accesses(self, key: SegmentKey) -> float:
        stats = self._stats.get(key)
        if stats is None:
            return 0.0
        return stats.accesses * self.access_decay ** (self.tick - stats.last_tick)

    def score(self, key: SegmentKey, nbytes: int) -> float:
        """Expected benefit of residency per byte."""
        return (
            self.effective_accesses(key)
            * self.popularity(key.relation)
            / max(1, int(nbytes))
        )

    # -- eviction ------------------------------------------------------------

    def choose_victims(
        self,
        needed_bytes: int,
        candidate_score: float,
        resident: Iterable[Tuple[SegmentKey, int]],
        protect: Optional[Set[SegmentKey]] = None,
    ) -> Optional[List[SegmentKey]]:
        """Victims freeing >= *needed_bytes*, or ``None`` to decline.

        Only segments outside *protect* whose residency age passed
        ``min_residency_ticks`` and whose score (scaled by the
        hysteresis ratio) is below *candidate_score* are evictable.
        Cheapest-first; declines rather than evicting better segments.
        """
        protect = protect or set()
        evictable: List[Tuple[float, SegmentKey, int]] = []
        for key, nbytes in resident:
            if key in protect:
                continue
            stats = self._stats.get(key)
            if (
                stats is not None
                and stats.admitted_tick >= 0
                and self.tick - stats.admitted_tick < self.min_residency_ticks
            ):
                continue  # residency hysteresis: too recently admitted
            score = self.score(key, nbytes)
            if score * self.hysteresis >= candidate_score:
                continue  # not clearly worse than the candidate
            evictable.append((score, key, nbytes))
        evictable.sort(key=lambda item: (item[0], item[1]))
        victims: List[SegmentKey] = []
        freed = 0
        for _, key, nbytes in evictable:
            victims.append(key)
            freed += nbytes
            if freed >= needed_bytes:
                return victims
        return None

    def forget(self, relation: str) -> None:
        """Drop all history for *relation* (after an update/invalidation)."""
        self._stats = {
            key: stats
            for key, stats in self._stats.items()
            if key.relation != relation
        }
        self._popularity.pop(relation, None)
