"""Shared machinery for the join implementations.

The paper structures every join into three phases (Section 2.2):

``transform``
    Sort or partition the inputs (optionally with payload columns —
    GFTR — or only with generated tuple identifiers — GFUR).
``match``
    Find matching tuples, producing the output keys plus per-side match
    identifier arrays (physical IDs under GFUR, virtual IDs under GFTR).
``materialize``
    Gather the payload columns of matching tuples into the output.

A :class:`JoinResult` carries the real materialized output relation plus
the simulated phase times, traffic profile and memory peaks.

Memory accounting convention: the tracking allocator only holds
*auxiliary* arrays (tuple IDs, transformed columns, match ID arrays,
sort/partition temporaries).  Input and output relations are assumed
resident — exactly the assumption of Section 4.4 — and are reported
separately, so ``peak_total_bytes = input + output + peak_aux``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import JoinConfigError
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.kernel import KernelStats
from ..relational.relation import Relation
from ..primitives.grouping import count_distinct
from ..relational.types import id_dtype

#: Canonical phase names (order matters for reports).
TRANSFORM, MATCH, MATERIALIZE = "transform", "match", "materialize"


@dataclass
class JoinConfig:
    """Options shared by all join algorithms.

    Attributes
    ----------
    unique_build_keys:
        Declare the build (R) side keys unique — the primary-foreign-key
        case the paper focuses on.  Enables the single-pass Merge Path
        optimization and tighter hash tables.  ``None`` -> auto-detect.
    tuples_per_partition:
        Target co-partition size for partitioned joins (sized so a
        partition's hash table fits in shared memory).
    partition_bits:
        Force the radix-partition fan-out; ``None`` derives it from the
        build-side size and ``tuples_per_partition``.
    hashed_partitioning:
        Partition on mixed-hash bits instead of raw key radix bits (for
        keys that are not uniform in their low bits).
    double_merge_pass:
        Run Merge Path twice (lower and upper bounds) even for unique
        build keys — the unoptimized behaviour of prior work (ablation).
    """

    unique_build_keys: Optional[bool] = None
    tuples_per_partition: int = 4096
    partition_bits: Optional[int] = None
    hashed_partitioning: bool = False
    double_merge_pass: bool = False
    bucket_tuples: int = 4096
    #: Decompose oversized probe partitions before the hash match
    #: (Section 3.2's load-balancing step).  Disable for ablation abl04.
    load_balance: bool = True
    #: Projection pushdown: only materialize these payload columns (by
    #: their *output* names; the key column is always produced).  ``None``
    #: materializes everything.
    projection: Optional[Tuple[str, ...]] = None
    output_name: str = "T"

    def validate(self) -> None:
        if self.tuples_per_partition <= 0:
            raise JoinConfigError("tuples_per_partition must be positive")
        if self.partition_bits is not None and not 1 <= self.partition_bits <= 24:
            raise JoinConfigError("partition_bits must be in [1, 24]")
        if self.bucket_tuples <= 0:
            raise JoinConfigError("bucket_tuples must be positive")


@dataclass
class JoinResult:
    """Outcome of one simulated join execution."""

    output: Relation
    algorithm: str
    pattern: str  # "gfur" or "gftr"
    device: DeviceSpec
    phase_seconds: Dict[str, float]
    input_bytes: int
    output_bytes: int
    peak_aux_bytes: int
    phase_aux_peaks: Dict[str, int]
    matches: int
    r_rows: int
    s_rows: int
    kernel_count: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def peak_total_bytes(self) -> int:
        return self.input_bytes + self.output_bytes + self.peak_aux_bytes

    @property
    def throughput_tuples_per_s(self) -> float:
        """(|R| + |S|) / total time — the paper's throughput metric."""
        if self.total_seconds == 0:
            return float("inf")
        return (self.r_rows + self.s_rows) / self.total_seconds

    @property
    def throughput_bytes_per_s(self) -> float:
        if self.total_seconds == 0:
            return float("inf")
        return self.input_bytes / self.total_seconds

    def phase_fraction(self, phase: str) -> float:
        total = self.total_seconds
        return self.phase_seconds.get(phase, 0.0) / total if total else 0.0

    def describe(self) -> str:
        parts = ", ".join(
            f"{phase}={seconds * 1e3:.3f}ms"
            for phase, seconds in self.phase_seconds.items()
        )
        return (
            f"{self.algorithm}[{self.pattern}] on {self.device.name}: "
            f"{self.matches} matches, total={self.total_seconds * 1e3:.3f}ms ({parts})"
        )


def output_column_names(
    r: Relation, s: Relation, projection: Optional[Tuple[str, ...]] = None
) -> List[Tuple[str, str, str]]:
    """Output schema: [(side, source column, output name)], key first.

    S payload names that collide with the key or R payloads get an
    ``_s`` suffix, mirroring :func:`repro.relational.reference_join`.
    With a *projection*, only the named payload columns are kept (the
    key is always produced); unknown names raise
    :class:`~repro.errors.JoinConfigError`.
    """
    names: List[Tuple[str, str, str]] = [("r", r.key, "key")]
    taken = {"key"}
    for name in r.payload_names:
        names.append(("r", name, name))
        taken.add(name)
    for name in s.payload_names:
        out = name if name not in taken else f"{name}_s"
        names.append(("s", name, out))
        taken.add(out)
    if projection is None:
        return names
    wanted = set(projection)
    available = {out for _, _, out in names}
    unknown = wanted - available
    if unknown:
        raise JoinConfigError(
            f"projection references unknown columns {sorted(unknown)}; "
            f"available: {sorted(available - {'key'})}"
        )
    return [
        entry for entry in names if entry[2] == "key" or entry[2] in wanted
    ]


def init_tuple_ids(
    ctx: GPUContext, n: int, phase: str, label: str, dtype=None
) -> np.ndarray:
    """Materialize physical tuple identifiers 0..n-1 (one write pass).

    IDs are sized like the key column they travel with (CUB sorts 64-bit
    keys with 64-bit values), falling back to the narrowest width that
    fits ``n``.
    """
    ids = np.arange(n, dtype=dtype if dtype is not None else id_dtype(n))
    ctx.submit(
        KernelStats(
            name=f"init_ids:{label}",
            items=n,
            seq_write_bytes=int(ids.nbytes),
        ),
        phase=phase,
    )
    return ids


def detect_unique_keys(keys: np.ndarray) -> bool:
    """True if all key values are distinct."""
    if keys.size <= 1:
        return True
    return count_distinct(keys) == keys.size


class JoinAlgorithm(ABC):
    """Base class for the five join implementations.

    Subclasses implement :meth:`_execute`, producing the match index
    arrays and charging phase-attributed kernels on the context; the base
    class handles validation, context setup and result assembly.
    """

    #: Short name, e.g. "SMJ-OM"; set by subclasses.
    name: str = ""
    #: Materialization pattern: "gfur" or "gftr".
    pattern: str = ""

    def __init__(self, config: Optional[JoinConfig] = None):
        self.config = config or JoinConfig()
        self.config.validate()

    def join(
        self,
        r: Relation,
        s: Relation,
        ctx: Optional[GPUContext] = None,
        device: DeviceSpec = A100,
        seed: Optional[int] = None,
    ) -> JoinResult:
        """Execute ``R ⋈ S`` on this algorithm.

        R is the build (primary-key) side and S the probe side, matching
        the paper's convention.  A fresh :class:`GPUContext` is created
        unless one is supplied.
        """
        if ctx is None:
            ctx = GPUContext(device=device, seed=seed)
        unique = self.config.unique_build_keys
        if unique is None:
            unique = detect_unique_keys(r.key_values)

        # Narrow joins (<= 1 payload column per side) use the paper's
        # two-phase path when the algorithm provides one (Section 2.2):
        # payloads transform with the keys and match finding emits them
        # directly, so there is no materialization phase.
        narrow_exec = getattr(self, "_execute_narrow", None)
        is_narrow = r.num_payload_columns <= 1 and s.num_payload_columns <= 1
        with ctx.trace_span(
            f"join:{self.name}",
            category="algorithm",
            pattern=self.pattern,
            r_rows=r.num_rows,
            s_rows=s.num_rows,
        ):
            if is_narrow and narrow_exec is not None and self.config.projection is None:
                output_columns = narrow_exec(ctx, r, s, unique)
            else:
                output_columns = self._execute(ctx, r, s, unique)

        output = Relation(output_columns, key="key", name=self.config.output_name)
        ctx.count("join_matches", output.num_rows)
        phase_seconds = dict(ctx.timeline.breakdown())
        return JoinResult(
            output=output,
            algorithm=self.name,
            pattern=self.pattern,
            device=ctx.device,
            phase_seconds=phase_seconds,
            input_bytes=r.total_bytes + s.total_bytes,
            output_bytes=output.total_bytes,
            peak_aux_bytes=ctx.mem.peak_bytes,
            phase_aux_peaks=ctx.mem.phase_peaks,
            matches=output.num_rows,
            r_rows=r.num_rows,
            s_rows=s.num_rows,
            kernel_count=ctx.timeline.kernel_count(),
        )

    @abstractmethod
    def _execute(
        self, ctx: GPUContext, r: Relation, s: Relation, unique_build_keys: bool
    ) -> List[Tuple[str, np.ndarray]]:
        """Run the join; return the output columns (name, array) in order."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, pattern={self.pattern!r})"
