"""Composite key packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidRelationError
from repro.relational import MAX_PACKED_BITS, PackedKeyCodec, pack_columns
from repro.relational.validation import join_match_indices


class TestPackUnpack:
    def test_roundtrip(self):
        a = np.array([3, 0, 7], dtype=np.int32)
        b = np.array([100, 50, 0], dtype=np.int32)
        packed, codec = pack_columns([a, b])
        ua, ub = codec.unpack(packed)
        assert np.array_equal(ua, a)
        assert np.array_equal(ub, b)

    def test_lexicographic_order_preserved(self):
        a = np.array([1, 0, 1, 0], dtype=np.int32)
        b = np.array([0, 9, 5, 2], dtype=np.int32)
        packed, _ = pack_columns([a, b])
        np_order = np.lexsort((b, a))
        packed_order = np.argsort(packed, kind="stable")
        assert np.array_equal(np_order, packed_order)

    def test_distinct_tuples_distinct_keys(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 100, 1000)
        b = rng.integers(0, 100, 1000)
        packed, _ = pack_columns([a, b])
        tuples = {(int(x), int(y)) for x, y in zip(a, b)}
        assert np.unique(packed).size == len(tuples)

    def test_single_column(self):
        packed, codec = pack_columns([np.array([5, 2])])
        assert codec.bit_widths == (3,)
        assert list(packed) == [5, 2]

    def test_three_columns(self):
        cols = [np.array([1]), np.array([2]), np.array([3])]
        packed, codec = pack_columns(cols)
        assert [int(c[0]) for c in codec.unpack(packed)] == [1, 2, 3]


class TestValidation:
    def test_negative_rejected(self):
        with pytest.raises(InvalidRelationError, match="non-negative"):
            pack_columns([np.array([-1])])

    def test_too_wide_rejected(self):
        wide = np.array([2 ** 40], dtype=np.int64)
        with pytest.raises(InvalidRelationError, match="bits"):
            pack_columns([wide, wide])

    def test_empty_list_rejected(self):
        with pytest.raises(InvalidRelationError, match="at least one"):
            pack_columns([])

    def test_codec_column_count_mismatch(self):
        _, codec = pack_columns([np.array([1]), np.array([2])])
        with pytest.raises(InvalidRelationError, match="columns"):
            codec.pack([np.array([1])])

    def test_codec_range_check(self):
        _, codec = pack_columns([np.array([3])])  # 2 bits
        with pytest.raises(InvalidRelationError, match="packed"):
            codec.pack([np.array([4])])

    def test_max_bits_constant(self):
        assert MAX_PACKED_BITS == 63


class TestCompositeJoin:
    def test_multi_column_equi_join_via_packing(self):
        """A two-attribute equi-join expressed through packed keys."""
        rng = np.random.default_rng(1)
        r_a = rng.integers(0, 20, 200)
        r_b = rng.integers(0, 20, 200)
        s_a = rng.integers(0, 20, 300)
        s_b = rng.integers(0, 20, 300)
        r_key, codec = pack_columns([r_a, r_b])
        s_key = codec.pack([s_a, s_b])
        r_idx, s_idx = join_match_indices(r_key, s_key)
        expected = {
            (ri, si)
            for ri in range(200)
            for si in range(300)
            if r_a[ri] == s_a[si] and r_b[ri] == s_b[si]
        }
        assert set(zip(r_idx.tolist(), s_idx.tolist())) == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 2 ** 10), st.integers(0, 2 ** 10),
                  st.integers(0, 2 ** 10)),
        min_size=1, max_size=50,
    )
)
def test_property_roundtrip(rows):
    cols = [np.asarray(c, dtype=np.int64) for c in zip(*rows)]
    packed, codec = pack_columns(cols)
    unpacked = codec.unpack(packed)
    for original, recovered in zip(cols, unpacked):
        assert np.array_equal(original, recovered)
