"""ClusterContext supersteps: clock semantics and byte accounting."""

import numpy as np
import pytest

from repro.cluster import ClusterContext, NVLINK_MESH, interconnect_seconds
from repro.gpusim import KernelStats
from repro.obs import TraceSession


def _kernel(nbytes, name="work"):
    return KernelStats(name=name, items=nbytes // 4, seq_read_bytes=nbytes)


class TestComputeStep:
    def test_step_lasts_as_long_as_slowest_device(self):
        cluster = ClusterContext(num_devices=3)
        with cluster.compute_step("probe") as step:
            step.contexts[0].submit(_kernel(1 << 20))
            step.contexts[1].submit(_kernel(1 << 26))  # slowest
            step.contexts[2].submit(_kernel(1 << 10))
        assert step.seconds == max(step.device_seconds)
        assert step.seconds == step.device_seconds[1]
        assert cluster.total_seconds == step.seconds

    def test_clock_accumulates_across_steps(self):
        cluster = ClusterContext(num_devices=2)
        with cluster.compute_step("a") as a:
            a.contexts[0].submit(_kernel(1 << 20))
        with cluster.compute_step("b") as b:
            b.contexts[1].submit(_kernel(1 << 22))
        assert cluster.total_seconds == pytest.approx(a.seconds + b.seconds)
        assert b.start_s == pytest.approx(a.seconds)

    def test_idle_devices_cost_nothing(self):
        cluster = ClusterContext(num_devices=4)
        with cluster.compute_step("lonely") as step:
            step.contexts[0].submit(_kernel(1 << 20))
        assert step.device_seconds[1:] == [0.0, 0.0, 0.0]

    def test_device_busy_seconds_sums_compute_only(self):
        cluster = ClusterContext(num_devices=2)
        with cluster.compute_step("a") as a:
            a.contexts[0].submit(_kernel(1 << 20))
        matrix = np.array([[0, 1000], [0, 0]])
        cluster.shuffle_step("x", matrix)
        with cluster.compute_step("b") as b:
            b.contexts[0].submit(_kernel(1 << 20))
        busy = cluster.device_busy_seconds()
        assert busy[0] == pytest.approx(
            a.device_seconds[0] + b.device_seconds[0]
        )
        assert busy[1] == 0.0
        assert cluster.total_seconds > busy[0]  # shuffle time on top


class TestShuffleStep:
    def test_clock_advances_by_interconnect_drain(self):
        cluster = ClusterContext(num_devices=2)
        matrix = np.array([[0, 4096], [8192, 0]])
        step = cluster.shuffle_step("exchange", matrix)
        assert step.seconds == interconnect_seconds(NVLINK_MESH, matrix)
        assert cluster.total_seconds == step.seconds

    def test_transfers_cover_exactly_nonzero_offdiagonal_links(self):
        cluster = ClusterContext(num_devices=3)
        matrix = np.array([[100, 4096, 0], [0, 200, 8192], [0, 0, 300]])
        step = cluster.shuffle_step("exchange", matrix)
        links = {(t.src, t.dst): t.nbytes for t in step.transfers}
        assert links == {(0, 1): 4096, (1, 2): 8192}

    def test_wrong_shape_rejected(self):
        cluster = ClusterContext(num_devices=2)
        with pytest.raises(ValueError, match="shape"):
            cluster.shuffle_step("bad", np.zeros((3, 3)))

    def test_negative_bytes_rejected(self):
        cluster = ClusterContext(num_devices=2)
        with pytest.raises(ValueError, match=">= 0"):
            cluster.shuffle_step("bad", np.array([[0, -1], [0, 0]]))

    def test_link_bytes_accumulates_with_zero_diagonal(self):
        cluster = ClusterContext(num_devices=2)
        cluster.shuffle_step("a", np.array([[50, 100], [200, 60]]))
        cluster.shuffle_step("b", np.array([[0, 300], [400, 0]]))
        assert cluster.link_bytes().tolist() == [[0, 400], [600, 0]]
        assert cluster.emitted_bytes().tolist() == [400, 600]
        assert cluster.received_bytes().tolist() == [600, 400]


class TestAmbientTrace:
    def test_summary_spans_and_counters_reported(self):
        with TraceSession("ambient") as session:
            cluster = ClusterContext(num_devices=2)
            with cluster.compute_step("build") as step:
                step.contexts[0].submit(_kernel(1 << 20))
            cluster.shuffle_step("exchange", np.array([[0, 4096], [0, 0]]))
        names = [e.name for e in session.events]
        assert "cluster:build" in names
        assert "cluster:exchange" in names
        assert session.metrics.value("cluster_shuffle_bytes") == 4096

    def test_no_ambient_trace_is_fine(self):
        cluster = ClusterContext(num_devices=2)
        assert cluster.trace is None
        with cluster.compute_step("quiet") as step:
            step.contexts[0].submit(_kernel(1 << 10))
        assert cluster.total_seconds > 0

    def test_per_device_sessions_stay_private(self):
        with TraceSession("ambient") as ambient:
            cluster = ClusterContext(num_devices=2)
            with cluster.compute_step("build") as step:
                step.contexts[0].submit(_kernel(1 << 20))
        # The kernel landed on the device-private session, not the
        # ambient one (which only holds the summary span).
        assert len(step.sessions[0].kernel_events()) == 1
        assert ambient.kernel_events() == []
