"""Histogram and prefix-sum primitives.

The optimized partitioned hash join (Section 4.3) computes partition
boundaries by building a histogram of radix digits followed by an
exclusive prefix sum.  Both are bandwidth-bound streaming kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats


def histogram(
    ctx: GPUContext,
    codes: np.ndarray,
    num_bins: int,
    phase: Optional[str] = None,
    label: str = "",
) -> np.ndarray:
    """Count occurrences of each code in ``[0, num_bins)``.

    Thread blocks histogram into shared memory and merge with atomics;
    the dominant cost is one sequential read of the codes.
    """
    counts = np.bincount(codes, minlength=num_bins)
    if counts.size > num_bins:
        raise ValueError(
            f"codes contain values >= num_bins ({counts.size - 1} >= {num_bins})"
        )
    stats = KernelStats(
        name=f"histogram:{label}" if label else "histogram",
        items=int(codes.size),
        seq_read_bytes=int(codes.nbytes),
        seq_write_bytes=int(num_bins * 8),
        atomic_ops=num_bins,
    )
    ctx.submit(stats, phase=phase)
    return counts.astype(np.int64)


def exclusive_scan(
    ctx: GPUContext,
    values: np.ndarray,
    phase: Optional[str] = None,
    label: str = "",
) -> np.ndarray:
    """Exclusive prefix sum (offsets from counts)."""
    out = np.zeros_like(values, dtype=np.int64)
    if values.size:
        np.cumsum(values[:-1], out=out[1:])
    stats = KernelStats(
        name=f"scan:{label}" if label else "scan",
        items=int(values.size),
        seq_read_bytes=int(values.nbytes),
        seq_write_bytes=int(out.nbytes),
    )
    ctx.submit(stats, phase=phase)
    return out
