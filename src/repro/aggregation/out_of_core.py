"""Out-of-core grouped aggregation: inputs larger than device memory.

The group-by analogue of :mod:`repro.joins.out_of_core`, used by the
graceful-degradation ladder when even ``PART-AGG`` exceeds the
(injected or real) device budget:

1. radix-partition the rows *on the host* by hashed group-key bits into
   ``B`` blocks — every group lands wholly in one block, and the rows of
   a group keep their original relative order (stable mask selection);
2. per block: transfer in, run the inner in-memory strategy on a fresh
   device context, transfer the (tiny) aggregate output back;
3. merge the per-block outputs.  The blocks' group-key sets are
   disjoint and each is ascending, so a stable sort of the concatenated
   keys reproduces exactly the global ascending key order of the
   in-memory strategies.

Because each group is folded on one block from the same values in the
same order as the in-memory run, the merged output is **bit-identical**
— including order-sensitive float accumulations such as ``mean``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import DeviceOutOfMemoryError
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, CPU_SERVER, DeviceSpec
from ..gpusim.kernel import KernelStats
from ..primitives.grouping import stable_key_order
from ..primitives.radix_partition import partition_codes
from .base import AggSpec, GroupByResult
from .planner import make_groupby_algorithm

#: Working-set multiple of the input bytes a block must fit alongside
#: (partitioned copies plus the accumulator table).
WORKING_SET_FACTOR = 2.0

#: One 8-bit host partitioning pass bounds the staging fan-out.
MAX_BLOCKS = 256


def estimate_groupby_footprint(keys: np.ndarray, values: Dict[str, np.ndarray]) -> int:
    """Bytes an in-memory partitioned aggregation needs on the device."""
    input_bytes = int(keys.nbytes) + sum(int(v.nbytes) for v in values.values())
    return int(input_bytes * WORKING_SET_FACTOR)


@dataclass
class OutOfCoreGroupByResult:
    """Outcome of a block-staged grouped aggregation."""

    output: "OrderedDict[str, np.ndarray]"
    block_results: List[GroupByResult]
    num_blocks: int
    host_partition_seconds: float
    transfer_seconds: float
    merge_seconds: float
    rows: int
    algorithm: str
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def groups(self) -> int:
        return int(self.output["group_key"].size)

    @property
    def device_seconds(self) -> float:
        return sum(res.total_seconds for res in self.block_results)

    @property
    def total_seconds(self) -> float:
        return (
            self.host_partition_seconds
            + self.transfer_seconds
            + self.merge_seconds
            + self.device_seconds
        )

    def column(self, name: str) -> np.ndarray:
        return self.output[name]


class OutOfCoreGroupBy:
    """Stage a group-by through host memory when it exceeds the budget.

    Parameters
    ----------
    inner:
        Name of the in-memory strategy run per block (default
        ``PART-AGG``, the smallest-footprint strategy).
    device_budget_bytes:
        Per-block working-set budget; ``None`` uses the device capacity.
    fault_plan:
        Forwarded (without its capacity pressure) into the per-block
        device contexts so transient kernel faults keep injecting inside
        the degraded execution.
    min_blocks:
        Floor on the staging fan-out — the recovery ladder passes 2 so a
        degradation triggered by an *observed* OOM always re-plans with
        more passes even if the footprint estimate would say "fits".
    """

    def __init__(
        self,
        inner: str = "PART-AGG",
        device_budget_bytes: Optional[int] = None,
        host_device: DeviceSpec = CPU_SERVER,
        config=None,
        fault_plan=None,
        min_blocks: int = 1,
    ):
        self.inner = inner
        self.device_budget_bytes = device_budget_bytes
        self.host_device = host_device
        self.config = config
        self.fault_plan = None if fault_plan is None else fault_plan.without_capacity()
        self.min_blocks = min_blocks

    # -- planning ------------------------------------------------------------

    def plan_blocks(
        self, keys: np.ndarray, values: Dict[str, np.ndarray], budget: int
    ) -> int:
        """Number of staged blocks (a power of two; 1 = fits in memory)."""
        footprint = estimate_groupby_footprint(keys, values)
        ratio = footprint / budget
        if math.ceil(ratio) > MAX_BLOCKS:
            raise DeviceOutOfMemoryError(
                footprint // MAX_BLOCKS,
                0,
                budget,
                label=f"out-of-core block ({MAX_BLOCKS} blocks max)",
            )
        blocks = 1 if footprint <= budget else 1 << max(
            1, math.ceil(math.log2(ratio))
        )
        blocks = max(blocks, self.min_blocks)
        return min(MAX_BLOCKS, 1 << math.ceil(math.log2(blocks)))

    # -- execution ------------------------------------------------------------

    def group_by(
        self,
        keys: np.ndarray,
        values: Dict[str, np.ndarray],
        aggregates: List[AggSpec],
        device: DeviceSpec = A100,
        seed: Optional[int] = None,
    ) -> OutOfCoreGroupByResult:
        keys = np.asarray(keys)
        budget = (
            self.device_budget_bytes
            if self.device_budget_bytes is not None
            else device.global_mem_bytes
        )
        num_blocks = self.plan_blocks(keys, values, budget)
        bits = max(1, int(math.log2(num_blocks)))

        host_ctx = GPUContext(device=self.host_device, seed=seed)
        transfer_ctx = GPUContext(device=device, seed=seed)

        codes = partition_codes(keys, bits, hashed=True)
        input_bytes = int(keys.nbytes) + sum(int(v.nbytes) for v in values.values())
        passes = max(1, -(-bits // 8))
        host_ctx.submit(
            KernelStats(
                name="host_partition",
                items=int(keys.size) * passes,
                seq_read_bytes=input_bytes * passes,
                seq_write_bytes=input_bytes * passes,
                launches=0,
            ),
            phase="host_partition",
        )

        block_results: List[GroupByResult] = []
        for block in range(1 << bits):
            rows = np.flatnonzero(codes == block)
            if rows.size == 0:
                continue
            block_keys = keys[rows]
            block_values = {name: col[rows] for name, col in values.items()}
            block_bytes = int(block_keys.nbytes) + sum(
                int(v.nbytes) for v in block_values.values()
            )
            self._charge_transfer(transfer_ctx, block_bytes, f"transfer_in_{block}")
            ctx = GPUContext(
                device=device,
                seed=None if seed is None else seed + block,
                fault_plan=self.fault_plan,
                fault_site=f"gpu/block{block}",
            )
            result = make_groupby_algorithm(self.inner, self.config).group_by(
                block_keys, block_values, list(aggregates), ctx=ctx
            )
            out_bytes = sum(int(col.nbytes) for col in result.output.values())
            self._charge_transfer(transfer_ctx, out_bytes, f"transfer_out_{block}")
            block_results.append(result)

        output, merge_seconds = self._merge(block_results, aggregates, device)
        return OutOfCoreGroupByResult(
            output=output,
            block_results=block_results,
            num_blocks=num_blocks,
            host_partition_seconds=host_ctx.elapsed_seconds,
            transfer_seconds=transfer_ctx.elapsed_seconds,
            merge_seconds=merge_seconds,
            rows=int(keys.size),
            algorithm=f"OOC[{self.inner}]",
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _charge_transfer(ctx: GPUContext, num_bytes: int, label: str) -> None:
        ctx.submit(
            KernelStats(name=label, host_transfer_bytes=int(num_bytes), launches=0),
            phase="transfer",
        )

    def _merge(self, block_results, aggregates, device):
        """K-way merge of disjoint ascending per-block key sets."""
        if not block_results:
            columns = [("group_key", np.empty(0, dtype=np.int64))]
            columns += [
                (spec.output_name, np.empty(0, dtype=np.int64)) for spec in aggregates
            ]
            return OrderedDict(columns), 0.0
        all_keys = np.concatenate([r.output["group_key"] for r in block_results])
        order = stable_key_order(all_keys)
        output: "OrderedDict[str, np.ndarray]" = OrderedDict()
        output["group_key"] = all_keys[order]
        for name in block_results[0].output:
            if name == "group_key":
                continue
            merged = np.concatenate([r.output[name] for r in block_results])
            output[name] = merged[order]
        merge_ctx = GPUContext(device=device)
        out_bytes = sum(int(col.nbytes) for col in output.values())
        merge_ctx.submit(
            KernelStats(
                name="ooc_merge",
                items=int(all_keys.size),
                seq_read_bytes=out_bytes,
                seq_write_bytes=out_bytes,
            ),
            phase="merge",
        )
        return output, merge_ctx.elapsed_seconds
