"""Aggregation planner rules and emergent cardinality regimes."""

import numpy as np
import pytest

from repro.aggregation import (
    AggSpec,
    GroupByConfig,
    GroupByWorkloadProfile,
    make_groupby_algorithm,
    recommend_groupby_algorithm,
)
from repro.aggregation.hash_groupby import atomic_contention
from repro.aggregation.partitioned_groupby import derive_groupby_bits
from repro.errors import AggregationConfigError
from repro.gpusim.device import A100
from repro.workloads import GroupByWorkloadSpec, generate_groupby_workload


class TestPlannerRules:
    def test_tiny_cardinality_hash(self):
        rec = recommend_groupby_algorithm(
            GroupByWorkloadProfile(rows=1 << 24, estimated_groups=16)
        )
        assert rec.algorithm == "HASH-AGG"
        assert "shared memory" in rec.explain()

    def test_huge_cardinality_partitioned(self):
        rec = recommend_groupby_algorithm(
            GroupByWorkloadProfile(rows=1 << 24, estimated_groups=1 << 23)
        )
        assert rec.algorithm == "PART-AGG"
        assert "exceeds L2" in rec.explain()

    def test_mid_cardinality_contention_rule(self):
        # Table fits L2 but rows-per-group is huge: partitioned wins.
        rec = recommend_groupby_algorithm(
            GroupByWorkloadProfile(rows=1 << 26, estimated_groups=1 << 15)
        )
        assert rec.algorithm == "PART-AGG"

    def test_mid_cardinality_low_contention_hash(self):
        rec = recommend_groupby_algorithm(
            GroupByWorkloadProfile(rows=1 << 20, estimated_groups=1 << 15)
        )
        assert rec.algorithm == "HASH-AGG"

    def test_skew_in_l2_regime_prefers_partitioned(self):
        rec = recommend_groupby_algorithm(
            GroupByWorkloadProfile(
                rows=1 << 20, estimated_groups=1 << 15, zipf_factor=1.5
            )
        )
        assert rec.algorithm == "PART-AGG"


class TestEmergentRegimes:
    """The planner's rules must match what the simulator measures."""

    @pytest.mark.parametrize("groups,expected_winner", [(8, "HASH-AGG"), (20000, "PART-AGG")])
    def test_measured_winner(self, setup, groups, expected_winner):
        keys, values = generate_groupby_workload(
            GroupByWorkloadSpec(rows=1 << 15, groups=groups, seed=0)
        )
        times = {}
        for name in ("HASH-AGG", "SORT-AGG", "PART-AGG"):
            res = make_groupby_algorithm(name).group_by(
                keys, values, [AggSpec("v1", "sum")], device=setup.device, seed=0
            )
            times[name] = res.total_seconds
        assert min(times, key=times.get) == expected_winner

    def test_skew_hurts_hash_not_partitioned(self, setup):
        rows = 1 << 15
        times = {}
        for zipf in (0.0, 1.75):
            keys, values = generate_groupby_workload(
                GroupByWorkloadSpec(rows=rows, groups=rows // 256,
                                    zipf_factor=zipf, seed=0)
            )
            for name in ("HASH-AGG", "PART-AGG"):
                res = make_groupby_algorithm(name).group_by(
                    keys, values, [AggSpec("v1", "sum")], device=setup.device, seed=0
                )
                times[(name, zipf)] = res.total_seconds
        hash_growth = times[("HASH-AGG", 1.75)] / times[("HASH-AGG", 0.0)]
        part_growth = times[("PART-AGG", 1.75)] / times[("PART-AGG", 0.0)]
        assert part_growth < 1.2  # partitioned stays flat
        assert hash_growth >= part_growth


class TestHelpers:
    def test_contention_grows_with_rows_per_group(self):
        few = atomic_contention(np.zeros(1000, dtype=np.int64), 1000)
        many = atomic_contention(np.zeros(1 << 20, dtype=np.int64), 4)
        assert many > few

    def test_contention_empty(self):
        assert atomic_contention(np.empty(0, dtype=np.int64), 0) == 1.0

    def test_derive_bits(self):
        assert derive_groupby_bits(100, 4096) == 1
        assert derive_groupby_bits(1 << 20, 4096) == 8
        assert derive_groupby_bits(1 << 30, 4, forced=None) == 16
        assert derive_groupby_bits(1 << 20, 4096, forced=3) == 3

    def test_config_validation(self):
        with pytest.raises(AggregationConfigError):
            GroupByConfig(tuples_per_partition=0).validate()
        with pytest.raises(AggregationConfigError):
            GroupByConfig(table_load_factor=0.0).validate()
        GroupByConfig().validate()  # defaults valid

    def test_result_metrics(self, setup):
        keys, values = generate_groupby_workload(
            GroupByWorkloadSpec(rows=1000, groups=10, seed=0)
        )
        res = make_groupby_algorithm("PART-AGG").group_by(
            keys, values, [AggSpec("v1", "sum")], device=setup.device
        )
        assert res.throughput_tuples_per_s == pytest.approx(1000 / res.total_seconds)
        assert "PART-AGG" in res.describe()
        assert res.column("group_key").size == res.groups
