"""Sharded joins and grouped aggregations across a simulated cluster.

The scale-out execution strategy of distributed radix joins, expressed
with this library's single-device algorithms as the per-shard kernels:

1. **shuffle** — both inputs are hash-partitioned on the join/group key
   and exchanged so equal keys co-locate (:mod:`repro.cluster.shuffle`);
2. **per-shard compute** — every device runs the *unchanged*
   single-device algorithm (PHJ/SMJ/NPJ join or hash/sort/partitioned
   group-by) on its shard, on its own timeline;
3. **merge** — join outputs stay sharded across devices (the useful end
   state for a pipeline); group-by outputs are gathered to device 0 and
   k-way merged into ascending key order.

Because the shuffle routes *all* rows of a key to one device and keeps
their global relative order (stable buckets, sources concatenated in
device order), the merged results are bit-identical to the
single-device algorithms — including order-sensitive float
accumulations such as ``mean`` — which the oracle suite asserts for
1, 2, 4 and 8 devices.  A one-device cluster skips the shuffle and
merge entirely and reproduces the single-device simulated time exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from ..aggregation.base import AggSpec, GroupByResult
from ..aggregation.planner import (
    GroupByWorkloadProfile,
    estimate_group_cardinality,
    make_groupby_algorithm,
    recommend_groupby_algorithm,
)
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.kernel import KernelStats
from ..joins.base import JoinConfig, JoinResult
from ..joins.planner import JoinWorkloadProfile, make_algorithm, recommend_join_algorithm
from ..primitives.grouping import stable_key_order
from ..relational.relation import Relation
from .context import ClusterContext
from .shuffle import ShuffleResult, shard_to_relation, shuffle_columns, shuffle_relation
from .topology import InterconnectSpec, NVLINK_MESH


def _make_cluster(
    cluster: Optional[ClusterContext],
    device: DeviceSpec,
    num_devices: int,
    interconnect: Union[str, InterconnectSpec],
    seed: Optional[int],
    fault_plan=None,
) -> ClusterContext:
    if cluster is not None:
        return cluster
    return ClusterContext(
        device=device, num_devices=num_devices, interconnect=interconnect, seed=seed,
        fault_plan=fault_plan,
    )


def _step_breakdown(cluster: ClusterContext) -> "OrderedDict[str, float]":
    """Cluster seconds keyed by canonical step group, in clock order."""
    groups = OrderedDict()
    for step in cluster.steps:
        name = step.name.split(":", 1)[0].split("@", 1)[0]
        groups[name] = groups.get(name, 0.0) + step.seconds
    return groups


@dataclass
class ShardedJoinResult:
    """Outcome of one sharded join execution.

    ``output`` is the logical concatenation of the per-device outputs in
    device order (the physical rows stay sharded — see ``per_device``);
    all simulated times live on the cluster clock.
    """

    output: Relation
    algorithm: str
    cluster: ClusterContext
    per_device: List[JoinResult]
    r_shuffle: Optional[ShuffleResult]
    s_shuffle: Optional[ShuffleResult]
    step_seconds: "OrderedDict[str, float]"
    matches: int
    r_rows: int
    s_rows: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def num_devices(self) -> int:
        return self.cluster.num_devices

    @property
    def total_seconds(self) -> float:
        return self.cluster.total_seconds

    @property
    def shuffle_seconds(self) -> float:
        return self.cluster.step_seconds("shuffle")

    @property
    def throughput_tuples_per_s(self) -> float:
        """(|R| + |S|) / cluster time — the paper's throughput metric."""
        if self.total_seconds == 0:
            return float("inf")
        return (self.r_rows + self.s_rows) / self.total_seconds

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}={seconds * 1e3:.3f}ms"
            for name, seconds in self.step_seconds.items()
        )
        return (
            f"{self.algorithm} x{self.num_devices} on "
            f"{self.cluster.spec.describe()}: {self.matches} matches, "
            f"total={self.total_seconds * 1e3:.3f}ms ({parts})"
        )


def _resolve_join_algorithm_name(
    name: str, r: Relation, s: Relation
) -> str:
    """Resolve ``"auto"`` from the *global* relations, so every shard
    runs the same algorithm the single-device planner would pick."""
    if name != "auto":
        return name
    profile = JoinWorkloadProfile.from_relations(r, s)
    return recommend_join_algorithm(profile).algorithm


def sharded_join(
    r: Relation,
    s: Relation,
    algorithm: str = "auto",
    cluster: Optional[ClusterContext] = None,
    device: DeviceSpec = A100,
    num_devices: int = 1,
    interconnect: Union[str, InterconnectSpec] = NVLINK_MESH,
    config: Optional[JoinConfig] = None,
    seed: Optional[int] = None,
    fault_plan=None,
) -> ShardedJoinResult:
    """Inner equi-join ``R ⋈ S`` sharded over a simulated cluster.

    Both relations are shuffled on the join key so every device joins a
    disjoint key range with the unchanged single-device *algorithm*;
    the output rows are the union of the per-device outputs.  With one
    device this degenerates to exactly the single-device join (same
    kernels, same simulated seconds, no shuffle).

    >>> import numpy as np
    >>> from repro.relational import Relation
    >>> r = Relation.from_key_payloads(
    ...     np.arange(1000, dtype=np.int32),
    ...     [np.arange(1000, dtype=np.int32)], payload_prefix="r")
    >>> s = Relation.from_key_payloads(
    ...     np.arange(1000, dtype=np.int32).repeat(2),
    ...     [np.arange(2000, dtype=np.int32)], payload_prefix="s")
    >>> result = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0)
    >>> result.matches, result.num_devices
    (2000, 4)
    >>> sorted(result.step_seconds) == sorted(
    ...     ["shuffle-partition", "shuffle", "join"])
    True
    """
    cluster = _make_cluster(
        cluster, device, num_devices, interconnect, seed, fault_plan
    )
    name = _resolve_join_algorithm_name(algorithm, r, s)

    if cluster.num_devices == 1:
        with cluster.compute_step("join") as step:
            result = make_algorithm(name, config).join(r, s, ctx=step.contexts[0])
        return ShardedJoinResult(
            output=result.output,
            algorithm=name,
            cluster=cluster,
            per_device=[result],
            r_shuffle=None,
            s_shuffle=None,
            step_seconds=_step_breakdown(cluster),
            matches=result.matches,
            r_rows=r.num_rows,
            s_rows=s.num_rows,
        )

    r_shuffle = shuffle_relation(cluster, r, label="R")
    s_shuffle = shuffle_relation(cluster, s, label="S")

    per_device: List[JoinResult] = []
    with cluster.compute_step("join") as step:
        for d in range(cluster.num_devices):
            r_shard = shard_to_relation(r_shuffle.shards[d], r, name=f"{r.name}@{d}")
            s_shard = shard_to_relation(s_shuffle.shards[d], s, name=f"{s.name}@{d}")
            per_device.append(
                make_algorithm(name, config).join(
                    r_shard, s_shard, ctx=step.contexts[d]
                )
            )

    merged = Relation(
        [
            (column, np.concatenate([res.output.column(column) for res in per_device]))
            for column in per_device[0].output.column_names
        ],
        key=per_device[0].output.key,
        name=per_device[0].output.name,
    )
    return ShardedJoinResult(
        output=merged,
        algorithm=name,
        cluster=cluster,
        per_device=per_device,
        r_shuffle=r_shuffle,
        s_shuffle=s_shuffle,
        step_seconds=_step_breakdown(cluster),
        matches=merged.num_rows,
        r_rows=r.num_rows,
        s_rows=s.num_rows,
    )


@dataclass
class ShardedGroupByResult:
    """Outcome of one sharded grouped aggregation."""

    output: "OrderedDict[str, np.ndarray]"
    algorithm: str
    cluster: ClusterContext
    per_device: List[GroupByResult]
    shuffle: Optional[ShuffleResult]
    step_seconds: "OrderedDict[str, float]"
    rows: int
    groups: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def num_devices(self) -> int:
        return self.cluster.num_devices

    @property
    def total_seconds(self) -> float:
        return self.cluster.total_seconds

    @property
    def shuffle_seconds(self) -> float:
        return self.cluster.step_seconds("shuffle")

    @property
    def throughput_tuples_per_s(self) -> float:
        if self.total_seconds == 0:
            return float("inf")
        return self.rows / self.total_seconds

    def column(self, name: str) -> np.ndarray:
        return self.output[name]

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}={seconds * 1e3:.3f}ms"
            for name, seconds in self.step_seconds.items()
        )
        return (
            f"{self.algorithm} x{self.num_devices} on "
            f"{self.cluster.spec.describe()}: {self.groups} groups from "
            f"{self.rows} rows, total={self.total_seconds * 1e3:.3f}ms ({parts})"
        )


def sharded_group_by(
    keys: np.ndarray,
    values: Dict[str, np.ndarray],
    aggregates: List[AggSpec],
    algorithm: str = "auto",
    cluster: Optional[ClusterContext] = None,
    device: DeviceSpec = A100,
    num_devices: int = 1,
    interconnect: Union[str, InterconnectSpec] = NVLINK_MESH,
    config=None,
    seed: Optional[int] = None,
    fault_plan=None,
) -> ShardedGroupByResult:
    """Grouped aggregation sharded over a simulated cluster.

    Rows are shuffled on the group key, so each group is aggregated
    wholly on one device by the unchanged single-device strategy; the
    per-device outputs (disjoint key sets) are gathered to device 0 and
    k-way merged into ascending key order.  With one device this
    degenerates to exactly the single-device aggregation.

    >>> import numpy as np
    >>> from repro.aggregation import AggSpec
    >>> keys = np.arange(64, dtype=np.int32).repeat(16)
    >>> result = sharded_group_by(
    ...     keys, {"v": np.ones(keys.size, dtype=np.int32)},
    ...     [AggSpec("v", "sum")], algorithm="HASH-AGG", num_devices=2, seed=0)
    >>> result.groups, int(result.output["sum_v"][0])
    (64, 16)
    """
    cluster = _make_cluster(
        cluster, device, num_devices, interconnect, seed, fault_plan
    )
    keys = np.asarray(keys)
    if algorithm == "auto":
        profile = GroupByWorkloadProfile(
            rows=int(keys.size),
            estimated_groups=estimate_group_cardinality(keys),
            value_columns=len(values),
            key_bytes=keys.dtype.itemsize,
        )
        algorithm = recommend_groupby_algorithm(profile, device=cluster.device).algorithm

    if cluster.num_devices == 1:
        with cluster.compute_step("aggregate") as step:
            result = make_groupby_algorithm(algorithm, config).group_by(
                keys, values, list(aggregates), ctx=step.contexts[0]
            )
        return ShardedGroupByResult(
            output=result.output,
            algorithm=algorithm,
            cluster=cluster,
            per_device=[result],
            shuffle=None,
            step_seconds=_step_breakdown(cluster),
            rows=int(keys.size),
            groups=result.groups,
        )

    # Shuffle the key column together with every referenced value column.
    key_column = "__group_key__"
    while key_column in values:
        key_column += "_"
    columns = OrderedDict([(key_column, keys)])
    columns.update(values)
    ranges_n = cluster.num_devices
    bounds = np.linspace(0, keys.size, ranges_n + 1).astype(np.int64)
    local = [
        {name: array[bounds[d]: bounds[d + 1]] for name, array in columns.items()}
        for d in range(ranges_n)
    ]
    shuffle = shuffle_columns(cluster, local, key_column, label="keys")

    per_device: List[GroupByResult] = []
    with cluster.compute_step("aggregate") as step:
        for d in range(cluster.num_devices):
            shard = shuffle.shards[d]
            per_device.append(
                make_groupby_algorithm(algorithm, config).group_by(
                    shard[key_column],
                    {name: shard[name] for name in values},
                    list(aggregates),
                    ctx=step.contexts[d],
                )
            )

    # Gather the (small, disjoint) per-device outputs to device 0 ...
    gather = np.zeros((cluster.num_devices, cluster.num_devices), dtype=np.int64)
    for d, res in enumerate(per_device):
        if d != 0:
            gather[d, 0] = sum(int(a.nbytes) for a in res.output.values())
    cluster.shuffle_step("gather", gather, label="result-gather")

    # ... and k-way merge them into ascending group-key order.
    merged_keys = np.concatenate([res.output["group_key"] for res in per_device])
    order = stable_key_order(merged_keys)
    merged: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for column in per_device[0].output:
        merged[column] = np.concatenate(
            [res.output[column] for res in per_device]
        )[order]
    merged_bytes = sum(int(a.nbytes) for a in merged.values())
    with cluster.compute_step("merge") as step:
        step.contexts[0].submit(
            KernelStats(
                name="kway_merge",
                items=int(merged_keys.size),
                seq_read_bytes=merged_bytes,
                seq_write_bytes=merged_bytes,
            ),
            phase="materialize",
        )

    return ShardedGroupByResult(
        output=merged,
        algorithm=algorithm,
        cluster=cluster,
        per_device=per_device,
        shuffle=shuffle,
        step_seconds=_step_breakdown(cluster),
        rows=int(keys.size),
        groups=int(merged_keys.size),
    )
