"""repro — GPU-style relational joins and grouped aggregations.

A faithful, laptop-scale reproduction of the ETH line of work on
efficiently processing joins (GFTR materialization, optimized SMJ/PHJ)
and grouped aggregations on GPUs, built on a calibrated GPU execution
simulator.  See README.md for a tour and DESIGN.md for the architecture
and hardware-substitution rationale.
"""

from .aggregation import (
    AggSpec,
    GROUPBY_ALGORITHMS,
    GroupByConfig,
    GroupByResult,
    HashGroupBy,
    PartitionedGroupBy,
    SortGroupBy,
    recommend_groupby_algorithm,
)
from .api import group_by, join, query_server
from .cancel import CancellationToken, current_token
from .cluster import (
    ClusterContext,
    ClusterSpec,
    InterconnectSpec,
    NVLINK_MESH,
    PCIE_HOST,
    sharded_group_by,
    sharded_join,
    write_cluster_trace,
)
from .errors import (
    AdmissionError,
    AggregationConfigError,
    DeviceOutOfMemoryError,
    FaultPlanError,
    GracefulDegradationError,
    InvalidRelationError,
    JoinConfigError,
    QueryCancelledError,
    ReproError,
    ServeConfigError,
    ShardedExecutionWarning,
    WorkloadError,
)
from .serve import (
    BrownoutController,
    BrownoutPolicy,
    QueryServer,
    QueryTemplate,
    RetryBudget,
    TenantQuota,
    WorkloadDriver,
    write_serve_trace,
)
from .faults import FaultPlan, resilient_group_by, resilient_join
from .gpusim import A100, CPU_SERVER, RTX3090, DeviceSpec, GPUContext, scaled_device
from .obs import (
    TraceSession,
    per_operator_report,
    to_chrome_trace,
    write_chrome_trace,
    write_counters_csv,
)
from .joins import (
    ALGORITHMS,
    CPURadixJoin,
    JoinConfig,
    JoinPipeline,
    JoinResult,
    NonPartitionedHashJoin,
    PartitionedHashJoin,
    PartitionedHashJoinUM,
    SortMergeJoinOM,
    SortMergeJoinUM,
    recommend_join_algorithm,
)
from .relational import DictionaryEncoder, Relation, reference_groupby, reference_join
from .tier import PlacementPolicy, SegmentCache, SegmentedRelation, TieredRuntime

__version__ = "1.0.0"

__all__ = [
    "A100",
    "ALGORITHMS",
    "AdmissionError",
    "AggSpec",
    "AggregationConfigError",
    "BrownoutController",
    "BrownoutPolicy",
    "CPURadixJoin",
    "CPU_SERVER",
    "CancellationToken",
    "ClusterContext",
    "ClusterSpec",
    "DeviceOutOfMemoryError",
    "DeviceSpec",
    "InterconnectSpec",
    "DictionaryEncoder",
    "GPUContext",
    "GROUPBY_ALGORITHMS",
    "GroupByConfig",
    "GroupByResult",
    "HashGroupBy",
    "InvalidRelationError",
    "JoinConfig",
    "JoinConfigError",
    "JoinPipeline",
    "JoinResult",
    "NVLINK_MESH",
    "NonPartitionedHashJoin",
    "PCIE_HOST",
    "PartitionedGroupBy",
    "PartitionedHashJoin",
    "PartitionedHashJoinUM",
    "PlacementPolicy",
    "QueryCancelledError",
    "QueryServer",
    "QueryTemplate",
    "RTX3090",
    "Relation",
    "ReproError",
    "RetryBudget",
    "SegmentCache",
    "SegmentedRelation",
    "ServeConfigError",
    "SortGroupBy",
    "SortMergeJoinOM",
    "SortMergeJoinUM",
    "TenantQuota",
    "TieredRuntime",
    "TraceSession",
    "WorkloadDriver",
    "WorkloadError",
    "current_token",
    "group_by",
    "join",
    "query_server",
    "per_operator_report",
    "recommend_groupby_algorithm",
    "recommend_join_algorithm",
    "reference_groupby",
    "reference_join",
    "scaled_device",
    "sharded_group_by",
    "sharded_join",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_cluster_trace",
    "write_counters_csv",
    "write_serve_trace",
]
