"""Figure 10: time breakdown of wide GPU joins.

Two payload columns per relation, |S| = 2|R|, 100% match ratio.
Materialization dominates the *-UM implementations; the paper's headline
speedups appear here: SMJ-OM ~1.6x SMJ-UM, PHJ-OM ~2.3x PHJ-UM and
~1.4x SMJ-OM, with PHJ-OM the overall winner and NPJ the slowest.
"""

from __future__ import annotations

from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    phase_columns,
    run_algorithm,
)
from .fig08 import PAPER_R_SIZES

ALGORITHMS = ("NPJ", "SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="fig10",
        title="Time breakdown of wide joins (2 payload columns/side, ms)",
        headers=["|R| tuples", "algorithm", "transform_ms", "match_ms",
                 "materialize_ms", "total_ms", "materialize_frac"],
    )
    largest = {}
    for paper_rows in PAPER_R_SIZES:
        spec = JoinWorkloadSpec(
            r_rows=setup.rows(paper_rows),
            s_rows=setup.rows(2 * paper_rows),
            r_payload_columns=2,
            s_payload_columns=2,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        for name in ALGORITHMS:
            res = run_algorithm(name, r, s, setup)
            t, m, z = phase_columns(res)
            result.add_row(
                spec.r_rows, name, t, m, z, res.total_seconds * 1e3,
                res.phase_fraction("materialize"),
            )
            largest[name] = res.total_seconds
    result.findings["smj_om_speedup_over_smj_um"] = largest["SMJ-UM"] / largest["SMJ-OM"]
    result.findings["smj_om_speedup_over_phj_um"] = largest["PHJ-UM"] / largest["SMJ-OM"]
    result.findings["phj_om_speedup_over_phj_um"] = largest["PHJ-UM"] / largest["PHJ-OM"]
    result.findings["phj_om_speedup_over_smj_om"] = largest["SMJ-OM"] / largest["PHJ-OM"]
    result.add_note("findings computed at the largest size point (paper: 1G ⋈ 2G)")
    return result
