"""BufferPool hit/miss observability: ``pool.*`` metrics in trace sessions."""

import numpy as np

from repro.gpusim.context import GPUContext
from repro.gpusim.memory import BufferPool, DeviceMemory
from repro.obs import TraceSession
from repro.query.executor import execute
from repro.query.plan import Join, Scan
from repro.relational.relation import Relation


def test_pool_counters_flow_to_sink():
    session = TraceSession("pool")
    mem = DeviceMemory(pool=BufferPool(sink=session))
    a = mem.from_host(np.arange(1024, dtype=np.int64))
    a.free()  # recycled into the pool
    b = mem.from_host(np.arange(1024, dtype=np.int64))  # pool hit
    c = mem.from_host(np.arange(2048, dtype=np.int64))  # pool miss
    b.free()
    c.free()
    m = session.metrics
    assert m.value("pool.take_hit") == 1.0
    assert m.value("pool.take_miss") >= 2.0  # first alloc + the 2048 one
    assert m.value("pool.recycled") >= 2.0
    assert m.value("pool.pooled_bytes_peak") > 0.0


def test_pool_drop_and_clear_are_counted():
    session = TraceSession("pool")
    pool = BufferPool(max_bytes=4096, sink=session)
    mem = DeviceMemory(pool=pool)
    big = mem.from_host(np.arange(4096, dtype=np.int64))  # 32 KiB > max
    big.free()
    assert session.metrics.value("pool.dropped") == 1.0
    small = mem.from_host(np.arange(64, dtype=np.int64))
    small.free()
    pool.clear()
    assert session.metrics.value("pool.cleared_bytes") == 64 * 8


def test_context_wires_active_session_as_pool_sink():
    with TraceSession("wired") as session:
        ctx = GPUContext()
        assert ctx.mem.pool.sink is session


def test_query_execution_emits_pool_metrics_in_trace():
    rng = np.random.default_rng(3)
    r = Relation(
        [("key", np.arange(500, dtype=np.int64)),
         ("rp", rng.integers(0, 9, 500).astype(np.int64))],
        key="key", name="R",
    )
    s = Relation(
        [("key", rng.integers(0, 500, 5000).astype(np.int64)),
         ("sp", rng.integers(0, 9, 5000).astype(np.int64))],
        key="key", name="S",
    )
    with TraceSession("q") as session:
        execute(Join(Scan(r, "R"), Scan(s, "S")))
    m = session.metrics
    assert m.value("pool.take_miss") > 0.0  # cold pool allocates
    total = m.value("pool.take_hit") + m.value("pool.take_miss")
    assert total > 0.0
