"""Simulated multi-tenant query serving.

The layers below (``gpusim`` -> algorithms -> ``query`` -> ``cluster``
/ ``faults``) execute one query at a time; this package serves *many*:

* :mod:`~repro.serve.streams` — N logical streams multiplexed on one
  simulated device under a deterministic bandwidth-occupancy model;
* :mod:`~repro.serve.server` — :class:`QueryServer`: admission control
  with memory reservations and a bounded priority queue, plan pinning
  and result caching with relation-update invalidation, fault-degraded
  queries that finish without stalling the rest;
* :mod:`~repro.serve.driver` — open/closed-loop workload generation
  over Zipf-popular templates, reporting simulated throughput and
  latency percentiles;
* :mod:`~repro.serve.quota` — per-tenant concurrency/bytes/queue caps
  and the server-wide fault-retry budget;
* :mod:`~repro.serve.brownout` — hysteretic overload degradation and
  low-priority load shedding;
* :mod:`~repro.serve.trace` — the serving timeline as a multi-track
  Chrome trace.

The invariant everything here preserves: serving only re-times queries.
Every output is bit-identical to a direct
:func:`repro.query.executor.execute` of the same plan.
"""

from .brownout import (
    DEGRADED,
    LEVEL_NAMES,
    NORMAL,
    SHED,
    BrownoutController,
    BrownoutPolicy,
    BrownoutTransition,
)
from .cache import (
    DependentLRU,
    PinnedPlan,
    PlanCache,
    ResultCache,
    pin_plan,
    plan_signature,
    relation_fingerprint,
)
from .driver import DriverReport, QueryTemplate, TemplateStats, WorkloadDriver
from .quota import RetryBudget, TenantQuota, TenantState
from .server import (
    QueryOutcome,
    QueryRequest,
    QueryServer,
    ServeReport,
)
from .streams import QueryCompletion, ScheduledItem, StreamScheduler, WorkItem
from .trace import serve_chrome_trace, write_serve_trace

__all__ = [
    "BrownoutController",
    "BrownoutPolicy",
    "BrownoutTransition",
    "DEGRADED",
    "DependentLRU",
    "DriverReport",
    "LEVEL_NAMES",
    "NORMAL",
    "PinnedPlan",
    "PlanCache",
    "QueryCompletion",
    "QueryOutcome",
    "QueryRequest",
    "QueryServer",
    "QueryTemplate",
    "ResultCache",
    "RetryBudget",
    "SHED",
    "ScheduledItem",
    "ServeReport",
    "StreamScheduler",
    "TemplateStats",
    "TenantQuota",
    "TenantState",
    "WorkItem",
    "WorkloadDriver",
    "pin_plan",
    "plan_signature",
    "relation_fingerprint",
    "serve_chrome_trace",
    "write_serve_trace",
]
