"""Shared fixtures for the test suite.

Tests run at a small scale (2^-12 of the paper's 2^27-tuple workloads)
with device geometry scaled identically, so regime behaviour matches
paper scale while the suite stays fast.  See
``repro.gpusim.device.scaled_device`` for the scaling rationale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import make_setup
from repro.gpusim import A100, GPUContext
from repro.gpusim.device import scaled_device

#: Scale used by most tests (2^27 -> 2^15 tuples).
TEST_SCALE = 2.0 ** -12


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def ctx():
    """A fresh full-size A100 context."""
    return GPUContext(device=A100, seed=99)


@pytest.fixture
def scaled_ctx():
    """A context on the geometry-scaled A100 used for shape tests."""
    return GPUContext(device=scaled_device(A100, TEST_SCALE), seed=99)


@pytest.fixture
def setup():
    """The standard scaled experiment setup (device + join config)."""
    return make_setup(TEST_SCALE)
