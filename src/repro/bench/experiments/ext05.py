"""ext05: resilience sweep — recovery overhead under injected faults.

The paper assumes a fault-free accelerator; this extension measures
what its fastest single-device operators pay to *survive* faults
injected by a deterministic :class:`~repro.faults.FaultPlan`.  Two
knobs are swept on a cross product: the transient kernel fault rate
(each kernel launch may fail and be retried with exponential backoff)
and the device capacity fraction (the simulated HBM is shrunk so the
in-memory operator hits device-OOM and must re-plan itself into the
partitioned / out-of-core variant instead of raising).

Every point runs the identical workload under the identical data seed;
only the fault seed and rates differ.  The acceptance bar is the same
as the fault framework's: results at every point must be bit-identical
to the fault-free run (joins up to row order — degraded chunking
permutes the concatenation; group-by exactly), faults must surface as
retry/degradation counters rather than exceptions, and the fault-free
point must reproduce the baseline timing exactly.

The table reports, per (workload, fault_rate, capacity_frac): the
algorithm that actually ran (``OOC[...]`` marks graceful degradation),
injected-fault and retry counts, recovery milliseconds charged to the
simulated clock, total milliseconds, and the overhead ratio over the
fault-free baseline.  Cluster-level fault kinds (link retransmits,
superstep replays, stragglers) are exercised by the fault test suite;
this sweep covers the single-device mechanisms the paper's operators
run on.

Calibration caveat: like ext04 this has no published ground truth —
findings assert internal consistency (bit-identity, degradation
instead of failure, overhead monotone in the injected work).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ...aggregation.base import AggSpec
from ...faults import FaultPlan, resilient_group_by, resilient_join
from ...obs import TraceSession, write_chrome_trace
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ...workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 27
PAPER_GROUPS = 1 << 16
JOIN_ALGORITHM = "PHJ-OM"
GROUPBY_ALGORITHM = "HASH-AGG"
#: Transient kernel fault probabilities swept per capacity point.
FAULT_RATES = (0.0, 0.05, 0.2)
#: Device capacity fractions: full HBM, join-squeezing, and tight enough
#: to push the group-by through the out-of-core ladder as well.
CAPACITY_FRACS = (None, 0.05, 0.001)
#: Counters summed into the "recovery_ms" column.
_RECOVERY_SECONDS = ("fault_retry_seconds",)


def _frac_label(frac: Optional[float]) -> str:
    return "full" if frac is None else f"{frac:g}"


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    fault_seed: int = 7,
    fault_rates: Sequence[float] = FAULT_RATES,
    capacity_fracs: Sequence[Optional[float]] = CAPACITY_FRACS,
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="ext05",
        title=f"Resilience: {JOIN_ALGORITHM} join and {GROUPBY_ALGORITHM} "
        "group-by under injected faults and device-memory pressure",
        headers=[
            "workload", "fault_rate", "capacity", "ran_as",
            "faults", "retries", "recovery_ms", "total_ms",
            "overhead", "identical",
        ],
    )

    join_spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS),
        s_rows=setup.rows(PAPER_ROWS),
        r_payload_columns=2,
        s_payload_columns=2,
        seed=seed,
    )
    r, s = generate_join_workload(join_spec)
    # Floor the key domain at 4K groups: the tightest capacity point must
    # squeeze the aggregation table itself, not just the join state.
    groupby_spec = GroupByWorkloadSpec(
        rows=setup.rows(PAPER_ROWS),
        groups=max(4096, int(PAPER_GROUPS * scale)),
        value_columns=2,
        seed=seed,
    )
    keys, values = generate_groupby_workload(groupby_spec)
    aggregates = [AggSpec("v1", "sum"), AggSpec("v2", "max")]

    # Fault-free baselines: every sweep point is checked against these.
    join_base = resilient_join(
        r, s, algorithm=JOIN_ALGORITHM,
        device=setup.device, config=setup.config, seed=seed,
    )
    agg_base = resilient_group_by(
        keys, dict(values), aggregates, algorithm=GROUPBY_ALGORITHM,
        device=setup.device, seed=seed,
    )

    identical = True
    degraded_any = False
    clean_point_exact = True
    overhead_by_rate = {}
    for rate in fault_rates:
        for frac in capacity_fracs:
            plan = FaultPlan(
                seed=fault_seed, kernel_fault_rate=rate, capacity_frac=frac
            )
            for workload, base in (("join", join_base), ("group-by", agg_base)):
                name = f"ext05-{workload}-r{rate:g}-c{_frac_label(frac)}"
                with TraceSession(name) as session:
                    if workload == "join":
                        res = resilient_join(
                            r, s, algorithm=JOIN_ALGORITHM,
                            device=setup.device, config=setup.config,
                            seed=seed, fault_plan=plan,
                        )
                        same = res.output.equals_unordered(base.output)
                    else:
                        res = resilient_group_by(
                            keys, dict(values), aggregates,
                            algorithm=GROUPBY_ALGORITHM,
                            device=setup.device, seed=seed, fault_plan=plan,
                        )
                        same = all(
                            np.array_equal(res.output[col], base.output[col])
                            for col in base.output
                        )
                identical &= same
                degraded_any |= res.degraded
                faults = int(
                    session.metrics.value("faults_injected_kernel")
                    + session.metrics.value("faults_injected_oom")
                )
                retries = int(session.metrics.value("fault_kernel_retries"))
                recovery_s = sum(
                    session.metrics.value(c) for c in _RECOVERY_SECONDS
                ) + res.wasted_seconds
                overhead = res.total_seconds / base.total_seconds
                if frac is None:
                    overhead_by_rate[(workload, rate)] = overhead
                if rate == 0.0 and frac is None:
                    clean_point_exact &= (
                        res.total_seconds == base.total_seconds
                        and not res.degraded
                    )
                result.add_row(
                    workload, f"{rate:g}", _frac_label(frac), res.algorithm,
                    faults, retries, recovery_s * 1e3,
                    res.total_seconds * 1e3, overhead, "yes" if same else "NO",
                )
                if trace_dir is not None and (res.degraded or retries):
                    write_chrome_trace(
                        session, Path(trace_dir) / f"{name}.trace.json"
                    )

    max_rate = max(fault_rates)
    result.findings["results_bit_identical_all_points"] = float(identical)
    result.findings["capacity_pressure_degrades_not_raises"] = float(degraded_any)
    # The comparative findings need specific sweep points; skip them when
    # a --capacity-frac / custom rate override left those points out.
    if None in capacity_fracs and 0.0 in fault_rates:
        result.findings["fault_free_point_matches_baseline"] = float(
            clean_point_exact
        )
        if max_rate > 0:
            result.findings["retry_overhead_monotone_in_rate"] = float(
                all(
                    overhead_by_rate[(w, max_rate)]
                    >= overhead_by_rate[(w, 0.0)]
                    for w in ("join", "group-by")
                )
            )
    result.add_note(
        "same fault seed => same injected faults => reproducible table; "
        "sweep other seeds with --fault-seed"
    )
    result.add_note(
        "OOC[...] rows re-planned themselves out-of-core on simulated "
        "device-OOM instead of raising; overhead is the price of recovery"
    )
    return result
