"""Figure 7: clustered vs unclustered GATHER with transform cost.

Regenerates the experiment table into ``bench_results/fig07.txt``.
Run: ``pytest benchmarks/bench_fig07.py --benchmark-only -s``
"""

from repro.bench.experiments import fig07

from _common import REPORT_SCALE, run_and_report


def test_fig07(benchmark):
    result = run_and_report(benchmark, fig07.run, REPORT_SCALE)
    assert result.findings["A100_partition_speedup"] > 1.3
