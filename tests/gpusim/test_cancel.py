"""Cooperative cancellation: token semantics and kernel-boundary checks.

The contract under test (see ``repro.cancel``): tokens are checked
*before* new work and charged *after* completed work — a launched
kernel always finishes and is always accounted, exactly like a real GPU
kernel that cannot be interrupted mid-flight.
"""

import pytest

from repro.cancel import CancellationToken, current_token
from repro.errors import QueryCancelledError
from repro.faults import FaultPlan
from repro.gpusim import A100, GPUContext, KernelStats

WORK = KernelStats(name="work", items=1 << 16, seq_read_bytes=1 << 24)


# -- token unit semantics -----------------------------------------------------


def test_charge_advances_the_simulated_position():
    token = CancellationToken(deadline_s=2.0, start_s=0.5)
    assert token.now_s == 0.5
    assert token.remaining_s == 1.5
    token.charge(1.0)
    assert token.now_s == 1.5 and not token.expired
    token.charge(0.5)
    assert token.expired  # now_s == deadline counts as expired
    assert token.remaining_s == 0.0


def test_deadline_free_token_never_expires():
    token = CancellationToken()
    token.charge(1e9)
    assert not token.expired
    assert token.remaining_s == float("inf")
    token.check("anywhere")  # no-op


def test_check_raises_a_typed_error_once_expired():
    token = CancellationToken(deadline_s=1.0, label="q7")
    token.charge(1.0)
    with pytest.raises(QueryCancelledError) as excinfo:
        token.check("kernel:probe")
    error = excinfo.value
    assert error.reason == "deadline"
    assert error.site == "kernel:probe"
    assert error.deadline_s == 1.0
    assert error.consumed_s == 1.0
    assert "q7" in str(error)
    # The token remembers the first observing site.
    assert token.cancelled and token.site == "kernel:probe"


def test_manual_cancel_carries_its_reason():
    token = CancellationToken()
    token.cancel("server-closed")
    with pytest.raises(QueryCancelledError) as excinfo:
        token.check("queue")
    assert excinfo.value.reason == "server-closed"


def test_ambient_activation_is_a_stack():
    outer, inner = CancellationToken(label="outer"), CancellationToken(label="inner")
    assert current_token() is None
    with outer.activated():
        assert current_token() is outer
        with inner.activated():
            assert current_token() is inner
        assert current_token() is outer
    assert current_token() is None


# -- GPUContext integration ---------------------------------------------------


def test_submit_checks_before_launch_and_charges_after():
    token = CancellationToken(deadline_s=1e9)
    ctx = GPUContext(device=A100, seed=0, cancel_token=token)
    ctx.submit(WORK)
    assert token.consumed_s == ctx.elapsed_seconds > 0
    assert token.checks >= 1


def test_launched_kernel_completes_even_past_the_deadline():
    # Deadline smaller than one kernel: the first submit passes the
    # pre-launch check (nothing consumed yet), runs to completion, and
    # is charged past the deadline; only the *next* submit is refused.
    probe = GPUContext(device=A100, seed=0)
    probe.submit(WORK)
    kernel_s = probe.elapsed_seconds

    token = CancellationToken(deadline_s=kernel_s / 2)
    ctx = GPUContext(device=A100, seed=0, cancel_token=token)
    ctx.submit(WORK)
    assert token.consumed_s == pytest.approx(kernel_s)
    with pytest.raises(QueryCancelledError) as excinfo:
        ctx.submit(WORK)
    assert excinfo.value.site == "kernel:work"
    # The refused kernel never ran: no time was charged for it.
    assert ctx.elapsed_seconds == pytest.approx(kernel_s)


def test_deadline_exactly_at_a_kernel_boundary_cancels():
    probe = GPUContext(device=A100, seed=0)
    probe.submit(WORK)
    token = CancellationToken(deadline_s=probe.elapsed_seconds)
    ctx = GPUContext(device=A100, seed=0, cancel_token=token)
    ctx.submit(WORK)  # charges exactly the deadline
    assert token.expired
    with pytest.raises(QueryCancelledError):
        ctx.submit(WORK)


def test_fault_retry_loop_recharges_and_rechecks():
    # Every attempt faults (rate ~1); the lost time of the first failed
    # attempt is charged and the retry-boundary check observes expiry
    # before the next attempt launches.
    token = CancellationToken(deadline_s=1e-12)
    ctx = GPUContext(
        device=A100,
        seed=0,
        cancel_token=token,
        fault_plan=FaultPlan(seed=5, kernel_fault_rate=0.999),
    )
    with pytest.raises(QueryCancelledError) as excinfo:
        ctx.submit(WORK)
    assert excinfo.value.site == "retry:work"
    assert token.consumed_s > 0  # the failed attempt's lost time


def test_context_picks_up_the_ambient_token():
    token = CancellationToken(deadline_s=1e9)
    with token.activated():
        ambient = GPUContext(device=A100, seed=0)
        opted_out = GPUContext(device=A100, seed=0, cancel_token=None)
    assert ambient.cancel_token is token
    assert opted_out.cancel_token is None
    ambient.submit(WORK)
    opted_out.submit(WORK)
    # Only the ambient context charged the token.
    assert token.consumed_s == pytest.approx(ambient.elapsed_seconds)


def test_fork_inherits_the_token():
    token = CancellationToken(deadline_s=1e9)
    ctx = GPUContext(device=A100, seed=0, cancel_token=token)
    assert ctx.fork(seed=1).cancel_token is token


def test_submit_many_checks_once_and_charges_the_batch():
    token = CancellationToken(deadline_s=1e9)
    ctx = GPUContext(device=A100, seed=0, cancel_token=token)
    ctx.submit_many([WORK, WORK])
    assert token.consumed_s == pytest.approx(ctx.elapsed_seconds)

    expired = CancellationToken(deadline_s=1e-12)
    expired.charge(1.0)
    ctx2 = GPUContext(device=A100, seed=0, cancel_token=expired)
    with pytest.raises(QueryCancelledError) as excinfo:
        ctx2.submit_many([WORK, WORK])
    assert excinfo.value.site == "kernel-batch"
    assert ctx2.elapsed_seconds == 0.0
