"""agg05: aggregation planner validation.

Regenerates the experiment table into ``bench_results/agg05.txt``.
Run: ``pytest benchmarks/bench_agg05.py --benchmark-only -s``
"""

from repro.bench.experiments import agg05

from _common import REPORT_SCALE, run_and_report


def test_agg05(benchmark):
    result = run_and_report(benchmark, agg05.run, REPORT_SCALE)
    assert result.findings["planner_accuracy"] >= 0.8
