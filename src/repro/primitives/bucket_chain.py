"""Bucket-chain radix partitioner (Sioulas et al., Section 3.2).

Partitions are chains of fixed-size, pre-allocated buckets.  Thread
blocks histogram into shared memory, then use *atomic* operations to
claim write positions and allocate new buckets — fast, but with two
properties the paper exploits to motivate its new partitioner:

``non-determinism``
    Atomics interleave differently across runs, so the intra-partition
    tuple order differs run to run.  Partitioning ``(key, col_1)`` and
    ``(key, col_2)`` independently yields inconsistent layouts, which is
    why the GFTR pattern cannot be bolted onto bucket chaining
    (Section 4.3).  We simulate this with a per-run RNG permutation of
    each partition's contents.

``fragmentation``
    Buckets are fixed size; the last bucket of each chain is partially
    empty, so the allocation exceeds the data size, and positional lookup
    into a partitioned column is not O(1).

``skew sensitivity``
    Under Zipf-skewed keys one partition's chain becomes hot; bucket
    allocation and offset atomics serialize.  The conflict factor grows
    with the hot-partition share (Figure 14's PHJ-UM blow-up).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from .radix_partition import partition_codes, plan_passes

#: Tuples per fixed-size bucket (keys + one payload column at 4 B each,
#: sized to fit comfortably in shared memory alongside the histogram).
DEFAULT_BUCKET_TUPLES = 4096

#: Atomic-contention calibration: conflict factor grows with the square
#: root of the partition-size imbalance beyond this threshold.
SKEW_CONTENTION_THRESHOLD = 2.0
SKEW_CONTENTION_COEFF = 0.35


def contention_factor(counts: np.ndarray) -> float:
    """Atomic conflict factor implied by a partition-size distribution.

    ``1.0`` for perfectly balanced partitions, growing as the hottest
    partition concentrates an outsized share of tuples.
    """
    total = int(counts.sum())
    if total == 0 or counts.size == 0:
        return 1.0
    mean = total / counts.size
    imbalance = float(counts.max()) / mean if mean > 0 else 1.0
    excess = max(0.0, imbalance - SKEW_CONTENTION_THRESHOLD)
    return 1.0 + SKEW_CONTENTION_COEFF * math.sqrt(excess)


@dataclass
class BucketChainPartitioned:
    """Result of a bucket-chain partitioning run."""

    keys: np.ndarray
    payloads: List[np.ndarray]
    counts: np.ndarray
    offsets: np.ndarray
    total_bits: int
    bucket_tuples: int
    #: bytes reserved for bucket chains (>= data bytes: fragmentation)
    allocated_bytes: int
    used_bytes: int
    #: conflict factor charged for the atomics of this run
    conflict_factor: float

    @property
    def num_partitions(self) -> int:
        return int(self.counts.size)

    @property
    def fragmentation_bytes(self) -> int:
        return self.allocated_bytes - self.used_bytes

    @property
    def buckets_per_partition(self) -> np.ndarray:
        return np.maximum(1, -(-self.counts // self.bucket_tuples))


def bucket_chain_partition(
    ctx: GPUContext,
    keys: np.ndarray,
    payloads: Sequence[np.ndarray],
    total_bits: int,
    bucket_tuples: int = DEFAULT_BUCKET_TUPLES,
    phase: Optional[str] = None,
    hashed: bool = False,
    label: str = "",
) -> BucketChainPartitioned:
    """Partition with bucket chains into ``2**total_bits`` partitions.

    Tuples land grouped by partition (ascending partition id) but in a
    *run-dependent* order within each partition, drawn from the context
    RNG — the simulated equivalent of atomic write-order races.
    """
    n = int(keys.size)
    codes = partition_codes(keys, total_bits, hashed=hashed)
    # Random tie-breaker models the unpredictable atomic completion order.
    tie_breaker = ctx.rng.random(n)
    order = np.lexsort((tie_breaker, codes))
    keys_out = keys[order]
    payloads_out = [p[order] for p in payloads]

    counts = np.bincount(codes, minlength=1 << total_bits).astype(np.int64)
    offsets = np.zeros_like(counts)
    np.cumsum(counts[:-1], out=offsets[1:])

    tuple_bytes = int(keys.dtype.itemsize) + sum(int(p.dtype.itemsize) for p in payloads)
    # Every partition gets an initial bucket up front (Section 3.2), then
    # one bucket per further `bucket_tuples` tuples.
    buckets = np.maximum(1, -(-counts // bucket_tuples))
    allocated = int(buckets.sum()) * bucket_tuples * tuple_bytes
    used = n * tuple_bytes

    conflict = contention_factor(counts)
    payload_bytes = sum(int(p.nbytes) for p in payloads)
    ctx.count("partition_passes", len(plan_passes(total_bits)))
    for start_bit, num_bits in plan_passes(total_bits):
        del start_bit  # traffic identical per pass
        ctx.submit(
            KernelStats(
                name=f"bucket_chain:{label}" if label else "bucket_chain",
                items=n,
                seq_read_bytes=2 * int(keys.nbytes) + payload_bytes,
                seq_write_bytes=int(keys.nbytes) + payload_bytes,
                atomic_ops=n + int(buckets.sum()),
                atomic_conflict_factor=conflict,
            ),
            phase=phase,
            num_bits=num_bits,
        )

    return BucketChainPartitioned(
        keys=keys_out,
        payloads=payloads_out,
        counts=counts,
        offsets=offsets,
        total_bits=total_bits,
        bucket_tuples=bucket_tuples,
        allocated_bytes=allocated,
        used_bytes=used,
        conflict_factor=conflict,
    )
