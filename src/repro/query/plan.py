"""Logical query plans over the library's operators.

A minimal composable layer for the pipelines the paper motivates: scans,
projections, primary-key/foreign-key joins, and grouped aggregations,
assembled into a tree and executed on the simulated device.  The
executor applies two classical optimizations before running:

* **projection pushdown** — a ``Project`` directly above a ``Join``
  folds into the join's materialization (``JoinConfig.projection``);
* **join-aggregate fusion** — an ``Aggregate`` directly above a ``Join``
  runs through :class:`~repro.joins.fused.FusedJoinAggregate`, folding
  during materialization.

Plans are data; nodes are immutable and reusable.  ``Aggregate`` (if
present) must be the plan root — grouped outputs are column dicts, not
relations, so nothing can consume them further.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..aggregation.base import AggSpec
from ..errors import JoinConfigError
from ..relational.relation import Relation


@dataclass(frozen=True)
class Scan:
    """A base relation."""

    relation: Relation
    label: str = ""

    def describe(self) -> str:
        name = self.label or self.relation.name or "relation"
        return f"Scan({name})"


@dataclass(frozen=True)
class Project:
    """Keep only the named payload columns (the key always survives)."""

    child: "PlanNode"
    columns: Tuple[str, ...]

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass(frozen=True)
class Join:
    """Inner equi-join; the left input is the build (PK) side."""

    left: "PlanNode"
    right: "PlanNode"
    algorithm: str = "auto"

    def describe(self) -> str:
        return f"Join[{self.algorithm}]"


@dataclass(frozen=True)
class Aggregate:
    """Group the child's rows by one column and fold aggregates."""

    child: "PlanNode"
    group_column: str
    aggregates: Tuple[AggSpec, ...]
    algorithm: str = "auto"

    def describe(self) -> str:
        aggs = ", ".join(spec.output_name for spec in self.aggregates)
        return f"Aggregate[{self.algorithm}](by {self.group_column}: {aggs})"


PlanNode = Union[Scan, Project, Join, Aggregate]


@dataclass
class OperatorTrace:
    """One executed operator with its simulated cost.

    ``algorithm`` is the physical algorithm the planner resolved for
    this operator (e.g. ``"PHJ-OM"``; fused join-aggregates report
    ``"<join>+<group-by>"``), empty for operators with no algorithm
    choice.  The serving layer's plan cache pins plans from it.
    """

    description: str
    seconds: float
    rows: int
    extras: Dict[str, float] = field(default_factory=dict)
    algorithm: str = ""


@dataclass
class QueryResult:
    """Output plus the per-operator execution trace."""

    #: the final Relation, or an OrderedDict for an Aggregate root
    output: object
    trace: List[OperatorTrace]
    #: the TraceSession that captured this run, when tracing was active
    session: Optional[object] = None

    @property
    def total_seconds(self) -> float:
        return sum(op.seconds for op in self.trace)

    def explain(self) -> str:
        lines = []
        for op in self.trace:
            lines.append(
                f"{op.description:50s} {op.seconds * 1e3:9.4f} ms  "
                f"{op.rows:>10d} rows"
            )
        lines.append(f"{'total':50s} {self.total_seconds * 1e3:9.4f} ms")
        return "\n".join(lines)


def validate_plan(node: PlanNode, is_root: bool = True) -> None:
    """Reject malformed plans with actionable errors."""
    if isinstance(node, Scan):
        return
    if isinstance(node, Project):
        if not node.columns:
            raise JoinConfigError("Project needs at least one column")
        validate_plan(node.child, is_root=False)
        return
    if isinstance(node, Join):
        validate_plan(node.left, is_root=False)
        validate_plan(node.right, is_root=False)
        return
    if isinstance(node, Aggregate):
        if not is_root:
            raise JoinConfigError("Aggregate must be the plan root")
        if not node.aggregates:
            raise JoinConfigError("Aggregate needs at least one AggSpec")
        validate_plan(node.child, is_root=False)
        return
    raise JoinConfigError(f"unknown plan node {type(node).__name__}")


def aggregate_input_columns(node: Aggregate) -> Tuple[str, ...]:
    """Columns an Aggregate reads from its child."""
    needed: List[str] = [node.group_column]
    for spec in node.aggregates:
        if spec.op != "count" and spec.column not in needed:
            needed.append(spec.column)
    return tuple(needed)
