"""NPJ traffic characteristics and the CPU baseline's device routing."""

import numpy as np
import pytest

from repro.gpusim import CPU_SERVER, GPUContext
from repro.gpusim.device import scaled_device
from repro.joins import CPURadixJoin, NonPartitionedHashJoin, PartitionedHashJoin
from repro.relational import reference_join
from repro.workloads import JoinWorkloadSpec, generate_join_workload


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=4096, s_rows=8192, r_payload_columns=2,
                         s_payload_columns=2, seed=3)
    )


class TestNPJ:
    def test_random_table_traffic_charged(self, relations, setup):
        r, s = relations
        ctx = GPUContext(device=setup.device, seed=0)
        NonPartitionedHashJoin(setup.config).join(r, s, ctx=ctx)
        names = {rec.stats.name for rec in ctx.timeline.records()}
        assert "npj_build" in names
        assert "npj_probe" in names
        build = next(rec.stats for rec in ctx.timeline.records()
                     if rec.stats.name == "npj_build")
        assert build.random_sector_touches > 0

    def test_probe_side_materialization_clustered(self, relations, setup):
        """Figure 10's nuance: NPJ's probe-side gathers stay clustered."""
        r, s = relations
        ctx = GPUContext(device=setup.device, seed=0)
        NonPartitionedHashJoin(setup.config).join(r, s, ctx=ctx)
        gathers = {
            rec.stats.name: rec.stats
            for rec in ctx.timeline.records("materialize")
        }
        probe_side = gathers["gather:s1"]
        build_side = gathers["gather:r1"]
        assert probe_side.sectors_per_request < build_side.sectors_per_request

    def test_slower_than_partitioned_beyond_l2(self, setup):
        """cuDF's random table accesses lose once the table spills L2."""
        r, s = generate_join_workload(
            JoinWorkloadSpec(r_rows=1 << 15, s_rows=1 << 16,
                             r_payload_columns=1, s_payload_columns=1, seed=0)
        )
        npj = NonPartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        phj = PartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        assert npj.total_seconds > phj.total_seconds

    def test_handles_duplicate_build_keys(self, setup):
        rng = np.random.default_rng(0)
        from repro.relational import Relation

        keys = rng.integers(0, 100, 500).astype(np.int32)
        r = Relation.from_key_payloads(keys, [keys * 2], payload_prefix="r")
        s = Relation.from_key_payloads(
            rng.integers(0, 100, 700).astype(np.int32),
            [np.arange(700, dtype=np.int32)], payload_prefix="s",
        )
        result = NonPartitionedHashJoin().join(r, s, seed=0)
        assert result.output.equals_unordered(reference_join(r, s))


class TestCPUBaseline:
    def test_defaults_to_cpu_device(self, relations):
        r, s = relations
        result = CPURadixJoin().join(r, s, seed=0)
        assert result.device.kind == "cpu"
        assert result.algorithm == "CPU"

    def test_respects_explicit_device(self, relations):
        r, s = relations
        custom = scaled_device(CPU_SERVER, 0.5)
        result = CPURadixJoin().join(r, s, device=custom, seed=0)
        assert result.device is custom

    def test_correct_output(self, relations):
        r, s = relations
        result = CPURadixJoin().join(r, s, seed=0)
        assert result.output.equals_unordered(reference_join(r, s))

    def test_slower_than_gpu_at_scale(self, setup):
        r, s = generate_join_workload(
            JoinWorkloadSpec(r_rows=1 << 15, s_rows=1 << 16,
                             r_payload_columns=1, s_payload_columns=1, seed=0)
        )
        gpu = PartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        cpu = CPURadixJoin(setup.config).join(r, s, device=setup.cpu_device)
        assert cpu.total_seconds > 5 * gpu.total_seconds
