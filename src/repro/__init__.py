"""repro — GPU-style relational joins and grouped aggregations.

A faithful, laptop-scale reproduction of the ETH line of work on
efficiently processing joins (GFTR materialization, optimized SMJ/PHJ)
and grouped aggregations on GPUs, built on a calibrated GPU execution
simulator.  See README.md for a tour and DESIGN.md for the architecture
and hardware-substitution rationale.
"""

from .aggregation import (
    AggSpec,
    GROUPBY_ALGORITHMS,
    GroupByConfig,
    GroupByResult,
    HashGroupBy,
    PartitionedGroupBy,
    SortGroupBy,
    recommend_groupby_algorithm,
)
from .api import group_by, join
from .cluster import (
    ClusterContext,
    ClusterSpec,
    InterconnectSpec,
    NVLINK_MESH,
    PCIE_HOST,
    sharded_group_by,
    sharded_join,
    write_cluster_trace,
)
from .errors import (
    AggregationConfigError,
    DeviceOutOfMemoryError,
    FaultPlanError,
    GracefulDegradationError,
    InvalidRelationError,
    JoinConfigError,
    ReproError,
    ShardedExecutionWarning,
    WorkloadError,
)
from .faults import FaultPlan, resilient_group_by, resilient_join
from .gpusim import A100, CPU_SERVER, RTX3090, DeviceSpec, GPUContext, scaled_device
from .obs import (
    TraceSession,
    per_operator_report,
    to_chrome_trace,
    write_chrome_trace,
    write_counters_csv,
)
from .joins import (
    ALGORITHMS,
    CPURadixJoin,
    JoinConfig,
    JoinPipeline,
    JoinResult,
    NonPartitionedHashJoin,
    PartitionedHashJoin,
    PartitionedHashJoinUM,
    SortMergeJoinOM,
    SortMergeJoinUM,
    recommend_join_algorithm,
)
from .relational import DictionaryEncoder, Relation, reference_groupby, reference_join

__version__ = "1.0.0"

__all__ = [
    "A100",
    "ALGORITHMS",
    "AggSpec",
    "AggregationConfigError",
    "CPURadixJoin",
    "CPU_SERVER",
    "ClusterContext",
    "ClusterSpec",
    "DeviceOutOfMemoryError",
    "DeviceSpec",
    "InterconnectSpec",
    "DictionaryEncoder",
    "GPUContext",
    "GROUPBY_ALGORITHMS",
    "GroupByConfig",
    "GroupByResult",
    "HashGroupBy",
    "InvalidRelationError",
    "JoinConfig",
    "JoinConfigError",
    "JoinPipeline",
    "JoinResult",
    "NVLINK_MESH",
    "NonPartitionedHashJoin",
    "PCIE_HOST",
    "PartitionedGroupBy",
    "PartitionedHashJoin",
    "PartitionedHashJoinUM",
    "RTX3090",
    "Relation",
    "ReproError",
    "SortGroupBy",
    "SortMergeJoinOM",
    "SortMergeJoinUM",
    "TraceSession",
    "WorkloadError",
    "group_by",
    "join",
    "per_operator_report",
    "recommend_groupby_algorithm",
    "recommend_join_algorithm",
    "reference_groupby",
    "reference_join",
    "scaled_device",
    "sharded_group_by",
    "sharded_join",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_cluster_trace",
    "write_counters_csv",
]
