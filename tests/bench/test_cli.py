"""The ``python -m repro.bench`` experiment runner."""

import pytest

from repro.bench.__main__ import build_parser, main
from repro.bench.reporting import OUTPUT_DIR_ENV


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.scale > 0

    def test_scale_override(self):
        args = build_parser().parse_args(["fig01", "--scale", "0.001"])
        assert args.experiments == ["fig01"]
        assert args.scale == pytest.approx(0.001)

    def test_resilience_knobs(self):
        args = build_parser().parse_args(
            ["ext05", "--fault-seed", "11", "--capacity-frac", "0.05", "0.001"]
        )
        assert args.fault_seed == 11
        assert args.capacity_frac == [pytest.approx(0.05), pytest.approx(0.001)]


class TestMain:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "agg01" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["figXX"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_runs_one_experiment(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(OUTPUT_DIR_ENV, str(tmp_path))
        assert main(["tab04", "--scale", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "tab04" in out
        assert (tmp_path / "tab04.txt").exists()
