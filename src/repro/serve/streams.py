"""Stream-concurrent scheduling of simulated kernels.

The paper's cost accounting gives every kernel a *solo* duration — its
simulated seconds when it owns the whole device.  A serving workload
runs many queries at once, so the :class:`StreamScheduler` multiplexes
N logical CUDA-style streams onto one simulated device and answers the
question the one-query-at-a-time layers cannot: *when does each kernel
of each concurrent query actually finish?*

Occupancy model
---------------

Co-scheduled kernels contend for DRAM bandwidth.  With ``k`` streams
busy, each active kernel progresses at rate::

    share(k) = 1 / (1 + interference * (k - 1))

``interference`` in ``[0, 1]`` is the bandwidth-bound fraction of
kernel time: ``0`` models perfectly-overlapping kernels (linear
scaling), ``1`` models pure time-slicing (no concurrency gain).  For
any value below 1 the aggregate service rate ``k * share(k)`` grows
with ``k`` and saturates at ``1 / interference`` — the shape of real
concurrent-kernel throughput on a bandwidth-bound device.  The default
(0.6) matches the memory-bound character of the paper's join and
aggregation kernels: materialization and partitioning stream bytes and
co-run poorly, while launch/compute slack overlaps.

The schedule is a deterministic discrete-event simulation: rates only
change when a query starts or finishes, kernels within a stream run
back-to-back in submission order, and ties resolve by stream index.
Scheduling therefore never touches relational data — it reorders and
stretches *time*, which is exactly what the determinism suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ServeConfigError

#: Events closer than this (simulated seconds) are considered
#: simultaneous, absorbing float round-off in work draining.
_EPS = 1e-15


@dataclass(frozen=True)
class WorkItem:
    """One unit of device work (a kernel or operator) with its solo time."""

    name: str
    seconds: float


@dataclass
class ScheduledItem:
    """One work item as it actually ran on the shared device."""

    name: str
    query_id: int
    stream: int
    start_s: float
    end_s: float
    solo_seconds: float

    @property
    def stretch(self) -> float:
        """Slowdown over the solo duration (1.0 = ran alone)."""
        if self.solo_seconds <= 0:
            return 1.0
        return (self.end_s - self.start_s) / self.solo_seconds


@dataclass
class QueryCompletion:
    """A query leaving the device, with its service interval.

    ``cancelled`` marks a deadline termination: the query's deadline
    passed while its kernels were stretching under contention, and the
    scheduler released the stream at the next kernel boundary (in-flight
    kernels always complete — cancellation is cooperative here too).
    ``solo_seconds`` then covers only the kernels that actually ran.
    """

    query_id: int
    stream: int
    start_s: float
    finish_s: float
    solo_seconds: float
    cancelled: bool = False


@dataclass
class _Active:
    """Book-keeping for one query in service."""

    query_id: int
    stream: int
    items: List[WorkItem]
    index: int = 0
    remaining: float = 0.0  #: solo-seconds left of the current item
    item_start_s: float = 0.0
    start_s: float = 0.0
    solo_seconds: float = 0.0
    deadline_s: Optional[float] = None
    scheduled: List[ScheduledItem] = field(default_factory=list)


class StreamScheduler:
    """Deterministic processor-sharing of one simulated device.

    >>> from repro.serve.streams import StreamScheduler, WorkItem
    >>> sched = StreamScheduler(streams=2, interference=0.5)
    >>> sched.start(0, [WorkItem("probe", 1.0)], at_s=0.0)
    0
    >>> sched.start(1, [WorkItem("probe", 1.0)], at_s=0.0)
    1
    >>> done = sched.advance_to(float("inf"))
    >>> round(done.finish_s, 6)  # both share: 1.0 / share(2) = 1.5
    1.5
    """

    def __init__(self, streams: int, interference: float = 0.6):
        if streams < 1:
            raise ServeConfigError(f"streams must be >= 1, got {streams}")
        if not 0.0 <= interference <= 1.0:
            raise ServeConfigError(
                f"interference must be in [0, 1], got {interference}"
            )
        self.num_streams = streams
        self.interference = interference
        self.clock_s = 0.0
        self._streams: List[Optional[_Active]] = [None] * streams
        self.history: List[ScheduledItem] = []
        self.peak_concurrency = 0

    # -- occupancy ---------------------------------------------------------

    @property
    def active_count(self) -> int:
        return sum(1 for slot in self._streams if slot is not None)

    @property
    def busy(self) -> bool:
        return self.active_count > 0

    def free_streams(self) -> int:
        return self.num_streams - self.active_count

    def share(self, active: Optional[int] = None) -> float:
        """Progress rate of each active kernel with *active* streams busy."""
        k = self.active_count if active is None else active
        if k <= 1:
            return 1.0
        return 1.0 / (1.0 + self.interference * (k - 1))

    # -- admission to service ----------------------------------------------

    def start(
        self,
        query_id: int,
        items: Sequence[WorkItem],
        at_s: float,
        deadline_s: Optional[float] = None,
    ) -> int:
        """Place a query on a free stream at *at_s*; returns the stream.

        ``at_s`` must not precede the scheduler clock (service cannot
        start in the past); the clock advances to ``at_s``.  With a
        ``deadline_s``, the query is cancelled at the first kernel
        boundary at or past the deadline (its completion comes back
        with ``cancelled=True``); contention can therefore push a query
        past a deadline its solo time would have met.
        """
        if at_s < self.clock_s - _EPS:
            raise ServeConfigError(
                f"cannot start at {at_s}; scheduler clock is {self.clock_s}"
            )
        self.clock_s = max(self.clock_s, at_s)
        stream = next(
            (i for i, slot in enumerate(self._streams) if slot is None), None
        )
        if stream is None:
            raise ServeConfigError("no free stream; check free_streams() first")
        work = [item for item in items if item.seconds > 0]
        if not work:
            work = [WorkItem("noop", _EPS)]
        active = _Active(
            query_id=query_id,
            stream=stream,
            items=work,
            remaining=work[0].seconds,
            item_start_s=self.clock_s,
            start_s=self.clock_s,
            solo_seconds=sum(item.seconds for item in work),
            deadline_s=deadline_s,
        )
        self._streams[stream] = active
        self.peak_concurrency = max(self.peak_concurrency, self.active_count)
        return stream

    # -- the event loop ----------------------------------------------------

    def next_completion_in(self) -> float:
        """Seconds until the next kernel completes (inf when idle)."""
        rate = self.share()
        horizon = float("inf")
        for slot in self._streams:
            if slot is not None:
                horizon = min(horizon, slot.remaining / rate)
        return horizon

    def advance_to(self, t_limit: float) -> Optional[QueryCompletion]:
        """Drain work until a query completes or the clock hits *t_limit*.

        Returns the first :class:`QueryCompletion` at or before
        *t_limit* (clock parked at its finish time so the caller can
        react — free memory, admit queued queries — before time moves
        on), or ``None`` once the clock reaches *t_limit* with no query
        finishing (kernel completions inside the window are processed
        silently; they do not change rates).
        """
        while self.busy:
            dt = self.next_completion_in()
            if self.clock_s + dt > t_limit + _EPS:
                # Next kernel boundary is beyond the horizon: drain
                # partial progress and park at the limit.
                self._drain(t_limit - self.clock_s)
                self.clock_s = t_limit
                return None
            self._drain(dt)
            self.clock_s += dt
            completion = self._finish_boundary_kernels()
            if completion is not None:
                return completion
        if t_limit != float("inf"):
            self.clock_s = max(self.clock_s, t_limit)
        return None

    def _drain(self, dt: float) -> None:
        """Progress every active kernel by ``dt`` wall-seconds of sharing."""
        if dt <= 0:
            return
        rate = self.share()
        for slot in self._streams:
            if slot is not None:
                slot.remaining -= dt * rate

    def _finish_boundary_kernels(self) -> Optional[QueryCompletion]:
        """Retire kernels whose work just hit zero; lowest stream first.

        Returns the first completed *query* (at most one per call: the
        caller reacts before any other stream is examined further, but
        since simultaneous completions share the same clock instant,
        processing them across successive calls is equivalent and keeps
        the accounting simple).
        """
        for stream, slot in enumerate(self._streams):
            if slot is None or slot.remaining > _EPS:
                continue
            item = slot.items[slot.index]
            record = ScheduledItem(
                name=item.name,
                query_id=slot.query_id,
                stream=stream,
                start_s=slot.item_start_s,
                end_s=self.clock_s,
                solo_seconds=item.seconds,
            )
            slot.scheduled.append(record)
            self.history.append(record)
            slot.index += 1
            if slot.index < len(slot.items):
                if (
                    slot.deadline_s is not None
                    and self.clock_s >= slot.deadline_s - _EPS
                ):
                    # Deadline passed with kernels still pending: release
                    # the stream now rather than finish doomed work.  The
                    # just-retired kernel stays charged (it did run).
                    self._streams[stream] = None
                    return QueryCompletion(
                        query_id=slot.query_id,
                        stream=stream,
                        start_s=slot.start_s,
                        finish_s=self.clock_s,
                        solo_seconds=sum(
                            item.seconds for item in slot.items[: slot.index]
                        ),
                        cancelled=True,
                    )
                slot.remaining = slot.items[slot.index].seconds
                slot.item_start_s = self.clock_s
                continue
            self._streams[stream] = None
            return QueryCompletion(
                query_id=slot.query_id,
                stream=stream,
                start_s=slot.start_s,
                finish_s=self.clock_s,
                solo_seconds=slot.solo_seconds,
            )
        return None
