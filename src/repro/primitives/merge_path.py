"""Merge Path based merge-join primitives (Green et al., ModernGPU).

The Merge Path algorithm splits two sorted arrays into balanced,
independently mergeable partition pairs, which makes GPU merging
skew-resilient: every thread gets the same amount of work regardless of
the data distribution (Section 3.1).  Rui et al. and ModernGPU run it
twice — once for the lower and once for the upper bound of each probe
key; for primary-foreign-key joins a single pass suffices, which is the
paper's first SMJ optimization (and our ablation abl02).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats


def _merge_pass_stats(
    name: str, r_keys: np.ndarray, s_keys: np.ndarray, out_bytes: int
) -> KernelStats:
    """One balanced merge pass: stream both inputs, write the bounds."""
    n = int(r_keys.size + s_keys.size)
    return KernelStats(
        name=name,
        items=n,
        seq_read_bytes=int(r_keys.nbytes + s_keys.nbytes),
        seq_write_bytes=int(out_bytes),
        # Merge Path diagonal binary searches: tiny log-factor overhead,
        # modeled as extra items of compute.
        atomic_ops=0,
    )


def lower_bounds(
    ctx: GPUContext,
    r_keys_sorted: np.ndarray,
    s_keys_sorted: np.ndarray,
    phase: Optional[str] = None,
    label: str = "",
) -> np.ndarray:
    """Position of the first element ``>= s`` in *r*, for each s key."""
    bounds = np.searchsorted(r_keys_sorted, s_keys_sorted, side="left")
    ctx.submit(
        _merge_pass_stats(
            f"merge_path_lower:{label}" if label else "merge_path_lower",
            r_keys_sorted,
            s_keys_sorted,
            out_bytes=int(bounds.size * 4),
        ),
        phase=phase,
    )
    return bounds


def upper_bounds(
    ctx: GPUContext,
    r_keys_sorted: np.ndarray,
    s_keys_sorted: np.ndarray,
    phase: Optional[str] = None,
    label: str = "",
) -> np.ndarray:
    """Position one past the last element ``<= s`` in *r*, per s key."""
    bounds = np.searchsorted(r_keys_sorted, s_keys_sorted, side="right")
    ctx.submit(
        _merge_pass_stats(
            f"merge_path_upper:{label}" if label else "merge_path_upper",
            r_keys_sorted,
            s_keys_sorted,
            out_bytes=int(bounds.size * 4),
        ),
        phase=phase,
    )
    return bounds


def match_bounds(
    ctx: GPUContext,
    r_keys_sorted: np.ndarray,
    s_keys_sorted: np.ndarray,
    unique_build_keys: bool,
    phase: Optional[str] = None,
    label: str = "",
) -> Tuple[np.ndarray, np.ndarray]:
    """Lower/upper match ranges of every s key within sorted r keys.

    For a primary-key build side (``unique_build_keys=True``) only one
    Merge Path pass is executed — a foreign key has at most one partner —
    and the upper bound is derived by comparison rather than a second
    merge (Section 3.1).  Otherwise both passes run.
    """
    lo = lower_bounds(ctx, r_keys_sorted, s_keys_sorted, phase=phase, label=label)
    if unique_build_keys:
        clipped = np.minimum(lo, max(r_keys_sorted.size - 1, 0))
        if r_keys_sorted.size:
            matched = r_keys_sorted[clipped] == s_keys_sorted
        else:
            matched = np.zeros(s_keys_sorted.shape, dtype=bool)
        hi = lo + matched.astype(lo.dtype)
        return lo, hi
    hi = upper_bounds(ctx, r_keys_sorted, s_keys_sorted, phase=phase, label=label)
    return lo, hi
