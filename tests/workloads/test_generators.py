"""Join workload generators: distributions, ratios, validation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.relational import join_match_indices
from repro.workloads import (
    JoinWorkloadSpec,
    gb,
    generate_join_workload,
    rows_for_bytes,
    workload_from_gb,
)


class TestBasicShape:
    def test_row_counts_and_columns(self):
        spec = JoinWorkloadSpec(r_rows=100, s_rows=300, r_payload_columns=3,
                                s_payload_columns=1, seed=0)
        r, s = generate_join_workload(spec)
        assert r.num_rows == 100 and s.num_rows == 300
        assert r.payload_names == ["r1", "r2", "r3"]
        assert s.payload_names == ["s1"]

    def test_primary_keys_unique_and_shuffled(self):
        spec = JoinWorkloadSpec(r_rows=1000, s_rows=100, seed=1)
        r, _ = generate_join_workload(spec)
        assert np.unique(r.key_values).size == 1000
        assert not np.array_equal(r.key_values, np.arange(1000))  # shuffled

    def test_foreign_keys_in_domain(self):
        spec = JoinWorkloadSpec(r_rows=500, s_rows=2000, seed=2)
        _, s = generate_join_workload(spec)
        assert s.key_values.min() >= 0
        assert s.key_values.max() < 500

    def test_dtypes(self):
        spec = JoinWorkloadSpec(r_rows=10, s_rows=10, key_type="int64",
                                payload_type="int64", seed=0)
        r, s = generate_join_workload(spec)
        assert r.key_values.dtype == np.int64
        assert s.column("s1").dtype == np.int64

    def test_deterministic_for_seed(self):
        spec = JoinWorkloadSpec(r_rows=100, s_rows=100, seed=7)
        r1, _ = generate_join_workload(spec)
        r2, _ = generate_join_workload(spec)
        assert np.array_equal(r1.key_values, r2.key_values)


class TestMatchRatio:
    @pytest.mark.parametrize("ratio", [0.0, 0.25, 0.5, 1.0])
    def test_achieved_ratio(self, ratio):
        spec = JoinWorkloadSpec(r_rows=5000, s_rows=20000, match_ratio=ratio, seed=3)
        r, s = generate_join_workload(spec)
        _, s_idx = join_match_indices(r.key_values, s.key_values)
        achieved = s_idx.size / s.num_rows
        assert achieved == pytest.approx(ratio, abs=0.03)

    def test_displaced_keys_remain_unique(self):
        spec = JoinWorkloadSpec(r_rows=1000, s_rows=100, match_ratio=0.4, seed=4)
        r, _ = generate_join_workload(spec)
        assert np.unique(r.key_values).size == 1000


class TestSkew:
    def test_zipf_increases_hottest_share(self):
        from repro.workloads import hottest_key_share

        shares = []
        for zipf in (0.0, 1.0, 1.75):
            spec = JoinWorkloadSpec(r_rows=4096, s_rows=1 << 15,
                                    zipf_factor=zipf, seed=5)
            _, s = generate_join_workload(spec)
            shares.append(hottest_key_share(s.key_values))
        assert shares[0] < shares[1] < shares[2]


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(WorkloadError):
            generate_join_workload(JoinWorkloadSpec(r_rows=0, s_rows=5))

    def test_bad_ratio(self):
        with pytest.raises(WorkloadError):
            generate_join_workload(JoinWorkloadSpec(r_rows=5, s_rows=5, match_ratio=1.5))

    def test_bad_zipf(self):
        with pytest.raises(WorkloadError):
            generate_join_workload(JoinWorkloadSpec(r_rows=5, s_rows=5, zipf_factor=-1))

    def test_key_overflow_detected(self):
        # Displaced keys (match ratio < 1) reach 2|R| - 1 > int32 max.
        spec = JoinWorkloadSpec(
            r_rows=2 ** 30 + 1, s_rows=10, key_type="int32", match_ratio=0.5
        )
        with pytest.raises(WorkloadError, match="key type"):
            generate_join_workload(spec)


class TestSizeHelpers:
    def test_gb(self):
        assert gb(1) == 1 << 30
        assert gb(1.5) == int(1.5 * (1 << 30))

    def test_rows_for_bytes(self):
        # 1 key + 2 payloads, all 4B: 12 bytes/row.
        assert rows_for_bytes(1200, 2) == 100

    def test_workload_from_gb_matches_paper_sizes(self):
        # 1.5G with key + 2 payloads (4B each) ~ 2^27 rows.
        spec = workload_from_gb(1.5, 3.0, r_payload_columns=2, s_payload_columns=2)
        assert spec.r_rows == pytest.approx(1 << 27, rel=0.01)
        assert spec.s_rows == pytest.approx(1 << 28, rel=0.01)

    def test_workload_from_gb_scaled(self):
        spec = workload_from_gb(1.0, 2.0, scale=2 ** -10)
        assert spec.r_rows < 1 << 18

    def test_spec_total_bytes(self):
        spec = JoinWorkloadSpec(r_rows=100, s_rows=200, r_payload_columns=1,
                                s_payload_columns=1)
        assert spec.total_bytes == 100 * 8 + 200 * 8
