"""Cluster execution context: N device timelines plus an interconnect.

A :class:`ClusterContext` coordinates one sharded execution as a
sequence of *supersteps* on a cluster-wide simulated clock:

* a **compute step** opens one fresh :class:`~repro.gpusim.context.GPUContext`
  per device (each reporting into its own private
  :class:`~repro.obs.session.TraceSession`, so device timelines stay
  independent).  The devices run in parallel; the step lasts as long as
  its slowest device.
* a **shuffle step** moves bytes between devices over the cluster's
  :class:`~repro.cluster.topology.InterconnectSpec`, with exact per-link
  byte accounting (see :mod:`repro.cluster.shuffle`).

The cluster-wide simulated time is therefore
``sum over steps of (max over device timelines | interconnect drain)``
— the barrier-synchronous model of distributed radix joins.  When an
ambient :class:`~repro.obs.session.TraceSession` is active, the cluster
additionally reports one summary span per step and per-link byte
counters into it; the full per-device tracks are exported by
:func:`repro.cluster.trace.cluster_chrome_trace`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

import numpy as np

from ..cancel import current_token
from ..faults.plan import FAULT_COUNTERS
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, DeviceSpec
from ..obs.session import TraceSession, current_session
from .topology import (
    ClusterSpec,
    InterconnectSpec,
    NVLINK_MESH,
    get_interconnect,
    interconnect_seconds,
)


@dataclass
class TransferRecord:
    """One device-to-device transfer inside a shuffle step."""

    src: int
    dst: int
    nbytes: int
    label: str = "shuffle"
    seconds: float = 0.0


@dataclass
class ClusterStepRecord:
    """One superstep on the cluster clock.

    ``kind`` is ``"compute"`` or ``"shuffle"``.  Compute steps carry the
    per-device trace sessions (device-local clocks starting at 0) and
    contexts; shuffle steps carry the transfer matrix and per-transfer
    records.  ``start_s`` is the step's position on the cluster clock.
    """

    name: str
    kind: str
    start_s: float
    seconds: float = 0.0
    contexts: List[GPUContext] = field(default_factory=list)
    sessions: List[TraceSession] = field(default_factory=list)
    matrix: Optional[np.ndarray] = None
    transfers: List[TransferRecord] = field(default_factory=list)
    #: Simulated seconds this step spent recovering from injected faults
    #: (replays, stragglers, retransmits) on top of the fault-free time.
    recovery_seconds: float = 0.0

    @property
    def device_seconds(self) -> List[float]:
        """Per-device simulated seconds spent inside this step."""
        return [ctx.elapsed_seconds for ctx in self.contexts]


class ClusterContext:
    """All mutable state of one simulated multi-device execution.

    Parameters
    ----------
    spec:
        A :class:`~repro.cluster.topology.ClusterSpec`; alternatively
        pass ``device`` / ``num_devices`` / ``interconnect`` directly.
    seed:
        Base seed; device ``d`` derives ``seed + d`` for its context RNG
        so per-device simulated non-determinism stays reproducible.
    trace:
        An explicit ambient session for summary spans/counters.  ``None``
        picks up the active session, if any.
    fault_plan:
        A :class:`~repro.faults.FaultPlan` for the cluster fabric.  Its
        transient-fault part is forwarded into every compute step's
        device contexts (site ``gpu<d>``); the cluster draws its own
        ``"cluster"`` site stream for device replays, stragglers and
        link retransmits.  OOM pressure (``capacity_frac``) is *not*
        applied to shards — graceful degradation around the memory
        cliff is a single-device planner concern — so the plan is
        stripped via :meth:`~repro.faults.FaultPlan.without_capacity`.

    Recovery semantics are barrier-synchronous checkpoint/replay: a
    superstep's inputs live in host/shuffle buffers (the checkpoint),
    so a failed device re-runs its shard from identical inputs — the
    replay charges the shard's full compute time again plus backoff,
    but the deterministic outputs are computed once and unchanged.
    Link failures retransmit the affected buckets over the same
    interconnect model.  Fault draws never touch the data path, so
    sharded results stay bit-identical under any plan.

    A one-device cluster degenerates to the single-device simulator: a
    single compute step wraps one :class:`GPUContext`, no shuffle steps
    exist, and the cluster clock equals that context's timeline exactly.

    >>> cluster = ClusterContext(num_devices=2)
    >>> cluster.num_devices
    2
    >>> cluster.spec.interconnect.name
    'nvlink-mesh'
    >>> cluster.total_seconds
    0.0
    """

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        device: DeviceSpec = A100,
        num_devices: int = 1,
        interconnect: Union[str, InterconnectSpec] = NVLINK_MESH,
        seed: Optional[int] = None,
        trace: Optional[TraceSession] = None,
        fault_plan=None,
    ):
        if spec is None:
            if isinstance(interconnect, str):
                interconnect = get_interconnect(interconnect)
            spec = ClusterSpec(
                device=device, num_devices=num_devices, interconnect=interconnect
            )
        self.spec = spec
        self.seed = seed
        self.trace = trace if trace is not None else current_session()
        # Cancellation is checked at superstep boundaries only: the
        # barrier-synchronous clock charges the per-step *maximum* over
        # devices, so per-kernel charging inside device contexts is
        # disabled (it would double-count and sum instead of max).
        self.cancel_token = current_token()
        self.fault_plan = None if fault_plan is None else fault_plan.without_capacity()
        self.faults = (
            None if self.fault_plan is None else self.fault_plan.injector("cluster")
        )
        self.steps: List[ClusterStepRecord] = []
        self._clock = 0.0

    def _count(self, name: str, value: float = 1.0) -> None:
        if self.trace is not None:
            self.trace.count(name, value)

    # -- shape ---------------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return self.spec.num_devices

    @property
    def device(self) -> DeviceSpec:
        return self.spec.device

    @property
    def interconnect(self) -> InterconnectSpec:
        return self.spec.interconnect

    # -- clock ---------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Cluster-wide simulated time: the barrier-synchronous sum of
        per-step maxima over device timelines plus shuffle drains."""
        return self._clock

    def step_seconds(self, kind: Optional[str] = None) -> float:
        """Total seconds of all steps, optionally of one ``kind``."""
        return sum(
            step.seconds for step in self.steps if kind is None or step.kind == kind
        )

    # -- supersteps ----------------------------------------------------------

    @contextmanager
    def compute_step(self, name: str) -> Iterator[ClusterStepRecord]:
        """Open one compute superstep with a fresh context per device.

        Inside the block, run device ``d``'s work on
        ``step.contexts[d]``.  On exit the step's duration becomes the
        maximum of the per-device timelines and the cluster clock
        advances by it.  An ambient cancellation token is charged with
        the step's barrier time and checked once the step completes —
        the superstep is the cluster's cooperative cancellation unit
        (its inputs are checkpointed, so unwinding between steps loses
        nothing).
        """
        if self.cancel_token is not None:
            self.cancel_token.check(f"superstep:{name}")
        step = ClusterStepRecord(name=name, kind="compute", start_s=self._clock)
        for d in range(self.num_devices):
            session = TraceSession(f"{name}@gpu{d}")
            seed = None if self.seed is None else self.seed + d
            ctx = GPUContext(
                device=self.device,
                seed=seed,
                trace=session,
                fault_plan=self.fault_plan,
                fault_site=f"gpu{d}",
                cancel_token=None,
            )
            step.sessions.append(session)
            step.contexts.append(ctx)
        self.steps.append(step)
        try:
            yield step
        finally:
            effective = self._recover_compute(step, name)
            step.seconds = max(effective, default=0.0)
            self._clock += step.seconds
            if self.trace is not None:
                # Device contexts trace into private per-device sessions;
                # roll their fault/recovery counters up into the ambient
                # session so cluster-wide totals live in one registry.
                for session in step.sessions:
                    for counter in FAULT_COUNTERS:
                        value = session.metrics.value(counter)
                        if value:
                            self.trace.count(counter, value)
                with self.trace.span(
                    f"cluster:{name}",
                    category="cluster-step",
                    devices=self.num_devices,
                    seconds=step.seconds,
                    recovery_s=step.recovery_seconds,
                ):
                    pass
        # Reached only when the body did not raise: the superstep
        # barrier is the cooperative boundary (replays/stragglers
        # included in step.seconds count against the deadline).
        if self.cancel_token is not None:
            self.cancel_token.charge(step.seconds)
            self.cancel_token.check(f"superstep:{name}")

    def _recover_compute(self, step: ClusterStepRecord, name: str) -> List[float]:
        """Per-device effective seconds after replays and stragglers.

        A failed device replays its shard from the superstep checkpoint
        (the host/shuffle-resident inputs), re-charging the shard's full
        compute time plus exponential backoff; a straggler stretches its
        timeline by the plan's slowdown.  The step still lasts as long
        as its slowest device — recovery only moves the barrier.
        """
        base = step.device_seconds
        if self.faults is None:
            return base
        effective: List[float] = []
        for d, seconds in enumerate(base):
            extra = 0.0
            slow = self.faults.straggler_factor(f"{name}@gpu{d}")
            if slow > 1.0:
                extra += seconds * (slow - 1.0)
                self._count("faults_injected_straggler")
                self._count("fault_straggler_seconds", seconds * (slow - 1.0))
            replays = self.faults.device_replays(name, d)
            if replays:
                backoff = sum(
                    self.fault_plan.backoff_seconds(k) for k in range(replays)
                )
                replay_s = replays * seconds + backoff
                extra += replay_s
                self._count("faults_injected_device")
                self._count("fault_replays", replays)
                self._count("fault_replay_seconds", replay_s)
                if self.trace is not None:
                    with self.trace.span(
                        f"replay:{name}@gpu{d}",
                        category="retry",
                        replays=replays,
                        seconds=replay_s,
                    ):
                        pass
            effective.append(seconds + extra)
            step.recovery_seconds += extra
        return effective

    def shuffle_step(
        self, name: str, matrix: np.ndarray, label: str = "shuffle"
    ) -> ClusterStepRecord:
        """Account one all-to-all exchange described by a byte *matrix*.

        ``matrix[src, dst]`` is the exact number of bytes device ``src``
        emits to device ``dst``; the diagonal stays on-device and is
        free.  Returns the recorded step; the cluster clock advances by
        the interconnect drain time.
        """
        matrix = np.asarray(matrix, dtype=np.int64)
        expected = (self.num_devices, self.num_devices)
        if matrix.shape != expected:
            raise ValueError(
                f"shuffle matrix shape {matrix.shape} != {expected}"
            )
        if (matrix < 0).any():
            raise ValueError("shuffle matrix entries must be >= 0")
        seconds = interconnect_seconds(self.interconnect, matrix)
        step = ClusterStepRecord(
            name=name,
            kind="shuffle",
            start_s=self._clock,
            seconds=seconds,
            matrix=matrix,
        )
        spec = self.interconnect
        for src, dst in self.spec.links():
            nbytes = int(matrix[src, dst])
            if not nbytes:
                continue
            if spec.kind == "p2p-mesh":
                link_s = spec.transfer_latency_s + nbytes / spec.link_bandwidth
            else:
                link_s = nbytes / spec.link_bandwidth
            step.transfers.append(
                TransferRecord(src=src, dst=dst, nbytes=nbytes, label=label,
                               seconds=link_s)
            )
        self._recover_shuffle(step, name, label)
        self.steps.append(step)
        self._clock += step.seconds
        if self.trace is not None:
            with self.trace.span(
                f"cluster:{name}",
                category="cluster-step",
                devices=self.num_devices,
                seconds=step.seconds,
                bytes=int(matrix.sum() - np.trace(matrix)),
                recovery_s=step.recovery_seconds,
            ):
                pass
            for t in step.transfers:
                self.trace.count("cluster_shuffle_bytes", t.nbytes)
        if self.cancel_token is not None:
            self.cancel_token.charge(step.seconds)
            self.cancel_token.check(f"superstep:{name}")
        return step

    def _recover_shuffle(
        self, step: ClusterStepRecord, name: str, label: str
    ) -> None:
        """Inject link failures/stragglers into one shuffle superstep.

        Each directed link's bucket may fail and be retransmitted whole
        (the paper-scale buckets have no partial-delivery model); the
        retransmissions form their own byte matrix and drain over the
        same interconnect model, extending the step.  Retransmitted
        bytes are recorded as extra :class:`TransferRecord` entries
        labelled ``retransmit:*``.
        """
        if self.faults is None or step.matrix is None:
            return
        spec = self.interconnect
        retry = np.zeros_like(step.matrix)
        for src, dst in self.spec.links():
            nbytes = int(step.matrix[src, dst])
            if not nbytes:
                continue
            failures = self.faults.link_failures(src, dst)
            if not failures:
                continue
            retry[src, dst] = failures * nbytes
            self._count("faults_injected_link")
            if spec.kind == "p2p-mesh":
                link_s = failures * (
                    spec.transfer_latency_s + nbytes / spec.link_bandwidth
                )
            else:
                link_s = failures * nbytes / spec.link_bandwidth
            step.transfers.append(
                TransferRecord(
                    src=src, dst=dst, nbytes=failures * nbytes,
                    label=f"retransmit:{label}", seconds=link_s,
                )
            )
        retransmit_bytes = int(retry.sum())
        if not retransmit_bytes:
            return
        retransmit_s = interconnect_seconds(spec, retry)
        slow = self.faults.straggler_factor(f"{name}")
        if slow > 1.0:
            straggler_s = (step.seconds + retransmit_s) * (slow - 1.0)
            self._count("faults_injected_straggler")
            self._count("fault_straggler_seconds", straggler_s)
            retransmit_s += straggler_s
        self._count("fault_retransmit_bytes", float(retransmit_bytes))
        self._count("fault_retransmit_seconds", retransmit_s)
        step.recovery_seconds += retransmit_s
        step.seconds += retransmit_s

    # -- accounting queries ---------------------------------------------------

    def link_bytes(self) -> np.ndarray:
        """Cumulative per-link byte matrix over all shuffle steps."""
        total = np.zeros((self.num_devices, self.num_devices), dtype=np.int64)
        for step in self.steps:
            if step.matrix is not None:
                total += step.matrix
        np.fill_diagonal(total, 0)
        return total

    def emitted_bytes(self) -> np.ndarray:
        """Bytes each device emitted onto the interconnect (row sums)."""
        return self.link_bytes().sum(axis=1)

    def received_bytes(self) -> np.ndarray:
        """Bytes each device received from the interconnect (col sums)."""
        return self.link_bytes().sum(axis=0)

    def device_busy_seconds(self) -> List[float]:
        """Per-device compute seconds summed over all compute steps."""
        busy = [0.0] * self.num_devices
        for step in self.steps:
            if step.kind != "compute":
                continue
            for d, seconds in enumerate(step.device_seconds):
                busy[d] += seconds
        return busy

    def describe(self) -> str:
        """Human-readable multi-line summary of the executed steps."""
        lines = [f"cluster {self.spec.describe()}: {self._clock * 1e3:.3f} ms"]
        for step in self.steps:
            if step.kind == "compute":
                per_device = ", ".join(
                    f"gpu{d}={s * 1e3:.3f}ms"
                    for d, s in enumerate(step.device_seconds)
                )
                lines.append(
                    f"  [compute] {step.name}: {step.seconds * 1e3:.3f} ms ({per_device})"
                )
            else:
                moved = int(step.matrix.sum() - np.trace(step.matrix))
                lines.append(
                    f"  [shuffle] {step.name}: {step.seconds * 1e3:.3f} ms, "
                    f"{moved} B over {len(step.transfers)} links"
                )
        return "\n".join(lines)
