"""The tiering oracle: tier-split execution is bit-identical to execute().

Every placement — all-hot, all-cold, mixed, evicting mid-run, and under
fault-injected capacity pressure — must produce output *exactly* equal
(values, dtypes, row order) to the plain single-device ``execute()``.
Joins are compared against NPJ-pinned plans (the algorithm that emits
reference s-major order) and ``equals_unordered`` against the other
algorithms; aggregates are compared exactly (dict of arrays).
"""

import numpy as np
import pytest

from repro.aggregation.base import AggSpec
from repro.errors import JoinConfigError
from repro.faults import FaultPlan
from repro.query.executor import QueryExecutor, execute
from repro.query.plan import Aggregate, Join, Scan
from repro.relational.relation import Relation
from repro.tier import TieredRuntime

SEGMENT_ROWS = 1024


@pytest.fixture
def relations(rng):
    n_r, n_s = 3000, 30000
    r = Relation(
        [
            ("key", np.arange(n_r, dtype=np.int64)),
            ("rpay", rng.integers(0, 100, n_r).astype(np.int64)),
        ],
        key="key",
        name="R",
    )
    s = Relation(
        [
            ("key", rng.integers(0, n_r, n_s).astype(np.int64)),
            ("spay", rng.integers(0, 1000, n_s).astype(np.int64)),
        ],
        key="key",
        name="S",
    )
    return r, s


def join_plan(r, s, algorithm="NPJ"):
    return Join(Scan(r, "R"), Scan(s, "S"), algorithm=algorithm)


def assert_exact(tiered: Relation, plain: Relation):
    assert tiered.column_names == plain.column_names
    for name in plain.column_names:
        a, b = tiered.column(name), plain.column(name)
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)


def runtime(capacity: int) -> TieredRuntime:
    return TieredRuntime(capacity_bytes=capacity, segment_rows=SEGMENT_ROWS)


@pytest.mark.parametrize(
    "capacity,kind",
    [(0, "all-cold"), (1 << 30, "all-hot"), (120_000, "mixed")],
)
def test_join_bit_identical_across_placements(relations, capacity, kind):
    r, s = relations
    plain = execute(join_plan(r, s)).output
    ex = QueryExecutor(tiering=runtime(capacity))
    result = None
    for _ in range(3):  # warm the cache; every repetition must agree
        result = ex.execute(join_plan(r, s))
    assert_exact(result.output, plain)
    tier_ops = [t for t in result.trace if t.algorithm == "TIER"]
    assert len(tier_ops) == 1
    hot, cold = result.output, None  # silence lint on unused
    if kind == "all-cold":
        assert ex.tiering.cache.resident_bytes == 0
        assert "hot:0" in tier_ops[0].description
    elif kind == "all-hot":
        assert "cold:0" in tier_ops[0].description
    else:
        assert ex.tiering.cache.resident_bytes <= 120_000
        assert "hot:0" not in tier_ops[0].description
        assert "cold:0" not in tier_ops[0].description
    ex.tiering.cache.assert_consistent()


def test_join_matches_every_real_algorithm_unordered(relations):
    r, s = relations
    ex = QueryExecutor(tiering=runtime(1 << 30))
    tiered = ex.execute(join_plan(r, s)).output
    for algorithm in ("PHJ-OM", "SMJ-OM", "CPU"):
        other = execute(join_plan(r, s, algorithm)).output
        assert tiered.equals_unordered(other)


def test_aggregate_bit_identical_across_placements(relations):
    _, s = relations
    specs = (
        AggSpec("key", "count"),
        AggSpec("spay", "sum"),
        AggSpec("spay", "mean"),
        AggSpec("spay", "min"),
        AggSpec("spay", "max"),
    )
    plan = Aggregate(Scan(s, "S"), group_column="key", aggregates=specs)
    plain = execute(plan).output
    for capacity in (0, 1 << 30, 100_000):
        ex = QueryExecutor(tiering=runtime(capacity))
        for _ in range(3):
            tiered = ex.execute(plan).output
        assert list(tiered.keys()) == list(plain.keys())
        for name in plain:
            assert tiered[name].dtype == plain[name].dtype
            np.testing.assert_array_equal(tiered[name], plain[name])


def test_eviction_churn_mid_query_stays_bit_identical(rng):
    """Capacity fits only a sliver of the working set: every query's
    placement pass admits and evicts under its feet.  Outputs must stay
    exact and the accounting must never drift."""
    n_r, n_s = 2000, 20000
    rels = []
    for name in ("A", "B", "C"):
        keys = rng.integers(0, n_r, n_s).astype(np.int64)
        rels.append(
            Relation(
                [("key", keys), ("pay", rng.integers(0, 50, n_s).astype(np.int64))],
                key="key",
                name=name,
            )
        )
    r = Relation(
        [
            ("key", np.arange(n_r, dtype=np.int64)),
            ("rpay", np.arange(n_r, dtype=np.int64)),
        ],
        key="key",
        name="R",
    )
    rt = TieredRuntime(capacity_bytes=60_000, segment_rows=SEGMENT_ROWS)
    ex = QueryExecutor(tiering=rt)
    for _ in range(3):
        for s in rels:
            plan = join_plan(r, s)
            assert_exact(ex.execute(plan).output, execute(plan).output)
            rt.cache.assert_consistent()
            assert rt.cache.resident_bytes <= 60_000
    assert rt.cache.evictions + rt.cache.declined > 0  # churn really happened


def test_capacity_pressure_degrades_gracefully(relations):
    """fault_plan.capacity_frac shrinks the segment cache instead of
    OOM-failing: the warm cache demotes, queries keep completing
    bit-identically with more cold (CPU-tier) work."""
    r, s = relations
    plain = execute(join_plan(r, s)).output
    rt = runtime(1_000_000)  # working set (~528 KB) fits comfortably
    ex = QueryExecutor(tiering=rt)
    ex.execute(join_plan(r, s))  # warm: everything resident
    warm_bytes = rt.cache.resident_bytes
    assert warm_bytes > 0

    pressured = QueryExecutor(
        tiering=rt, fault_plan=FaultPlan(seed=2, capacity_frac=0.1)
    )
    result = pressured.execute(join_plan(r, s))
    assert_exact(result.output, plain)
    assert rt.cache.resident_bytes <= int(rt.capacity_bytes * 0.1)
    assert rt.cache.resident_bytes < warm_bytes
    assert rt.cache.pressure_demotions >= 1
    rt.cache.assert_consistent()

    # pressure lifts when a fault-free executor runs again
    recovered = QueryExecutor(tiering=rt)
    for _ in range(3):
        result = recovered.execute(join_plan(r, s))
    assert_exact(result.output, plain)
    assert rt.cache.resident_bytes > int(rt.capacity_bytes * 0.1)


def test_kernel_faults_retry_inside_tier_contexts(relations):
    r, s = relations
    plain = execute(join_plan(r, s)).output
    ex = QueryExecutor(
        tiering=runtime(1 << 30),
        fault_plan=FaultPlan(seed=7, kernel_fault_rate=0.2),
    )
    result = ex.execute(join_plan(r, s))
    assert_exact(result.output, plain)


def test_tiering_conflicts_with_shards():
    with pytest.raises(JoinConfigError):
        QueryExecutor(tiering=TieredRuntime(capacity_bytes=0), shards=2)


def test_aggregate_over_join_runs_join_tiered_and_fold_plain(relations):
    r, s = relations
    specs = (AggSpec("spay", "sum"), AggSpec("spay", "max"))
    plan = Aggregate(join_plan(r, s), group_column="key", aggregates=specs)
    plain = execute(plan).output
    ex = QueryExecutor(tiering=runtime(1 << 30))
    result = ex.execute(plan)
    for name in plain:
        np.testing.assert_array_equal(result.output[name], plain[name])
    descriptions = [t.description for t in result.trace]
    assert any("Join[TIER" in d for d in descriptions)
    assert not any("Fused" in d for d in descriptions)
    # the join output is an intermediate, never auto-registered/tier-cached
    assert all(k.relation in ("R", "S") for k in ex.tiering.cache.resident_keys())
