"""Benchmark harness: scaled setups, experiment runners, result tables."""

from .harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    Setup,
    make_setup,
    phase_columns,
    run_algorithm,
    throughput_mtuples,
)
from .reporting import print_and_save, results_dir, save_result

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentResult",
    "Setup",
    "make_setup",
    "phase_columns",
    "print_and_save",
    "results_dir",
    "run_algorithm",
    "save_result",
    "throughput_mtuples",
]
