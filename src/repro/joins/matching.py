"""Match-index computation shared by the join algorithms.

These helpers compute *which* tuples match — pure index arithmetic with
no simulated cost.  Each algorithm charges its own match-finding traffic
(merge passes, hash-table builds/probes) around these calls; see the
algorithm modules for the accounting.

All helpers produce matches in probe-major (s-major) order: ascending s
position, which is the streaming order both the merge join and the
partitioned hash join naturally emit (Section 4.1 — the property that
keeps GFTR's output identifiers clustered).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..primitives.grouping import stable_key_order


def expand_bounds(
    lo: np.ndarray, hi: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-probe match ranges ``[lo, hi)`` into index pairs.

    Returns ``(r_pos, s_pos)`` where ``r_pos`` are positions in the
    sorted build side and ``s_pos`` positions in the probe side,
    s-major ordered.
    """
    counts = (hi - lo).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    s_pos = np.repeat(np.arange(lo.size, dtype=np.int64), counts)
    starts = np.repeat(lo.astype(np.int64), counts)
    first = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(first, counts)
    return starts + within, s_pos


def match_positions(
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
    unique_build_keys: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Matching (build position, probe position) pairs, s-major.

    ``build_keys`` need not be sorted; positions refer to the arrays as
    given (e.g. a radix-partitioned layout).  Used by the hash joins,
    where co-partitioning guarantees matches share a partition but the
    intra-partition layout is unsorted.
    """
    if build_keys.size == 0 or probe_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = stable_key_order(build_keys)
    sorted_keys = build_keys[order]
    lo = np.searchsorted(sorted_keys, probe_keys, side="left")
    if unique_build_keys:
        clipped = np.minimum(lo, sorted_keys.size - 1)
        matched = sorted_keys[clipped] == probe_keys
        hi = lo + matched.astype(lo.dtype)
    else:
        hi = np.searchsorted(sorted_keys, probe_keys, side="right")
    sorted_pos, s_pos = expand_bounds(lo, hi)
    return order[sorted_pos], s_pos


def sorted_match_positions(
    build_keys_sorted: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Match pairs when the build side is already sorted (merge join).

    ``lo``/``hi`` come from :func:`repro.primitives.merge_path.match_bounds`.
    Positions on the build side refer to the *sorted* layout.
    """
    del build_keys_sorted  # bounds already encode everything needed
    return expand_bounds(lo, hi)
