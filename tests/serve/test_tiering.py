"""Serving-layer tiering interplay: popularity feed, admission demotion,
brownout cache give-back, cold-fork verification, update invalidation."""

from dataclasses import replace

import pytest

from repro.errors import ServeConfigError
from repro.gpusim.device import A100
from repro.query.executor import execute
from repro.query.plan import Join, Scan
from repro.serve import QueryServer
from repro.serve.brownout import BrownoutPolicy
from repro.tier import TieredRuntime

from .conftest import assert_bit_identical, make_relation


@pytest.fixture
def plan(r, s):
    return Join(Scan(r, "r"), Scan(s, "s"), algorithm="NPJ")


def tiered_server(**kwargs) -> QueryServer:
    kwargs.setdefault("streams", 1)
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("tiering", True)
    return QueryServer(**kwargs)


def test_tiering_true_builds_runtime_over_server_memory():
    server = tiered_server()
    assert isinstance(server.tiering, TieredRuntime)
    assert server.tiering.cache.memory is server.memory


def test_tiering_conflicts_with_shards():
    with pytest.raises(ServeConfigError, match="tiering"):
        QueryServer(tiering=True, shards=2)


def test_tiered_outcomes_bit_identical_and_cache_warms(plan, r, s):
    # Result caching off: repeats must actually re-execute to exercise
    # the warm segment cache.
    server = tiered_server(enable_result_cache=False)
    server.register("r", r)
    server.register("s", s)
    expected = execute(plan).output
    for _ in range(3):
        server.submit(plan, at_s=0.0)
    outcomes = server.run()
    assert all(o.status == "completed" for o in outcomes)
    for o in outcomes:
        assert_bit_identical(o.output, expected)
    assert server.tiering.cache.resident_bytes > 0
    assert server.tiering.cache.hits > 0  # repeats hit the warm cache


def test_submit_feeds_template_popularity(plan, r, s):
    server = tiered_server()
    server.register("r", r)
    server.register("s", s)
    policy = server.tiering.policy
    base_r = policy.popularity("r")
    for _ in range(5):
        server.submit(plan, at_s=0.0)
    assert policy.popularity("r") > base_r
    assert policy.popularity("s") > 1.0
    assert policy.popularity("never-scanned") == 1.0
    server.run()


def test_verify_cache_inserts_uses_cold_fork(plan, r, s):
    """The insert verifier re-executes on a cold tiering fork — tiered
    result caching stays oracle-checked without touching the warm cache."""
    server = tiered_server(verify_cache_inserts=True)
    server.register("r", r)
    server.register("s", s)
    server.submit(plan, at_s=0.0)
    server.submit(plan, at_s=0.0)
    outcomes = server.run()
    assert all(o.status == "completed" for o in outcomes)
    assert server.metrics.value("serve.result_cache_hits") >= 1.0


def test_update_invalidates_resident_segments(plan, r, s):
    server = tiered_server()
    server.register("r", r)
    server.register("s", s)
    server.submit(plan, at_s=0.0)
    server.run()
    cache = server.tiering.cache
    assert any(k.relation == "r" for k in cache.resident_keys())
    r2 = make_relation(256, seed=44, prefix="r")  # new version of "r"
    server.update("r", r2)
    assert not any(k.relation == "r" for k in cache.resident_keys())
    assert server.metrics.value("serve.tier_invalidated_bytes") > 0
    # the superseded version's placement history is gone too
    assert server.tiering.policy.popularity("r") == 1.0

    # post-update queries re-warm from the new version, still correct
    plan2 = Join(Scan(r2, "r"), Scan(s, "s"), algorithm="NPJ")
    server.submit(plan2)
    outcomes = server.run()
    assert outcomes[-1].status == "completed"
    assert_bit_identical(outcomes[-1].output, execute(plan2).output)


def test_admission_demotes_cache_instead_of_blocking(plan, r, s):
    """When the tier cache shares server memory, admission reservations
    reclaim cached bytes rather than waiting (or rejecting).

    A small query warms the cache, then a *bigger* query arrives whose
    reservation cannot fit beside the warm segments — the cache gives
    bytes back and the query completes instead of blocking."""
    s_big = make_relation(256, seed=55, prefix="t", fanout=3)
    plan_big = Join(Scan(r, "r"), Scan(s_big, "t"), algorithm="NPJ")
    tiny = replace(A100, global_mem_bytes=40_000)
    server = tiered_server(device=tiny, enable_result_cache=False)
    server.register("r", r)
    server.register("s", s)
    server.register("t", s_big)
    server.submit(plan, at_s=0.0)
    outcomes = server.run()
    warm = server.tiering.cache.resident_bytes
    assert warm == r.total_bytes + s.total_bytes  # fully warm
    server.submit(plan_big)
    outcomes += server.run()
    assert all(o.status == "completed" for o in outcomes)
    assert server.metrics.value("serve.tier_admission_demoted_bytes") > 0
    assert server.tiering.cache.resident_bytes < warm


def test_brownout_escalation_demotes_cache_before_shedding(plan, r, s):
    server = tiered_server(
        queue_depth=2,
        brownout=BrownoutPolicy(
            degrade_enter=0.2,
            degrade_exit=0.1,
            cache_demote_fraction=1.0,
        ),
    )
    server.register("r", r)
    server.register("s", s)
    # Warm the cache, then pile on load to force an escalation.
    server.submit(plan, at_s=0.0)
    for i in range(8):
        server.submit(plan, at_s=0.5 + i * 0.001)
    outcomes = server.run()
    assert any(o.status == "completed" for o in outcomes)
    assert server.metrics.value("serve.brownout_transitions") >= 1.0
    assert server.metrics.value("serve.brownout_cache_demoted_bytes") > 0


def test_cache_demote_fraction_validation():
    with pytest.raises(ServeConfigError):
        BrownoutPolicy(cache_demote_fraction=1.5)
    with pytest.raises(ServeConfigError):
        BrownoutPolicy(cache_demote_fraction=-0.1)
