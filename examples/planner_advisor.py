"""Planner advisor: the Figure 18 decision trees, interactively.

Feeds a grid of workload profiles through the join planner (and a few
through the aggregation planner), printing the recommendation *with its
reasoning trace* — the "valuable input to query optimizers" the paper's
abstract promises — then validates one recommendation by measurement.

Run: ``python examples/planner_advisor.py``
"""

from repro.aggregation.planner import (
    GroupByWorkloadProfile,
    recommend_groupby_algorithm,
)
from repro.bench.harness import make_setup, run_algorithm
from repro.joins import (
    JoinWorkloadProfile,
    recommend_join_algorithm,
    recommend_smj_variant,
)
from repro.workloads import JoinWorkloadSpec, generate_join_workload

SCENARIOS = [
    ("narrow, uniform", dict(r_payload_columns=1, s_payload_columns=1)),
    ("narrow, skewed FKs", dict(r_payload_columns=1, s_payload_columns=1,
                                zipf_factor=1.5)),
    ("wide, 100% match", dict()),
    ("wide, 10% match", dict(match_ratio=0.1)),
    ("wide, 10% match, skewed", dict(match_ratio=0.1, zipf_factor=1.5)),
    ("wide, 8-byte values", dict(payload_bytes=8)),
    ("wide, skewed, 8-byte", dict(zipf_factor=1.5, payload_bytes=8)),
]


def make_profile(**overrides):
    base = dict(
        r_rows=1 << 27, s_rows=1 << 28,
        r_payload_columns=3, s_payload_columns=3,
        key_bytes=4, payload_bytes=4, match_ratio=1.0, zipf_factor=0.0,
    )
    base.update(overrides)
    return JoinWorkloadProfile(**base)


print("=== Join planner (Figure 18a) ===")
for label, overrides in SCENARIOS:
    profile = make_profile(**overrides)
    rec = recommend_join_algorithm(profile)
    print(f"\n{label}")
    print(f"  -> {rec.algorithm}")
    for reason in rec.reasons:
        print(f"     - {reason}")

print("\n=== SMJ-only sub-decision (Figure 18b) ===")
for label, overrides in SCENARIOS[:4]:
    rec = recommend_smj_variant(make_profile(**overrides))
    print(f"  {label:28s} -> {rec.algorithm}")

print("\n=== Aggregation planner ===")
for rows, groups, label in (
    (1 << 27, 8, "Q1-like (8 groups)"),
    (1 << 27, 1 << 14, "mid cardinality"),
    (1 << 27, 1 << 24, "Q18-like (huge cardinality)"),
):
    rec = recommend_groupby_algorithm(GroupByWorkloadProfile(rows=rows,
                                                             estimated_groups=groups))
    print(f"  {label:28s} -> {rec.algorithm}")

# --- Validate one pick by measurement -----------------------------------
print("\n=== Validation: 'wide, 100% match' by measurement ===")
setup = make_setup(2 ** -10)
spec = JoinWorkloadSpec(
    r_rows=setup.rows(1 << 27), s_rows=setup.rows(1 << 28),
    r_payload_columns=3, s_payload_columns=3, seed=0,
)
r, s = generate_join_workload(spec)
times = {
    name: run_algorithm(name, r, s, setup).total_seconds * 1e3
    for name in ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")
}
for name, ms in sorted(times.items(), key=lambda kv: kv[1]):
    print(f"  {name:8s} {ms:8.3f} ms")
pick = recommend_join_algorithm(make_profile()).algorithm
winner = min(times, key=times.get)
print(f"planner picked {pick}; measured winner {winner}"
      f" -> {'agreement' if pick == winner else 'disagreement'}")
