"""Workload generators: microbenchmarks, TPC-H/DS extracts, star schemas."""

from .generators import (
    JoinWorkloadSpec,
    gb,
    generate_join_workload,
    rows_for_bytes,
    workload_from_gb,
)
from .groupby_gen import GroupByWorkloadSpec, generate_groupby_workload
from .sequences import generate_star_schema
from .tpch import (
    TPC_JOINS,
    TPC_JOINS_BY_ID,
    TPCJoinSpec,
    generate_tpc_join,
    tpch_lineitem_like,
)
from .zipf import hottest_key_share, sample_zipf, zipf_cdf

__all__ = [
    "GroupByWorkloadSpec",
    "JoinWorkloadSpec",
    "TPCJoinSpec",
    "TPC_JOINS",
    "TPC_JOINS_BY_ID",
    "gb",
    "generate_groupby_workload",
    "generate_join_workload",
    "generate_star_schema",
    "generate_tpc_join",
    "hottest_key_share",
    "rows_for_bytes",
    "sample_zipf",
    "tpch_lineitem_like",
    "workload_from_gb",
    "zipf_cdf",
]
