"""Phase timeline and Nsight-style profiler."""

import pytest

from repro.gpusim import A100, GPUContext, KernelStats
from repro.gpusim.timeline import PhaseTimeline
from repro.gpusim.kernel import KernelRecord


def _record(name="k", seconds=1.0, phase="", **kw):
    return KernelRecord(stats=KernelStats(name=name, **kw), seconds=seconds, phase=phase)


class TestTimeline:
    def test_phase_context_attributes_records(self):
        tl = PhaseTimeline()
        with tl.phase("transform"):
            tl.add(_record(seconds=2.0))
        tl.add(_record(seconds=1.0, phase="match"))
        assert tl.phase_seconds() == {"transform": 2.0, "match": 1.0}
        assert tl.total_seconds() == 3.0

    def test_unphased_records_fall_into_other(self):
        tl = PhaseTimeline()
        tl.add(_record(seconds=1.0))
        assert tl.phase_seconds() == {"other": 1.0}

    def test_nested_phases_restore(self):
        tl = PhaseTimeline()
        with tl.phase("outer"):
            with tl.phase("inner"):
                tl.add(_record(seconds=1.0))
            tl.add(_record(seconds=2.0))
        assert tl.phase_seconds() == {"inner": 1.0, "outer": 2.0}

    def test_breakdown_orders_canonical_phases_first(self):
        tl = PhaseTimeline()
        tl.add(_record(seconds=1.0, phase="materialize"))
        tl.add(_record(seconds=1.0, phase="custom"))
        tl.add(_record(seconds=1.0, phase="transform"))
        assert list(tl.breakdown()) == ["transform", "materialize", "custom"]

    def test_records_filter_by_phase(self):
        tl = PhaseTimeline()
        tl.add(_record(phase="a"))
        tl.add(_record(phase="b"))
        assert len(tl.records("a")) == 1
        assert len(tl.records()) == 2
        assert tl.kernel_count() == 2

    def test_merged_stats(self):
        tl = PhaseTimeline()
        tl.add(_record(phase="a", items=5, seq_read_bytes=10))
        tl.add(_record(phase="a", items=7, seq_write_bytes=20))
        merged = tl.merged_stats("a")
        assert merged.items == 12
        assert merged.seq_read_bytes == 10
        assert merged.seq_write_bytes == 20


class TestProfiler:
    def test_counters_aggregate_recorded_kernels(self):
        ctx = GPUContext(device=A100)
        ctx.submit(KernelStats(name="gather:x", items=3200, seq_read_bytes=12800))
        ctx.submit(KernelStats(name="sort", items=3200, seq_read_bytes=12800))
        all_counters = ctx.profiler.counters()
        gather_only = ctx.profiler.counters(name_filter="gather")
        assert all_counters.items == 6400
        assert gather_only.items == 3200

    def test_cycles_follow_simulated_time(self):
        ctx = GPUContext(device=A100)
        seconds = ctx.submit(KernelStats(name="k", seq_read_bytes=10 ** 9))
        counters = ctx.profiler.counters()
        assert counters.total_cycles == pytest.approx(seconds * A100.clock_hz)

    def test_sectors_per_request_counter(self):
        ctx = GPUContext(device=A100)
        ctx.submit(
            KernelStats(
                name="k", random_requests=10, random_sector_touches=180,
                random_cold_sectors=50, locality_footprint_bytes=1e9,
            )
        )
        assert ctx.profiler.counters().sectors_per_request == pytest.approx(18.0)

    def test_table_rows_layout(self):
        ctx = GPUContext(device=A100)
        ctx.submit(KernelStats(name="k", items=32))
        rows = ctx.profiler.counters().as_table_rows()
        assert rows[0] == ("Number of items", 32)
        assert len(rows) == 6

    def test_clear(self):
        ctx = GPUContext(device=A100)
        ctx.submit(KernelStats(name="k", items=32))
        ctx.profiler.clear()
        assert ctx.profiler.counters().items == 0


class TestContext:
    def test_submit_validates(self):
        ctx = GPUContext(device=A100)
        with pytest.raises(ValueError):
            ctx.submit(KernelStats(name="k", seq_read_bytes=-5))

    def test_phase_scopes_memory_and_time(self):
        import numpy as np
        ctx = GPUContext(device=A100)
        with ctx.phase("transform"):
            ctx.mem.alloc(100, np.uint8, "tmp")
            ctx.submit(KernelStats(name="k", seq_read_bytes=1000))
        assert "transform" in ctx.mem.phase_peaks
        assert ctx.timeline.phase_seconds()["transform"] > 0

    def test_fork_gives_fresh_state(self):
        ctx = GPUContext(device=A100)
        ctx.submit(KernelStats(name="k", seq_read_bytes=1000))
        fork = ctx.fork()
        assert fork.device is ctx.device
        assert fork.elapsed_seconds == 0.0

    def test_rng_seeded(self):
        a = GPUContext(device=A100, seed=5).rng.integers(0, 100, 10)
        b = GPUContext(device=A100, seed=5).rng.integers(0, 100, 10)
        assert list(a) == list(b)
