"""Property-based invariants of the accounting stack.

For *arbitrary* kernel sequences (hypothesis-generated):

* ``PhaseTimeline.breakdown()`` sums to ``total_seconds()``;
* merging ``KernelStats`` is order-invariant;
* cost-model time is monotone in streamed bytes, sector touches and
  transfer bytes;
* a ``TraceSession``'s events re-aggregate to exactly the per-phase
  seconds the timeline reports.
"""

from dataclasses import replace
from functools import reduce

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import A100, CostModel, GPUContext, KernelStats
from repro.obs import TraceSession

PHASE_LABELS = (None, "transform", "match", "aggregate", "materialize", "custom")


@st.composite
def kernel_stats(draw):
    touches = draw(st.integers(0, 1 << 20))
    return KernelStats(
        name=draw(st.sampled_from(["gather", "scatter", "sort", "partition"])),
        items=draw(st.integers(0, 1 << 20)),
        launches=draw(st.integers(0, 4)),
        seq_read_bytes=draw(st.integers(0, 1 << 30)),
        seq_write_bytes=draw(st.integers(0, 1 << 30)),
        random_requests=draw(st.integers(0, 1 << 15)),
        random_sector_touches=touches,
        random_cold_sectors=draw(st.integers(0, touches)),
        locality_footprint_bytes=draw(
            st.floats(0, 1e9, allow_nan=False, allow_infinity=False)
        ),
        host_transfer_bytes=draw(st.integers(0, 1 << 27)),
        atomic_ops=draw(st.integers(0, 1 << 20)),
        atomic_conflict_factor=draw(
            st.floats(1.0, 8.0, allow_nan=False, allow_infinity=False)
        ),
    )


kernel_sequences = st.lists(
    st.tuples(kernel_stats(), st.sampled_from(PHASE_LABELS)), min_size=0, max_size=20
)


def _submit_all(ctx, sequence):
    for stats, phase in sequence:
        ctx.submit(stats, phase=phase)


class TestTimelineInvariants:
    @given(kernel_sequences)
    @settings(max_examples=60, deadline=None)
    def test_breakdown_sums_to_total_seconds(self, sequence):
        ctx = GPUContext(device=A100)
        _submit_all(ctx, sequence)
        breakdown = ctx.timeline.breakdown()
        assert sum(breakdown.values()) == pytest.approx(
            ctx.timeline.total_seconds(), rel=1e-12, abs=1e-18
        )
        # phase_seconds and breakdown are the same numbers.
        assert dict(breakdown) == ctx.timeline.phase_seconds()

    @given(kernel_sequences)
    @settings(max_examples=60, deadline=None)
    def test_kernel_count_and_records_consistent(self, sequence):
        ctx = GPUContext(device=A100)
        _submit_all(ctx, sequence)
        assert ctx.timeline.kernel_count() == len(sequence)
        assert len(ctx.timeline.records()) == len(sequence)


class TestMergeInvariants:
    @given(st.lists(kernel_stats(), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_merged_stats_order_invariant(self, stats_list):
        def fold(items):
            return reduce(
                lambda a, b: a.merged_with(b, name="merged"),
                items[1:],
                replace(items[0], name="merged"),
            )

        forward = fold(stats_list)
        backward = fold(list(reversed(stats_list)))
        for field_name in (
            "items",
            "launches",
            "seq_read_bytes",
            "seq_write_bytes",
            "random_requests",
            "random_sector_touches",
            "random_cold_sectors",
            "host_transfer_bytes",
            "atomic_ops",
        ):
            assert getattr(forward, field_name) == getattr(backward, field_name)
        assert forward.locality_footprint_bytes == pytest.approx(
            backward.locality_footprint_bytes, rel=1e-9, abs=1e-12
        )
        assert forward.atomic_conflict_factor == pytest.approx(
            backward.atomic_conflict_factor, rel=1e-9, abs=1e-12
        )

    @given(kernel_stats(), kernel_stats())
    @settings(max_examples=60, deadline=None)
    def test_merge_preserves_validity(self, a, b):
        merged = a.merged_with(b)
        merged.validate()


class TestCostMonotonicity:
    @given(kernel_stats(), st.integers(1, 1 << 30))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_seq_bytes(self, stats, extra):
        cost = CostModel(A100)
        more_read = replace(stats, seq_read_bytes=stats.seq_read_bytes + extra)
        more_write = replace(stats, seq_write_bytes=stats.seq_write_bytes + extra)
        assert cost.time(more_read) >= cost.time(stats)
        assert cost.time(more_write) >= cost.time(stats)

    @given(kernel_stats(), st.integers(1, 1 << 20))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_warm_sector_touches(self, stats, extra):
        """More repeated (warm) sector touches never get cheaper."""
        cost = CostModel(A100)
        more = replace(
            stats, random_sector_touches=stats.random_sector_touches + extra
        )
        assert cost.time(more) >= cost.time(stats)

    @given(kernel_stats(), st.integers(1, 1 << 27))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_transfer_bytes(self, stats, extra):
        cost = CostModel(A100)
        more = replace(
            stats, host_transfer_bytes=stats.host_transfer_bytes + extra
        )
        assert cost.time(more) >= cost.time(stats)

    @given(kernel_stats())
    @settings(max_examples=60, deadline=None)
    def test_breakdown_components_are_nonnegative_and_sum(self, stats):
        cost = CostModel(A100)
        parts = cost.breakdown(stats)
        for component in (
            parts.launch,
            parts.sequential,
            parts.random,
            parts.atomic,
            parts.compute,
            parts.transfer,
        ):
            assert component >= 0.0
        assert cost.time(stats) == pytest.approx(parts.total)


class TestTraceReaggregation:
    @given(kernel_sequences)
    @settings(max_examples=60, deadline=None)
    def test_session_phase_seconds_equal_breakdown(self, sequence):
        """The span tree re-aggregates to the timeline's exact numbers."""
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            _submit_all(ctx, sequence)
        assert session.phase_seconds() == dict(ctx.timeline.breakdown())

    @given(kernel_sequences)
    @settings(max_examples=60, deadline=None)
    def test_session_clock_equals_total_seconds(self, sequence):
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            _submit_all(ctx, sequence)
        assert session.total_seconds == pytest.approx(
            ctx.timeline.total_seconds(), rel=1e-12, abs=1e-18
        )

    @given(kernel_sequences, st.sampled_from(["transform", "match", "materialize"]))
    @settings(max_examples=40, deadline=None)
    def test_phase_blocks_attribute_like_timeline(self, sequence, block_phase):
        """ctx.phase(...) blocks and per-submit labels agree end to end."""
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            with ctx.phase(block_phase):
                _submit_all(ctx, sequence)
        assert session.phase_seconds() == dict(ctx.timeline.breakdown())
