"""WorkloadDriver: arrival disciplines, the Zipf mix, and reporting."""

import pytest

from repro.errors import ServeConfigError
from repro.query.plan import Join, Project, Scan
from repro.serve import QueryServer, QueryTemplate, WorkloadDriver

from tests.serve.conftest import SERVE_SEED


@pytest.fixture
def templates(r, s, t):
    return [
        QueryTemplate("hot-join", Join(Scan(r), Scan(s))),
        QueryTemplate("projection", Project(Join(Scan(r), Scan(s)), ("r1", "s1"))),
        QueryTemplate("cold-join", Join(Scan(r), Scan(t))),
    ]


def test_driver_validation(templates, r, s):
    server = QueryServer(seed=SERVE_SEED)
    with pytest.raises(ServeConfigError, match="at least one"):
        WorkloadDriver(server, [])
    with pytest.raises(ServeConfigError, match="duplicate"):
        WorkloadDriver(server, [templates[0], templates[0]])
    with pytest.raises(ServeConfigError, match="zipf_factor"):
        WorkloadDriver(server, templates, zipf_factor=-1.0)
    with pytest.raises(ServeConfigError, match="arrival_rate_qps"):
        WorkloadDriver(server, templates).run_open_loop(4, arrival_rate_qps=0.0)


def test_closed_loop_is_deterministic(templates):
    def one_run():
        server = QueryServer(streams=2, seed=SERVE_SEED)
        driver = WorkloadDriver(server, templates, seed=42)
        return driver.run_closed_loop(num_queries=12)

    first, second = one_run(), one_run()
    assert first.discipline == "closed-loop"
    assert first.report.completed == second.report.completed == 12
    assert first.report.makespan_s == second.report.makespan_s
    assert first.report.latency_p99_s == second.report.latency_p99_s
    for name in ("hot-join", "projection", "cold-join"):
        assert first.templates[name] == second.templates[name]


def test_open_loop_is_deterministic_and_spaces_arrivals(templates):
    def one_run():
        server = QueryServer(streams=2, seed=SERVE_SEED)
        driver = WorkloadDriver(server, templates, seed=42)
        report = driver.run_open_loop(num_queries=10, arrival_rate_qps=50.0)
        return server, report

    server, first = one_run()
    _, second = one_run()
    assert first.report.makespan_s == second.report.makespan_s
    arrivals = sorted(o.arrival_s for o in server.outcomes)
    assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
    assert first.report.completed + first.report.rejected == 10


def test_zipf_mix_prefers_the_head_template(templates):
    server = QueryServer(streams=2, seed=SERVE_SEED, queue_depth=256)
    driver = WorkloadDriver(server, templates, zipf_factor=2.0, seed=7)
    report = driver.run_closed_loop(num_queries=40)
    head = report.templates["hot-join"].submitted
    tail = report.templates["cold-join"].submitted
    assert head + tail + report.templates["projection"].submitted == 40
    assert head > tail
    # A hot template's repeats hit the result cache.
    assert report.templates["hot-join"].result_cache_hits >= head - 1
    assert "discipline: closed-loop" in report.render()


def test_closed_loop_overflow_is_reported_as_backpressure(templates):
    server = QueryServer(streams=2, queue_depth=2, seed=SERVE_SEED)
    driver = WorkloadDriver(server, templates, seed=3)
    report = driver.run_closed_loop(num_queries=8)
    # Two streams absorb two arrivals, the queue holds two: four bounce.
    assert report.report.rejected == 4
    assert report.report.completed == 4
    assert sum(stats.rejected for stats in report.templates.values()) == 4


def test_report_covers_only_this_drivers_queries(templates, r, s):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.query(Join(Scan(r), Scan(s)), tag="interactive")
    driver = WorkloadDriver(server, templates, seed=1)
    report = driver.run_closed_loop(num_queries=6)
    assert sum(stats.submitted for stats in report.templates.values()) == 6
    # The server-wide report still counts everything ever served.
    assert report.report.submitted == 7
