"""Join-algorithm selection heuristics (Figure 18, Section 5.4).

The paper distills its performance study into two decision trees:

* Figure 18a — pick among SMJ-UM / SMJ-OM / PHJ-UM / PHJ-OM given the
  workload's width, match ratio, foreign-key skew, and data types;
* Figure 18b — the SMJ-OM vs SMJ-UM sub-decision.

The planner works from a :class:`JoinWorkloadProfile` — statistics an
optimizer would have (cardinalities, column widths, estimated match
ratio, skew) — and returns a recommendation with the reasoning trace, so
the choice is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..relational.relation import Relation

#: Zipf factor beyond which the paper observes PHJ-UM's bucket-chain
#: partitioning degrading (Figure 14: "as the Zipf factor grows and
#: exceeds 1").
SKEW_THRESHOLD = 1.0

#: Match ratio below which unclustered gathers are cheap enough that
#: GFUR wins (Figure 13: "when the ratio drops below 25%").
LOW_MATCH_RATIO = 0.25


@dataclass
class JoinWorkloadProfile:
    """Optimizer-visible statistics of a prospective join."""

    r_rows: int
    s_rows: int
    r_payload_columns: int
    s_payload_columns: int
    key_bytes: int = 4
    payload_bytes: int = 4
    match_ratio: float = 1.0
    zipf_factor: float = 0.0

    @classmethod
    def from_relations(
        cls,
        r: Relation,
        s: Relation,
        match_ratio: float = 1.0,
        zipf_factor: float = 0.0,
    ) -> "JoinWorkloadProfile":
        payload_bytes = max(
            [a.dtype.itemsize for a in r.payload_columns().values()]
            + [a.dtype.itemsize for a in s.payload_columns().values()]
            + [4]
        )
        return cls(
            r_rows=r.num_rows,
            s_rows=s.num_rows,
            r_payload_columns=r.num_payload_columns,
            s_payload_columns=s.num_payload_columns,
            key_bytes=r.key_values.dtype.itemsize,
            payload_bytes=payload_bytes,
            match_ratio=match_ratio,
            zipf_factor=zipf_factor,
        )

    @property
    def is_narrow(self) -> bool:
        """A "narrow" join: at most one payload column per relation."""
        return self.r_payload_columns <= 1 and self.s_payload_columns <= 1

    @property
    def is_skewed(self) -> bool:
        return self.zipf_factor > SKEW_THRESHOLD

    @property
    def has_wide_values(self) -> bool:
        return self.key_bytes > 4 or self.payload_bytes > 4


@dataclass
class Recommendation:
    """An algorithm choice plus the decision path that produced it."""

    algorithm: str
    reasons: List[str] = field(default_factory=list)

    def explain(self) -> str:
        return f"{self.algorithm}: " + "; ".join(self.reasons)


def recommend_join_algorithm(profile: JoinWorkloadProfile) -> Recommendation:
    """Figure 18a: the best of the four implementations for a workload.

    >>> wide = JoinWorkloadProfile(r_rows=1 << 20, s_rows=1 << 20,
    ...                            r_payload_columns=4, s_payload_columns=4)
    >>> recommend_join_algorithm(wide).algorithm
    'PHJ-OM'
    >>> narrow = JoinWorkloadProfile(1 << 20, 1 << 20, 1, 1)
    >>> recommend_join_algorithm(narrow).algorithm
    'PHJ-UM'
    """
    reasons: List[str] = []
    if profile.is_narrow:
        reasons.append("narrow join: materialization is negligible, PHJ transform is cheapest")
        if profile.is_skewed:
            reasons.append("skewed foreign keys: bucket-chain partitioning degrades, use RADIX-PARTITION")
            return Recommendation("PHJ-OM", reasons)
        reasons.append("uniform keys: bucket chaining is marginally cheaper")
        return Recommendation("PHJ-UM", reasons)

    if profile.match_ratio < LOW_MATCH_RATIO:
        reasons.append(
            f"match ratio {profile.match_ratio:.0%} < {LOW_MATCH_RATIO:.0%}: "
            "few tuples materialize, GFUR's cheap transform wins"
        )
        if profile.is_skewed:
            reasons.append(
                "skewed foreign keys: bucket chains degrade, and GFTR's "
                "payload transforms are wasted at a low match ratio — "
                "the consistent sort of SMJ-UM wins (Figure 18a's "
                "skewed-wide branch)"
            )
            return Recommendation("SMJ-UM", reasons)
        return Recommendation("PHJ-UM", reasons)

    reasons.append("wide join with a high match ratio: materialization dominates, GFTR pays off")
    if profile.is_skewed:
        reasons.append("skewed foreign keys: RADIX-PARTITION stays balanced")
    if profile.has_wide_values:
        reasons.append("8-byte values: partitioning stays cheap where sorting does not")
    reasons.append("partitioning needs ~2 RADIX-PARTITION invocations per column vs 4+ for sorting")
    return Recommendation("PHJ-OM", reasons)


def recommend_smj_variant(profile: JoinWorkloadProfile) -> Recommendation:
    """Figure 18b: SMJ-OM vs SMJ-UM when restricted to sort-merge joins.

    >>> wide = JoinWorkloadProfile(r_rows=1 << 20, s_rows=1 << 20,
    ...                            r_payload_columns=4, s_payload_columns=4)
    >>> recommend_smj_variant(wide).algorithm
    'SMJ-OM'
    >>> recommend_smj_variant(JoinWorkloadProfile(1 << 20, 1 << 20, 1, 1)).algorithm
    'SMJ-UM'
    """
    reasons: List[str] = []
    if profile.is_narrow:
        reasons.append("narrow join: the variants coincide (nothing extra to sort)")
        return Recommendation("SMJ-UM", reasons)
    if profile.match_ratio < LOW_MATCH_RATIO:
        reasons.append("low match ratio: unclustered gathers touch little data")
        return Recommendation("SMJ-UM", reasons)
    if profile.has_wide_values:
        reasons.append("8-byte keys/payloads: sorting every payload column is too expensive")
        return Recommendation("SMJ-UM", reasons)
    if profile.is_skewed:
        reasons.append(
            "high skew: few primary keys match, shrinking materialization; "
            "SMJ-UM's consistent sort wins"
        )
        return Recommendation("SMJ-UM", reasons)
    reasons.append("wide 4-byte join with high match ratio: clustered gathers amortize the extra sorts")
    return Recommendation("SMJ-OM", reasons)


def make_algorithm(name: str, config=None):
    """Instantiate a join algorithm by its paper name.

    Accepts SMJ-UM, SMJ-OM, PHJ-UM, PHJ-OM, PHJ-OM/gfur, NPJ, CPU.

    >>> make_algorithm("PHJ-OM").name
    'PHJ-OM'
    >>> make_algorithm("FOO")
    Traceback (most recent call last):
        ...
    KeyError: "unknown join algorithm 'FOO'; known: ['CPU', 'NPJ', 'PHJ-OM', 'PHJ-OM/gfur', 'PHJ-UM', 'SMJ-OM', 'SMJ-UM']"
    """
    from .cpu_radix import CPURadixJoin
    from .npj import NonPartitionedHashJoin
    from .phj import PartitionedHashJoin
    from .phj_bucket import PartitionedHashJoinUM
    from .smj import SortMergeJoinOM, SortMergeJoinUM

    factories = {
        "SMJ-UM": lambda: SortMergeJoinUM(config),
        "SMJ-OM": lambda: SortMergeJoinOM(config),
        "PHJ-UM": lambda: PartitionedHashJoinUM(config),
        "PHJ-OM": lambda: PartitionedHashJoin(config),
        "PHJ-OM/gfur": lambda: PartitionedHashJoin(config, pattern="gfur"),
        "NPJ": lambda: NonPartitionedHashJoin(config),
        "CPU": lambda: CPURadixJoin(config),
    }
    try:
        return factories[name]()
    except KeyError:
        raise KeyError(
            f"unknown join algorithm {name!r}; known: {sorted(factories)}"
        ) from None


def planner_choice(
    r: Relation,
    s: Relation,
    match_ratio: Optional[float] = None,
    zipf_factor: float = 0.0,
):
    """Convenience: profile two relations and instantiate the best join.

    >>> import numpy as np
    >>> r = Relation.from_key_payloads(
    ...     np.arange(64, dtype=np.int32),
    ...     [np.arange(64, dtype=np.int32)], payload_prefix="r")
    >>> s = Relation.from_key_payloads(
    ...     np.arange(64, dtype=np.int32),
    ...     [np.arange(64, dtype=np.int32)], payload_prefix="s")
    >>> impl, recommendation = planner_choice(r, s)
    >>> impl.name == recommendation.algorithm == 'PHJ-UM'
    True
    """
    profile = JoinWorkloadProfile.from_relations(
        r, s, match_ratio=match_ratio if match_ratio is not None else 1.0,
        zipf_factor=zipf_factor,
    )
    recommendation = recommend_join_algorithm(profile)
    return make_algorithm(recommendation.algorithm), recommendation
