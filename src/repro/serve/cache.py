"""Plan and result caching for the serving layer.

Serving workloads are template-heavy: the same handful of logical plans
arrive over and over with Zipf-distributed popularity.  Two caches
exploit that:

* the **plan cache** maps a normalized logical plan (structure +
  per-scan relation fingerprints) to a *pinned* physical plan — the
  same plan tree with every ``"auto"`` algorithm replaced by the name
  the planner resolved on first execution.  A hit skips profile
  building and the planner's decision tree; because the planner is a
  deterministic function of the (unchanged) data, the pinned plan
  reproduces the auto plan's result bit for bit.
* the **result / sub-result cache** maps the same signature to the
  materialized output (the root result, plus join intermediates
  captured via the executor's ``join_output_hook``), LRU-evicted under
  a byte budget and *invalidated* whenever a relation the entry read is
  updated — a stale read is structurally impossible because every entry
  records its relation dependencies at insertion.

Both caches key on content fingerprints, so two registered relations
with equal bytes share entries and any data change misses cleanly.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..aggregation import GROUPBY_ALGORITHMS
from ..joins import ALGORITHMS
from ..query.plan import Aggregate, Join, OperatorTrace, PlanNode, Project, Scan
from ..relational.relation import Relation

Signature = Tuple


def relation_fingerprint(relation: Relation) -> str:
    """Content hash of a relation: schema, key designation, and bytes.

    Two relations with identical columns (names, dtypes, values, order)
    and the same key column collide on purpose; any difference — one
    changed payload value included — produces a new fingerprint.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(relation.key.encode("utf-8"))
    for name, array in relation.columns().items():
        digest.update(b"\x00")
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def plan_signature(
    node: PlanNode, fingerprint: Callable[[Relation], str]
) -> Signature:
    """Normalized, hashable identity of a logical plan over its data.

    *fingerprint* resolves a scanned relation to its content hash (the
    server passes a catalog-memoized resolver).  The signature includes
    requested algorithm names: forcing ``"SMJ-OM"`` and leaving
    ``"auto"`` may produce different row orders, so they must not share
    result-cache entries.
    """
    if isinstance(node, Scan):
        return ("scan", fingerprint(node.relation))
    if isinstance(node, Project):
        return ("project", tuple(node.columns), plan_signature(node.child, fingerprint))
    if isinstance(node, Join):
        return (
            "join",
            node.algorithm,
            plan_signature(node.left, fingerprint),
            plan_signature(node.right, fingerprint),
        )
    if isinstance(node, Aggregate):
        return (
            "aggregate",
            node.algorithm,
            node.group_column,
            tuple((spec.column, spec.op) for spec in node.aggregates),
            plan_signature(node.child, fingerprint),
        )
    raise TypeError(f"unknown plan node {type(node).__name__}")


def plan_relations(node: PlanNode) -> List[Relation]:
    """Every relation the plan scans, in traversal order."""
    if isinstance(node, Scan):
        return [node.relation]
    if isinstance(node, Project):
        return plan_relations(node.child)
    if isinstance(node, Join):
        return plan_relations(node.left) + plan_relations(node.right)
    if isinstance(node, Aggregate):
        return plan_relations(node.child)
    raise TypeError(f"unknown plan node {type(node).__name__}")


# -- plan pinning -------------------------------------------------------------


def pin_plan(
    plan: PlanNode,
    trace: Sequence[OperatorTrace],
    optimize: bool = True,
    fused: Optional[bool] = None,
) -> PlanNode:
    """Rebuild *plan* with the algorithms an execution actually resolved.

    *trace* is the :class:`~repro.query.plan.OperatorTrace` list of one
    ``execute(plan, optimize=optimize)`` run; entries are consumed in
    the executor's append order (left subtree, right subtree, operator).
    ``optimize`` decides whether a Project-over-Join folded into the
    join (pushdown: one entry for the whole subtree) or ran separately;
    ``fused`` mirrors the executor's fusion condition (``optimize and
    shards == 1``, the default) so an Aggregate-over-Join consumes a
    single fused entry whose ``algorithm`` is ``"<join>+<group-by>"``.
    Only names the algorithm registries know are pinned — degraded
    spellings like ``"OOC[PHJ-OM]"`` are left as the original request.
    """
    if fused is None:
        fused = optimize
    position = 0

    def take() -> OperatorTrace:
        nonlocal position
        entry = trace[position]
        position += 1
        return entry

    def join_name(name: str) -> Optional[str]:
        return name if name in ALGORITHMS else None

    def agg_name(name: str) -> Optional[str]:
        return name if name in GROUPBY_ALGORITHMS else None

    def walk_join(node: Join) -> Join:
        left = walk(node.left)
        right = walk(node.right)
        resolved = join_name(take().algorithm)
        if resolved is None:
            return replace(node, left=left, right=right)
        return replace(node, left=left, right=right, algorithm=resolved)

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, Scan):
            take()
            return node
        if isinstance(node, Project):
            if optimize and isinstance(node.child, Join):
                # Projection pushdown: the executor emitted only the
                # join's entry for this whole subtree.
                return replace(node, child=walk_join(node.child))
            child = walk(node.child)
            take()  # the Project's own entry
            return replace(node, child=child)
        if isinstance(node, Join):
            return walk_join(node)
        if isinstance(node, Aggregate):
            if fused and isinstance(node.child, Join):
                left = walk(node.child.left)
                right = walk(node.child.right)
                entry = take()
                join_part, _, agg_part = entry.algorithm.partition("+")
                child = replace(node.child, left=left, right=right)
                if join_name(join_part) is not None:
                    child = replace(child, algorithm=join_part)
                pinned = replace(node, child=child)
                if agg_name(agg_part) is not None:
                    pinned = replace(pinned, algorithm=agg_part)
                return pinned
            child = walk(node.child)
            resolved = agg_name(take().algorithm)
            if resolved is None:
                return replace(node, child=child)
            return replace(node, child=child, algorithm=resolved)
        raise TypeError(f"unknown plan node {type(node).__name__}")

    return walk(plan)


# -- dependency-tracking LRU --------------------------------------------------


@dataclass
class CacheEntry:
    """One cached value with its relation dependencies."""

    key: Signature
    value: object
    nbytes: int
    deps: FrozenSet[str]
    hits: int = 0


class DependentLRU:
    """An LRU keyed on plan signatures with explicit invalidation.

    Entries carry the set of registered relation names they were
    computed from; :meth:`invalidate` evicts every entry depending on a
    name.  Eviction is by entry count and/or byte budget (whichever is
    set), least-recently-used first.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        self._entries: "OrderedDict[Signature, CacheEntry]" = OrderedDict()
        self._dependents: Dict[str, set] = {}
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Signature) -> bool:
        return key in self._entries

    def get(self, key: Signature) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hits += 1
        return entry

    def put(
        self,
        key: Signature,
        value: object,
        deps: Sequence[str] = (),
        nbytes: int = 0,
    ) -> Optional[CacheEntry]:
        """Insert (or refresh) an entry; returns it, or ``None`` when the
        value alone exceeds the byte budget (uncacheable)."""
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return None
        if key in self._entries:
            self._remove(key)
        entry = CacheEntry(
            key=key, value=value, nbytes=int(nbytes), deps=frozenset(deps)
        )
        self._entries[key] = entry
        self.current_bytes += entry.nbytes
        for dep in entry.deps:
            self._dependents.setdefault(dep, set()).add(key)
        self._shrink()
        return entry

    def invalidate(self, dep: str) -> int:
        """Evict every entry that depends on *dep*; returns the count."""
        keys = list(self._dependents.pop(dep, ()))
        for key in keys:
            if key in self._entries:
                self._remove(key)
                self.invalidations += 1
        return len(keys)

    def clear(self) -> None:
        self._entries.clear()
        self._dependents.clear()
        self.current_bytes = 0

    def _remove(self, key: Signature) -> None:
        entry = self._entries.pop(key)
        self.current_bytes -= entry.nbytes
        for dep in entry.deps:
            dependents = self._dependents.get(dep)
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._dependents[dep]

    def _shrink(self) -> None:
        while (
            self.max_entries is not None and len(self._entries) > self.max_entries
        ) or (
            self.max_bytes is not None and self.current_bytes > self.max_bytes
        ):
            oldest = next(iter(self._entries))
            self._remove(oldest)
            self.evictions += 1

    @property
    def entry_keys(self) -> List[Signature]:
        return list(self._entries)


# -- typed wrappers -----------------------------------------------------------


@dataclass
class PinnedPlan:
    """A plan-cache value: the pinned tree plus its provenance."""

    plan: PlanNode
    pinned_from: str  #: the root operator description that resolved it


def output_nbytes(output: object) -> int:
    """Bytes of a query output (a Relation or an aggregate column dict)."""
    if isinstance(output, Relation):
        return output.total_bytes
    if isinstance(output, dict):
        return sum(int(np.asarray(col).nbytes) for col in output.values())
    return 0


class PlanCache(DependentLRU):
    """Signature -> :class:`PinnedPlan`, bounded by entry count."""

    def __init__(self, max_entries: int = 256):
        super().__init__(max_entries=max_entries)


class ResultCache(DependentLRU):
    """Signature -> materialized output, bounded by a byte budget."""

    def __init__(self, max_bytes: int = 64 << 20):
        super().__init__(max_bytes=max_bytes)
