"""Plan execution with optimization passes.

``execute(plan)`` validates, optimizes, and runs a plan bottom-up,
accumulating simulated operator costs into a trace.  Optimizations:

* ``Project`` over ``Join`` -> join-side projection pushdown;
* ``Aggregate`` over ``Join`` -> fused join + aggregation.

Both fire automatically; ``execute(..., optimize=False)`` runs the plan
literally for comparison (the delta is exactly ext02's measurement).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import List, Optional, Tuple

from ..aggregation.planner import (
    GroupByWorkloadProfile,
    estimate_group_cardinality,
    make_groupby_algorithm,
    recommend_groupby_algorithm,
)
from ..cancel import current_token
from ..errors import (
    DeviceOutOfMemoryError,
    JoinConfigError,
    ShardedExecutionWarning,
)
from ..obs.session import TraceSession, current_session
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.kernel import KernelStats
from ..joins.base import JoinConfig
from ..joins.fused import FusedJoinAggregate
from ..joins.planner import JoinWorkloadProfile, make_algorithm, recommend_join_algorithm
from ..relational.relation import Relation
from .plan import (
    Aggregate,
    Join,
    OperatorTrace,
    PlanNode,
    Project,
    QueryResult,
    Scan,
    aggregate_input_columns,
    validate_plan,
)


def _resolve_join_algorithm(name: str, r: Relation, s: Relation, config: JoinConfig):
    if name != "auto":
        return make_algorithm(name, config)
    profile = JoinWorkloadProfile.from_relations(r, s)
    return make_algorithm(recommend_join_algorithm(profile).algorithm, config)


def _resolve_groupby_algorithm(name: str, keys, device: DeviceSpec):
    if name != "auto":
        return make_groupby_algorithm(name)
    profile = GroupByWorkloadProfile(
        rows=int(keys.size), estimated_groups=estimate_group_cardinality(keys)
    )
    return make_groupby_algorithm(
        recommend_groupby_algorithm(profile, device=device).algorithm
    )


class QueryExecutor:
    """Executes logical plans on a simulated device or device cluster.

    ``shards=N`` with ``N > 1`` runs every Join and Aggregate operator
    sharded across a simulated N-device cluster (see
    :mod:`repro.cluster`): inputs are shuffled on the operator key over
    *interconnect*, each device runs the unchanged single-device
    algorithm on its shard, and the operator cost becomes the cluster
    clock (max over device timelines plus shuffle drains).  Results are
    bit-identical to the single-device run; ``shards=1`` (default) is
    exactly the single-device executor.

    ``fault_plan=`` applies a :class:`~repro.faults.FaultPlan` to every
    operator: transient kernel faults retry with simulated backoff, and
    (injected or real) :class:`~repro.errors.DeviceOutOfMemoryError`
    degrades the operator to its partitioned/out-of-core variant instead
    of raising, recording ``degraded=`` in the operator trace.  OOM
    pressure (``capacity_frac``) is a single-device mechanism and
    conflicts with ``shards > 1``.

    ``tiering=`` attaches a :class:`~repro.tier.TieredRuntime`: joins
    over two base-relation scans and aggregates over one base-relation
    scan are split into a GPU sub-operator over cache-resident segments
    and a CPU sub-operator over cold ones (output bit-identical to the
    untiered run for every placement).  Tiering is a single-device
    residency mechanism and conflicts with ``shards > 1``; with a
    ``fault_plan``, ``capacity_frac`` pressure shrinks the segment cache
    (graceful demotion to the CPU tier) instead of OOM-failing, and
    kernel faults retry inside the tier contexts as usual.
    """

    def __init__(
        self,
        device: DeviceSpec = A100,
        config: Optional[JoinConfig] = None,
        seed: Optional[int] = None,
        shards: int = 1,
        interconnect="nvlink-mesh",
        fault_plan=None,
        join_output_hook=None,
        enable_fusion: bool = True,
        tiering=None,
    ):
        if shards < 1:
            raise JoinConfigError(f"shards must be >= 1, got {shards}")
        if tiering is not None and shards > 1:
            # Segment residency is per-device state; a sharded run would
            # need per-shard caches, which the cluster layer does not
            # model.  Conflict loudly rather than silently untier.
            raise JoinConfigError(
                f"tiering is incompatible with shards > 1 (got shards={shards})"
            )
        if (
            shards > 1
            and fault_plan is not None
            and fault_plan.capacity_frac is not None
        ):
            # OOM-pressure degradation (re-planning to out-of-core) is a
            # single-device recovery; silently dropping the pressure would
            # make a "tested" fault plan vacuous, so conflict loudly.
            raise JoinConfigError(
                "fault_plan.capacity_frac (device-OOM pressure) is "
                "incompatible with shards > 1; use "
                "fault_plan.without_capacity() for sharded runs"
            )
        self.device = device
        self.config = config or JoinConfig()
        self.seed = seed
        self.shards = shards
        self.interconnect = interconnect
        self.fault_plan = fault_plan
        # Called with (join_node, output_relation) after each plain
        # (single-device, fault-free, unprojected) join materializes; the
        # serving layer caches these intermediates as sub-results.  Only
        # that path fires the hook: sharded/faulted runs may permute row
        # order and pushed-down projections change the output schema.
        self.join_output_hook = join_output_hook
        # ``enable_fusion=False`` runs Aggregate-over-Join unfused even
        # on one device (bit-identical output, fusion credit forfeited).
        # The serving layer's brownout controller uses it to shed the
        # fused pipeline's peak-memory footprint under pressure.
        self.enable_fusion = enable_fusion
        self.tiering = tiering
        self._session: Optional[TraceSession] = None

    def execute(
        self,
        plan: PlanNode,
        optimize: bool = True,
        trace: Optional[TraceSession] = None,
    ) -> QueryResult:
        """Run a validated plan; pass ``trace`` (or activate a
        :class:`~repro.obs.session.TraceSession`) to capture one span per
        operator with its kernels nested underneath."""
        validate_plan(plan)
        self._session = trace if trace is not None else current_session()
        operator_traces: List[OperatorTrace] = []
        if self._session is not None:
            # Activate so the per-operator GPUContexts report into it even
            # when the session was passed explicitly rather than entered.
            with self._session.activated():
                with self._session.span(f"query:{plan.describe()}", category="query"):
                    output = self._run(plan, operator_traces, optimize)
        else:
            output = self._run(plan, operator_traces, optimize)
        return QueryResult(output=output, trace=operator_traces, session=self._session)

    # -- tracing -------------------------------------------------------------

    @contextmanager
    def _operator_span(self, name: str, **args):
        """An operator span on the active session (or a no-op)."""
        if self._session is None:
            yield None
        else:
            with self._session.span(name, category="operator", **args) as event:
                yield event

    # -- node dispatch -------------------------------------------------------

    def _run(self, node: PlanNode, trace: List[OperatorTrace], optimize: bool):
        # Operator boundary: the cooperative cancellation point between
        # pipeline stages.  Work below this node has been fully charged
        # to the ambient token by the per-kernel accounting.
        token = current_token()
        if token is not None:
            token.check(f"operator:{node.describe()}")
        if isinstance(node, Scan):
            with self._operator_span(node.describe(), rows=node.relation.num_rows):
                pass
            trace.append(OperatorTrace(node.describe(), 0.0, node.relation.num_rows))
            return node.relation
        if isinstance(node, Project):
            if optimize and isinstance(node.child, Join):
                return self._run_join(
                    node.child, trace, optimize, projection=node.columns,
                    pushed_from=node.describe(),
                )
            child = self._run(node.child, trace, optimize)
            return self._run_project(node, child, trace)
        if isinstance(node, Join):
            return self._run_join(node, trace, optimize, projection=None)
        if isinstance(node, Aggregate):
            # Join-aggregate fusion folds during materialization on one
            # device; a sharded aggregate instead re-shuffles the join
            # output on the group column, so fusion does not apply.
            if (
                optimize
                and isinstance(node.child, Join)
                and self.shards == 1
                and self.enable_fusion
                and self.tiering is None
            ):
                return self._run_fused_aggregate(node, trace, optimize)
            if optimize and isinstance(node.child, Join) and self.shards > 1:
                warnings.warn(
                    ShardedExecutionWarning(
                        f"shards={self.shards} disables join-aggregate "
                        "fusion; executing the Aggregate over the Join "
                        "unfused (results are identical, the fusion "
                        "credit is not applied)"
                    ),
                    stacklevel=2,
                )
            child = self._run(node.child, trace, optimize)
            return self._run_aggregate(node, child, trace)
        raise JoinConfigError(f"unknown plan node {type(node).__name__}")

    # -- operators ----------------------------------------------------------

    def _run_project(
        self, node: Project, child: Relation, trace: List[OperatorTrace]
    ) -> Relation:
        missing = [c for c in node.columns if c not in child]
        if missing:
            raise JoinConfigError(f"Project references missing columns {missing}")
        columns = [(child.key, child.key_values)]
        columns += [(c, child.column(c)) for c in node.columns if c != child.key]
        projected = Relation(columns, key=child.key, name=child.name)
        # An unfused projection copies the kept columns once.
        with self._operator_span(node.describe(), rows=projected.num_rows):
            ctx = GPUContext(device=self.device)
            ctx.submit(
                KernelStats(
                    name="project",
                    items=child.num_rows,
                    seq_read_bytes=projected.total_bytes,
                    seq_write_bytes=projected.total_bytes,
                )
            )
        trace.append(
            OperatorTrace(node.describe(), ctx.elapsed_seconds, projected.num_rows)
        )
        return projected

    def _run_join(
        self,
        node: Join,
        trace: List[OperatorTrace],
        optimize: bool,
        projection: Optional[Tuple[str, ...]],
        pushed_from: str = "",
    ) -> Relation:
        left = self._run(node.left, trace, optimize)
        right = self._run(node.right, trace, optimize)
        config = self.config
        if projection is not None:
            from dataclasses import replace

            config = replace(config, projection=tuple(projection))
        if (
            self.tiering is not None
            and projection is None
            and isinstance(node.left, Scan)
            and isinstance(node.right, Scan)
            and self.tiering.handles(left)
            and self.tiering.handles(right)
        ):
            with self._operator_span(node.describe()) as span:
                result = self.tiering.run_join(
                    left,
                    right,
                    config=config,
                    session=self._session,
                    fault_plan=self.fault_plan,
                    seed=self.seed,
                )
            if result is not None:
                description = (
                    f"Join[TIER hot:{result.hot_segments}"
                    f"/cold:{result.cold_segments}]"
                )
                if span is not None:
                    span.name = description
                    span.args.update(
                        rows=result.rows,
                        algorithm=result.algorithm,
                        hot_segments=result.hot_segments,
                        cold_segments=result.cold_segments,
                    )
                trace.append(
                    OperatorTrace(
                        description,
                        result.seconds,
                        result.rows,
                        extras=dict(result.extras),
                        algorithm=result.algorithm,
                    )
                )
                return result.output
        if self.shards > 1:
            from ..cluster.sharded import sharded_join

            with self._operator_span(node.describe()) as span:
                result = sharded_join(
                    left,
                    right,
                    algorithm=node.algorithm,
                    device=self.device,
                    num_devices=self.shards,
                    interconnect=self.interconnect,
                    config=config,
                    seed=self.seed,
                )
            description = f"Join[{result.algorithm} x{self.shards}]"
            if projection is not None:
                description += f" <- pushed {pushed_from}"
            if span is not None:
                span.name = description
                span.args.update(
                    rows=result.matches,
                    algorithm=result.algorithm,
                    shards=self.shards,
                )
            trace.append(
                OperatorTrace(
                    description,
                    result.total_seconds,
                    result.matches,
                    extras=dict(result.step_seconds),
                    algorithm=result.algorithm,
                )
            )
            return result.output
        if self.fault_plan is not None:
            from ..faults.recovery import resilient_join

            with self._operator_span(node.describe()) as span:
                result = resilient_join(
                    left,
                    right,
                    algorithm=node.algorithm,
                    device=self.device,
                    config=config,
                    seed=self.seed,
                    fault_plan=self.fault_plan,
                )
            description = f"Join[{result.algorithm}]"
            if projection is not None:
                description += f" <- pushed {pushed_from}"
            if span is not None:
                span.name = description
                span.args.update(
                    rows=result.matches,
                    algorithm=result.algorithm,
                    degraded=result.degraded,
                )
            trace.append(
                OperatorTrace(
                    description,
                    result.total_seconds,
                    result.matches,
                    extras=result.extras,
                    algorithm=result.algorithm,
                )
            )
            return result.output
        algorithm = _resolve_join_algorithm(node.algorithm, left, right, config)
        with self._operator_span(node.describe()) as span:
            result = algorithm.join(left, right, device=self.device, seed=self.seed)
        description = f"Join[{result.algorithm}]"
        if projection is not None:
            description += f" <- pushed {pushed_from}"
        if span is not None:
            span.name = description
            span.args.update(rows=result.matches, algorithm=result.algorithm)
        trace.append(
            OperatorTrace(
                description,
                result.total_seconds,
                result.matches,
                extras=dict(result.phase_seconds),
                algorithm=result.algorithm,
            )
        )
        if self.join_output_hook is not None and projection is None:
            self.join_output_hook(node, result.output)
        return result.output

    def _run_aggregate(
        self, node: Aggregate, child: Relation, trace: List[OperatorTrace]
    ):
        if (
            self.tiering is not None
            and isinstance(node.child, Scan)
            and self.tiering.handles(child)
        ):
            with self._operator_span(node.describe()) as span:
                result = self.tiering.run_group_by(
                    child,
                    node.group_column,
                    list(node.aggregates),
                    session=self._session,
                    fault_plan=self.fault_plan,
                    seed=self.seed,
                )
            if result is not None:
                description = (
                    f"Aggregate[TIER hot:{result.hot_segments}"
                    f"/cold:{result.cold_segments}]"
                )
                if span is not None:
                    span.name = description
                    span.args.update(
                        rows=result.rows,
                        algorithm=result.algorithm,
                        hot_segments=result.hot_segments,
                        cold_segments=result.cold_segments,
                    )
                trace.append(
                    OperatorTrace(
                        description,
                        result.seconds,
                        result.rows,
                        extras=dict(result.extras),
                        algorithm=result.algorithm,
                    )
                )
                return result.output
        keys = child.column(node.group_column)
        values = {
            spec.column: child.column(spec.column)
            for spec in node.aggregates
            if spec.op != "count"
        }
        if self.shards > 1:
            from ..cluster.sharded import sharded_group_by

            with self._operator_span(node.describe()) as span:
                result = sharded_group_by(
                    keys,
                    values,
                    list(node.aggregates),
                    algorithm=node.algorithm,
                    device=self.device,
                    num_devices=self.shards,
                    interconnect=self.interconnect,
                    seed=self.seed,
                )
            if span is not None:
                span.name = f"Aggregate[{result.algorithm} x{self.shards}]"
                span.args.update(
                    rows=result.groups,
                    algorithm=result.algorithm,
                    shards=self.shards,
                )
            trace.append(
                OperatorTrace(
                    f"Aggregate[{result.algorithm} x{self.shards}]",
                    result.total_seconds,
                    result.groups,
                    extras=dict(result.step_seconds),
                    algorithm=result.algorithm,
                )
            )
            return result.output
        if self.fault_plan is not None:
            from ..faults.recovery import resilient_group_by

            with self._operator_span(node.describe()) as span:
                result = resilient_group_by(
                    keys,
                    values,
                    list(node.aggregates),
                    algorithm=node.algorithm,
                    device=self.device,
                    seed=self.seed,
                    fault_plan=self.fault_plan,
                )
            if span is not None:
                span.name = f"Aggregate[{result.algorithm}]"
                span.args.update(
                    rows=result.groups,
                    algorithm=result.algorithm,
                    degraded=result.degraded,
                )
            trace.append(
                OperatorTrace(
                    f"Aggregate[{result.algorithm}]",
                    result.total_seconds,
                    result.groups,
                    extras=result.extras,
                    algorithm=result.algorithm,
                )
            )
            return result.output
        algorithm = _resolve_groupby_algorithm(node.algorithm, keys, self.device)
        with self._operator_span(node.describe()) as span:
            result = algorithm.group_by(
                keys, values, list(node.aggregates), device=self.device, seed=self.seed
            )
        if span is not None:
            span.name = f"Aggregate[{result.algorithm}]"
            span.args.update(rows=result.groups, algorithm=result.algorithm)
        trace.append(
            OperatorTrace(
                f"Aggregate[{result.algorithm}]",
                result.total_seconds,
                result.groups,
                extras=dict(result.phase_seconds),
                algorithm=result.algorithm,
            )
        )
        return result.output

    def _run_fused_aggregate(
        self, node: Aggregate, trace: List[OperatorTrace], optimize: bool
    ):
        join_node = node.child
        left = self._run(join_node.left, trace, optimize)
        right = self._run(join_node.right, trace, optimize)
        join_algorithm = _resolve_join_algorithm(
            join_node.algorithm, left, right, self.config
        )
        groupby_algorithm = None
        if node.algorithm != "auto":
            groupby_algorithm = make_groupby_algorithm(node.algorithm)
        pipeline = FusedJoinAggregate(join_algorithm, groupby_algorithm)
        try:
            with self._operator_span("FusedJoinAggregate") as span:
                result = pipeline.run(
                    left,
                    right,
                    group_column=node.group_column,
                    aggregates=list(node.aggregates),
                    device=self.device,
                    seed=self.seed,
                    fuse=True,
                    fault_plan=self.fault_plan,
                )
        except DeviceOutOfMemoryError:
            # Fusion needs the whole join+fold pipeline resident at once;
            # under memory pressure, unfuse and recover each stage on its
            # own degradation ladder (identical rows, credit forfeited).
            return self._degrade_fused_aggregate(node, left, right, trace)
        description = (
            f"FusedJoinAggregate[{result.join_result.algorithm} + "
            f"{result.groupby_result.algorithm}]"
        )
        if span is not None:
            span.name = description
            span.args.update(
                rows=result.groupby_result.groups,
                fusion_credit_s=result.fusion_credit_seconds,
            )
        trace.append(
            OperatorTrace(
                description,
                result.total_seconds,
                result.groupby_result.groups,
                extras={"fusion_credit_s": result.fusion_credit_seconds},
                algorithm=(
                    f"{result.join_result.algorithm}"
                    f"+{result.groupby_result.algorithm}"
                ),
            )
        )
        return result.output

    def _degrade_fused_aggregate(
        self, node: Aggregate, left: Relation, right: Relation,
        trace: List[OperatorTrace],
    ):
        """Unfuse an OOMed fused pipeline and recover stage by stage."""
        from dataclasses import replace

        from ..faults.recovery import resilient_group_by, resilient_join

        if self._session is not None:
            self._session.count("faults_injected_oom")
            self._session.count("degraded_operators")
        needed = [node.group_column] + [
            spec.column
            for spec in node.aggregates
            if spec.op != "count" and spec.column != node.group_column
        ]
        config = replace(self.config, projection=tuple(dict.fromkeys(needed)))
        with self._operator_span(
            "FusedJoinAggregate(degraded)", degraded=True
        ) as span:
            join_res = resilient_join(
                left,
                right,
                algorithm=node.child.algorithm,
                device=self.device,
                config=config,
                seed=self.seed,
                fault_plan=self.fault_plan,
            )
            joined = join_res.output
            keys = joined.column(node.group_column)
            values = {
                spec.column: joined.column(spec.column)
                for spec in node.aggregates
                if spec.op != "count"
            }
            agg_res = resilient_group_by(
                keys,
                values,
                list(node.aggregates),
                algorithm=node.algorithm,
                device=self.device,
                seed=self.seed,
                fault_plan=self.fault_plan,
            )
        description = (
            f"JoinAggregate[degraded {join_res.algorithm} + {agg_res.algorithm}]"
        )
        if span is not None:
            span.name = description
            span.args.update(rows=agg_res.groups, degraded=True)
        trace.append(
            OperatorTrace(
                description,
                join_res.total_seconds + agg_res.total_seconds,
                agg_res.groups,
                extras={
                    "degraded": 1.0,
                    "join_s": join_res.total_seconds,
                    "aggregate_s": agg_res.total_seconds,
                },
                algorithm=f"{join_res.algorithm}+{agg_res.algorithm}",
            )
        )
        return agg_res.output


def execute(
    plan: PlanNode,
    device: DeviceSpec = A100,
    config: Optional[JoinConfig] = None,
    seed: Optional[int] = None,
    optimize: bool = True,
    shards: int = 1,
    interconnect="nvlink-mesh",
    fault_plan=None,
    tiering=None,
) -> QueryResult:
    """One-shot convenience around :class:`QueryExecutor`.

    ``shards=N`` executes every Join/Aggregate sharded across a
    simulated N-device cluster over *interconnect* (a name or an
    :class:`~repro.cluster.topology.InterconnectSpec`);
    ``fault_plan=`` injects a :class:`~repro.faults.FaultPlan` and
    recovers via retries and graceful degradation; ``tiering=`` splits
    eligible operators across a :class:`~repro.tier.TieredRuntime`'s
    GPU/CPU tiers.
    """
    return QueryExecutor(
        device=device, config=config, seed=seed, shards=shards,
        interconnect=interconnect, fault_plan=fault_plan, tiering=tiering,
    ).execute(plan, optimize=optimize)
