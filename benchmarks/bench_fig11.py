"""Figure 11: effect of |R|/|S|.

Regenerates the experiment table into ``bench_results/fig11.txt``.
Run: ``pytest benchmarks/bench_fig11.py --benchmark-only -s``
"""

from repro.bench.experiments import fig11

from _common import SWEEP_SCALE, run_and_report


def test_fig11(benchmark):
    result = run_and_report(benchmark, fig11.run, SWEEP_SCALE)
    assert result.findings["om_wins_all_ratios"] == 1.0
