"""Sampled vs exact sector accounting: bit-identity and error bands.

Two guarantees back the sampled fast path in
``repro.primitives.sector_analysis``:

* **exact mode is frozen** — ``fixtures/sector_fixtures.json`` holds the
  pre-refactor warp-by-warp accounting for 36 recorded index maps; exact
  mode must reproduce every field bit-identically, forever;
* **sampled mode is close** — on the access-pattern families the join
  and group-by algorithms actually produce (permutations, sorted runs,
  uniform draws, constants, clustered blocks), sampled statistics stay
  within a few percent of exact.  The ``strided`` family is the
  documented adversarial case: its heavy-tailed warp spans are mostly
  invisible to a 2048-warp stride sample, so its cold-sector and span
  errors can reach ~50% — asserted here as a *loose* band so the
  limitation stays visible in the test suite rather than folklore.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.primitives.sector_analysis import (
    SAMPLE_WARPS,
    analyze_indices,
    get_sector_mode,
    set_sector_mode,
)

FIXTURES = json.loads(
    (Path(__file__).parent / "fixtures" / "sector_fixtures.json").read_text()
)

#: Error bands asserted for sampled mode (relative error vs exact).
WELL_BEHAVED_BANDS = {"spr": 0.02, "cold": 0.05, "span": 0.02}
#: The documented adversarial family: stride sampling misses its
#: heavy-tailed warp spans (see module docstring).
STRIDED_BANDS = {"spr": 0.02, "cold": 0.60, "span": 0.60}


def families(n, seed):
    """The recorded fixture workloads — ONE rng shared across families.

    This generator must match the one that produced
    ``sector_fixtures.json`` exactly (a single ``default_rng`` consumed
    sequentially), or the bit-identity test compares different arrays.
    """
    rng = np.random.default_rng(seed)
    yield "permutation", rng.permutation(n).astype(np.int32)
    yield "sorted", np.sort(rng.integers(0, 4 * n, n)).astype(np.int64)
    yield "uniform", rng.integers(0, 16 * n, n).astype(np.int64)
    yield "strided", (np.arange(n, dtype=np.int64) * 17) % (4 * n)
    yield "constant", np.full(n, 3, dtype=np.int32)
    yield "clustered_blocks", (
        rng.integers(0, n // 64 or 1, n) * 64 + rng.integers(0, 64, n)
    ).astype(np.int64)


@pytest.fixture
def sector_mode():
    """Restore the process-wide sector mode after each test."""
    previous = get_sector_mode()
    yield
    set_sector_mode(previous)


def _rel_err(got, want) -> float:
    return abs(got - want) / max(1e-12, abs(want))


class TestExactBitIdentity:
    """Exact mode reproduces the pre-refactor accounting exactly."""

    @pytest.mark.parametrize(
        "record",
        FIXTURES,
        ids=lambda r: f"{r['family']}-n{r['n']}-s{r['seed']}-eb{r['element_bytes']}",
    )
    def test_fixture(self, record, sector_mode):
        arrays = dict(families(record["n"], record["seed"]))
        indices = arrays[record["family"]]
        assert str(indices.dtype) == record["dtype"]
        set_sector_mode("exact")
        stats = analyze_indices(indices, record["element_bytes"])
        assert stats.requests == record["requests"]
        assert stats.sector_touches == record["sector_touches"]
        assert stats.cold_sectors == record["cold_sectors"]
        assert stats.mean_warp_span_bytes == record["mean_warp_span_bytes"]


class TestSampledBands:
    """Sampled statistics stay within the documented error bands."""

    N = 1 << 18

    @pytest.mark.parametrize("element_bytes", [4, 8])
    @pytest.mark.parametrize(
        "family",
        ["permutation", "sorted", "uniform", "strided", "constant",
         "clustered_blocks"],
    )
    def test_error_bands(self, family, element_bytes, sector_mode):
        indices = dict(families(self.N, 5))[family]
        set_sector_mode("exact")
        exact = analyze_indices(indices, element_bytes)
        set_sector_mode("sampled")
        sampled = analyze_indices(indices, element_bytes)

        bands = STRIDED_BANDS if family == "strided" else WELL_BEHAVED_BANDS
        assert sampled.requests == exact.requests
        assert _rel_err(sampled.sectors_per_request, exact.sectors_per_request) <= bands["spr"]
        assert _rel_err(sampled.cold_sectors, exact.cold_sectors) <= bands["cold"]
        assert _rel_err(sampled.mean_warp_span_bytes, exact.mean_warp_span_bytes) <= bands["span"]

    @pytest.mark.parametrize("element_bytes", [4, 8])
    @pytest.mark.parametrize(
        "family",
        ["permutation", "sorted", "uniform", "strided", "constant",
         "clustered_blocks"],
    )
    def test_invariants(self, family, element_bytes, sector_mode):
        """Structural invariants hold regardless of sampling error."""
        indices = dict(families(self.N, 9))[family]
        set_sector_mode("sampled")
        stats = analyze_indices(indices, element_bytes)
        assert stats.requests == -(-indices.size // 32)
        assert stats.requests <= stats.sector_touches <= stats.requests * 32
        assert 1 <= stats.cold_sectors <= stats.sector_touches
        assert stats.mean_warp_span_bytes >= element_bytes


class TestModeSelection:
    def test_set_returns_previous(self, sector_mode):
        assert set_sector_mode("exact") == "auto"
        assert set_sector_mode("sampled") == "exact"
        assert get_sector_mode() == "sampled"

    def test_invalid_mode_rejected(self, sector_mode):
        with pytest.raises(ValueError):
            set_sector_mode("fast")

    def test_auto_below_threshold_is_exact(self, sector_mode):
        """auto mode is bit-identical to exact below the size threshold."""
        indices = dict(families(1 << 14, 3))["uniform"]
        set_sector_mode("exact")
        exact = analyze_indices(indices, 4)
        set_sector_mode("auto")
        assert analyze_indices(indices, 4) == exact

    def test_sampled_tiny_input_falls_back_to_exact(self, sector_mode):
        """Below one full warp, sampled mode delegates to exact."""
        indices = np.array([7, 3, 900, 2], dtype=np.int64)
        set_sector_mode("exact")
        exact = analyze_indices(indices, 8)
        set_sector_mode("sampled")
        assert analyze_indices(indices, 8) == exact

    def test_sample_cap_respected(self, sector_mode):
        """The sample analyzes at most ~2 * SAMPLE_WARPS warps."""
        # Stride = full_warps // SAMPLE_WARPS floors, so the warp count
        # stays below 2 * SAMPLE_WARPS; this guards the O(sample) bound.
        n = 1 << 21
        full_warps = n // 32
        stride = max(1, full_warps // SAMPLE_WARPS)
        assert full_warps / stride < 2 * SAMPLE_WARPS
