"""Command-line experiment runner.

Regenerate any subset of the paper's tables and figures without pytest::

    python -m repro.bench                     # list experiments
    python -m repro.bench fig10 fig14         # run two experiments
    python -m repro.bench all --scale 0.002   # run everything at a scale

Rendered tables are printed and saved under ``bench_results/``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from .experiments import ALL_EXPERIMENTS
from .harness import DEFAULT_SCALE, run_traced
from .reporting import print_and_save


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig10 tab04 agg01), or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"workload scale relative to the paper (default {DEFAULT_SCALE:g})",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload generator seed"
    )
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        metavar="N",
        default=None,
        help=(
            "device counts for scale-out experiments (e.g. --devices 1 2 4 8); "
            "forwarded to experiments that take a 'devices' knob (ext04)"
        ),
    )
    parser.add_argument(
        "--streams",
        type=int,
        nargs="+",
        metavar="N",
        default=None,
        help=(
            "logical stream counts for serving experiments "
            "(e.g. --streams 1 2 4 8 16); forwarded to experiments that "
            "take a 'streams' knob (ext06)"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "fault-plan seed for resilience experiments; forwarded to "
            "experiments that take a 'fault_seed' knob (ext05)"
        ),
    )
    parser.add_argument(
        "--capacity-frac",
        type=float,
        nargs="+",
        metavar="F",
        default=None,
        help=(
            "device capacity fractions for resilience experiments "
            "(e.g. --capacity-frac 0.05 0.001); forwarded to experiments "
            "that take a 'capacity_fracs' knob (ext05)"
        ),
    )
    parser.add_argument(
        "--queries-per-phase",
        type=int,
        default=None,
        metavar="N",
        help=(
            "queries per chaos phase for soak experiments; forwarded to "
            "experiments that take a 'queries_per_phase' knob (ext07)"
        ),
    )
    parser.add_argument(
        "--zipf-factor",
        type=float,
        default=None,
        metavar="Z",
        help=(
            "Zipf exponent of the template draw for tiering experiments; "
            "forwarded to experiments that take a 'zipf_factor' knob (ext08)"
        ),
    )
    parser.add_argument(
        "--cache-fraction",
        type=float,
        default=None,
        metavar="F",
        help=(
            "segment-cache capacity as a fraction of device memory; "
            "forwarded to experiments that take a 'cache_fraction' knob "
            "(ext08)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help=(
            "capture a TraceSession per experiment and write "
            "<id>.trace.json (chrome://tracing / Perfetto), "
            "<id>.counters.csv and <id>.report.txt into DIR"
        ),
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not args.experiments:
        print("available experiments:")
        for name in sorted(ALL_EXPERIMENTS):
            doc = (ALL_EXPERIMENTS[name].__module__ or "").rsplit(".", 1)[-1]
            del doc
            print(f"  {name}")
        print("\nrun with: python -m repro.bench <ids...> | all")
        return 0

    names = (
        sorted(ALL_EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    )
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    for name in names:
        started = time.time()
        runner = ALL_EXPERIMENTS[name]
        kwargs = {"scale": args.scale, "seed": args.seed}
        # Forward scale-out knobs only to runners that take them.
        params = inspect.signature(runner).parameters
        if args.devices is not None and "devices" in params:
            kwargs["devices"] = tuple(args.devices)
        if args.streams is not None and "streams" in params:
            kwargs["streams"] = tuple(args.streams)
        if args.fault_seed is not None and "fault_seed" in params:
            kwargs["fault_seed"] = args.fault_seed
        if args.capacity_frac is not None and "capacity_fracs" in params:
            kwargs["capacity_fracs"] = tuple(args.capacity_frac)
        if args.queries_per_phase is not None and "queries_per_phase" in params:
            kwargs["queries_per_phase"] = args.queries_per_phase
        if args.zipf_factor is not None and "zipf_factor" in params:
            kwargs["zipf_factor"] = args.zipf_factor
        if args.cache_fraction is not None and "cache_fraction" in params:
            kwargs["cache_fraction"] = args.cache_fraction
        if args.trace and "trace_dir" in params:
            kwargs["trace_dir"] = args.trace
        if args.trace:
            result, _ = run_traced(lambda: runner(**kwargs), name, args.trace)
            print(f"[{name}] trace -> {args.trace}/{name}.trace.json")
        else:
            result = runner(**kwargs)
        path = print_and_save(result)
        print(f"[{name}] {time.time() - started:.1f}s wall -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
