"""Figure 9: time breakdown of narrow GPU joins.

The transform (bottom) and match-finding (top) split for each GPU
implementation across the Figure 8 size points.  For narrow joins the
materialization phase is negligible, SMJ-OM coincides with SMJ-UM, and
PHJ-UM edges out PHJ-OM slightly on small inputs.
"""

from __future__ import annotations

from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    phase_columns,
    run_algorithm,
)
from .fig08 import PAPER_R_SIZES

ALGORITHMS = ("NPJ", "SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="fig09",
        title="Time breakdown of narrow joins (ms)",
        headers=["|R| tuples", "algorithm", "transform_ms", "match_ms",
                 "materialize_ms", "total_ms"],
    )
    finals = {}
    for paper_rows in PAPER_R_SIZES:
        spec = JoinWorkloadSpec(
            r_rows=setup.rows(paper_rows),
            s_rows=setup.rows(2 * paper_rows),
            r_payload_columns=1,
            s_payload_columns=1,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        for name in ALGORITHMS:
            res = run_algorithm(name, r, s, setup)
            t, m, z = phase_columns(res)
            result.add_row(spec.r_rows, name, t, m, z, res.total_seconds * 1e3)
            finals[name] = res.total_seconds
    result.findings["phj_um_vs_phj_om_largest"] = finals["PHJ-OM"] / finals["PHJ-UM"]
    result.findings["smj_om_vs_smj_um_largest"] = finals["SMJ-UM"] / finals["SMJ-OM"]
    result.add_note("narrow joins: SMJ-OM ~ SMJ-UM and PHJ-OM ~ PHJ-UM by design")
    return result
