"""Trace sessions: structured span/kernel events on the simulated clock.

The paper's methodology is profile-first — every claim rests on
per-phase, per-kernel memory-traffic counters (Figures 1, 9-17,
Table 4).  A :class:`TraceSession` gives the reproduction the same
inspectability: while a session is active, every
:meth:`~repro.gpusim.context.GPUContext.submit` becomes a *kernel
event*, every :meth:`~repro.gpusim.timeline.PhaseTimeline.phase` block
becomes a *phase span*, and the query executor / join / group-by layers
open *operator* and *algorithm* spans around their work.  Events nest
by containment and sit on a single monotone simulated clock (seconds of
simulated device time, not wall time), so the export renders exactly
like a real profiler capture.

Activation is stack-based and optional: with no active session, the
hot paths pay a single ``is None`` check per kernel and nothing else —
the zero-overhead-when-disabled guarantee the bench harness relies on.

This module is self-contained (it imports nothing from the simulator
beyond type names at call sites) so every other layer can import it
without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

#: Canonical phase display order, mirrored from the timeline (kept local
#: so this module stays import-cycle free).
_CANONICAL_PHASES = ("transform", "match", "aggregate", "materialize")

#: Event categories used by the built-in instrumentation.
OPERATOR, ALGORITHM, PHASE, KERNEL = "operator", "algorithm", "phase", "kernel"


@dataclass
class TraceEvent:
    """One span or kernel on the session's simulated clock.

    ``start_s``/``end_s`` are simulated seconds since session start;
    spans that are still open have ``end_s is None``.  Kernel events
    additionally carry the submitted :class:`~repro.gpusim.kernel.KernelRecord`
    and the cycle count implied by the submitting device's clock.
    """

    name: str
    category: str
    start_s: float
    end_s: Optional[float] = None
    parent: Optional[int] = None  #: index of the enclosing span event
    args: Dict[str, object] = field(default_factory=dict)
    # Kernel-only payload.
    record: Optional[object] = None  #: the KernelRecord, when category == "kernel"
    cycles: float = 0.0
    device: str = ""

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s


# -- active-session stack ----------------------------------------------------

_ACTIVE: List["TraceSession"] = []


def current_session() -> Optional["TraceSession"]:
    """The innermost active session, or ``None`` when tracing is off."""
    return _ACTIVE[-1] if _ACTIVE else None


class TraceSession:
    """Collects spans, kernel events and counters for one traced run.

    Use as a context manager to activate; while active, every
    :class:`~repro.gpusim.context.GPUContext` created (by any layer)
    reports into this session, and its clock ends up equal to the
    device's simulated time:

    >>> from repro.obs import TraceSession
    >>> from repro.gpusim import GPUContext, KernelStats
    >>> with TraceSession("demo") as session:
    ...     ctx = GPUContext()          # picks up the active session
    ...     with session.span("join", "operator"):
    ...         _ = ctx.submit(
    ...             KernelStats(name="probe", seq_read_bytes=8 << 20),
    ...             phase="match")
    >>> [event.category for event in session.events]
    ['operator', 'kernel']
    >>> session.total_seconds == ctx.elapsed_seconds
    True

    Afterwards, pass the session to an exporter — e.g.
    ``write_chrome_trace(session, "trace.json")`` for
    ``chrome://tracing`` / Perfetto.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self.events: List[TraceEvent] = []
        self.metrics = MetricsRegistry()
        self._stack: List[int] = []
        self._clock = 0.0

    # -- activation --------------------------------------------------------

    def __enter__(self) -> "TraceSession":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc) -> None:
        if _ACTIVE and _ACTIVE[-1] is self:
            _ACTIVE.pop()
        elif self in _ACTIVE:  # defensive: unbalanced nesting
            _ACTIVE.remove(self)

    @contextmanager
    def activated(self) -> Iterator["TraceSession"]:
        """Re-entrant activation (used by ``execute(..., trace=...)``)."""
        with self:
            yield self

    # -- recording ---------------------------------------------------------

    @property
    def clock_s(self) -> float:
        """Current simulated time; advances only when kernels land."""
        return self._clock

    @property
    def total_seconds(self) -> float:
        return self._clock

    @contextmanager
    def span(self, name: str, category: str = "span", **args) -> Iterator[TraceEvent]:
        """Open a nested span; closes at the clock position on exit."""
        index = self._open(name, category, args)
        try:
            yield self.events[index]
        finally:
            self._close(index)

    def _open(self, name: str, category: str, args: Dict[str, object]) -> int:
        event = TraceEvent(
            name=name,
            category=category,
            start_s=self._clock,
            parent=self._stack[-1] if self._stack else None,
            args=dict(args),
        )
        self.events.append(event)
        index = len(self.events) - 1
        self._stack.append(index)
        return index

    def _close(self, index: int) -> None:
        self.events[index].end_s = self._clock
        if self._stack and self._stack[-1] == index:
            self._stack.pop()
        elif index in self._stack:  # defensive: out-of-order close
            self._stack.remove(index)

    def record_kernel(self, record, device) -> None:
        """Account one submitted kernel and advance the simulated clock.

        ``record`` is a :class:`~repro.gpusim.kernel.KernelRecord` whose
        ``phase`` has already been resolved by the timeline; ``device``
        is the submitting :class:`~repro.gpusim.device.DeviceSpec`.
        """
        event = TraceEvent(
            name=record.stats.name,
            category=KERNEL,
            start_s=self._clock,
            end_s=self._clock + record.seconds,
            parent=self._stack[-1] if self._stack else None,
            args={"phase": record.phase},
            record=record,
            cycles=record.seconds * device.clock_hz,
            device=device.name,
        )
        self.events.append(event)
        self._clock += record.seconds
        self.metrics.record_kernel_stats(record.stats)

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment a named session counter (e.g. ``partition_passes``)."""
        self.metrics.increment(name, value)

    # -- queries -----------------------------------------------------------

    def spans(self, category: Optional[str] = None) -> List[Tuple[int, TraceEvent]]:
        """(index, event) pairs of non-kernel spans, in open order."""
        return [
            (i, e)
            for i, e in enumerate(self.events)
            if e.category != KERNEL and (category is None or e.category == category)
        ]

    def kernel_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.category == KERNEL]

    def kernels_under(self, span_index: int) -> List[TraceEvent]:
        """Kernel events whose ancestor chain contains ``span_index``."""
        selected = []
        for event in self.events:
            if event.category != KERNEL:
                continue
            parent = event.parent
            while parent is not None:
                if parent == span_index:
                    selected.append(event)
                    break
                parent = self.events[parent].parent
        return selected

    def phase_seconds(self) -> "Dict[str, float]":
        """Simulated seconds per phase, canonical phases first.

        Re-aggregates the kernel events by their resolved phase label, so
        for a single-context run this reproduces
        ``PhaseTimeline.breakdown()`` (asserted by the property suite).
        """
        totals: Dict[str, float] = {}
        for event in self.kernel_events():
            phase = str(event.args.get("phase") or "other")
            # Use the exact submitted seconds (clock subtraction could
            # lose low bits), so single-context sessions reproduce
            # PhaseTimeline.breakdown() bit-for-bit.
            totals[phase] = totals.get(phase, 0.0) + event.record.seconds
        ordered: Dict[str, float] = {}
        for phase in _CANONICAL_PHASES:
            if phase in totals:
                ordered[phase] = totals[phase]
        for phase, seconds in totals.items():
            if phase not in ordered:
                ordered[phase] = seconds
        return ordered
