"""Cost model for tier placement and the CPU sub-operator.

Reuses the calibrated :class:`~repro.gpusim.costmodel.CostModel` for
both device specs, so the CPU tier's charges are on exactly the same
footing as the existing out-of-core paths: streaming traffic at the
device's memory bandwidth, per-item instruction cost, and host<->device
staging at ``interconnect_bandwidth`` — the identical formula
``OutOfCoreJoin`` charges through ``KernelStats.host_transfer_bytes``
(pinned by the calibration test in ``tests/tier/test_costmodel.py``).
"""

from __future__ import annotations

from ..gpusim.costmodel import CostModel
from ..gpusim.device import CPU_SERVER, DeviceSpec
from ..gpusim.kernel import KernelStats


class TierCostModel:
    """Per-byte estimates guiding placement across the two tiers."""

    def __init__(self, gpu: DeviceSpec, cpu: DeviceSpec = CPU_SERVER):
        self.gpu = gpu
        self.cpu = cpu
        self.gpu_cost = CostModel(gpu)
        self.cpu_cost = CostModel(cpu)

    def transfer_seconds(self, nbytes: int) -> float:
        """Host->device staging time — the admission price of a segment."""
        return self.gpu_cost.time(
            KernelStats(name="tier_transfer", launches=0, host_transfer_bytes=int(nbytes))
        )

    def gpu_scan_seconds(self, nbytes: int, items: int = 0) -> float:
        """Streaming a resident segment through a GPU kernel."""
        return self.gpu_cost.time(
            KernelStats(
                name="tier_gpu_scan", launches=0,
                seq_read_bytes=int(nbytes), items=int(items),
            )
        )

    def cpu_scan_seconds(self, nbytes: int, items: int = 0) -> float:
        """Streaming a cold segment through the CPU tier."""
        return self.cpu_cost.time(
            KernelStats(
                name="tier_cpu_scan", launches=0,
                seq_read_bytes=int(nbytes), items=int(items),
            )
        )

    def benefit_per_byte(self) -> float:
        """Seconds saved per resident byte per access (CPU minus GPU).

        Positive on every sane device pair; a device pair where the CPU
        streams faster than the GPU would make all placements worthless,
        and the policy would correctly admit nothing.
        """
        probe = 1 << 20
        cpu = self.cpu_scan_seconds(probe, items=probe // 4)
        gpu = self.gpu_scan_seconds(probe, items=probe // 4)
        return max(0.0, (cpu - gpu) / probe)

    def accesses_to_amortize(self, nbytes: int) -> float:
        """Accesses needed before admission pays for its transfer."""
        benefit = self.benefit_per_byte() * max(1, int(nbytes))
        if benefit <= 0:
            return float("inf")
        return self.transfer_seconds(nbytes) / benefit
