"""Placement policy: decayed scoring, popularity feed, hysteresis."""

import pytest

from repro.errors import ReproError
from repro.tier import PlacementPolicy, SegmentKey

K = lambda i, col="c", rel="R": SegmentKey(rel, col, i)  # noqa: E731


def test_access_decay_across_ticks():
    policy = PlacementPolicy(access_decay=0.5)
    policy.note_access(K(0))
    assert policy.effective_accesses(K(0)) == 1.0
    policy.begin_pass()
    policy.begin_pass()
    assert policy.effective_accesses(K(0)) == pytest.approx(0.25)
    policy.note_access(K(0))
    assert policy.effective_accesses(K(0)) == pytest.approx(1.25)


def test_popularity_ema_scales_scores():
    policy = PlacementPolicy()
    policy.note_access(K(0, rel="hotrel"))
    policy.note_access(K(0, rel="coldrel"))
    for _ in range(10):
        policy.note_popularity("hotrel")
    assert policy.popularity("hotrel") > policy.popularity("coldrel") == 1.0
    assert policy.score(K(0, rel="hotrel"), 100) > policy.score(
        K(0, rel="coldrel"), 100
    )


def test_score_normalizes_by_bytes():
    policy = PlacementPolicy()
    policy.note_access(K(0))
    policy.note_access(K(1))
    assert policy.score(K(0), 100) > policy.score(K(1), 1000)


def test_choose_victims_prefers_cheapest_and_respects_needed_bytes():
    policy = PlacementPolicy(min_residency_ticks=0, hysteresis=1.0)
    for i, weight in [(0, 1.0), (1, 5.0), (2, 10.0)]:
        for _ in range(int(weight)):
            policy.note_access(K(i))
    resident = [(K(0), 100), (K(1), 100), (K(2), 100)]
    victims = policy.choose_victims(150, candidate_score=1e9, resident=resident)
    assert victims == [K(0), K(1)]  # cheapest first, stop at needed bytes


def test_choose_victims_declines_rather_than_evict_better_segments():
    policy = PlacementPolicy(min_residency_ticks=0, hysteresis=1.0)
    for _ in range(10):
        policy.note_access(K(0))
    resident = [(K(0), 100)]
    weak_candidate_score = policy.score(K(0), 100) / 2
    assert policy.choose_victims(50, weak_candidate_score, resident) is None


def test_hysteresis_protects_marginally_worse_segments():
    policy = PlacementPolicy(min_residency_ticks=0, hysteresis=2.0)
    policy.note_access(K(0))
    resident = [(K(0), 100)]
    slightly_better = policy.score(K(0), 100) * 1.5  # < 2x: within the band
    assert policy.choose_victims(50, slightly_better, resident) is None
    clearly_better = policy.score(K(0), 100) * 3.0
    assert policy.choose_victims(50, clearly_better, resident) == [K(0)]


def test_min_residency_ticks_shields_recent_admissions():
    policy = PlacementPolicy(min_residency_ticks=2, hysteresis=1.0)
    policy.begin_pass()
    policy.note_admitted(K(0))
    assert policy.choose_victims(50, 1e9, [(K(0), 100)]) is None
    policy.begin_pass()
    policy.begin_pass()
    assert policy.choose_victims(50, 1e9, [(K(0), 100)]) == [K(0)]


def test_protected_keys_are_never_victims():
    policy = PlacementPolicy(min_residency_ticks=0)
    assert (
        policy.choose_victims(50, 1e9, [(K(0), 100)], protect={K(0)}) is None
    )


def test_forget_drops_relation_state():
    policy = PlacementPolicy()
    policy.note_access(K(0, rel="gone"))
    policy.note_popularity("gone")
    policy.forget("gone")
    assert policy.effective_accesses(K(0, rel="gone")) == 0.0
    assert policy.popularity("gone") == 1.0


def test_invalid_hysteresis_rejected():
    with pytest.raises((ValueError, ReproError)):
        PlacementPolicy(hysteresis=0.5)
