"""Multi-attribute group-by via composite packed keys (TPC-H Q1 shape)."""

import numpy as np
import pytest

from repro.aggregation import AggSpec, make_groupby_algorithm
from repro.relational import pack_columns, reference_groupby
from repro.workloads import tpch_lineitem_like


@pytest.fixture(scope="module")
def lineitem():
    return tpch_lineitem_like(20000, seed=3)


class TestQ1ShapedGroupBy:
    """GROUP BY (returnflag, linestatus) — the paper-era canonical query."""

    def test_group_count_matches_distinct_tuples(self, lineitem):
        order_key, columns = lineitem
        del order_key
        packed, codec = pack_columns([columns["returnflag"], columns["linestatus"]])
        result = make_groupby_algorithm("HASH-AGG").group_by(
            packed, {"quantity": columns["quantity"]},
            [AggSpec("quantity", "sum")],
        )
        distinct = {
            (int(a), int(b))
            for a, b in zip(columns["returnflag"], columns["linestatus"])
        }
        assert result.groups == len(distinct)

    def test_unpacked_group_keys_identify_attribute_pairs(self, lineitem):
        _, columns = lineitem
        packed, codec = pack_columns([columns["returnflag"], columns["linestatus"]])
        result = make_groupby_algorithm("PART-AGG").group_by(
            packed, {"quantity": columns["quantity"]},
            [AggSpec("quantity", "sum")],
        )
        flags, statuses = codec.unpack(result.output["group_key"])
        assert flags.max() < 4
        assert statuses.max() < 2
        # Spot-check one group's sum against a direct computation.
        flag, status = int(flags[0]), int(statuses[0])
        mask = (columns["returnflag"] == flag) & (columns["linestatus"] == status)
        assert result.output["sum_quantity"][0] == columns["quantity"][mask].sum()

    @pytest.mark.parametrize("strategy", ["HASH-AGG", "SORT-AGG", "PART-AGG"])
    def test_all_strategies_agree_on_packed_keys(self, lineitem, strategy):
        _, columns = lineitem
        packed, _ = pack_columns([columns["returnflag"], columns["linestatus"]])
        expected = reference_groupby(
            packed, {"q": columns["quantity"]}, {"q": "sum"}
        )
        result = make_groupby_algorithm(strategy).group_by(
            packed, {"q": columns["quantity"]}, [AggSpec("q", "sum")],
        )
        assert np.array_equal(result.output["sum_q"], expected["sum_q"])

    def test_packed_order_matches_lexicographic_grouping(self, lineitem):
        _, columns = lineitem
        packed, _ = pack_columns([columns["returnflag"], columns["linestatus"]])
        result = make_groupby_algorithm("SORT-AGG").group_by(
            packed, {}, [AggSpec("rows", "count")],
        )
        keys = result.output["group_key"]
        assert np.array_equal(keys, np.sort(keys))
