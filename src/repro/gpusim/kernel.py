"""Kernel-level traffic accounting.

Every simulated kernel (one primitive invocation) reports a
:class:`KernelStats` record describing the memory traffic it generates.
The cost model (``repro.gpusim.costmodel``) converts a record into
simulated seconds; the profiler aggregates records into Nsight-like
counters (Table 4 of the paper).

The distinction that drives the whole paper is encoded here:

* *sequential* traffic — coalesced streaming reads/writes, charged at
  peak bandwidth;
* *random* traffic — gathers/scatters described by the number of distinct
  32-byte sectors touched (``random_sector_touches``), how many of those
  are cold (first touch, must come from DRAM), and the locality footprint
  used to decide whether repeated touches hit L2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class KernelStats:
    """Memory-traffic and work description of one simulated kernel.

    All byte quantities are totals for the kernel.  ``items`` is the number
    of logical elements processed (used for the per-item instruction cost
    and for profiler counters).
    """

    name: str
    items: int = 0
    launches: int = 1

    # Coalesced streaming traffic.
    seq_read_bytes: int = 0
    seq_write_bytes: int = 0

    # Random (gather/scatter) traffic, measured by sector analysis.
    random_requests: int = 0  #: warp-level load/store requests
    random_sector_touches: int = 0  #: sum over warps of distinct sectors
    random_cold_sectors: int = 0  #: globally distinct sectors (cold misses)
    #: Mean per-warp address span in bytes; the cost model compares this
    #: against the L2 size to decide if repeated touches hit L2.
    locality_footprint_bytes: float = 0.0

    # Host <-> device staging traffic (out-of-core joins).
    host_transfer_bytes: int = 0

    # Atomic-update behaviour (bucket-chain partitioning, hash group-by).
    atomic_ops: int = 0
    #: >= 1; multiplier reflecting serialization of conflicting atomics
    #: (e.g. a hot partition under Zipf-skewed keys).
    atomic_conflict_factor: float = 1.0

    def merged_with(self, other: "KernelStats", name: str | None = None) -> "KernelStats":
        """Combine two stats records (weighted merge of footprints)."""
        touches = self.random_sector_touches + other.random_sector_touches
        if touches:
            footprint = (
                self.locality_footprint_bytes * self.random_sector_touches
                + other.locality_footprint_bytes * other.random_sector_touches
            ) / touches
        else:
            footprint = 0.0
        atomics = self.atomic_ops + other.atomic_ops
        if atomics:
            conflict = (
                self.atomic_conflict_factor * self.atomic_ops
                + other.atomic_conflict_factor * other.atomic_ops
            ) / atomics
        else:
            conflict = 1.0
        return KernelStats(
            name=name or self.name,
            items=self.items + other.items,
            launches=self.launches + other.launches,
            seq_read_bytes=self.seq_read_bytes + other.seq_read_bytes,
            seq_write_bytes=self.seq_write_bytes + other.seq_write_bytes,
            host_transfer_bytes=self.host_transfer_bytes + other.host_transfer_bytes,
            random_requests=self.random_requests + other.random_requests,
            random_sector_touches=touches,
            random_cold_sectors=self.random_cold_sectors + other.random_cold_sectors,
            locality_footprint_bytes=footprint,
            atomic_ops=atomics,
            atomic_conflict_factor=conflict,
        )

    @property
    def total_seq_bytes(self) -> int:
        return self.seq_read_bytes + self.seq_write_bytes

    @property
    def sectors_per_request(self) -> float:
        """Average distinct sectors touched per warp request (Table 4)."""
        if not self.random_requests:
            return 0.0
        return self.random_sector_touches / self.random_requests

    def validate(self) -> None:
        """Sanity-check invariants; raises ``ValueError`` on violation."""
        for name in _NUMERIC_FIELDS:
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"KernelStats.{name} must be >= 0, got {value}")
        if self.random_cold_sectors > self.random_sector_touches:
            raise ValueError("cold sectors cannot exceed total sector touches")
        if self.atomic_conflict_factor < 1.0:
            raise ValueError("atomic_conflict_factor must be >= 1")


#: Field names checked for non-negativity, resolved once at import time —
#: ``dataclasses.fields()`` per ``validate()`` call showed up in bench
#: profiles at paper scale.
_NUMERIC_FIELDS = tuple(f.name for f in fields(KernelStats) if f.name != "name")


@dataclass
class KernelRecord:
    """A submitted kernel together with its simulated execution time."""

    stats: KernelStats
    seconds: float
    phase: str = ""
    extra: dict = field(default_factory=dict)
