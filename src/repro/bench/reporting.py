"""Result persistence for the benchmark harness.

Each benchmark writes its rendered :class:`ExperimentResult` to
``bench_results/<experiment_id>.txt`` at the repository root (or the
current working directory when run elsewhere) so EXPERIMENTS.md can
reference the regenerated tables.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

from .harness import ExperimentResult

#: Environment variable overriding the output directory.
OUTPUT_DIR_ENV = "REPRO_BENCH_RESULTS"


def results_dir() -> Path:
    """Directory for rendered experiment tables (created on demand)."""
    configured = os.environ.get(OUTPUT_DIR_ENV)
    base = Path(configured) if configured else Path.cwd() / "bench_results"
    base.mkdir(parents=True, exist_ok=True)
    return base


def save_result(result: ExperimentResult) -> Path:
    """Persist one rendered experiment table; returns the file path."""
    path = results_dir() / f"{result.experiment_id}.txt"
    path.write_text(result.render() + "\n")
    return path


def save_results(results: Iterable[ExperimentResult]) -> list:
    return [save_result(r) for r in results]


def print_and_save(result: ExperimentResult) -> Path:
    """Echo the table to stdout (visible with ``pytest -s``) and save it."""
    print()
    print(result.render())
    return save_result(result)
