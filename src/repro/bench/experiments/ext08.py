"""ext08: heterogeneous segment cache — hit ratio vs throughput.

The tiering extension's acceptance harness.  A Zipf-skewed stream of
query templates runs over a dataset several times larger than device
memory, three ways:

* ``all-cpu`` — a :class:`~repro.tier.TieredRuntime` with zero cache
  capacity: every segment is cold, all operator work is charged to the
  CPU tier's cost model.  The lower bound.
* ``no-cache`` — the segment cache is cleared before every query, so
  each query re-stages its working set over the interconnect before
  computing on the GPU.  This is classic per-query out-of-core
  execution: the PCIe bill is paid every time.
* ``tiered`` — the real system.  Hot segments stay resident across
  queries under the cost-based placement policy (fed the same Zipf
  template popularity the serving layer reports), so the staging cost
  amortizes over reuse and repeat queries run at device bandwidth.

Every query in every arm is checked bit-identical against a plain
``execute()`` of the same plan — the placement-independence oracle —
and the table reports per-arm throughput, the cumulative byte-weighted
hit ratio, and the tier/pool observability counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ...aggregation.base import AggSpec
from ...obs.session import TraceSession
from ...query.executor import QueryExecutor, execute
from ...query.plan import Aggregate, Join, PlanNode, Scan
from ...tier import PlacementPolicy, TieredRuntime
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ...workloads.zipf import sample_zipf
from ..harness import DEFAULT_SCALE, ExperimentResult, Setup, make_setup

#: Relation pairs (each pair backs one join and, on even pairs, one
#: scan-aggregate template).  More pairs -> a longer popularity tail.
N_PAIRS = 16
#: |S| / |R| per pair.
S_FANOUT = 4
#: Dataset size as a multiple of (scaled) device memory.  The paper's
#: out-of-core regime; the acceptance floor is >= 4x.
DATASET_MULTIPLE = 4.0
#: Zipf exponent of the template draw — the serving layer's skew.
ZIPF_FACTOR = 1.1
NUM_QUERIES = 192
#: Fraction of device memory given to the segment cache.
CACHE_FRACTION = 0.85
#: Admission bar in predicted accesses: only templates arriving every
#: ~dozen placement passes keep clearing it, so the Zipf tail stays on
#: the CPU tier instead of thrashing the head out of the cache.
MIN_ADMIT_WEIGHT = 5.0
#: Coarser segments than the runtime default keep the bench's Python
#: per-segment overhead proportionate at sweep scales.
SEGMENT_ROWS = 16384


class _Template:
    """One query template with its oracle reference output."""

    def __init__(self, name: str, plan: PlanNode, probe_rows: int,
                 relations: List[object]):
        self.name = name
        self.plan = plan
        self.probe_rows = probe_rows
        self.relations = relations
        self.reference: object = None


def _outputs_equal(expected, actual) -> bool:
    """Exact (bit-identical, ordered) comparison for both output kinds."""
    if isinstance(expected, dict):
        if not isinstance(actual, dict) or list(expected) != list(actual):
            return False
        return all(
            expected[k].dtype == actual[k].dtype
            and np.array_equal(expected[k], actual[k])
            for k in expected
        )
    if expected.column_names != actual.column_names:
        return False
    return all(
        expected.column(n).dtype == actual.column(n).dtype
        and np.array_equal(expected.column(n), actual.column(n))
        for n in expected.column_names
    )


def _build_templates(
    setup: Setup, seed: int, n_pairs: int, dataset_multiple: float
) -> List[_Template]:
    """Relation pairs sized so the pairs sum to the dataset multiple."""
    pair_bytes = dataset_multiple * setup.device.global_mem_bytes / n_pairs
    # int32 key + one int32 payload -> 8 bytes/row on both sides.
    r_rows = max(2048, int(pair_bytes / (8 * (1 + S_FANOUT))))
    templates: List[_Template] = []
    for i in range(n_pairs):
        r, s = generate_join_workload(
            JoinWorkloadSpec(
                r_rows=r_rows,
                s_rows=S_FANOUT * r_rows,
                r_payload_columns=1,
                s_payload_columns=1,
                seed=seed + 37 * i,
            )
        )
        r.name, s.name = f"R{i}", f"S{i}"
        # NPJ emits the canonical s-major row order the tier merge
        # reproduces, so the oracle comparison can be exact-ordered.
        templates.append(
            _Template(
                f"join{i}",
                Join(Scan(r, f"R{i}"), Scan(s, f"S{i}"), algorithm="NPJ"),
                probe_rows=s.num_rows,
                relations=[r, s],
            )
        )
        if i % 2 == 0:
            templates.append(
                _Template(
                    f"agg{i}",
                    Aggregate(
                        Scan(s, f"S{i}"),
                        group_column="key",
                        aggregates=(
                            AggSpec("s1", "sum"),
                            AggSpec("s1", "max"),
                        ),
                    ),
                    probe_rows=s.num_rows,
                    relations=[s],
                )
            )
    return templates


def _dataset_bytes(templates: List[_Template]) -> int:
    seen: Dict[int, int] = {}
    for template in templates:
        for relation in template.relations:
            seen[id(relation)] = relation.total_bytes
    return sum(seen.values())


def _run_arm(
    label: str,
    templates: List[_Template],
    draws: np.ndarray,
    runtime: TieredRuntime,
    setup: Setup,
    seed: int,
    clear_each: bool = False,
) -> Dict[str, float]:
    session = TraceSession(f"ext08-{label}")
    executor = QueryExecutor(
        device=setup.device, config=setup.config, seed=seed, tiering=runtime
    )
    seconds = 0.0
    tuples = 0
    mismatches = 0
    for template_index in draws:
        template = templates[int(template_index)]
        if clear_each:
            runtime.cache.clear()
        # The serving layer feeds template popularity per arrival; the
        # bench drives the executor directly, so it feeds it here.
        runtime.note_plan(template.plan)
        result = executor.execute(template.plan, trace=session)
        seconds += result.total_seconds
        tuples += template.probe_rows
        if not _outputs_equal(template.reference, result.output):
            mismatches += 1
    runtime.cache.assert_consistent()
    cache = runtime.cache
    return {
        "label": label,
        "queries": float(len(draws)),
        "tuples": float(tuples),
        "seconds": seconds,
        "throughput": tuples / seconds if seconds else 0.0,
        "hit_ratio": cache.hit_ratio,
        "admitted_mb": cache.admitted_bytes / 1e6,
        "evictions": float(cache.evictions),
        "mismatches": float(mismatches),
        "pool_take_hits": session.metrics.value("pool.take_hit"),
        "pool_take_misses": session.metrics.value("pool.take_miss"),
        "tier_admissions": session.metrics.value("tier.admissions"),
        "resident_peak_mb": session.metrics.value("tier.resident_bytes_peak")
        / 1e6,
    }


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    n_pairs: int = N_PAIRS,
    num_queries: int = NUM_QUERIES,
    dataset_multiple: float = DATASET_MULTIPLE,
    zipf_factor: float = ZIPF_FACTOR,
    cache_fraction: float = CACHE_FRACTION,
    min_admit_weight: float = MIN_ADMIT_WEIGHT,
    segment_rows: int = SEGMENT_ROWS,
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    setup = make_setup(scale)
    templates = _build_templates(setup, seed, n_pairs, dataset_multiple)
    for template in templates:
        template.reference = execute(
            template.plan,
            device=setup.device,
            config=setup.config,
            seed=seed,
        ).output

    rng = np.random.default_rng(seed + 7)
    draws = sample_zipf(len(templates), num_queries, zipf_factor, rng)

    def make_runtime(capacity: Optional[int] = None) -> TieredRuntime:
        return TieredRuntime(
            device=setup.device,
            cpu_device=setup.cpu_device,
            segment_rows=segment_rows,
            capacity_bytes=capacity,
            cache_fraction=cache_fraction,
            # Stage a segment only when its predicted reuse repays the
            # transfer — one-off templates run on the CPU tier instead
            # of thrashing the cache.
            amortize_admission=True,
            min_admit_weight=min_admit_weight,
            # Wider hysteresis + longer minimum residency than the
            # runtime defaults: the bench's Zipf tail otherwise churns
            # the head out between its arrivals.
            policy=PlacementPolicy(hysteresis=2.0, min_residency_ticks=4),
        )

    arms = [
        _run_arm("all-cpu", templates, draws, make_runtime(capacity=0),
                 setup, seed),
        _run_arm("no-cache", templates, draws, make_runtime(), setup, seed,
                 clear_each=True),
        _run_arm("tiered", templates, draws, make_runtime(), setup, seed),
    ]

    result = ExperimentResult(
        experiment_id="ext08",
        title="Heterogeneous segment cache: Zipf stream over a dataset "
        f"{dataset_multiple:g}x device memory",
        headers=[
            "arm", "queries", "Mtuples", "seconds", "Mtuples/s",
            "hit_ratio", "admit_MB", "evict",
        ],
    )
    for arm in arms:
        result.add_row(
            arm["label"],
            int(arm["queries"]),
            round(arm["tuples"] / 1e6, 2),
            round(arm["seconds"], 5),
            round(arm["throughput"] / 1e6, 1),
            round(arm["hit_ratio"], 3),
            round(arm["admitted_mb"], 1),
            int(arm["evictions"]),
        )

    by_label = {arm["label"]: arm for arm in arms}
    tiered, nocache, allcpu = (
        by_label["tiered"], by_label["no-cache"], by_label["all-cpu"]
    )
    dataset = _dataset_bytes(templates)
    result.findings["dataset_to_device_mem"] = (
        dataset / setup.device.global_mem_bytes
    )
    result.findings["zipf_factor"] = zipf_factor
    result.findings["bit_identity"] = float(
        all(arm["mismatches"] == 0 for arm in arms)
    )
    result.findings["tiered_hit_ratio"] = tiered["hit_ratio"]
    result.findings["speedup_vs_all_cpu"] = (
        tiered["throughput"] / allcpu["throughput"]
    )
    result.findings["speedup_vs_no_cache"] = (
        tiered["throughput"] / nocache["throughput"]
    )
    result.findings["staging_saved_mb"] = (
        nocache["admitted_mb"] - tiered["admitted_mb"]
    )
    result.findings["tier_admission_spans_counted"] = tiered[
        "tier_admissions"
    ]
    result.findings["pool_metrics_observed"] = float(
        tiered["pool_take_hits"] + tiered["pool_take_misses"] > 0
    )
    result.add_note(
        f"dataset {dataset / 1e6:.0f} MB over device memory "
        f"{setup.device.global_mem_bytes / 1e6:.0f} MB "
        f"(cache capacity {cache_fraction:g} of device); "
        f"{len(templates)} templates, Zipf({zipf_factor:g}) draw"
    )
    result.add_note(
        "every query in every arm compared bit-identical (values, dtypes, "
        "row order) against plain execute() of the same plan"
    )
    return result
