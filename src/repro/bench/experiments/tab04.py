"""Table 4: micro-architectural comparison of un/clustered GATHERs.

Profiles the materialization gather of a 1G ⋈ 1G join the way Nsight
Compute does: total cycles, warp instructions, cycles per instruction,
memory read volume, and sectors per load request.  The unclustered map
is a random permutation (SMJ-UM's physical IDs); the clustered map is
the same multiset sorted (SMJ-OM's virtual IDs).

Paper anchors: ~8.5x cycle gap, 4.5 GB vs 1.5 GB read, 18 vs 6 sectors
per request for 2^27 4-byte items.
"""

from __future__ import annotations

import numpy as np

from ...gpusim.context import GPUContext
from ...primitives.gather import gather
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ITEMS = 1 << 27


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    n = setup.rows(PAPER_ITEMS)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 1 << 30, n).astype(np.int32)
    unclustered_map = rng.permutation(n).astype(np.int32)
    clustered_map = np.sort(unclustered_map)

    counters = {}
    for label, index_map in (("unclustered", unclustered_map), ("clustered", clustered_map)):
        ctx = GPUContext(device=setup.device)
        gather(ctx, src, index_map, phase="materialize", label=label)
        counters[label] = ctx.profiler.counters(name_filter="gather")

    result = ExperimentResult(
        experiment_id="tab04",
        title="Micro-architectural comparison of GATHERs (Nsight-style counters)",
        headers=["counter", "unclustered", "clustered"],
    )
    uc, cl = counters["unclustered"], counters["clustered"]
    for (name, u_val), (_, c_val) in zip(uc.as_table_rows(), cl.as_table_rows()):
        result.add_row(name, u_val, c_val)
    result.findings["cycle_ratio"] = uc.total_cycles / cl.total_cycles
    result.findings["read_volume_ratio"] = uc.memory_read_bytes / cl.memory_read_bytes
    result.findings["sectors_per_request_unclustered"] = uc.sectors_per_request
    result.findings["sectors_per_request_clustered"] = cl.sectors_per_request
    result.add_note(f"items scaled to {n} (paper: 2^27); device {setup.device.name}")
    return result
