"""Fixed-size column segments over relations.

The tiering layer (Mordred-style; see SNIPPETS.md snippet 2) manages
device residency at the granularity of *column segments*: each column of
a relation is split into fixed-size runs of ``segment_rows`` rows, and
placement decisions are taken per ``(relation, column, segment)`` key.
A row range is *hot* for an operator only when **all** the columns that
operator reads are resident for that range — the same rule Mordred's
``segment_group`` bitmap encodes — so the executor can split one
operator into a GPU part over hot ranges and a CPU part over cold ones
without ever mixing tiers inside a row.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Sequence, Tuple

import numpy as np

from ..relational.relation import Relation


class SegmentKey(NamedTuple):
    """Identity of one column segment: ``(relation, column, index)``."""

    relation: str
    column: str
    index: int

    def describe(self) -> str:
        return f"{self.relation}.{self.column}[{self.index}]"


class SegmentedRelation:
    """A relation viewed as fixed-size column segments.

    Purely a view: the backing :class:`~repro.relational.relation.Relation`
    stays the host-side source of truth; the cache copies segment slices
    onto the simulated device when the placement policy admits them.
    """

    def __init__(self, relation: Relation, segment_rows: int, name: str = ""):
        if segment_rows <= 0:
            raise ValueError(f"segment_rows must be positive, got {segment_rows}")
        self.relation = relation
        self.segment_rows = int(segment_rows)
        self.name = name or relation.name or f"relation@{id(relation):x}"

    @property
    def num_rows(self) -> int:
        return self.relation.num_rows

    @property
    def num_segments(self) -> int:
        rows = self.relation.num_rows
        if rows == 0:
            return 0
        return -(-rows // self.segment_rows)

    @property
    def total_bytes(self) -> int:
        return self.relation.total_bytes

    def row_range(self, index: int) -> Tuple[int, int]:
        """Half-open row range ``[start, stop)`` of segment *index*."""
        if not 0 <= index < self.num_segments:
            raise IndexError(
                f"segment {index} out of range for {self.name!r} "
                f"({self.num_segments} segments)"
            )
        start = index * self.segment_rows
        return start, min(start + self.segment_rows, self.relation.num_rows)

    def segment_key(self, column: str, index: int) -> SegmentKey:
        return SegmentKey(self.name, column, index)

    def column_slice(self, column: str, index: int) -> np.ndarray:
        """The host-side data of one column segment (a view, no copy)."""
        start, stop = self.row_range(index)
        return self.relation.column(column)[start:stop]

    def segment_nbytes(self, column: str, index: int) -> int:
        start, stop = self.row_range(index)
        return (stop - start) * int(self.relation.column(column).dtype.itemsize)

    def range_nbytes(self, columns: Sequence[str], index: int) -> int:
        """Bytes of one row range across *columns*."""
        return sum(self.segment_nbytes(column, index) for column in columns)

    def keys_for(self, columns: Sequence[str], index: int) -> List[SegmentKey]:
        """Segment keys an operator reading *columns* needs for range *index*."""
        return [self.segment_key(column, index) for column in columns]

    def iter_keys(self, columns: Sequence[str]) -> Iterable[SegmentKey]:
        """All segment keys of *columns*, segment-major."""
        for index in range(self.num_segments):
            for column in columns:
                yield self.segment_key(column, index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentedRelation({self.name!r}, {self.num_segments} segments "
            f"x {self.segment_rows} rows)"
        )
