"""Figure 12: effect of the number of payload columns.

|R| = |S| = 2^27, 100% match, sweeping the payload column count.  The
paper reports PHJ-OM and SMJ-OM maintaining ~2x and ~1.3x speedups over
PHJ-UM as columns grow.
"""

from __future__ import annotations

from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    run_algorithm,
    throughput_mtuples,
)

PAPER_ROWS = 1 << 27
PAYLOAD_COUNTS = (1, 2, 4, 6, 8)
ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    result = ExperimentResult(
        experiment_id="fig12",
        title="Effect of payload column count (throughput, Mtuples/s)",
        headers=["payload_cols"] + list(ALGORITHMS),
    )
    last = {}
    for count in PAYLOAD_COUNTS:
        spec = JoinWorkloadSpec(
            r_rows=rows,
            s_rows=rows,
            r_payload_columns=count,
            s_payload_columns=count,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        throughputs = {
            name: throughput_mtuples(run_algorithm(name, r, s, setup))
            for name in ALGORITHMS
        }
        result.add_row(count, *[throughputs[a] for a in ALGORITHMS])
        last = throughputs
    result.findings["phj_om_over_phj_um_widest"] = last["PHJ-OM"] / last["PHJ-UM"]
    result.findings["smj_om_over_phj_um_widest"] = last["SMJ-OM"] / last["PHJ-UM"]
    result.add_note("paper: PHJ-OM ~2x and SMJ-OM ~1.3x over PHJ-UM as columns grow")
    return result
