"""Global-memory linear-probing hash table (the cuDF-style NPJ substrate).

The non-partitioned hash join builds one big open-addressing table in
global memory and probes it directly — no transformation phase, but
every insert and probe is a random global-memory access (Section 5.2.2:
"cuDF is the most inefficient of all because of the random accesses
during the construction and probing of the hash table").

The implementation is a real vectorized linear-probing table: inserts
resolve collisions round by round (first pending writer per slot wins,
losers advance), probes walk runs until an empty slot, collecting *all*
duplicate matches.  Every slot access is recorded so the join can charge
exact random-traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ReproError
from .grouping import stable_key_order
from .hashing import hash_to_slots

#: Sentinel for an empty slot; keys must be >= 0 (dictionary-encoded).
EMPTY = np.int64(-1)

#: Bytes per slot (packed key + value pair).
SLOT_BYTES = 8


def table_capacity(num_keys: int, load_factor: float = 0.5) -> int:
    """Power-of-two capacity for the requested maximum load factor."""
    if num_keys < 0:
        raise ValueError("num_keys must be >= 0")
    needed = max(2, int(num_keys / load_factor))
    return 1 << (needed - 1).bit_length()


@dataclass
class BuildResult:
    """A populated table plus the slot positions every insert touched."""

    table_keys: np.ndarray
    table_values: np.ndarray
    touched_slots: np.ndarray
    rounds: int


@dataclass
class ProbeResult:
    """Matches plus the slot positions every probe touched.

    ``probe_indices[i]`` matched the build tuple ``build_values[i]``;
    pairs are sorted to probe-major (ascending probe index) order.
    """

    probe_indices: np.ndarray
    build_values: np.ndarray
    touched_slots: np.ndarray
    rounds: int


def build_table(
    keys: np.ndarray, values: np.ndarray, capacity: int
) -> BuildResult:
    """Insert all (key, value) pairs; duplicates occupy separate slots."""
    if keys.size and keys.min() < 0:
        raise ReproError("hash-table keys must be non-negative")
    if keys.size > capacity:
        raise ReproError(f"cannot insert {keys.size} keys into capacity {capacity}")
    table_keys = np.full(capacity, EMPTY, dtype=np.int64)
    table_values = np.zeros(capacity, dtype=np.int64)
    cur = hash_to_slots(keys, capacity)
    pending = np.arange(keys.size, dtype=np.int64)
    touched: List[np.ndarray] = []
    rounds = 0
    while pending.size:
        rounds += 1
        if rounds > capacity:
            raise ReproError("hash-table insertion did not converge")
        slots = cur[pending]
        touched.append(slots.copy())
        order = stable_key_order(slots)
        slots_sorted = slots[order]
        pending_sorted = pending[order]
        is_first = np.ones(slots_sorted.size, dtype=bool)
        is_first[1:] = slots_sorted[1:] != slots_sorted[:-1]
        candidates = pending_sorted[is_first]
        candidate_slots = slots_sorted[is_first]
        free = table_keys[candidate_slots] == EMPTY
        winners = candidates[free]
        winner_slots = candidate_slots[free]
        table_keys[winner_slots] = keys[winners]
        table_values[winner_slots] = values[winners]
        done = np.zeros(keys.size, dtype=bool)
        done[winners] = True
        pending = pending[~done[pending]]
        cur[pending] = (cur[pending] + 1) % capacity
    all_touched = (
        np.concatenate(touched) if touched else np.empty(0, dtype=np.int64)
    )
    return BuildResult(table_keys, table_values, all_touched, rounds)


def probe_table(
    table_keys: np.ndarray,
    table_values: np.ndarray,
    probe_keys: np.ndarray,
) -> ProbeResult:
    """Find every match for every probe key (handles duplicate build keys).

    Each probe walks its run until it hits an empty slot, emitting one
    match per equal-key slot along the way.
    """
    capacity = table_keys.size
    cur = hash_to_slots(probe_keys, capacity)
    active = np.arange(probe_keys.size, dtype=np.int64)
    hits_probe: List[np.ndarray] = []
    hits_value: List[np.ndarray] = []
    touched: List[np.ndarray] = []
    rounds = 0
    while active.size:
        rounds += 1
        if rounds > capacity + 1:
            raise ReproError("hash-table probe did not converge")
        slots = cur[active]
        touched.append(slots.copy())
        slot_keys = table_keys[slots]
        empty = slot_keys == EMPTY
        hit = slot_keys == probe_keys[active]
        if hit.any():
            hits_probe.append(active[hit])
            hits_value.append(table_values[slots[hit]])
        survivors = active[~empty]
        cur[survivors] = (cur[survivors] + 1) % capacity
        active = survivors
    if hits_probe:
        probe_idx = np.concatenate(hits_probe)
        build_vals = np.concatenate(hits_value)
        # lexsort((b, a)) as a composition of stable sorts so narrow
        # integer keys take the radix tiers in stable_key_order.
        order = stable_key_order(build_vals)
        order = order[stable_key_order(probe_idx[order])]
        probe_idx = probe_idx[order]
        build_vals = build_vals[order]
    else:
        probe_idx = np.empty(0, dtype=np.int64)
        build_vals = np.empty(0, dtype=np.int64)
    all_touched = (
        np.concatenate(touched) if touched else np.empty(0, dtype=np.int64)
    )
    return ProbeResult(probe_idx, build_vals, all_touched, rounds)
