"""Cost model: component math and the paper's calibration anchors."""

import numpy as np
import pytest

from repro.gpusim import A100, CostModel, GPUContext, KernelStats
from repro.gpusim.device import SECTOR_BYTES, scaled_device
from repro.primitives.gather import gather


class TestComponents:
    def test_sequential_traffic_at_peak_bandwidth(self):
        model = CostModel(A100.with_overrides(kernel_launch_overhead_s=0.0))
        stats = KernelStats(name="k", seq_read_bytes=int(A100.mem_bandwidth))
        assert model.time(stats) == pytest.approx(1.0)

    def test_launch_overhead_per_kernel(self):
        model = CostModel(A100)
        stats = KernelStats(name="k", launches=3)
        assert model.breakdown(stats).launch == pytest.approx(
            3 * A100.kernel_launch_overhead_s
        )

    def test_cold_sectors_cheaper_with_locality(self):
        model = CostModel(A100)
        local = KernelStats(
            name="k", random_sector_touches=1000, random_cold_sectors=1000,
            locality_footprint_bytes=1024.0,
        )
        remote = KernelStats(
            name="k", random_sector_touches=1000, random_cold_sectors=1000,
            locality_footprint_bytes=float(A100.l2_bytes * 100),
        )
        assert model.breakdown(local).random < model.breakdown(remote).random

    def test_warm_sectors_served_by_l2_when_local(self):
        model = CostModel(A100)
        stats = KernelStats(
            name="k", random_sector_touches=10_000, random_cold_sectors=100,
            locality_footprint_bytes=1024.0,
        )
        # warm traffic at l2 speed: bytes / (bw * factor), plus cold.
        warm_bytes = (10_000 - 100) * SECTOR_BYTES
        expected_warm = warm_bytes / (A100.mem_bandwidth * A100.l2_bandwidth_factor)
        assert model.breakdown(stats).random >= expected_warm

    def test_atomic_cost_only_for_conflicts(self):
        model = CostModel(A100)
        clean = KernelStats(name="k", atomic_ops=10 ** 6, atomic_conflict_factor=1.0)
        contended = KernelStats(name="k", atomic_ops=10 ** 6, atomic_conflict_factor=3.0)
        assert model.breakdown(clean).atomic == 0.0
        assert model.breakdown(contended).atomic > 0.0

    def test_compute_scales_with_items_and_units(self):
        model = CostModel(A100)
        one = model.breakdown(KernelStats(name="k", items=10 ** 6)).compute
        two = model.breakdown(KernelStats(name="k", items=2 * 10 ** 6)).compute
        assert two == pytest.approx(2 * one)

    def test_l2_hit_probability_clamped(self):
        model = CostModel(A100)
        assert model.l2_hit_probability(0) == 1.0
        assert model.l2_hit_probability(A100.l2_bytes / 2) == 1.0
        assert model.l2_hit_probability(A100.l2_bytes * 4) == pytest.approx(0.25)

    def test_cycles_from_clock(self):
        model = CostModel(A100)
        stats = KernelStats(name="k", seq_read_bytes=10 ** 9)
        assert model.cycles(stats) == pytest.approx(model.time(stats) * A100.clock_hz)

    def test_breakdown_total_is_sum(self):
        model = CostModel(A100)
        stats = KernelStats(
            name="k", items=1000, seq_read_bytes=4000, seq_write_bytes=4000,
            random_sector_touches=100, random_cold_sectors=50,
            locality_footprint_bytes=1e9, atomic_ops=10, atomic_conflict_factor=2.0,
        )
        b = model.breakdown(stats)
        assert b.total == pytest.approx(
            b.launch + b.sequential + b.random + b.atomic + b.compute
        )


class TestCalibrationAnchors:
    """The published counters the model is calibrated against (Table 4)."""

    @pytest.fixture(scope="class")
    def gather_times(self):
        # 2^22 items on a geometry-scaled device reproduces the 2^27
        # paper regime (footprint >> L2).
        scale = 2.0 ** -5
        device = scaled_device(A100, scale)
        n = 1 << 22
        rng = np.random.default_rng(0)
        src = np.arange(n, dtype=np.int32)
        unclustered = rng.permutation(n).astype(np.int32)
        clustered = np.sort(unclustered)
        times = {}
        for label, index_map in (("unclustered", unclustered), ("clustered", clustered)):
            ctx = GPUContext(device=device)
            gather(ctx, src, index_map)
            times[label] = ctx.elapsed_seconds
        return times

    def test_unclustered_vs_clustered_ratio_near_8_5(self, gather_times):
        ratio = gather_times["unclustered"] / gather_times["clustered"]
        assert 6.0 <= ratio <= 12.0, f"Table 4 anchor violated: {ratio:.2f}"

    def test_ratio_collapses_when_l2_resident(self):
        # Small footprint: random gathers are cache-resident and cheap
        # (the paper's J3 observation).
        n = 1 << 14
        rng = np.random.default_rng(0)
        src = np.arange(n, dtype=np.int32)
        ctx_r = GPUContext(device=A100)
        gather(ctx_r, src, rng.permutation(n).astype(np.int32))
        ctx_c = GPUContext(device=A100)
        gather(ctx_c, src, np.arange(n, dtype=np.int32))
        assert ctx_r.elapsed_seconds / ctx_c.elapsed_seconds < 3.0
