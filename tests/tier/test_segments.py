"""Segmentation view: ranges, keys, byte accounting."""

import numpy as np
import pytest

from repro.relational.relation import Relation
from repro.tier import SegmentedRelation, SegmentKey


def make_relation(rows: int, name: str = "R") -> Relation:
    return Relation(
        [
            ("key", np.arange(rows, dtype=np.int64)),
            ("pay", np.arange(rows, dtype=np.int32)),
        ],
        key="key",
        name=name,
    )


def test_segment_count_and_ranges_cover_all_rows():
    rel = make_relation(10_000)
    seg = SegmentedRelation(rel, 4096)
    assert seg.num_segments == 3
    covered = []
    for i in range(seg.num_segments):
        start, stop = seg.row_range(i)
        assert stop > start
        covered.extend(range(start, stop))
    assert covered == list(range(10_000))


def test_last_segment_is_short():
    seg = SegmentedRelation(make_relation(10_000), 4096)
    assert seg.row_range(2) == (8192, 10_000)
    # byte accounting follows the short range
    assert seg.segment_nbytes("key", 2) == (10_000 - 8192) * 8
    assert seg.segment_nbytes("pay", 2) == (10_000 - 8192) * 4


def test_column_slice_is_a_view_not_a_copy():
    rel = make_relation(10_000)
    seg = SegmentedRelation(rel, 4096)
    view = seg.column_slice("key", 1)
    assert view.base is rel.column("key")
    np.testing.assert_array_equal(view, np.arange(4096, 8192))


def test_range_nbytes_sums_columns():
    seg = SegmentedRelation(make_relation(10_000), 4096)
    assert seg.range_nbytes(["key", "pay"], 0) == 4096 * (8 + 4)


def test_segment_keys_identity_and_iteration():
    seg = SegmentedRelation(make_relation(9000, name="S"), 4096)
    key = seg.segment_key("pay", 1)
    assert key == SegmentKey("S", "pay", 1)
    assert key.describe() == "S.pay[1]"
    keys = list(seg.iter_keys(["key", "pay"]))
    assert len(keys) == seg.num_segments * 2
    assert keys[0] == SegmentKey("S", "key", 0)
    assert keys[1] == SegmentKey("S", "pay", 0)


def test_out_of_range_and_bad_segment_rows_raise():
    seg = SegmentedRelation(make_relation(100), 4096)
    assert seg.num_segments == 1
    with pytest.raises(IndexError):
        seg.row_range(1)
    with pytest.raises(ValueError):
        SegmentedRelation(make_relation(100), 0)


def test_empty_relation_has_no_segments():
    rel = Relation(
        [("key", np.empty(0, dtype=np.int64)), ("pay", np.empty(0, dtype=np.int64))],
        key="key",
        name="E",
    )
    seg = SegmentedRelation(rel, 4096)
    assert seg.num_segments == 0
    assert list(seg.iter_keys(["key"])) == []
