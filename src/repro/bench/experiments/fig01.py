"""Figure 1: time breakdown for join processing, 1.5G ⋈ 3G.

A primary-key relation of 1.5 GB joins a foreign-key relation of 3 GB
(two payload columns each, 100% match ratio).  The paper's headline
observations, reproduced here:

* materialization takes up to ~75% of SMJ-UM / PHJ-UM runtime;
* the optimized implementations (ours) beat PHJ-UM by up to ~2.3x;
* the non-partitioned hash join is slower than both despite having no
  transform phase.
"""

from __future__ import annotations

from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    phase_columns,
    run_algorithm,
)

#: 1.5 GB / (4 B key + 2 x 4 B payloads) ~ 2^27 tuples; 3 GB ~ 2^28.
PAPER_R_ROWS = 1 << 27
PAPER_S_ROWS = 1 << 28

ALGORITHMS = ("NPJ", "SMJ-UM", "PHJ-UM", "SMJ-OM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_R_ROWS),
        s_rows=setup.rows(PAPER_S_ROWS),
        r_payload_columns=2,
        s_payload_columns=2,
        seed=seed,
    )
    r, s = generate_join_workload(spec)

    result = ExperimentResult(
        experiment_id="fig01",
        title="Time breakdown for join processing (1.5G ⋈ 3G, 2 payloads/side)",
        headers=["algorithm", "transform_ms", "match_ms", "materialize_ms",
                 "total_ms", "materialize_frac"],
    )
    totals = {}
    for name in ALGORITHMS:
        res = run_algorithm(name, r, s, setup)
        totals[name] = res.total_seconds
        t, m, z = phase_columns(res)
        result.add_row(name, t, m, z, res.total_seconds * 1e3,
                       res.phase_fraction("materialize"))
    result.findings["phj_om_speedup_over_phj_um"] = totals["PHJ-UM"] / totals["PHJ-OM"]
    result.findings["smj_om_speedup_over_smj_um"] = totals["SMJ-UM"] / totals["SMJ-OM"]
    result.findings["npj_slowdown_vs_phj_om"] = totals["NPJ"] / totals["PHJ-OM"]
    result.add_note(
        f"scaled to |R|={spec.r_rows}, |S|={spec.s_rows} tuples "
        f"(paper: 2^27/2^28) with device geometry scaled by {scale:g}"
    )
    return result
