"""Calibrated cost-based planner (Section 5.4's optimizer input)."""

import pytest

from repro.gpusim.device import A100, scaled_device
from repro.joins.cost_planner import (
    PRICED_ALGORITHMS,
    calibrate_primitives,
    estimate_join_seconds,
    price_all,
    recommend_join_algorithm_costbased,
)
from repro.joins.planner import JoinWorkloadProfile


@pytest.fixture(scope="module")
def calibration():
    # Calibrate at a footprint >> scaled L2 (the paper-scale regime).
    return calibrate_primitives(scaled_device(A100, 2 ** -10), sample_items=1 << 17)


def _profile(**kw):
    base = dict(
        r_rows=1 << 17, s_rows=1 << 17,
        r_payload_columns=2, s_payload_columns=2,
        key_bytes=4, payload_bytes=4, match_ratio=1.0, zipf_factor=0.0,
    )
    base.update(kw)
    return JoinWorkloadProfile(**base)


class TestCalibration:
    def test_rate_ordering(self, calibration):
        assert calibration.seq_bytes_per_s >= calibration.clustered_gather_bytes_per_s
        assert (
            calibration.clustered_gather_bytes_per_s
            > calibration.unclustered_gather_bytes_per_s
        )

    def test_unclustered_penalty_in_paper_band(self, calibration):
        assert 5.0 <= calibration.unclustered_penalty <= 12.0

    def test_l2_resident_calibration_is_faster(self):
        # A tiny footprint stays in L2: the unclustered penalty collapses.
        small = calibrate_primitives(A100, sample_items=1 << 12)
        assert small.unclustered_penalty < 3.0


class TestEstimates:
    def test_prices_every_algorithm(self, calibration):
        prices = price_all(_profile(), calibration)
        assert set(prices) == set(PRICED_ALGORITHMS)
        assert all(p > 0 for p in prices.values())

    def test_unknown_algorithm(self, calibration):
        with pytest.raises(KeyError):
            estimate_join_seconds(_profile(), "NPJ", calibration)

    def test_gftr_wins_wide_high_match(self, calibration):
        prices = price_all(_profile(r_payload_columns=4, s_payload_columns=4),
                           calibration)
        assert min(prices, key=prices.get) == "PHJ-OM"

    def test_gfur_wins_low_match(self, calibration):
        prices = price_all(_profile(match_ratio=0.05), calibration)
        assert min(prices, key=prices.get).endswith("UM")

    def test_skew_penalizes_bucket_chain(self, calibration):
        flat = estimate_join_seconds(_profile(), "PHJ-UM", calibration)
        skewed = estimate_join_seconds(_profile(zipf_factor=1.75), "PHJ-UM",
                                       calibration)
        assert skewed > flat
        # radix partitioning is not penalized
        assert estimate_join_seconds(
            _profile(zipf_factor=1.75), "PHJ-OM", calibration
        ) == pytest.approx(estimate_join_seconds(_profile(), "PHJ-OM", calibration))

    def test_wide_types_raise_om_transform_cost(self, calibration):
        thin = estimate_join_seconds(_profile(), "SMJ-OM", calibration)
        wide = estimate_join_seconds(_profile(payload_bytes=8), "SMJ-OM", calibration)
        assert wide > thin


class TestRecommendation:
    def test_recommendation_carries_price_list(self, calibration):
        rec = recommend_join_algorithm_costbased(_profile(), calibration)
        assert rec.algorithm in PRICED_ALGORITHMS
        assert any("estimated" in reason for reason in rec.reasons)
        assert any("unclustered" in reason for reason in rec.reasons)

    def test_agrees_with_tree_on_canonical_points(self, calibration):
        from repro.joins.planner import recommend_join_algorithm

        for profile in (
            _profile(),                      # wide, full match -> PHJ-OM
            _profile(match_ratio=0.05),      # low match -> *-UM
        ):
            tree = recommend_join_algorithm(profile).algorithm
            cost = recommend_join_algorithm_costbased(profile, calibration).algorithm
            # Same family (UM/OM suffix) even when the exact pick differs.
            assert tree[-2:] == cost[-2:]
