"""Figure 15: effect of data types (4- and 8-byte keys/payloads).

|R| = |S| = 2^27 with two payload columns per side.  With 8-byte
payloads, *-UM keeps its cost (unclustered gathers are latency bound —
wider values touch similar cache-line counts) while *-OM pays more for
transforming wider columns; SMJ-OM loses its edge, PHJ-OM keeps it.
"""

from __future__ import annotations

from ...relational.types import INT32, INT64
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    run_algorithm,
)

PAPER_ROWS = 1 << 27
TYPE_COMBOS = (
    ("4B key + 4B payload", INT32, INT32),
    ("4B key + 8B payload", INT32, INT64),
    ("8B key + 8B payload", INT64, INT64),
)
ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    result = ExperimentResult(
        experiment_id="fig15",
        title="Effect of data types (total ms)",
        headers=["types"] + list(ALGORITHMS) + ["winner"],
    )
    per_combo = {}
    for label, key_type, payload_type in TYPE_COMBOS:
        spec = JoinWorkloadSpec(
            r_rows=rows,
            s_rows=rows,
            r_payload_columns=2,
            s_payload_columns=2,
            key_type=key_type,
            payload_type=payload_type,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        times = {
            name: run_algorithm(name, r, s, setup).total_seconds * 1e3
            for name in ALGORITHMS
        }
        winner = min(times, key=times.get)
        per_combo[label] = times
        result.add_row(label, *[times[a] for a in ALGORITHMS], winner)
    result.findings["phj_om_best_all_types"] = float(
        all(min(t, key=t.get) == "PHJ-OM" for t in per_combo.values())
    )
    wide = per_combo["8B key + 8B payload"]
    result.findings["smj_om_loses_edge_wide"] = wide["SMJ-UM"] / wide["SMJ-OM"]
    result.add_note(
        "paper: with 8B values SMJ-OM has almost no advantage over *-UM; "
        "PHJ-OM leads in all cases"
    )
    return result
