"""Fused join + grouped aggregation.

The paper motivates GPU-resident joins with pipelines whose *consumer*
is not a materialized table — an ML trainer, or (here) an aggregation.
When a group-by consumes a join, two classical optimizations apply:

* **projection pushdown** — only the group-key and aggregated columns
  need to be materialized at all (``JoinConfig.projection``);
* **fusion** — the aggregation folds the gathered values in the same
  kernel that materializes them, so the joined columns are never written
  to and re-read from global memory.

:class:`FusedJoinAggregate` implements both on top of any join
algorithm: it runs the projected join, then folds the group-by on the
same device context, *crediting back* the write+read round trip of the
aggregated columns that fusion elides (the join charged their writes
during materialization; the group-by would charge their reads).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..aggregation.base import AggSpec, GroupByAlgorithm, GroupByResult
from ..aggregation.planner import (
    GroupByWorkloadProfile,
    estimate_group_cardinality,
    make_groupby_algorithm,
    recommend_groupby_algorithm,
)
from ..errors import JoinConfigError
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.kernel import KernelStats
from .base import JoinAlgorithm, JoinConfig, JoinResult


@dataclass
class FusedResult:
    """Join + aggregation outcome with the fusion accounting."""

    join_result: JoinResult
    groupby_result: GroupByResult
    #: seconds credited back by not materializing/re-reading fused columns
    fusion_credit_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.join_result.total_seconds
            + self.groupby_result.total_seconds
            - self.fusion_credit_seconds
        )

    @property
    def output(self):
        return self.groupby_result.output


class FusedJoinAggregate:
    """Join two relations and aggregate the result in one pipeline.

    Parameters
    ----------
    join_algorithm:
        Any :class:`~repro.joins.base.JoinAlgorithm` (its config's
        projection is overridden to the columns the aggregation needs).
    groupby_algorithm:
        The fold strategy; ``None`` lets the aggregation planner pick it
        from the joined keys' measured cardinality at run time.
    """

    def __init__(
        self,
        join_algorithm: JoinAlgorithm,
        groupby_algorithm: Optional[GroupByAlgorithm] = None,
    ):
        self.join_algorithm = join_algorithm
        self.groupby_algorithm = groupby_algorithm

    def run(
        self,
        r,
        s,
        group_column: str,
        aggregates: Sequence[AggSpec],
        device: DeviceSpec = A100,
        seed: Optional[int] = None,
        fuse: bool = True,
        fault_plan=None,
    ) -> FusedResult:
        """Execute ``GROUP BY group_column`` over ``R ⋈ S``.

        ``group_column`` and aggregate columns name *output* columns of
        the join.  With ``fuse=False`` the pipeline runs unfused (full
        materialization, then aggregation) for comparison.  A
        ``fault_plan`` injects into both stages' contexts;
        :class:`~repro.errors.DeviceOutOfMemoryError` under its capacity
        pressure propagates to the caller (the executor degrades to the
        unfused resilient path).
        """
        needed: List[str] = [group_column]
        for spec in aggregates:
            if spec.op != "count" and spec.column not in needed:
                needed.append(spec.column)

        # Run the join with the projection the aggregation needs, on a
        # shallow copy so the caller's algorithm is untouched.
        algorithm = copy.copy(self.join_algorithm)
        algorithm.config = replace(
            self.join_algorithm.config,
            projection=tuple(needed) if fuse else None,
        )
        ctx = GPUContext(
            device=device, seed=seed, fault_plan=fault_plan, fault_site="gpu/fused"
        )
        join_result = algorithm.join(r, s, ctx=ctx)
        joined = join_result.output
        if group_column not in joined:
            raise JoinConfigError(
                f"group column {group_column!r} not in join output "
                f"{joined.column_names}"
            )

        keys = joined.column(group_column)
        values: Dict[str, np.ndarray] = {
            spec.column: joined.column(spec.column)
            for spec in aggregates
            if spec.op != "count"
        }
        groupby_algorithm = self.groupby_algorithm
        if groupby_algorithm is None:
            profile = GroupByWorkloadProfile(
                rows=int(keys.size),
                estimated_groups=estimate_group_cardinality(keys),
                value_columns=len(values),
            )
            groupby_algorithm = make_groupby_algorithm(
                recommend_groupby_algorithm(profile, device=device).algorithm
            )
        agg_ctx = GPUContext(
            device=device, seed=seed, fault_plan=fault_plan,
            fault_site="gpu/fused-agg",
        )
        groupby_result = groupby_algorithm.group_by(
            keys, values, list(aggregates), ctx=agg_ctx
        )

        credit = 0.0
        if fuse:
            # The fused kernels fold during materialization: credit the
            # write of the fused columns (charged by the join) and their
            # re-read (charged by the group-by).
            fused_bytes = int(keys.nbytes) + sum(v.nbytes for v in values.values())
            credit_ctx = GPUContext(device=device)
            credit = credit_ctx.cost.time(
                KernelStats(
                    name="fusion_credit",
                    seq_read_bytes=fused_bytes,
                    seq_write_bytes=fused_bytes,
                    launches=0,
                )
            )
            ctx.count("fusion_credit_s", credit)
            ctx.count("fusion_elided_bytes", 2 * fused_bytes)
        return FusedResult(
            join_result=join_result,
            groupby_result=groupby_result,
            fusion_credit_seconds=credit,
        )
