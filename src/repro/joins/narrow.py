"""Narrow-join fast paths (Section 2.2).

A "narrow" join has at most one payload column per relation.  The paper
processes it in *two* phases: the payload is transformed together with
the key, and match finding emits the matched payload values directly —
there is no tuple-ID indirection and no materialization phase (Figure 9
shows only transform and match bars).  Consequently SMJ-OM coincides
with SMJ-UM and PHJ-OM with PHJ-UM up to the partitioner used (bucket
chains skip the boundary histogram, which is why the paper sees PHJ-UM
"slightly better ... for smaller input sizes").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from ..primitives.bucket_chain import bucket_chain_partition
from ..primitives.gather import gather
from ..primitives.merge_path import match_bounds
from ..primitives.radix_partition import radix_partition
from ..primitives.sort_pairs import sort_pairs
from ..relational.relation import Relation
from .base import MATCH, TRANSFORM, JoinConfig
from .matching import expand_bounds, match_positions


def _emit_output(
    ctx: GPUContext,
    r: Relation,
    s: Relation,
    r_keys_t: np.ndarray,
    r_payload_t: Optional[np.ndarray],
    s_keys_t: np.ndarray,
    s_payload_t: Optional[np.ndarray],
    r_pos: np.ndarray,
    s_pos: np.ndarray,
) -> List[Tuple[str, np.ndarray]]:
    """Write key + payload columns straight from the transformed inputs."""
    del r_keys_t  # keys are emitted from the probe side
    out_key = s_keys_t[s_pos]
    columns: List[Tuple[str, np.ndarray]] = [("key", out_key)]
    written = out_key.nbytes
    if r_payload_t is not None:
        name = r.payload_names[0]
        columns.append((name, gather(ctx, r_payload_t, r_pos, phase=MATCH, label=name)))
    if s_payload_t is not None:
        name = s.payload_names[0]
        out_name = name if name not in dict(columns) else f"{name}_s"
        columns.append(
            (out_name, gather(ctx, s_payload_t, s_pos, phase=MATCH, label=out_name))
        )
    ctx.submit(
        KernelStats(name="write_matches", items=int(out_key.size),
                    seq_write_bytes=int(written)),
        phase=MATCH,
    )
    return columns


def narrow_sort_merge(
    ctx: GPUContext,
    r: Relation,
    s: Relation,
    unique_build_keys: bool,
    config: JoinConfig,
) -> List[Tuple[str, np.ndarray]]:
    """Two-phase narrow sort-merge join (shared by SMJ-UM and SMJ-OM)."""
    transformed = {}
    with ctx.phase(TRANSFORM):
        for side, rel in (("r", r), ("s", s)):
            names = rel.payload_names
            payloads = [rel.column(names[0])] if names else []
            keys_sorted, payloads_sorted = sort_pairs(
                ctx, rel.key_values, payloads, phase=TRANSFORM, label=side
            )
            handle_k = ctx.mem.adopt(keys_sorted, f"keys_sorted_{side}")
            handle_p = (
                ctx.mem.adopt(payloads_sorted[0], f"payload_sorted_{side}")
                if payloads
                else None
            )
            transformed[side] = (handle_k, handle_p)

    with ctx.phase(MATCH):
        rk, rp = transformed["r"]
        sk, sp = transformed["s"]
        lo, hi = match_bounds(
            ctx,
            rk.data,
            sk.data,
            unique_build_keys and not config.double_merge_pass,
            phase=MATCH,
        )
        r_pos, s_pos = expand_bounds(lo, hi)
        columns = _emit_output(
            ctx, r, s,
            rk.data, rp.data if rp else None,
            sk.data, sp.data if sp else None,
            r_pos, s_pos,
        )
        for handle in (rk, rp, sk, sp):
            if handle is not None:
                ctx.mem.free(handle)
    return columns


def narrow_partitioned_hash(
    ctx: GPUContext,
    r: Relation,
    s: Relation,
    unique_build_keys: bool,
    config: JoinConfig,
    bits: int,
    partitioner: str,
) -> List[Tuple[str, np.ndarray]]:
    """Two-phase narrow partitioned hash join.

    ``partitioner`` is ``"radix"`` (PHJ-OM) or ``"bucket"`` (PHJ-UM —
    skips the boundary pass but pays fragmentation and skew contention).
    """
    from .phj import charge_hash_match, charge_load_balancing  # cycle-free

    parts = {}
    handles = []
    with ctx.phase(TRANSFORM):
        for side, rel in (("r", r), ("s", s)):
            names = rel.payload_names
            payloads = [rel.column(names[0])] if names else []
            if partitioner == "radix":
                part = radix_partition(
                    ctx, rel.key_values, payloads, bits,
                    phase=TRANSFORM, hashed=config.hashed_partitioning, label=side,
                )
            else:
                part = bucket_chain_partition(
                    ctx, rel.key_values, payloads, bits,
                    bucket_tuples=config.bucket_tuples,
                    phase=TRANSFORM, hashed=config.hashed_partitioning, label=side,
                )
                if part.fragmentation_bytes > 0:
                    handles.append(
                        ctx.mem.alloc(part.fragmentation_bytes, np.uint8,
                                      f"fragmentation_{side}")
                    )
            parts[side] = part
            handles.append(ctx.mem.adopt(part.keys, f"part_keys_{side}"))
            if payloads:
                handles.append(ctx.mem.adopt(part.payloads[0], f"part_payload_{side}"))

    with ctx.phase(MATCH):
        pr, ps = parts["r"], parts["s"]
        charge_load_balancing(ctx, ps.num_partitions)
        r_pos, s_pos = match_positions(pr.keys, ps.keys, unique_build_keys)
        key_bytes = pr.keys.dtype.itemsize
        r_payload_bytes = (
            pr.payloads[0].dtype.itemsize if pr.payloads else 0
        )
        s_payload_bytes = (
            ps.payloads[0].dtype.itemsize if ps.payloads else 0
        )
        tuples = (
            config.bucket_tuples if partitioner == "bucket"
            else config.tuples_per_partition
        )
        charge_hash_match(
            ctx,
            pr.counts,
            ps.counts,
            build_tuple_bytes=key_bytes + r_payload_bytes,
            probe_tuple_bytes=key_bytes + s_payload_bytes,
            matches=int(s_pos.size),
            key_bytes=key_bytes,
            tuples_per_partition=tuples,
            load_balanced=config.load_balance,
            num_execution_units=ctx.device.num_execution_units,
        )
        columns = _emit_output(
            ctx, r, s,
            pr.keys, pr.payloads[0] if pr.payloads else None,
            ps.keys, ps.payloads[0] if ps.payloads else None,
            r_pos, s_pos,
        )
        ctx.mem.free_all(handles)
    return columns


def is_narrow(r: Relation, s: Relation) -> bool:
    """True if the paper's two-phase narrow-join path applies."""
    return r.num_payload_columns <= 1 and s.num_payload_columns <= 1
