"""Interconnect models and cluster specs: validation + drain times."""

import numpy as np
import pytest

from repro.cluster import (
    BUILTIN_INTERCONNECTS,
    ClusterSpec,
    InterconnectSpec,
    NVLINK_MESH,
    PCIE_HOST,
    get_interconnect,
    interconnect_seconds,
)


class TestInterconnectSpec:
    def test_builtin_lookup(self):
        assert get_interconnect("nvlink-mesh") is NVLINK_MESH
        assert get_interconnect("pcie-host") is PCIE_HOST

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="nvlink-mesh"):
            get_interconnect("infiniband")

    def test_registry_is_keyed_by_name(self):
        for name, spec in BUILTIN_INTERCONNECTS.items():
            assert spec.name == name

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            InterconnectSpec(name="x", kind="token-ring", link_bandwidth=1e9)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            InterconnectSpec(name="x", kind="p2p-mesh", link_bandwidth=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            InterconnectSpec(
                name="x", kind="p2p-mesh", link_bandwidth=1e9,
                transfer_latency_s=-1e-6,
            )

    def test_with_overrides(self):
        slow = NVLINK_MESH.with_overrides(link_bandwidth=1e9)
        assert slow.link_bandwidth == 1e9
        assert slow.kind == NVLINK_MESH.kind
        assert NVLINK_MESH.link_bandwidth == 50e9  # original untouched


class TestClusterSpec:
    def test_defaults(self):
        spec = ClusterSpec()
        assert spec.num_devices == 1
        assert spec.device.name == "A100"
        assert spec.links() == []

    def test_links_are_all_ordered_pairs(self):
        spec = ClusterSpec(num_devices=3)
        assert len(spec.links()) == 6
        assert (0, 0) not in spec.links()
        assert (1, 2) in spec.links() and (2, 1) in spec.links()

    def test_zero_devices_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterSpec(num_devices=0)


class TestInterconnectSeconds:
    def test_empty_matrix_is_free(self):
        assert interconnect_seconds(NVLINK_MESH, np.zeros((4, 4))) == 0.0

    def test_diagonal_is_free(self):
        matrix = np.diag([1 << 30] * 4)
        assert interconnect_seconds(NVLINK_MESH, matrix) == 0.0
        assert interconnect_seconds(PCIE_HOST, matrix) == 0.0

    def test_p2p_mesh_is_max_over_links(self):
        matrix = np.zeros((3, 3), dtype=np.int64)
        matrix[0, 1] = 1000
        matrix[1, 2] = 5000  # the loaded link
        expected = NVLINK_MESH.transfer_latency_s + 5000 / NVLINK_MESH.link_bandwidth
        assert interconnect_seconds(NVLINK_MESH, matrix) == pytest.approx(expected)

    def test_host_bridge_serializes_total_bytes(self):
        matrix = np.zeros((3, 3), dtype=np.int64)
        matrix[0, 1] = 1000
        matrix[1, 2] = 5000
        matrix[2, 2] = 1 << 20  # diagonal ignored
        expected = PCIE_HOST.transfer_latency_s + 6000 / PCIE_HOST.link_bandwidth
        assert interconnect_seconds(PCIE_HOST, matrix) == pytest.approx(expected)

    def test_mesh_beats_bridge_on_balanced_all_to_all(self):
        same_bw = PCIE_HOST.with_overrides(
            transfer_latency_s=NVLINK_MESH.transfer_latency_s,
            link_bandwidth=NVLINK_MESH.link_bandwidth,
        )
        matrix = np.full((4, 4), 1 << 20, dtype=np.int64)
        assert interconnect_seconds(NVLINK_MESH, matrix) < interconnect_seconds(
            same_bw, matrix
        )

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            interconnect_seconds(NVLINK_MESH, np.zeros((2, 3)))
