"""Multi-GPU scale-out: the same join on 1, 2, 4 and 8 simulated devices.

Demonstrates the `repro.cluster` layer: rows are hash-sharded on the
join key so equal keys co-locate, each device runs the unchanged
single-device algorithm on its shard, and the cluster clock charges the
radix shuffle to an interconnect model (NVLink point-to-point mesh vs a
shared PCIe host bridge).  Results are bit-identical at every device
count — only the simulated time changes.

Run: ``python examples/multi_gpu_scaling.py [--trace DIR]``
"""

import argparse
from pathlib import Path

import numpy as np

from repro import Relation, group_by, join, sharded_join, write_cluster_trace

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument(
    "--trace", metavar="DIR", default=None,
    help="also write one per-device Chrome trace per cluster run",
)
args = parser.parse_args()

rng = np.random.default_rng(11)
num_parts, num_lineitems = 60_000, 480_000

parts = Relation.from_key_payloads(
    rng.permutation(num_parts).astype(np.int32),
    [rng.integers(0, 50, num_parts).astype(np.int32)],
    payload_prefix="p", name="parts",
)
lineitems = Relation.from_key_payloads(
    rng.integers(0, num_parts, num_lineitems).astype(np.int32),
    [rng.integers(1, 500, num_lineitems).astype(np.int32)],
    payload_prefix="l", name="lineitems",
)

# --- Sweep device counts on both interconnects -------------------------
single = join(parts, lineitems, algorithm="PHJ-OM", seed=0)
print(f"single device: {single.algorithm}, "
      f"{single.total_seconds * 1e3:.3f} ms, {single.matches} rows\n")

print(f"{'interconnect':<14}{'devices':>8}{'total_ms':>10}{'shuffle':>9}"
      f"{'speedup':>9}{'efficiency':>12}")
for interconnect in ("nvlink-mesh", "pcie-host"):
    for n in (1, 2, 4, 8):
        res = sharded_join(parts, lineitems, algorithm="PHJ-OM", seed=0,
                           num_devices=n, interconnect=interconnect)
        assert res.output.equals_unordered(single.output)  # bit-identical rows
        speedup = single.total_seconds / res.total_seconds
        shuffle_pct = res.shuffle_seconds / res.total_seconds
        print(f"{interconnect:<14}{n:>8}{res.total_seconds * 1e3:>10.3f}"
              f"{shuffle_pct:>9.0%}{speedup:>9.2f}{speedup / n:>12.2f}")
        if args.trace:
            path = Path(args.trace) / f"join-{interconnect}-x{n}.trace.json"
            write_cluster_trace(res.cluster, path,
                                name=f"join {interconnect} x{n}")
    print()

# A 1-device cluster is exactly the single-device run — same clock, not
# just close:
one = sharded_join(parts, lineitems, algorithm="PHJ-OM", seed=0, num_devices=1)
assert one.total_seconds == single.total_seconds

# --- Per-step breakdown of one cluster run ------------------------------
res = join(parts, lineitems, algorithm="PHJ-OM", seed=0, shards=4)
print("4-device NVLink run, cluster-clock breakdown:")
print(res.describe())

# --- Sharded group-by: float sums still bit-identical -------------------
joined = res.output
agg = group_by(joined.key_values,
               {"rev": joined.column("l1").astype(np.float64)},
               {"rev": "sum"}, shards=4, seed=0)
agg_single = group_by(joined.key_values,
                      {"rev": joined.column("l1").astype(np.float64)},
                      {"rev": "sum"}, seed=0)
assert np.array_equal(agg.output["sum_rev"], agg_single.output["sum_rev"])
print(f"\nsharded group-by: {agg.output['group_key'].size} groups, "
      f"float sums bit-identical to single device "
      f"({agg.total_seconds * 1e3:.3f} ms on 4 devices vs "
      f"{agg_single.total_seconds * 1e3:.3f} ms on one)")
if args.trace:
    print(f"traces written under {args.trace}/")
