"""Cost-based join planning from profiled primitives (Section 5.4).

The paper's summary goes beyond the static decision trees: *"it is
crucial to profile the primitives beforehand under different setups ...
we can use the profiler results to weigh clustered GATHERs with
additional transformation cost against unclustered GATHERs."*  This
module implements that optimizer input:

1. :func:`calibrate_primitives` micro-profiles the three primitive rates
   that dominate every implementation — sequential streaming, clustered
   gathering, and unclustered gathering — on a given device (at a chosen
   footprint, since the unclustered rate is footprint dependent);
2. :func:`estimate_join_seconds` prices each of the four implementations
   for a workload profile with a closed-form byte count model (radix
   passes, merge passes, hash streams, gathers);
3. :func:`recommend_join_algorithm_costbased` picks the cheapest
   estimate, returning the full price list so an optimizer can reason
   about margins.

Unlike the Figure 18 trees (which encode thresholds), the cost-based
planner adapts to device parameters — shrink the L2 and its crossovers
move accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.device import A100, DeviceSpec
from ..primitives.gather import gather
from ..primitives.radix_partition import MAX_BITS_PER_PASS
from .planner import JoinWorkloadProfile, Recommendation

#: Implementations the estimator prices.
PRICED_ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


@dataclass(frozen=True)
class PrimitiveCalibration:
    """Measured primitive rates on one device (bytes per second)."""

    device: DeviceSpec
    seq_bytes_per_s: float
    clustered_gather_bytes_per_s: float
    unclustered_gather_bytes_per_s: float
    launch_overhead_s: float
    #: footprint (bytes) the gather rates were measured at
    footprint_bytes: int

    @property
    def unclustered_penalty(self) -> float:
        """How much slower an unclustered gather is than a stream."""
        return self.seq_bytes_per_s / self.unclustered_gather_bytes_per_s


def calibrate_primitives(
    device: DeviceSpec = A100,
    sample_items: int = 1 << 16,
    element_bytes: int = 4,
    seed: int = 0,
) -> PrimitiveCalibration:
    """Micro-profile the gather/stream rates on *device*.

    ``sample_items`` controls the probe footprint; calibrate at a
    footprint representative of the target workloads (the unclustered
    rate collapses once the footprint exceeds L2).
    """
    rng = np.random.default_rng(seed)
    dtype = np.int32 if element_bytes == 4 else np.int64
    src = rng.integers(0, 1 << 30, sample_items).astype(dtype)
    sequential_map = np.arange(sample_items, dtype=np.int32)
    random_map = rng.permutation(sample_items).astype(np.int32)

    def measure(index_map: np.ndarray) -> float:
        ctx = GPUContext(device=device)
        gather(ctx, src, index_map)
        useful_bytes = index_map.size * element_bytes
        return useful_bytes / ctx.elapsed_seconds

    seq_rate = measure(sequential_map)
    clustered_rate = measure(np.sort(random_map))
    unclustered_rate = measure(random_map)
    return PrimitiveCalibration(
        device=device,
        seq_bytes_per_s=seq_rate,
        clustered_gather_bytes_per_s=clustered_rate,
        unclustered_gather_bytes_per_s=unclustered_rate,
        launch_overhead_s=device.kernel_launch_overhead_s,
        footprint_bytes=int(src.nbytes),
    )


def _sort_passes(key_bytes: int) -> int:
    return max(1, -(-key_bytes * 8 // MAX_BITS_PER_PASS))


def _partition_passes(rows: int, tuples_per_partition: int) -> int:
    if rows <= tuples_per_partition:
        return 1
    bits = int(np.ceil(np.log2(rows / tuples_per_partition)))
    return max(1, -(-bits // MAX_BITS_PER_PASS))


def estimate_join_seconds(
    profile: JoinWorkloadProfile,
    algorithm: str,
    calibration: PrimitiveCalibration,
    tuples_per_partition: int = 4096,
) -> float:
    """Closed-form price of one implementation for a workload profile.

    Counts the bytes each phase streams or gathers (the same accounting
    the simulator performs, collapsed to totals) and divides by the
    calibrated rates.  Skew is charged to PHJ-UM's bucket-chain
    partitioning as the Figure 14 contention factor.
    """
    if algorithm not in PRICED_ALGORITHMS:
        raise KeyError(f"cannot price {algorithm!r}; known: {PRICED_ALGORITHMS}")
    kb = profile.key_bytes
    pb = profile.payload_bytes
    id_bytes = kb  # IDs travel at key width (see joins.base.init_tuple_ids)
    r, s = profile.r_rows, profile.s_rows
    matches = int(profile.s_rows * profile.match_ratio)
    seq = calibration.seq_bytes_per_s
    clustered = calibration.clustered_gather_bytes_per_s
    unclustered = calibration.unclustered_gather_bytes_per_s

    def stream(bytes_count: float) -> float:
        return bytes_count / seq

    sort_passes = _sort_passes(kb)
    part_passes = _partition_passes(r, tuples_per_partition)
    total_payload_cols = profile.r_payload_columns + profile.s_payload_columns

    # Merge/hash match: stream both key columns, write outputs.
    match_bytes = (r + s) * kb + matches * (kb + 2 * id_bytes)
    match_time = stream(match_bytes)

    skew_factor = 1.0
    if profile.zipf_factor > 1.0:
        skew_factor = 1.0 + 2.5 * (profile.zipf_factor - 1.0)

    per_row_pass = lambda rows, width: rows * (3 * kb + 2 * width)  # noqa: E731
    # one radix pass moves ~ (2 reads + 1 histogram read of keys) + r/w payload

    if algorithm == "SMJ-UM":
        transform = stream(sort_passes * (per_row_pass(r, id_bytes) + per_row_pass(s, id_bytes)))
        materialize = total_payload_cols * (matches * pb) / unclustered
        return transform + match_time + materialize
    if algorithm == "SMJ-OM":
        transform = 0.0
        for cols, rows in ((profile.r_payload_columns, r), (profile.s_payload_columns, s)):
            transform += stream(sort_passes * max(1, cols) * per_row_pass(rows, pb))
        materialize = total_payload_cols * (matches * pb) / clustered
        return transform + match_time + materialize
    if algorithm == "PHJ-UM":
        transform = skew_factor * stream(
            part_passes * (per_row_pass(r, id_bytes) + per_row_pass(s, id_bytes))
        )
        materialize = total_payload_cols * (matches * pb) / unclustered
        return transform + match_time + materialize
    # PHJ-OM
    transform = 0.0
    for cols, rows in ((profile.r_payload_columns, r), (profile.s_payload_columns, s)):
        transform += stream(part_passes * max(1, cols) * per_row_pass(rows, pb))
    materialize = total_payload_cols * (matches * pb) / clustered
    return transform + match_time + materialize


def price_all(
    profile: JoinWorkloadProfile,
    calibration: PrimitiveCalibration,
    tuples_per_partition: int = 4096,
) -> Dict[str, float]:
    """Estimated seconds for every priced implementation."""
    return {
        name: estimate_join_seconds(profile, name, calibration, tuples_per_partition)
        for name in PRICED_ALGORITHMS
    }


def recommend_join_algorithm_costbased(
    profile: JoinWorkloadProfile,
    calibration: PrimitiveCalibration,
    tuples_per_partition: int = 4096,
) -> Recommendation:
    """Pick the cheapest implementation by calibrated cost estimate."""
    prices = price_all(profile, calibration, tuples_per_partition)
    winner = min(prices, key=prices.get)
    reasons = [
        f"estimated {name}: {seconds * 1e3:.3f} ms"
        for name, seconds in sorted(prices.items(), key=lambda kv: kv[1])
    ]
    reasons.append(
        f"calibrated on {calibration.device.name}: unclustered gathers "
        f"{calibration.unclustered_penalty:.1f}x slower than streams at "
        f"{calibration.footprint_bytes} B footprint"
    )
    return Recommendation(winner, reasons)
