"""CPU radix-join baseline (Balkesen et al., Figure 8).

The paper compares against the multi-core optimized partitioned radix
join of Balkesen et al., "adjusted ... to run efficiently on our NUMA
machine".  We reuse the same partitioned-hash-join structure costed with
the :data:`~repro.gpusim.device.CPU_SERVER` device model: per-tuple
instruction costs and far lower memory bandwidth dominate, reproducing
the 20-35x GPU advantage the paper reports.
"""

from __future__ import annotations

from typing import Optional

from ..gpusim.context import GPUContext
from ..gpusim.device import CPU_SERVER, DeviceSpec
from ..relational.relation import Relation
from .base import JoinConfig, JoinResult
from .phj import PartitionedHashJoin

#: CPU radix joins target L2-resident partitions (smaller than GPU
#: shared-memory partitions).
CPU_TUPLES_PER_PARTITION = 2048


class CPURadixJoin(PartitionedHashJoin):
    """Balkesen-style multi-core partitioned radix join (GFUR)."""

    name = "CPU"
    pattern = "gfur"

    def __init__(self, config: Optional[JoinConfig] = None):
        config = config or JoinConfig(tuples_per_partition=CPU_TUPLES_PER_PARTITION)
        super().__init__(config, pattern="gfur")
        self.name = "CPU"

    def join(
        self,
        r: Relation,
        s: Relation,
        ctx: Optional[GPUContext] = None,
        device: DeviceSpec = CPU_SERVER,
        seed: Optional[int] = None,
    ) -> JoinResult:
        if ctx is None and device.is_gpu:
            device = CPU_SERVER
        return super().join(r, s, ctx=ctx, device=device, seed=seed)
