"""ext02: fused join+aggregate vs unfused pipeline.

Regenerates the experiment table into ``bench_results/ext02.txt``.
Run: ``pytest benchmarks/bench_ext02.py --benchmark-only -s``
"""

from repro.bench.experiments import ext02

from _common import REPORT_SCALE, run_and_report


def test_ext02(benchmark):
    result = run_and_report(benchmark, ext02.run, REPORT_SCALE)
    assert result.findings["speedup_widest"] > 1.1
