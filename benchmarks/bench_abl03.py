"""abl03: partition fan-out sweep.

Regenerates the experiment table into ``bench_results/abl03.txt``.
Run: ``pytest benchmarks/bench_abl03.py --benchmark-only -s``
"""

from repro.bench.experiments import abl03

from _common import REPORT_SCALE, run_and_report


def test_abl03(benchmark):
    result = run_and_report(benchmark, abl03.run, REPORT_SCALE)
    assert result.findings["derived_regret"] < 0.35
