"""Simulated multi-GPU execution: sharded joins and aggregations.

The scale-out layer over the single-device simulator.  A
:class:`ClusterContext` owns N per-device timelines plus an
interconnect topology (:data:`NVLINK_MESH` peer-to-peer links or the
shared :data:`PCIE_HOST` bridge); the shuffle primitive
(:mod:`repro.cluster.shuffle`) moves columns between devices with exact
per-link byte accounting; :func:`sharded_join` and
:func:`sharded_group_by` run the unchanged single-device algorithms
per shard and merge the results bit-identically.

Quick tour::

    from repro.cluster import sharded_join, write_cluster_trace

    result = sharded_join(r, s, num_devices=4, interconnect="nvlink-mesh")
    print(result.describe())             # per-step breakdown on the cluster clock
    print(result.cluster.describe())     # per-device and per-link detail
    write_cluster_trace(result.cluster, "join.cluster.trace.json")
"""

from .context import ClusterContext, ClusterStepRecord, TransferRecord
from .sharded import (
    ShardedGroupByResult,
    ShardedJoinResult,
    sharded_group_by,
    sharded_join,
)
from .shuffle import (
    ShuffleResult,
    block_ranges,
    device_assignments,
    shard_to_relation,
    shuffle_columns,
    shuffle_relation,
)
from .topology import (
    BUILTIN_INTERCONNECTS,
    ClusterSpec,
    InterconnectSpec,
    NVLINK_MESH,
    PCIE_HOST,
    get_interconnect,
    interconnect_seconds,
)
from .trace import cluster_chrome_trace, write_cluster_trace

__all__ = [
    "BUILTIN_INTERCONNECTS",
    "ClusterContext",
    "ClusterSpec",
    "ClusterStepRecord",
    "InterconnectSpec",
    "NVLINK_MESH",
    "PCIE_HOST",
    "ShardedGroupByResult",
    "ShardedJoinResult",
    "ShuffleResult",
    "TransferRecord",
    "block_ranges",
    "cluster_chrome_trace",
    "device_assignments",
    "get_interconnect",
    "interconnect_seconds",
    "shard_to_relation",
    "sharded_group_by",
    "sharded_join",
    "shuffle_columns",
    "shuffle_relation",
    "write_cluster_trace",
]
