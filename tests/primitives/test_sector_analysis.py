"""Exact sector analysis: crafted patterns and property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.device import SECTOR_BYTES, WARP_SIZE
from repro.primitives.sector_analysis import analyze_indices, sequential_stats


class TestCraftedPatterns:
    def test_empty(self):
        stats = analyze_indices(np.empty(0, dtype=np.int64), 4)
        assert stats.requests == 0
        assert stats.sector_touches == 0
        assert stats.cold_sectors == 0

    def test_sequential_4byte_is_eight_per_warp(self):
        # 32 consecutive 4-byte elements span 128 bytes = 4 sectors.
        idx = np.arange(WARP_SIZE, dtype=np.int64)
        stats = analyze_indices(idx, 4)
        assert stats.requests == 1
        assert stats.sector_touches == 4
        assert stats.cold_sectors == 4
        assert stats.mean_warp_span_bytes == WARP_SIZE * 4

    def test_sequential_8byte_is_eight_sectors(self):
        idx = np.arange(WARP_SIZE, dtype=np.int64)
        stats = analyze_indices(idx, 8)
        assert stats.sector_touches == 8

    def test_fully_scattered_touches_32(self):
        # Elements one sector apart: every lane its own sector.
        idx = np.arange(WARP_SIZE, dtype=np.int64) * (SECTOR_BYTES // 4)
        stats = analyze_indices(idx, 4)
        assert stats.sector_touches == WARP_SIZE

    def test_same_element_repeated_is_one_sector(self):
        idx = np.zeros(WARP_SIZE, dtype=np.int64)
        stats = analyze_indices(idx, 4)
        assert stats.sector_touches == 1
        assert stats.cold_sectors == 1
        assert stats.mean_warp_span_bytes == 4

    def test_partial_warp_padded_without_extra_sectors(self):
        idx = np.array([0, 1, 2], dtype=np.int64)
        stats = analyze_indices(idx, 4)
        assert stats.requests == 1
        assert stats.sector_touches == 1  # 12 bytes within one sector

    def test_cold_counts_distinct_sectors_globally(self):
        # Two warps touching the same sector: 2 touches, 1 cold.
        idx = np.zeros(2 * WARP_SIZE, dtype=np.int64)
        stats = analyze_indices(idx, 4)
        assert stats.requests == 2
        assert stats.sector_touches == 2
        assert stats.cold_sectors == 1

    def test_random_permutation_near_32_per_warp(self):
        rng = np.random.default_rng(0)
        n = 1 << 16
        idx = rng.permutation(n).astype(np.int64)
        stats = analyze_indices(idx, 4)
        assert stats.sectors_per_request > 28  # nearly one sector per lane

    def test_sorted_map_low_sectors(self):
        # Dense sorted map: a warp's 32 indices span ~32 elements.
        rng = np.random.default_rng(0)
        idx = np.sort(rng.integers(0, 1 << 14, 1 << 14))
        stats = analyze_indices(idx, 4)
        assert stats.sectors_per_request < 8
        # Sparse sorted map: spans grow but stay far below fully random.
        sparse = np.sort(rng.integers(0, 1 << 16, 1 << 14))
        sparse_stats = analyze_indices(sparse, 4)
        assert sparse_stats.sectors_per_request < 24

    def test_unsupported_element_size(self):
        with pytest.raises(ValueError):
            analyze_indices(np.arange(4), 64)
        with pytest.raises(ValueError):
            analyze_indices(np.arange(4), 0)


class TestSequentialStats:
    def test_matches_analyze_for_arange(self):
        n = 1 << 12
        analytical = sequential_stats(n, 4)
        measured = analyze_indices(np.arange(n, dtype=np.int64), 4)
        assert analytical.requests == measured.requests
        assert analytical.sector_touches == measured.sector_touches
        assert analytical.cold_sectors == measured.cold_sectors

    def test_empty(self):
        assert sequential_stats(0, 4).requests == 0


@settings(max_examples=50, deadline=None)
@given(
    indices=st.lists(st.integers(0, 10 ** 6), min_size=1, max_size=300),
    element_bytes=st.sampled_from([4, 8]),
)
def test_invariants(indices, element_bytes):
    idx = np.asarray(indices, dtype=np.int64)
    stats = analyze_indices(idx, element_bytes)
    warps = -(-idx.size // WARP_SIZE)
    assert stats.requests == warps
    # Each warp touches between 1 and WARP_SIZE sectors.
    assert warps <= stats.sector_touches <= warps * WARP_SIZE
    # Cold sectors bounded by touches and by the distinct index count.
    assert stats.cold_sectors <= stats.sector_touches
    assert stats.cold_sectors <= len(set(indices)) * (
        1 if element_bytes <= SECTOR_BYTES else 2
    )
    assert stats.cold_sectors >= 1
    assert stats.mean_warp_span_bytes >= element_bytes


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 10 ** 5), min_size=33, max_size=200))
def test_sorting_never_increases_touches(indices):
    idx = np.asarray(indices, dtype=np.int64)
    scattered = analyze_indices(idx, 4)
    clustered = analyze_indices(np.sort(idx), 4)
    assert clustered.sector_touches <= scattered.sector_touches + len(indices) // WARP_SIZE + 1
