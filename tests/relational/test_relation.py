"""Relation container: construction, validation, transforms, comparison."""

import numpy as np
import pytest

from repro.errors import InvalidRelationError
from repro.relational import Relation


def _rel(n=10, payloads=2, key="key"):
    rng = np.random.default_rng(0)
    columns = [(key, np.arange(n, dtype=np.int32))]
    for i in range(payloads):
        columns.append((f"p{i + 1}", rng.integers(0, 100, n).astype(np.int32)))
    return Relation(columns, key=key)


class TestConstruction:
    def test_from_dict(self):
        rel = Relation({"k": np.arange(3, dtype=np.int32)}, key="k")
        assert rel.num_rows == 3

    def test_from_key_payloads(self):
        rel = Relation.from_key_payloads(
            np.arange(4, dtype=np.int32),
            [np.arange(4, dtype=np.int32)],
            payload_prefix="x",
        )
        assert rel.payload_names == ["x1"]
        assert rel.key == "key"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidRelationError, match="rows"):
            Relation(
                [("k", np.arange(3, dtype=np.int32)),
                 ("p", np.arange(4, dtype=np.int32))],
                key="k",
            )

    def test_missing_key_rejected(self):
        with pytest.raises(InvalidRelationError, match="key column"):
            Relation([("a", np.arange(3, dtype=np.int32))], key="k")

    def test_2d_column_rejected(self):
        with pytest.raises(InvalidRelationError, match="1-D"):
            Relation([("k", np.zeros((2, 2), dtype=np.int32))], key="k")

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(KeyError):
            Relation([("k", np.zeros(3, dtype=np.float64))], key="k")

    def test_empty_relation_rejected(self):
        with pytest.raises(InvalidRelationError, match="at least one column"):
            Relation([], key="k")


class TestShape:
    def test_counts_and_bytes(self):
        rel = _rel(n=10, payloads=2)
        assert rel.num_rows == 10
        assert rel.num_payload_columns == 2
        assert rel.total_bytes == 3 * 10 * 4
        assert rel.column_names == ["key", "p1", "p2"]
        assert rel.payload_names == ["p1", "p2"]

    def test_contains(self):
        rel = _rel()
        assert "p1" in rel
        assert "nope" not in rel

    def test_column_lookup_error(self):
        with pytest.raises(InvalidRelationError, match="nope"):
            _rel().column("nope")

    def test_key_values(self):
        rel = _rel(n=5)
        assert np.array_equal(rel.key_values, np.arange(5))


class TestTransforms:
    def test_take_reorders_all_columns(self):
        rel = _rel(n=5)
        taken = rel.take(np.array([4, 0]))
        assert list(taken.key_values) == [4, 0]
        assert taken.column("p1")[0] == rel.column("p1")[4]

    def test_rename(self):
        rel = _rel(n=3).rename({"key": "id", "p1": "a"})
        assert rel.key == "id"
        assert "a" in rel

    def test_head(self):
        assert _rel(n=10).head(3).num_rows == 3

    def test_payload_columns_excludes_key(self):
        assert list(_rel().payload_columns()) == ["p1", "p2"]


class TestComparison:
    def test_equals_unordered_same_rows(self):
        rel = _rel(n=20)
        shuffled = rel.take(np.random.default_rng(1).permutation(20))
        assert rel.equals_unordered(shuffled)

    def test_equals_unordered_detects_difference(self):
        rel = _rel(n=5)
        other = Relation(
            [(n, a.copy()) for n, a in rel.columns().items()], key=rel.key
        )
        other.column("p1")[0] += 1
        assert not rel.equals_unordered(other)

    def test_equals_unordered_different_schemas(self):
        assert not _rel(payloads=1).equals_unordered(_rel(payloads=2))

    def test_equals_unordered_different_row_counts(self):
        assert not _rel(n=4).equals_unordered(_rel(n=5))

    def test_sorted_by_all_columns_is_canonical(self):
        rel = _rel(n=20)
        a = rel.take(np.random.default_rng(2).permutation(20)).sorted_by_all_columns()
        b = rel.take(np.random.default_rng(3).permutation(20)).sorted_by_all_columns()
        assert np.array_equal(a.key_values, b.key_values)
