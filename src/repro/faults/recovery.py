"""Graceful degradation: resilient join and group-by execution.

The recovery ladders that turn a (injected or real)
:class:`~repro.errors.DeviceOutOfMemoryError` into a re-plan instead of
a crash, mirroring Eiger-style memory managers that degrade to
partitioned/out-of-core execution at the memory cliff:

* **join** — in-memory algorithm under memory pressure; on OOM,
  re-plan to the staged :class:`~repro.joins.out_of_core.OutOfCoreJoin`
  over the same inner algorithm, sized to the injected budget (more
  passes, more transfers, same rows).
* **group-by** — resolved strategy under pressure; on OOM, first
  re-plan to ``PART-AGG`` (smallest auxiliary footprint of the
  in-memory strategies), then to the block-staged
  :class:`~repro.aggregation.out_of_core.OutOfCoreGroupBy`.

Every rung re-executes from the operator's (host-resident) inputs, so
degradation is idempotent, and every rung produces the same relational
output as the fault-free run: joins up to row order (chunk
concatenation permutes rows exactly like the staged join does without
faults), group-bys bit for bit (ascending group keys, per-group fold
order preserved).  If the last rung still cannot fit,
:class:`~repro.errors.GracefulDegradationError` reports every attempt.

The extra work is charged to the simulated clock of the degraded
execution and surfaced through the ambient
:class:`~repro.obs.session.TraceSession` as ``degraded:*`` spans and
``faults_injected_oom`` / ``degraded_operators`` /
``degraded_extra_passes`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from ..aggregation.base import AggSpec, GroupByResult
from ..aggregation.planner import (
    GroupByWorkloadProfile,
    estimate_group_cardinality,
    make_groupby_algorithm,
    recommend_groupby_algorithm,
)
from ..errors import DeviceOutOfMemoryError, GracefulDegradationError
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, DeviceSpec
from ..joins.planner import (
    JoinWorkloadProfile,
    make_algorithm,
    recommend_join_algorithm,
)
from ..obs.session import current_session
from ..relational.relation import Relation
from .plan import FaultPlan


@dataclass
class ResilientJoinResult:
    """A join outcome plus the recovery decisions that produced it.

    ``result`` is the inner :class:`~repro.joins.base.JoinResult` (not
    degraded) or :class:`~repro.joins.out_of_core.OutOfCoreResult`
    (degraded); the wrapper re-exports the fields the executor and
    bench read so callers can treat both uniformly.
    """

    result: object
    algorithm: str
    degraded: bool
    attempts: List[str] = field(default_factory=list)
    #: Simulated seconds spent on execution attempts that OOMed.
    wasted_seconds: float = 0.0

    @property
    def output(self) -> Relation:
        return self.result.output

    @property
    def matches(self) -> int:
        return self.result.matches

    @property
    def total_seconds(self) -> float:
        return self.result.total_seconds + self.wasted_seconds

    @property
    def extras(self) -> Dict[str, float]:
        extras: Dict[str, float] = {"degraded": float(self.degraded)}
        if self.degraded:
            extras["degraded_chunks"] = float(self.result.num_chunks)
            extras["oom_wasted_s"] = self.wasted_seconds
        return extras


@dataclass
class ResilientGroupByResult:
    """A group-by outcome plus the recovery decisions that produced it."""

    result: object
    algorithm: str
    degraded: bool
    attempts: List[str] = field(default_factory=list)
    wasted_seconds: float = 0.0

    @property
    def output(self):
        return self.result.output

    @property
    def groups(self) -> int:
        return self.result.groups

    @property
    def total_seconds(self) -> float:
        return self.result.total_seconds + self.wasted_seconds

    @property
    def extras(self) -> Dict[str, float]:
        extras: Dict[str, float] = {"degraded": float(self.degraded)}
        if self.degraded:
            blocks = getattr(self.result, "num_blocks", 0)
            if blocks:
                extras["degraded_blocks"] = float(blocks)
            extras["oom_wasted_s"] = self.wasted_seconds
        return extras


def _note_oom(ctx: GPUContext, err: DeviceOutOfMemoryError, detail: str) -> None:
    """Account one OOM on the failing context's injector and trace."""
    if ctx.faults is not None:
        ctx.faults.note_oom(detail)
    session = current_session() if ctx.trace is None else ctx.trace
    if session is not None:
        session.count("faults_injected_oom")


def _count_degradation(extra_passes: int) -> None:
    session = current_session()
    if session is not None:
        session.count("degraded_operators")
        if extra_passes > 0:
            session.count("degraded_extra_passes", float(extra_passes))


def _degraded_span(kind: str, **args):
    session = current_session()
    if session is None:
        from contextlib import nullcontext

        return nullcontext()
    return session.span(f"degraded:{kind}", category="degraded", **args)


def resolve_join_algorithm_name(name: str, r: Relation, s: Relation) -> str:
    """Resolve ``"auto"`` exactly like the single-device planner."""
    if name != "auto":
        return name
    profile = JoinWorkloadProfile.from_relations(r, s)
    return recommend_join_algorithm(profile).algorithm


def resolve_groupby_algorithm_name(
    name: str, keys: np.ndarray, values: Dict[str, np.ndarray], device: DeviceSpec
) -> str:
    if name != "auto":
        return name
    profile = GroupByWorkloadProfile(
        rows=int(keys.size),
        estimated_groups=estimate_group_cardinality(keys),
        value_columns=len(values),
        key_bytes=keys.dtype.itemsize,
    )
    return recommend_groupby_algorithm(profile, device=device).algorithm


def resilient_join(
    r: Relation,
    s: Relation,
    algorithm: str = "auto",
    device: DeviceSpec = A100,
    config=None,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ResilientJoinResult:
    """``R ⋈ S`` that survives (injected) memory pressure.

    Runs the in-memory *algorithm* under the plan's capacity pressure;
    on :class:`DeviceOutOfMemoryError` it re-plans to the staged
    out-of-core join sized to the injected budget, forwarding the
    transient-fault part of the plan into the chunk executions.  The
    returned rows equal the in-memory join's up to the row permutation
    the staged join always applies.
    """
    from ..joins.out_of_core import OutOfCoreJoin

    name = resolve_join_algorithm_name(algorithm, r, s)
    attempts: List[str] = []
    wasted = 0.0

    ctx = GPUContext(
        device=device, seed=seed, fault_plan=fault_plan, fault_site="gpu"
    )
    try:
        result = make_algorithm(name, config).join(r, s, ctx=ctx)
        return ResilientJoinResult(
            result=result, algorithm=name, degraded=False, attempts=[name]
        )
    except DeviceOutOfMemoryError as err:
        attempts.append(name)
        wasted += ctx.elapsed_seconds
        _note_oom(ctx, err, f"join:{name}")
        budget = ctx.mem.capacity_bytes

    inner_plan = None if fault_plan is None else fault_plan.without_capacity()
    staged = OutOfCoreJoin(
        make_algorithm(name, config),
        device_budget_bytes=budget,
        fault_plan=inner_plan,
        min_chunks=2,
    )
    with _degraded_span(
        "join", algorithm=name, budget_bytes=int(budget or 0), reason="oom"
    ):
        result = staged.join(r, s, device=device, seed=seed)
    attempts.append(f"out-of-core[{name}]x{result.num_chunks}")
    _count_degradation(extra_passes=result.num_chunks - 1)
    return ResilientJoinResult(
        result=result,
        algorithm=f"OOC[{name}]",
        degraded=True,
        attempts=attempts,
        wasted_seconds=wasted,
    )


def resilient_group_by(
    keys: np.ndarray,
    values: Dict[str, np.ndarray],
    aggregates: List[AggSpec],
    algorithm: str = "auto",
    device: DeviceSpec = A100,
    config=None,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ResilientGroupByResult:
    """Grouped aggregation that survives (injected) memory pressure.

    The ladder is resolved strategy -> ``PART-AGG`` (smallest in-memory
    auxiliary footprint) -> block-staged
    :class:`~repro.aggregation.out_of_core.OutOfCoreGroupBy`.  Every
    rung returns bit-identical output (ascending group keys, per-group
    fold order preserved); if even block staging cannot fit,
    :class:`GracefulDegradationError` lists the attempts.
    """
    from ..aggregation.out_of_core import OutOfCoreGroupBy

    keys = np.asarray(keys)
    name = resolve_groupby_algorithm_name(algorithm, keys, values, device)
    attempts: List[str] = []
    wasted = 0.0
    budget: Optional[int] = None

    ladder = [name] + (["PART-AGG"] if name != "PART-AGG" else [])
    for rung, strategy in enumerate(ladder):
        ctx = GPUContext(
            device=device, seed=seed, fault_plan=fault_plan, fault_site="gpu"
        )
        try:
            if rung == 0:
                result = make_groupby_algorithm(strategy, config).group_by(
                    keys, values, list(aggregates), ctx=ctx
                )
            else:
                with _degraded_span(
                    "group-by",
                    algorithm=strategy,
                    budget_bytes=int(budget or 0),
                    reason="oom",
                ):
                    result = make_groupby_algorithm(strategy, config).group_by(
                        keys, values, list(aggregates), ctx=ctx
                    )
                _count_degradation(extra_passes=1)
            return ResilientGroupByResult(
                result=result,
                algorithm=strategy if rung == 0 else f"degraded[{strategy}]",
                degraded=rung > 0,
                attempts=attempts + [strategy],
                wasted_seconds=wasted,
            )
        except DeviceOutOfMemoryError as err:
            attempts.append(strategy)
            wasted += ctx.elapsed_seconds
            _note_oom(ctx, err, f"group-by:{strategy}")
            budget = ctx.mem.capacity_bytes

    inner_plan = None if fault_plan is None else fault_plan.without_capacity()
    staged = OutOfCoreGroupBy(
        inner="PART-AGG",
        device_budget_bytes=budget,
        config=config,
        fault_plan=inner_plan,
        min_blocks=2,
    )
    with _degraded_span(
        "group-by", algorithm="OOC[PART-AGG]", budget_bytes=int(budget or 0),
        reason="oom",
    ):
        try:
            result = staged.group_by(
                keys, values, list(aggregates), device=device, seed=seed
            )
        except DeviceOutOfMemoryError as err:
            raise GracefulDegradationError(
                f"group-by exceeds the device budget even block-staged: {err}",
                attempts=attempts + ["OOC[PART-AGG]"],
            ) from err
    attempts.append(f"OOC[PART-AGG]x{result.num_blocks}")
    _count_degradation(extra_passes=result.num_blocks - 1)
    return ResilientGroupByResult(
        result=result,
        algorithm="OOC[PART-AGG]",
        degraded=True,
        attempts=attempts,
        wasted_seconds=wasted,
    )
