"""agg01: grouped aggregation vs group cardinality.

Regenerates the experiment table into ``bench_results/agg01.txt``.
Run: ``pytest benchmarks/bench_agg01.py --benchmark-only -s``
"""

from repro.bench.experiments import agg01

from _common import REPORT_SCALE, run_and_report


def test_agg01(benchmark):
    result = run_and_report(benchmark, agg01.run, REPORT_SCALE)
    assert result.findings["part_wins_largest"] == 1.0
