"""Chrome-trace export of a serving timeline.

Lays one :class:`~repro.serve.server.QueryServer` run out as a
multi-track Trace Event Format document: one track per logical stream
carrying every kernel as it *actually ran* (stretched by concurrent
occupancy), with one enclosing span per query, plus a ``queue`` track
showing each query's admission wait.  Gaps between kernels on a stream
are genuine idle time; a kernel wider than its ``solo_us`` arg is
bandwidth contention made visible.

Open the result in ``chrome://tracing`` or https://ui.perfetto.dev,
exactly like the single-device (:func:`repro.obs.export.write_chrome_trace`)
and cluster (:func:`repro.cluster.trace.write_cluster_trace`) exports.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from ..obs.export import thread_name_event
from .server import QueryServer

#: Trace-viewer timestamps are microseconds.
_US = 1e6


def serve_chrome_trace(
    server: QueryServer, name: str = "serve"
) -> Dict[str, object]:
    """The server's history as a Trace Event Format document.

    Track layout: ``tid 0..S-1`` are the streams, ``tid S`` is the
    admission queue (one span per completed query's wait, when any).
    """
    streams = server.scheduler.num_streams
    queue_tid = streams
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro query server: {name}"},
        }
    ]
    for s in range(streams):
        events.append(thread_name_event(f"stream{s} ({server.device.name})", tid=s))
    events.append(thread_name_event("admission queue", tid=queue_tid))

    for outcome in server.outcomes:
        if outcome.status != "completed":
            continue
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": outcome.stream,
                "name": f"q{outcome.query_id}"
                + (f":{outcome.tag}" if outcome.tag else ""),
                "cat": "query",
                "ts": outcome.admitted_s * _US,
                "dur": outcome.service_s * _US,
                "args": {
                    "latency_us": outcome.latency_s * _US,
                    "solo_us": outcome.solo_seconds * _US,
                    "stretch": round(outcome.stretch, 4),
                    "result_cache_hit": outcome.result_cache_hit,
                    "plan_cache_hit": outcome.plan_cache_hit,
                    "subresult_hits": outcome.subresult_hits,
                    "degraded": outcome.degraded,
                },
            }
        )
        if outcome.queue_wait_s > 0:
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": queue_tid,
                    "name": f"wait:q{outcome.query_id}",
                    "cat": "queue",
                    "ts": outcome.arrival_s * _US,
                    "dur": outcome.queue_wait_s * _US,
                    "args": {"priority_stream": outcome.stream},
                }
            )

    for item in server.scheduler.history:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": item.stream,
                "name": item.name,
                "cat": "kernel",
                "ts": item.start_s * _US,
                "dur": (item.end_s - item.start_s) * _US,
                "args": {
                    "query": item.query_id,
                    "solo_us": item.solo_seconds * _US,
                    "stretch": round(item.stretch, 4),
                },
            }
        )

    report = server.report()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "streams": streams,
            "interference": server.scheduler.interference,
            "simulated_seconds": server.clock_s,
            "completed": report.completed,
            "rejected": report.rejected,
            "throughput_qps": report.throughput_qps,
            "counters": server.metrics.as_dict(derived=False),
        },
    }


def write_serve_trace(server: QueryServer, path, name: str = "") -> Path:
    """Serialize a serving run to a ``chrome://tracing`` JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = serve_chrome_trace(server, name or path.stem)
    path.write_text(json.dumps(doc, indent=1))
    return path
