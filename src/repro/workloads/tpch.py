"""TPC-H/TPC-DS extracted join workloads (Table 6, Section 5.3).

The paper extracts five representative joins from DuckDB query plans
over TPC-H (SF=10) and TPC-DS (SF=100).  We regenerate synthetic
relations with the same *shape*: row counts (scaled), output
cardinality, key/non-key payload column mixes, self-join multiplicity,
and the 4-byte-key / 8-byte-non-key type mixture the paper uses
("strings ... transformed into numeric values by dictionary encoding",
rows randomly shuffled).

Two type variants mirror Figure 17: ``mixed`` (4 B keys, 8 B non-keys)
and ``wide`` (everything 8 B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import WorkloadError
from ..relational.relation import Relation
from ..relational.types import INT32, INT64, ColumnType


@dataclass(frozen=True)
class TPCJoinSpec:
    """Shape of one extracted join (a row of Table 6)."""

    join_id: str
    benchmark: str
    query: str
    r_rows: int
    s_rows: int
    out_rows: int
    #: payload columns of R that are key attributes (other PKs/FKs)
    r_key_payloads: int
    #: payload columns of R that are non-key attributes
    r_nonkey_payloads: int
    s_key_payloads: int
    s_nonkey_payloads: int
    #: self FK-FK join with duplicate keys on both sides (J5)
    self_join: bool = False
    remark: str = ""

    @property
    def multiplicity(self) -> float:
        """Average output rows per probe-side row."""
        return self.out_rows / self.s_rows


#: Table 6 of the paper, verbatim shapes.
TPC_JOINS: List[TPCJoinSpec] = [
    TPCJoinSpec("J1", "TPC-H", "Q7", 15_000_000, 18_200_000, 18_200_000, 1, 3, 0, 1,
                remark="PK-FK wide join"),
    TPCJoinSpec("J2", "TPC-H", "Q18", 15_000_000, 60_000_000, 60_000_000, 1, 2, 0, 1,
                remark="PK-FK wide join"),
    TPCJoinSpec("J3", "TPC-H", "Q19", 2_000_000, 2_100_000, 2_100_000, 0, 3, 0, 3,
                remark="PK-FK wide join"),
    TPCJoinSpec("J4", "TPC-DS", "Q64", 1_900_000, 58_000_000, 58_000_000, 0, 1, 3, 7,
                remark="many probe-side payloads"),
    TPCJoinSpec("J5", "TPC-DS", "Q95", 72_000_000, 72_000_000, 904_000_000, 0, 1, 0, 1,
                self_join=True, remark="self narrow join"),
]

TPC_JOINS_BY_ID = {spec.join_id: spec for spec in TPC_JOINS}


def _payload_columns(
    rng: np.random.Generator,
    rows: int,
    key_count: int,
    nonkey_count: int,
    key_type: ColumnType,
    nonkey_type: ColumnType,
    prefix: str,
) -> List[Tuple[str, np.ndarray]]:
    columns = []
    for i in range(key_count):
        columns.append(
            (f"{prefix}k{i + 1}", rng.integers(0, max(2, rows), rows).astype(key_type.dtype))
        )
    for i in range(nonkey_count):
        columns.append(
            (f"{prefix}n{i + 1}", rng.integers(0, 1 << 20, rows).astype(nonkey_type.dtype))
        )
    return columns


def generate_tpc_join(
    spec: TPCJoinSpec,
    scale: float = 1.0,
    variant: str = "mixed",
    seed: int = 0,
) -> Tuple[Relation, Relation]:
    """Materialize (R, S) for one Table 6 join, scaled by ``scale``.

    ``variant="mixed"`` uses 4-byte keys and 8-byte non-keys;
    ``variant="wide"`` makes every attribute 8 bytes.
    """
    if variant == "mixed":
        key_type, nonkey_type = INT32, INT64
    elif variant == "wide":
        key_type, nonkey_type = INT64, INT64
    else:
        raise WorkloadError(f"unknown variant {variant!r} (use 'mixed' or 'wide')")
    if not 0 < scale <= 1:
        raise WorkloadError("scale must be in (0, 1]")

    rng = np.random.default_rng(seed)
    r_rows = max(64, int(spec.r_rows * scale))
    s_rows = max(64, int(spec.s_rows * scale))

    if spec.self_join:
        # FK-FK: both sides draw keys from a domain sized so the expected
        # output multiplicity matches Table 6 (|out| = |R||S| / domain).
        domain = max(1, int(round(spec.r_rows * spec.s_rows / spec.out_rows * scale)))
        r_keys = rng.integers(0, domain, r_rows)
        s_keys = rng.integers(0, domain, s_rows)
    else:
        # PK-FK with a 100%-ish match ratio (|out| == |S| in Table 6).
        r_keys = rng.permutation(r_rows)
        s_keys = rng.integers(0, r_rows, s_rows)
    max_key = int(max(r_keys.max(), s_keys.max()))
    if max_key > np.iinfo(key_type.dtype).max:
        raise WorkloadError("scaled keys exceed the key type range")
    r_keys = r_keys.astype(key_type.dtype)
    s_keys = s_keys.astype(key_type.dtype)

    r_columns = [("key", r_keys)] + _payload_columns(
        rng, r_rows, spec.r_key_payloads, spec.r_nonkey_payloads, key_type, nonkey_type, "r"
    )
    s_columns = [("key", s_keys)] + _payload_columns(
        rng, s_rows, spec.s_key_payloads, spec.s_nonkey_payloads, key_type, nonkey_type, "s"
    )
    r = Relation(r_columns, key="key", name=f"{spec.join_id}:R")
    s = Relation(s_columns, key="key", name=f"{spec.join_id}:S")
    return r, s


def tpch_lineitem_like(
    rows: int, seed: int = 0
) -> Tuple[np.ndarray, dict]:
    """A lineitem-shaped table for group-by experiments.

    Returns ``(order_key, columns)`` where columns contains quantity,
    extended price, a 4-value return flag and a 2-value line status —
    enough to express Q1-like (tiny cardinality) and Q18-like (huge
    cardinality) aggregations.
    """
    rng = np.random.default_rng(seed)
    orders = max(1, rows // 4)  # ~4 lineitems per order, as in TPC-H
    order_key = rng.integers(0, orders, rows).astype(np.int32)
    columns = {
        "quantity": rng.integers(1, 51, rows).astype(np.int32),
        "extendedprice": rng.integers(900, 105000, rows).astype(np.int32),
        "returnflag": rng.integers(0, 4, rows).astype(np.int32),
        "linestatus": rng.integers(0, 2, rows).astype(np.int32),
    }
    return order_key, columns
