"""Figure 1: time breakdown for join processing (1.5G x 3G, wide).

Regenerates the experiment table into ``bench_results/fig01.txt``.
Run: ``pytest benchmarks/bench_fig01.py --benchmark-only -s``
"""

from repro.bench.experiments import fig01

from _common import REPORT_SCALE, run_and_report


def test_fig01(benchmark):
    result = run_and_report(benchmark, fig01.run, REPORT_SCALE)
    assert result.findings["phj_om_speedup_over_phj_um"] > 1.5
