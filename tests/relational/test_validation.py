"""Reference join/group-by vs brute force (including hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Relation, reference_groupby, reference_join
from repro.relational.validation import assert_join_equal, join_match_indices
from repro.primitives.grouping import group_identify


def _brute_force_pairs(r_keys, s_keys):
    return {
        (ri, si)
        for ri, rk in enumerate(r_keys)
        for si, sk in enumerate(s_keys)
        if rk == sk
    }


class TestMatchIndices:
    def test_simple(self):
        r = np.array([1, 2, 3], dtype=np.int32)
        s = np.array([2, 2, 4], dtype=np.int32)
        r_idx, s_idx = join_match_indices(r, s)
        assert set(zip(r_idx, s_idx)) == {(1, 0), (1, 1)}

    def test_s_major_order(self):
        r = np.array([5, 5], dtype=np.int32)
        s = np.array([5, 5], dtype=np.int32)
        _, s_idx = join_match_indices(r, s)
        assert list(s_idx) == sorted(s_idx)

    def test_no_matches(self):
        r_idx, s_idx = join_match_indices(
            np.array([1], dtype=np.int32), np.array([2], dtype=np.int32)
        )
        assert r_idx.size == 0 and s_idx.size == 0

    @settings(max_examples=60, deadline=None)
    @given(
        r_keys=st.lists(st.integers(0, 12), max_size=40),
        s_keys=st.lists(st.integers(0, 12), max_size=40),
    )
    def test_matches_brute_force(self, r_keys, s_keys):
        r = np.asarray(r_keys, dtype=np.int64)
        s = np.asarray(s_keys, dtype=np.int64)
        r_idx, s_idx = join_match_indices(r, s)
        assert set(zip(r_idx.tolist(), s_idx.tolist())) == _brute_force_pairs(
            r_keys, s_keys
        )


class TestReferenceJoin:
    def test_schema_and_rows(self):
        r = Relation(
            [("key", np.array([1, 2], dtype=np.int32)),
             ("a", np.array([10, 20], dtype=np.int32))], key="key",
        )
        s = Relation(
            [("key", np.array([2, 2], dtype=np.int32)),
             ("b", np.array([7, 8], dtype=np.int32))], key="key",
        )
        out = reference_join(r, s)
        assert out.column_names == ["key", "a", "b"]
        assert out.num_rows == 2
        assert list(out.column("a")) == [20, 20]
        assert sorted(out.column("b")) == [7, 8]

    def test_name_collision_suffixed(self):
        r = Relation(
            [("key", np.array([1], dtype=np.int32)),
             ("v", np.array([5], dtype=np.int32))], key="key",
        )
        s = Relation(
            [("key", np.array([1], dtype=np.int32)),
             ("v", np.array([9], dtype=np.int32))], key="key",
        )
        out = reference_join(r, s)
        assert out.column_names == ["key", "v", "v_s"]

    def test_assert_join_equal_detects_row_diff(self):
        r = Relation([("key", np.array([1], dtype=np.int32))], key="key")
        s = Relation([("key", np.array([1], dtype=np.int32))], key="key")
        out = reference_join(r, s)
        bigger = Relation([("key", np.array([1, 1], dtype=np.int32))], key="key")
        with pytest.raises(AssertionError, match="row-count"):
            assert_join_equal(out, bigger)


class TestReferenceGroupby:
    def test_all_aggregates(self):
        keys = np.array([1, 2, 1, 2, 2], dtype=np.int32)
        values = {"v": np.array([10, 1, 30, 5, 3], dtype=np.int32)}
        out = reference_groupby(keys, values, {"v": "sum"})
        assert list(out["group_key"]) == [1, 2]
        assert list(out["sum_v"]) == [40, 9]

    def test_count_min_max_mean(self):
        keys = np.array([0, 0, 1], dtype=np.int32)
        values = {"v": np.array([4, 6, 9], dtype=np.int32)}
        assert list(reference_groupby(keys, values, {"v": "count"})["count_v"]) == [2, 1]
        assert list(reference_groupby(keys, values, {"v": "min"})["min_v"]) == [4, 9]
        assert list(reference_groupby(keys, values, {"v": "max"})["max_v"]) == [6, 9]
        means = reference_groupby(keys, values, {"v": "mean"})["mean_v"]
        assert means[0] == pytest.approx(5.0)

    def test_unknown_aggregate(self):
        with pytest.raises(ValueError):
            reference_groupby(
                np.array([0]), {"v": np.array([1])}, {"v": "median"}
            )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-50, 50)),
                    min_size=1, max_size=60))
    def test_sum_matches_python_dict(self, rows):
        keys = np.asarray([k for k, _ in rows], dtype=np.int64)
        vals = np.asarray([v for _, v in rows], dtype=np.int64)
        out = reference_groupby(keys, {"v": vals}, {"v": "sum"})
        expected = {}
        for k, v in rows:
            expected[k] = expected.get(k, 0) + v
        got = dict(zip(out["group_key"].tolist(), out["sum_v"].tolist()))
        assert got == expected


class TestGroupIdentifyEquivalence:
    """reference_groupby's sort-based key identification must be a
    drop-in for ``np.unique(keys, return_inverse=True)`` — identical
    group keys AND identical inverse mapping, for any dtype/ordering."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(-(1 << 40), 1 << 40), min_size=0, max_size=200),
        st.sampled_from(["int64", "int32"]),
    )
    def test_matches_np_unique_return_inverse(self, values, dtype):
        if dtype == "int32":
            values = [v % (1 << 31) for v in values]
        keys = np.asarray(values, dtype=dtype)
        got_keys, got_inverse = group_identify(keys)
        exp_keys, exp_inverse = np.unique(keys, return_inverse=True)
        np.testing.assert_array_equal(got_keys, exp_keys)
        np.testing.assert_array_equal(
            np.asarray(got_inverse).ravel(), np.asarray(exp_inverse).ravel()
        )

    def test_high_cardinality_permutation(self):
        rng = np.random.default_rng(9)
        keys = rng.permutation(np.arange(50_000, dtype=np.int64))
        got_keys, got_inverse = group_identify(keys)
        exp_keys, exp_inverse = np.unique(keys, return_inverse=True)
        np.testing.assert_array_equal(got_keys, exp_keys)
        np.testing.assert_array_equal(got_inverse, np.asarray(exp_inverse).ravel())
        # round trip: keys reconstruct exactly
        np.testing.assert_array_equal(got_keys[got_inverse], keys)
