"""Cluster fault injection: replays, retransmits, stragglers.

The cluster layer recovers with barrier-synchronous checkpoint/replay:
a failed device re-runs its shard from the superstep's shuffle-buffer
checkpoint, failed links retransmit their buckets whole, stragglers
stretch their timeline — and in every case the sharded rows stay
bit-identical to the fault-free run, because injection draws never
touch the data path.
"""

import numpy as np
import pytest

from repro.aggregation import AggSpec
from repro.cluster import ClusterContext, sharded_group_by, sharded_join
from repro.faults import FaultPlan
from repro.obs import TraceSession
from repro.workloads import JoinWorkloadSpec, generate_join_workload
from repro.workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload

ALL_FAULTS = FaultPlan(
    seed=13,
    kernel_fault_rate=0.2,
    link_failure_rate=0.4,
    straggler_rate=0.3,
    device_failure_rate=0.3,
)


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=2048, s_rows=8192, r_payload_columns=2,
                         s_payload_columns=2, seed=3)
    )


@pytest.fixture(scope="module")
def groupby_workload():
    spec = GroupByWorkloadSpec(rows=1 << 14, groups=512, value_columns=2, seed=3)
    keys, values = generate_groupby_workload(spec)
    return keys, values, [AggSpec("v1", "sum"), AggSpec("v2", "mean")]


def test_capacity_pressure_is_stripped_from_shards():
    plan = FaultPlan(seed=1, capacity_frac=0.1, kernel_fault_rate=0.2)
    cluster = ClusterContext(num_devices=2, fault_plan=plan)
    assert cluster.fault_plan.capacity_frac is None
    assert cluster.fault_plan.kernel_fault_rate == 0.2


def test_sharded_join_is_bit_identical_under_faults(relations):
    r, s = relations
    base = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0)
    faulty = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0,
                          fault_plan=ALL_FAULTS)
    # Exactly identical, not just as a multiset: the recovery replays
    # deterministic shards, so even the row order is unchanged.
    for column, array in base.output.columns().items():
        np.testing.assert_array_equal(faulty.output.column(column), array)
    assert faulty.total_seconds > base.total_seconds


def test_sharded_group_by_is_bit_identical_under_faults(groupby_workload):
    keys, values, aggs = groupby_workload
    base = sharded_group_by(keys, values, aggs, algorithm="HASH-AGG",
                            num_devices=4, seed=0)
    faulty = sharded_group_by(keys, values, aggs, algorithm="HASH-AGG",
                              num_devices=4, seed=0, fault_plan=ALL_FAULTS)
    for column in base.output:
        np.testing.assert_array_equal(faulty.output[column],
                                      base.output[column])
    assert faulty.total_seconds > base.total_seconds


def test_cluster_recovery_is_deterministic(relations):
    r, s = relations
    a = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0,
                     fault_plan=ALL_FAULTS)
    b = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0,
                     fault_plan=ALL_FAULTS)
    assert a.total_seconds == b.total_seconds
    assert a.shuffle_seconds == b.shuffle_seconds


def test_recovery_mechanisms_surface_in_steps_and_counters(relations):
    r, s = relations
    with TraceSession("cluster-faults") as session:
        res = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0,
                           fault_plan=ALL_FAULTS)
    cluster = res.cluster
    recovery = sum(step.recovery_seconds for step in cluster.steps)
    assert recovery > 0
    # Link failures append retransmit transfer records to shuffle steps.
    retransmits = [
        t for step in cluster.steps for t in step.transfers
        if t.label.startswith("retransmit:")
    ]
    assert retransmits
    assert session.metrics.value("fault_retransmit_bytes") == sum(
        t.nbytes for t in retransmits
    )
    # At these rates, every injection mechanism fires at least once.
    for counter in (
        "faults_injected_link",
        "faults_injected_device",
        "faults_injected_straggler",
        "fault_replays",
        "fault_replay_seconds",
        "fault_retransmit_seconds",
        "fault_straggler_seconds",
    ):
        assert session.metrics.value(counter) > 0, counter
    # Replays are traced as retry-category spans on the ambient session.
    retry_spans = session.spans(category="retry")
    assert any(span.name.startswith("replay:") for _, span in retry_spans)


def test_device_kernel_retries_roll_up_to_ambient_session(relations):
    """Per-device contexts trace into private sessions; the cluster
    rolls their fault counters up so session totals are cluster-wide."""
    r, s = relations
    plan = FaultPlan(seed=13, kernel_fault_rate=0.3)
    with TraceSession("rollup") as session:
        sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0,
                     fault_plan=plan)
    assert session.metrics.value("faults_injected_kernel") > 0
    assert session.metrics.value("fault_kernel_retries") > 0
    assert session.metrics.value("fault_retry_seconds") > 0


def test_cluster_step_spans_report_recovery_seconds(relations):
    r, s = relations
    with TraceSession("spans") as session:
        sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0,
                     fault_plan=ALL_FAULTS)
    steps = session.spans(category="cluster-step")
    assert steps
    assert any(span.args.get("recovery_s", 0.0) > 0 for _, span in steps)


def test_fault_free_plan_leaves_cluster_clock_unchanged(relations):
    r, s = relations
    base = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0)
    planned = sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=0,
                           fault_plan=FaultPlan(seed=13))
    assert planned.total_seconds == base.total_seconds
