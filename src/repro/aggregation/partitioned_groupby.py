"""Partitioned grouped aggregation — the group-by analogue of PHJ-OM.

Radix-partition the rows on (hashed) key bits so that each partition's
distinct groups fit in a shared-memory hash table, then aggregate each
partition with sequential streams.  Like PHJ-OM, the partitioner is the
stable RADIX-PARTITION primitive, so the GFTR pattern applies: each
value column can be partitioned lazily *with* the keys and folded by a
sequential per-partition pass — no unclustered gathers, no global
atomics, robust to both skew and high group cardinality.

``pattern="gfur"`` instead partitions ``(key, tuple ID)`` and fetches
value columns through the permuted IDs (unclustered), mirroring the
join study's baseline pattern for ablation.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

from ..errors import AggregationConfigError
from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from ..primitives.gather import gather
from ..primitives.grouping import group_identify
from ..primitives.radix_partition import radix_partition
from ..relational.types import id_dtype
from .base import (
    AGGREGATE,
    MATERIALIZE,
    TRANSFORM,
    AggSpec,
    GroupByAlgorithm,
    GroupByConfig,
    segmented_aggregate,
)


def derive_groupby_bits(
    estimated_groups: int, tuples_per_partition: int, forced: Optional[int] = None
) -> int:
    """Radix bits so each partition's group table fits shared memory."""
    if forced is not None:
        return forced
    if estimated_groups <= tuples_per_partition:
        return 1
    return min(16, max(1, math.ceil(math.log2(estimated_groups / tuples_per_partition))))


class PartitionedGroupBy(GroupByAlgorithm):
    """RADIX-PARTITION + per-partition shared-memory aggregation."""

    name = "PART-AGG"
    pattern = "gftr"

    def __init__(self, config: Optional[GroupByConfig] = None, pattern: str = "gftr"):
        super().__init__(config)
        if pattern not in ("gftr", "gfur"):
            raise AggregationConfigError(f"unknown pattern {pattern!r}")
        self.pattern = pattern
        self.name = "PART-AGG" if pattern == "gftr" else "PART-AGG/gfur"

    def _charge_partition_fold(
        self, ctx: GPUContext, rows: int, value_bytes: int, out_bytes: int, name: str, phase: str
    ) -> None:
        """Per-partition shared-memory fold: purely sequential streams."""
        ctx.submit(
            KernelStats(
                name=name,
                items=rows,
                seq_read_bytes=value_bytes,
                seq_write_bytes=out_bytes,
            ),
            phase=phase,
        )

    def _execute(
        self,
        ctx: GPUContext,
        keys: np.ndarray,
        values: Dict[str, np.ndarray],
        aggregates: List[AggSpec],
    ) -> "OrderedDict[str, np.ndarray]":
        n = int(keys.size)
        group_keys, inverse = group_identify(keys)
        num_groups = int(group_keys.size)
        # Target groups per partition: a shared-memory hash table of
        # 16-byte accumulator slots, half-loaded.
        target = self.config.tuples_per_partition or max(
            8, ctx.device.shared_mem_bytes // 32
        )
        bits = derive_groupby_bits(num_groups, target, self.config.partition_bits)

        id_map = None
        with ctx.phase(TRANSFORM):
            if self.pattern == "gfur":
                ids = np.arange(n, dtype=id_dtype(n))
                ctx.submit(
                    KernelStats(name="init_ids", items=n, seq_write_bytes=int(ids.nbytes)),
                    phase=TRANSFORM,
                )
                part = radix_partition(
                    ctx, keys, [ids], bits, phase=TRANSFORM,
                    hashed=self.config.hashed_partitioning, label="keys+ids",
                )
                id_map = ctx.mem.adopt(part.payloads[0], "ids_partitioned")
            else:
                part = radix_partition(
                    ctx, keys, [], bits, phase=TRANSFORM,
                    hashed=self.config.hashed_partitioning, label="keys",
                )
            a_keys = ctx.mem.adopt(part.keys, "keys_partitioned")

        output: "OrderedDict[str, np.ndarray]" = OrderedDict()
        output["group_key"] = group_keys

        with ctx.phase(AGGREGATE):
            # Per-partition group discovery (shared-memory hash build):
            # one sequential pass over the partitioned keys.
            self._charge_partition_fold(
                ctx, n, int(part.keys.nbytes), num_groups * 8, "partition_groups", AGGREGATE
            )

        with ctx.phase(MATERIALIZE):
            for spec in aggregates:
                if spec.op == "count":
                    output[spec.output_name] = segmented_aggregate(
                        inverse, num_groups, None, "count"
                    )
                    self._charge_partition_fold(
                        ctx, n, 0, num_groups * 8, f"fold:{spec.output_name}", MATERIALIZE
                    )
                    continue
                column = values[spec.column]
                if self.pattern == "gfur":
                    # Unclustered gather through partitioned IDs, then fold.
                    folded_input = gather(
                        ctx, column, id_map.data, phase=MATERIALIZE, label=spec.column
                    )
                else:
                    # GFTR: lazily partition (key, column); the fold then
                    # streams the co-partitioned column sequentially.
                    # Boundaries and the stable permutation are reused
                    # from the transform phase.
                    lazy = radix_partition(
                        ctx, keys, [column], bits, phase=MATERIALIZE,
                        hashed=self.config.hashed_partitioning, label=spec.column,
                        compute_boundaries=False, order=part.order,
                    )
                    folded_input = lazy.payloads[0]
                output[spec.output_name] = segmented_aggregate(
                    inverse, num_groups, column, spec.op
                )
                self._charge_partition_fold(
                    ctx,
                    n,
                    int(folded_input.nbytes),
                    num_groups * 8,
                    f"fold:{spec.output_name}",
                    MATERIALIZE,
                )
            ctx.mem.free(a_keys)
            if id_map is not None:
                ctx.mem.free(id_map)
        return output
