"""High-performance GPU primitives (Section 2.3 of the paper), simulated.

RADIX-PARTITION, SORT-PAIRS, GATHER/SCATTER, Merge Path, histograms and
prefix sums, plus the Sioulas-style bucket-chain partitioner the paper's
PHJ-UM baseline uses.  All primitives execute real numpy data movement
and submit measured traffic to the owning :class:`~repro.gpusim.GPUContext`.
"""

from .bucket_chain import (
    DEFAULT_BUCKET_TUPLES,
    BucketChainPartitioned,
    bucket_chain_partition,
    contention_factor,
)
from .gather import gather, gather_stats_only, scatter
from .hashing import hash_to_slots, mix_hash, multiplicative_hash, radix_digit
from .histogram import exclusive_scan, histogram
from .merge_path import lower_bounds, match_bounds, upper_bounds
from .radix_partition import (
    MAX_BITS_PER_PASS,
    Partitioned,
    partition_codes,
    plan_passes,
    radix_partition,
    radix_partition_pass,
)
from .grouping import (
    count_distinct,
    distinct_sorted,
    group_identify,
    groups_from_sorted,
    stable_key_order,
)
from .sector_analysis import (
    SectorStats,
    analyze_indices,
    get_sector_mode,
    sequential_stats,
    set_sector_mode,
)
from .sort_pairs import (
    argsort_cost_only,
    key_bits_for_dtype,
    sort_pairs,
    sort_passes_for_dtype,
)

__all__ = [
    "BucketChainPartitioned",
    "DEFAULT_BUCKET_TUPLES",
    "MAX_BITS_PER_PASS",
    "Partitioned",
    "SectorStats",
    "analyze_indices",
    "argsort_cost_only",
    "bucket_chain_partition",
    "contention_factor",
    "count_distinct",
    "distinct_sorted",
    "exclusive_scan",
    "gather",
    "gather_stats_only",
    "get_sector_mode",
    "group_identify",
    "groups_from_sorted",
    "hash_to_slots",
    "histogram",
    "key_bits_for_dtype",
    "lower_bounds",
    "match_bounds",
    "mix_hash",
    "multiplicative_hash",
    "partition_codes",
    "plan_passes",
    "radix_digit",
    "radix_partition",
    "radix_partition_pass",
    "scatter",
    "sequential_stats",
    "set_sector_mode",
    "sort_pairs",
    "sort_passes_for_dtype",
    "stable_key_order",
    "upper_bounds",
]
