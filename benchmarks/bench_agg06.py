"""agg06: TPC-H-shaped aggregations.

Regenerates the experiment table into ``bench_results/agg06.txt``.
Run: ``pytest benchmarks/bench_agg06.py --benchmark-only -s``
"""

from repro.bench.experiments import agg06

from _common import REPORT_SCALE, run_and_report


def test_agg06(benchmark):
    result = run_and_report(benchmark, agg06.run, REPORT_SCALE)
    assert result.findings["q1_hash_wins"] == 1.0
