"""Graceful degradation: OOM pressure re-plans instead of raising.

Acceptance for the fault framework: under an injected ``capacity_frac``
the in-memory join/group-by must degrade to the partitioned /
out-of-core variant, produce the fault-free rows (joins up to row
order, group-bys bit for bit), charge the recovery to the simulated
clock, and account the degradation in the ambient trace session.
"""

import numpy as np
import pytest

from repro.aggregation import AggSpec
from repro.errors import GracefulDegradationError
from repro.faults import (
    FaultPlan,
    ResilientGroupByResult,
    ResilientJoinResult,
    resilient_group_by,
    resilient_join,
)
from repro.gpusim import A100
from repro.obs import TraceSession
from repro.workloads import JoinWorkloadSpec, generate_join_workload
from repro.workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload

# A small simulated device makes capacity fractions bite at test scale.
DEVICE = A100.with_overrides(global_mem_bytes=1 << 20)


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=4096, s_rows=8192, r_payload_columns=2,
                         s_payload_columns=2, seed=5)
    )


@pytest.fixture(scope="module")
def groupby_workload():
    spec = GroupByWorkloadSpec(rows=1 << 14, groups=2048, value_columns=2, seed=5)
    keys, values = generate_groupby_workload(spec)
    return keys, values, [AggSpec("v1", "sum"), AggSpec("v2", "max")]


class TestResilientJoin:
    def test_no_plan_matches_plain_join(self, relations):
        r, s = relations
        res = resilient_join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0)
        assert isinstance(res, ResilientJoinResult)
        assert not res.degraded
        assert res.algorithm == "PHJ-OM"
        assert res.attempts == ["PHJ-OM"]
        assert res.matches == s.num_rows
        assert res.extras == {"degraded": 0.0}

    def test_capacity_pressure_degrades_to_out_of_core(self, relations):
        r, s = relations
        oracle = resilient_join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0)
        plan = FaultPlan(seed=1, capacity_frac=0.05)
        res = resilient_join(
            r, s, algorithm="PHJ-OM", device=DEVICE, seed=0, fault_plan=plan
        )
        assert res.degraded
        assert res.algorithm == "OOC[PHJ-OM]"
        assert res.attempts[0] == "PHJ-OM"
        assert res.attempts[1].startswith("out-of-core[PHJ-OM]x")
        assert res.output.equals_unordered(oracle.output)
        assert res.total_seconds > oracle.total_seconds
        assert res.extras["degraded"] == 1.0
        assert res.extras["degraded_chunks"] >= 2

    def test_degradation_is_deterministic(self, relations):
        r, s = relations
        plan = FaultPlan(seed=1, kernel_fault_rate=0.2, capacity_frac=0.05)
        a = resilient_join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0,
                           fault_plan=plan)
        b = resilient_join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0,
                           fault_plan=plan)
        assert a.total_seconds == b.total_seconds
        for column, array in a.output.columns().items():
            np.testing.assert_array_equal(array, b.output.column(column))

    def test_degradation_is_traced(self, relations):
        r, s = relations
        plan = FaultPlan(seed=1, capacity_frac=0.05)
        with TraceSession("degrade") as session:
            resilient_join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0,
                           fault_plan=plan)
        assert session.metrics.value("faults_injected_oom") == 1
        assert session.metrics.value("degraded_operators") == 1
        assert session.metrics.value("degraded_extra_passes") >= 1
        spans = session.spans(category="degraded")
        assert [span.name for _, span in spans] == ["degraded:join"]
        assert spans[0][1].args["reason"] == "oom"

    def test_transient_faults_inside_degraded_chunks(self, relations):
        """without_capacity forwarding: chunk executions keep injecting
        kernel faults but are not re-broken by the OOM pressure."""
        r, s = relations
        plan = FaultPlan(seed=1, kernel_fault_rate=0.3, capacity_frac=0.05)
        with TraceSession("chunks") as session:
            res = resilient_join(r, s, algorithm="PHJ-OM", device=DEVICE,
                                 seed=0, fault_plan=plan)
        assert res.degraded
        assert session.metrics.value("fault_kernel_retries") > 0


class TestResilientGroupBy:
    def test_no_plan_is_not_degraded(self, groupby_workload):
        keys, values, aggs = groupby_workload
        res = resilient_group_by(keys, dict(values), aggs,
                                 algorithm="HASH-AGG", device=DEVICE, seed=0)
        assert isinstance(res, ResilientGroupByResult)
        assert not res.degraded
        assert res.algorithm == "HASH-AGG"

    def test_ladder_degrades_and_stays_bit_identical(self, groupby_workload):
        keys, values, aggs = groupby_workload
        oracle = resilient_group_by(keys, dict(values), aggs,
                                    algorithm="HASH-AGG", device=DEVICE, seed=0)
        plan = FaultPlan(seed=1, capacity_frac=0.02)
        res = resilient_group_by(keys, dict(values), aggs,
                                 algorithm="HASH-AGG", device=DEVICE, seed=0,
                                 fault_plan=plan)
        assert res.degraded
        assert res.attempts[0] == "HASH-AGG"
        assert set(res.output) == set(oracle.output)
        for column in oracle.output:
            np.testing.assert_array_equal(res.output[column],
                                          oracle.output[column])
        assert res.total_seconds > oracle.total_seconds

    def test_exhausted_ladder_reports_every_attempt(self, groupby_workload):
        keys, values, aggs = groupby_workload
        # Too tight even for 256 out-of-core blocks.
        plan = FaultPlan(seed=1, capacity_frac=1e-4)
        with pytest.raises(GracefulDegradationError) as info:
            resilient_group_by(keys, dict(values), aggs,
                               algorithm="HASH-AGG", device=DEVICE, seed=0,
                               fault_plan=plan)
        assert info.value.attempts == ["HASH-AGG", "PART-AGG", "OOC[PART-AGG]"]
        assert "tried: HASH-AGG, PART-AGG, OOC[PART-AGG]" in str(info.value)

    def test_degradation_counters_and_spans(self, groupby_workload):
        keys, values, aggs = groupby_workload
        plan = FaultPlan(seed=1, capacity_frac=0.02)
        with TraceSession("gb-degrade") as session:
            res = resilient_group_by(keys, dict(values), aggs,
                                     algorithm="HASH-AGG", device=DEVICE,
                                     seed=0, fault_plan=plan)
        assert session.metrics.value("faults_injected_oom") >= 1
        assert session.metrics.value("degraded_operators") >= 1
        spans = session.spans(category="degraded")
        assert all(span.name == "degraded:group-by" for _, span in spans)
        assert res.extras["degraded"] == 1.0
