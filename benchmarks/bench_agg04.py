"""agg04: aggregation across data types.

Regenerates the experiment table into ``bench_results/agg04.txt``.
Run: ``pytest benchmarks/bench_agg04.py --benchmark-only -s``
"""

from repro.bench.experiments import agg04

from _common import REPORT_SCALE, run_and_report


def test_agg04(benchmark):
    result = run_and_report(benchmark, agg04.run, REPORT_SCALE)
    assert result.findings["part_agg_wins_4b_keys"] == 1.0
