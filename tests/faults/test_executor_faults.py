"""Executor and top-level API under a FaultPlan.

Covers the typed conflict (``shards > 1`` + OOM pressure), the
fusion-disabled warning, ``degraded=`` surfacing in operator traces,
the fused-pipeline degradation path, and the ``fault_plan=`` round
trip through ``repro.join`` / ``repro.group_by``.
"""

import warnings

import numpy as np
import pytest

from repro import group_by, join
from repro.aggregation import AggSpec
from repro.errors import JoinConfigError, ShardedExecutionWarning
from repro.faults import FaultPlan, ResilientGroupByResult, ResilientJoinResult
from repro.gpusim import A100
from repro.query import Aggregate, Join, Scan, execute
from repro.workloads import JoinWorkloadSpec, generate_join_workload

DEVICE = A100.with_overrides(global_mem_bytes=1 << 20)
PRESSURE = FaultPlan(seed=2, capacity_frac=0.05)


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=4096, s_rows=8192, r_payload_columns=2,
                         s_payload_columns=2, seed=9)
    )


@pytest.fixture(scope="module")
def agg_plan(relations):
    r, s = relations
    return Aggregate(Join(Scan(r), Scan(s)), "r1", (AggSpec("s1", "sum"),))


class TestExecutorConflicts:
    def test_capacity_pressure_conflicts_with_shards(self, relations):
        r, s = relations
        with pytest.raises(JoinConfigError, match="capacity_frac"):
            execute(Join(Scan(r), Scan(s)), shards=2, fault_plan=PRESSURE)

    def test_without_capacity_resolves_the_conflict(self, relations):
        r, s = relations
        result = execute(Join(Scan(r), Scan(s)), shards=2, seed=0,
                         fault_plan=PRESSURE.without_capacity())
        assert result.output.num_rows == s.num_rows

    def test_sharding_warns_that_fusion_is_disabled(self, agg_plan):
        with pytest.warns(ShardedExecutionWarning, match="fusion"):
            execute(agg_plan, seed=0, shards=2)

    def test_single_device_does_not_warn(self, agg_plan):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShardedExecutionWarning)
            execute(agg_plan, seed=0)


class TestExecutorDegradation:
    def test_join_trace_reports_degraded(self, relations):
        r, s = relations
        res = execute(Join(Scan(r), Scan(s)), device=DEVICE, seed=0,
                      fault_plan=PRESSURE)
        trace = next(t for t in res.trace if t.description.startswith("Join["))
        assert trace.extras["degraded"] == 1.0
        assert trace.extras["degraded_chunks"] >= 2
        assert "OOC[" in trace.description

    def test_clean_plan_reports_not_degraded(self, relations):
        r, s = relations
        res = execute(Join(Scan(r), Scan(s)), device=DEVICE, seed=0,
                      fault_plan=FaultPlan(seed=2))
        trace = next(t for t in res.trace if t.description.startswith("Join["))
        assert trace.extras["degraded"] == 0.0

    def test_fused_pipeline_degrades_unfused(self, agg_plan, relations):
        r, s = relations
        oracle = execute(agg_plan, device=DEVICE, seed=0)
        assert any("Fused" in t.description for t in oracle.trace)
        res = execute(agg_plan, device=DEVICE, seed=0, fault_plan=PRESSURE)
        degraded = next(
            t for t in res.trace if "JoinAggregate[degraded" in t.description
        )
        assert degraded.extras["degraded"] == 1.0
        for column, array in oracle.output.items():
            np.testing.assert_array_equal(res.output[column], array)


class TestApiRoundTrip:
    def test_join_returns_resilient_result(self, relations):
        r, s = relations
        clean = join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0)
        res = join(r, s, algorithm="PHJ-OM", device=DEVICE, seed=0,
                   fault_plan=PRESSURE)
        assert isinstance(res, ResilientJoinResult)
        assert res.degraded
        assert res.output.equals_unordered(clean.output)

    def test_group_by_returns_resilient_result(self):
        keys = np.arange(4096, dtype=np.int64) % 256
        values = {"v": np.ones(4096, dtype=np.int64)}
        clean = group_by(keys, values, {"v": "sum"}, algorithm="HASH-AGG",
                         device=DEVICE, seed=0)
        res = group_by(keys, values, {"v": "sum"}, algorithm="HASH-AGG",
                       device=DEVICE, seed=0,
                       fault_plan=FaultPlan(seed=2, kernel_fault_rate=0.3))
        assert isinstance(res, ResilientGroupByResult)
        for column in clean.output:
            np.testing.assert_array_equal(res.output[column],
                                          clean.output[column])

    def test_sharded_api_warns_when_capacity_is_stripped(self, relations):
        r, s = relations
        with pytest.warns(ShardedExecutionWarning, match="capacity_frac"):
            join(r, s, algorithm="PHJ-OM", seed=0, shards=2,
                 fault_plan=PRESSURE)

    def test_sharded_api_without_capacity_does_not_warn(self, relations):
        r, s = relations
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShardedExecutionWarning)
            join(r, s, algorithm="PHJ-OM", seed=0, shards=2,
                 fault_plan=PRESSURE.without_capacity())
