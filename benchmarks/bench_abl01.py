"""abl01: lazy vs eager GFTR transform.

Regenerates the experiment table into ``bench_results/abl01.txt``.
Run: ``pytest benchmarks/bench_abl01.py --benchmark-only -s``
"""

from repro.bench.experiments import abl01

from _common import REPORT_SCALE, run_and_report


def test_abl01(benchmark):
    result = run_and_report(benchmark, abl01.run, REPORT_SCALE)
    assert result.findings["memory_saving"] > 1.5
