"""Gather microscope: Table 4's profiler counters, hands on.

Profiles the GATHER primitive under maps of decreasing locality — from
perfectly sequential to fully random — showing how "sectors per request"
(the Nsight Compute counter the paper builds its analysis on) drives the
simulated cost, and where the L2 changes the picture.

Run: ``python examples/gather_microscope.py``
"""

import numpy as np

from repro.gpusim import A100, GPUContext, scaled_device
from repro.primitives.gather import gather
from repro.primitives.sector_analysis import analyze_indices

SCALE = 2.0 ** -9
DEVICE = scaled_device(A100, SCALE)
N = 1 << 18

rng = np.random.default_rng(0)
src = rng.integers(0, 1 << 30, N).astype(np.int32)


def make_map(locality: str) -> np.ndarray:
    if locality == "sequential":
        return np.arange(N, dtype=np.int32)
    if locality == "sorted-sample":
        return np.sort(rng.integers(0, N, N)).astype(np.int32)
    if locality == "block-shuffled":
        # Partition-local permutation: random inside 4K-element blocks —
        # the access pattern of PHJ-OM's build-side gathers.
        blocks = np.arange(N, dtype=np.int32).reshape(-1, 4096)
        for block in blocks:
            rng.shuffle(block)
        return blocks.reshape(-1)
    if locality == "random":
        return rng.permutation(N).astype(np.int32)
    raise ValueError(locality)


print(f"GATHER of {N} 4-byte values on {DEVICE.describe()}\n")
header = (f"{'map':15s} {'sectors/req':>12s} {'cold MB':>9s} "
          f"{'warp span':>11s} {'sim time':>10s} {'slowdown':>9s}")
print(header)
print("-" * len(header))

baseline = None
for locality in ("sequential", "sorted-sample", "block-shuffled", "random"):
    index_map = make_map(locality)
    stats = analyze_indices(index_map, 4)
    ctx = GPUContext(device=DEVICE)
    gather(ctx, src, index_map, label=locality)
    seconds = ctx.elapsed_seconds
    if baseline is None:
        baseline = seconds
    print(
        f"{locality:15s} {stats.sectors_per_request:12.1f} "
        f"{stats.cold_sectors * 32 / 1e6:9.2f} "
        f"{stats.mean_warp_span_bytes:11.0f} "
        f"{seconds * 1e6:8.1f}us {seconds / baseline:8.1f}x"
    )

print(
    "\nReading the table:\n"
    "  * sectors/request is the warp-level coalescing factor Table 4\n"
    "    reports (4 = perfectly coalesced 4-byte loads, 32 = every lane\n"
    "    on its own sector);\n"
    "  * 'block-shuffled' is PHJ-OM's regime — random inside a\n"
    "    partition, so warp spans stay small and the L2 absorbs the\n"
    "    repeated touches;\n"
    "  * 'random' is the GFUR materialization regime: near-32\n"
    "    sectors/request with spans far beyond L2 — the ~8.5x gap that\n"
    "    motivates the whole GFTR design."
)

# The same counters through the Nsight-style profiler (Table 4 layout):
print("\nProfiler view (Table 4 layout) for the random map:")
ctx = GPUContext(device=DEVICE)
gather(ctx, src, make_map("random"), label="random")
for name, value in ctx.profiler.counters(name_filter="gather").as_table_rows():
    print(f"  {name:36s} {value}")
