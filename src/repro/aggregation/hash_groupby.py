"""Hash-based grouped aggregation over a global-memory table.

The direct strategy: every row hashes its key into one global hash
table and atomically folds its value into the group's accumulator.
Performance characteristics (all emergent from the traffic model):

* **few groups** — the table fits in L2 (or even shared memory); random
  updates are cache-resident and cheap, but atomic *contention* rises as
  many rows fight over few accumulators;
* **many groups** — the table spills past L2 and every update is a
  latency-bound random DRAM access, the group-by analogue of the
  unclustered GATHER.

Value columns are folded one at a time through the same slot map, so
adding aggregates multiplies the random traffic (the motivation for the
partitioned strategy's GFTR-style handling of wide aggregations).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from ..primitives.grouping import group_identify
from ..primitives.hash_table import table_capacity
from ..primitives.hashing import hash_to_slots
from ..primitives.sector_analysis import analyze_indices
from .base import AGGREGATE, MATERIALIZE, AggSpec, GroupByAlgorithm, segmented_aggregate

#: Accumulator slot width: key + one 8-byte accumulator.
SLOT_BYTES = 16


def atomic_contention(inverse: np.ndarray, num_groups: int) -> float:
    """Conflict factor of atomic folds.

    Two sources of serialization on a global accumulator table:

    * *density* — with few groups overall, a warp's 32 lanes collide on
      few slots (grows with the log of rows per group);
    * *skew* — a hot group serializes the fraction of every warp that
      lands on its accumulator (grows with the hottest group's share).
    """
    if num_groups == 0 or inverse.size == 0:
        return 1.0
    rows_per_group = inverse.size / num_groups
    density = max(0.0, np.log2(max(rows_per_group, 1.0)) - 5.0) * 0.25
    counts = np.bincount(inverse, minlength=num_groups)
    hot_share = float(counts.max()) / inverse.size
    skew = hot_share * 32 * 0.25
    return 1.0 + density + skew


#: Rows a thread block processes before merging its private table.
ROWS_PER_BLOCK = 4096


class HashGroupBy(GroupByAlgorithm):
    """Global-hash-table aggregation (scatter/atomic pattern).

    When the accumulator table fits in shared memory, each thread block
    aggregates into a *private* copy and the copies are merged at the
    end — atomics stay on-chip and contention all but disappears (the
    standard small-cardinality optimization).  Larger tables fall back
    to one global table updated with global atomics.
    """

    name = "HASH-AGG"
    pattern = "gfur"

    def _execute(
        self,
        ctx: GPUContext,
        keys: np.ndarray,
        values: Dict[str, np.ndarray],
        aggregates: List[AggSpec],
    ) -> "OrderedDict[str, np.ndarray]":
        group_keys, inverse = group_identify(keys)
        num_groups = int(group_keys.size)
        capacity = table_capacity(num_groups, self.config.table_load_factor)
        table_bytes = capacity * SLOT_BYTES
        privatized = table_bytes <= ctx.device.shared_mem_bytes
        num_blocks = max(1, keys.size // ROWS_PER_BLOCK)

        with ctx.phase(AGGREGATE):
            # Accounting-only scratch: the table's contents are never read
            # host-side, so skip zero-initialization.
            table = ctx.mem.alloc(table_bytes, np.uint8, "agg_table", zeroed=False)
            passes = [("hash_agg_keys", int(keys.nbytes))]
            passes += [
                (
                    f"hash_agg_fold:{spec.output_name}",
                    int(values[spec.column].nbytes) if spec.op != "count" else 0,
                )
                for spec in aggregates
            ]
            if privatized:
                # Shared-memory private tables: sequential streams plus a
                # final merge of one private table per block.
                merge_bytes = num_blocks * table_bytes
                for name, col_bytes in passes:
                    ctx.submit(
                        KernelStats(
                            name=name,
                            items=int(keys.size),
                            seq_read_bytes=col_bytes,
                            seq_write_bytes=merge_bytes // max(1, len(passes)),
                            atomic_ops=num_blocks * capacity,
                        ),
                        phase=AGGREGATE,
                    )
            else:
                slots = hash_to_slots(keys, capacity)
                slot_stats = analyze_indices(slots, SLOT_BYTES)
                conflict = atomic_contention(inverse, num_groups)
                ctx.count("hash_table_probe_slots", int(slots.size))
                for name, col_bytes in passes:
                    ctx.submit(
                        KernelStats(
                            name=name,
                            items=int(keys.size),
                            seq_read_bytes=col_bytes,
                            random_requests=slot_stats.requests,
                            random_sector_touches=slot_stats.sector_touches,
                            random_cold_sectors=slot_stats.cold_sectors,
                            locality_footprint_bytes=slot_stats.mean_warp_span_bytes,
                            atomic_ops=int(keys.size),
                            atomic_conflict_factor=conflict,
                        ),
                        phase=AGGREGATE,
                    )

        output: "OrderedDict[str, np.ndarray]" = OrderedDict()
        output["group_key"] = group_keys
        with ctx.phase(MATERIALIZE):
            for spec in aggregates:
                data = values.get(spec.column) if spec.op != "count" else None
                output[spec.output_name] = segmented_aggregate(
                    inverse, num_groups, data, spec.op
                )
            # Compact the table into the dense output columns.
            out_bytes = sum(int(a.nbytes) for a in output.values())
            ctx.submit(
                KernelStats(
                    name="compact_groups",
                    items=num_groups,
                    seq_read_bytes=capacity * SLOT_BYTES,
                    seq_write_bytes=out_bytes,
                ),
                phase=MATERIALIZE,
            )
            ctx.mem.free(table)
        return output
