"""Bench harness: scaled setups, result rendering, persistence."""

import os

import pytest

from repro.bench.harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    median,
    phase_columns,
    run_algorithm,
    throughput_mtuples,
)
from repro.bench.reporting import OUTPUT_DIR_ENV, results_dir, save_result
from repro.workloads import JoinWorkloadSpec, generate_join_workload


class TestSetup:
    def test_scaled_geometry(self):
        setup = make_setup(2 ** -8)
        assert setup.device.l2_bytes < 1 << 20
        assert setup.config.tuples_per_partition == max(32, 4096 // 256)

    def test_rows_scaling(self):
        setup = make_setup(2 ** -8)
        assert setup.rows(1 << 27) == 1 << 19
        assert setup.rows(1) == 64  # floor

    def test_config_overrides(self):
        setup = make_setup(2 ** -8, config_overrides={"double_merge_pass": True})
        assert setup.config.double_merge_pass

    def test_run_algorithm_routes_cpu_device(self):
        setup = make_setup(2 ** -12)
        r, s = generate_join_workload(
            JoinWorkloadSpec(r_rows=500, s_rows=900, seed=0)
        )
        gpu = run_algorithm("PHJ-OM", r, s, setup)
        cpu = run_algorithm("CPU", r, s, setup)
        assert gpu.device.name.startswith("A100")
        assert cpu.device.name.startswith("CPU")

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0]) == 2.5


class TestExperimentResult:
    def test_render_contains_rows_and_findings(self):
        result = ExperimentResult(
            experiment_id="figXX", title="demo", headers=["a", "b"]
        )
        result.add_row("x", 1.2345)
        result.findings["speedup"] = 2.0
        result.add_note("hello")
        text = result.render()
        assert "figXX" in text
        assert "1.234" in text
        assert "speedup" in text
        assert "note: hello" in text

    def test_cell_formatting(self):
        result = ExperimentResult("e", "t", ["v"])
        result.add_row(1234567.0)
        result.add_row(0.000012)
        text = result.render()
        assert "e+06" in text
        assert "e-05" in text

    def test_phase_columns_and_throughput(self):
        setup = make_setup(2 ** -12)
        r, s = generate_join_workload(
            JoinWorkloadSpec(r_rows=500, s_rows=900, r_payload_columns=2,
                             s_payload_columns=2, seed=0)
        )
        res = run_algorithm("PHJ-OM", r, s, setup)
        t, m, z = phase_columns(res)
        assert t > 0 and m > 0 and z > 0
        assert throughput_mtuples(res) == pytest.approx(
            res.throughput_tuples_per_s / 1e6
        )


class TestPersistence:
    def test_save_result_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv(OUTPUT_DIR_ENV, str(tmp_path))
        result = ExperimentResult("figtest", "t", ["a"])
        result.add_row(1)
        path = save_result(result)
        assert path.exists()
        assert "figtest" in path.read_text()

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(OUTPUT_DIR_ENV, str(tmp_path / "deep"))
        assert results_dir() == tmp_path / "deep"
        assert (tmp_path / "deep").exists()
