"""A 1-device cluster must reproduce the single-GPUContext run exactly.

Not approximately: the degenerate sharded path wraps the unchanged
algorithm in one compute step with no shuffles, so simulated times are
required to be bit-identical floats and outputs bit-identical arrays.
"""

import numpy as np
import pytest

from repro.aggregation import AggSpec
from repro.aggregation.planner import make_groupby_algorithm
from repro.cluster import ClusterContext, sharded_group_by, sharded_join
from repro.gpusim import GPUContext, KernelStats
from repro.joins.planner import make_algorithm
from repro.workloads import (
    GroupByWorkloadSpec,
    JoinWorkloadSpec,
    generate_groupby_workload,
    generate_join_workload,
)


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=1024, s_rows=3072, r_payload_columns=2,
                         s_payload_columns=2, seed=11)
    )


@pytest.fixture(scope="module")
def groupby_data():
    return generate_groupby_workload(
        GroupByWorkloadSpec(rows=4096, groups=128, value_columns=2, seed=12)
    )


def test_bare_context_timeline_matches(setup):
    """Same kernels on a 1-device cluster and a bare context: same clock."""
    stats = [
        KernelStats(name="a", items=1000, seq_read_bytes=1 << 20),
        KernelStats(name="b", items=500, random_requests=500,
                    random_sector_touches=700, random_cold_sectors=700),
    ]
    single = GPUContext(device=setup.device, seed=3)
    for s in stats:
        single.submit(s)

    cluster = ClusterContext(device=setup.device, num_devices=1, seed=3)
    with cluster.compute_step("same-work") as step:
        for s in stats:
            step.contexts[0].submit(s)
    assert cluster.total_seconds == single.elapsed_seconds


@pytest.mark.parametrize("name", ["PHJ-OM", "SMJ-OM", "NPJ"])
def test_join_time_and_output_identical(relations, setup, name):
    r, s = relations
    single = make_algorithm(name, setup.config).join(
        r, s, device=setup.device, seed=5
    )
    clustered = sharded_join(
        r, s, algorithm=name, num_devices=1, device=setup.device,
        config=setup.config, seed=5,
    )
    assert clustered.total_seconds == single.total_seconds  # bit-identical
    assert clustered.shuffle_seconds == 0.0
    assert clustered.matches == single.matches
    for column in single.output.column_names:
        assert np.array_equal(
            clustered.output.column(column), single.output.column(column)
        )


@pytest.mark.parametrize("name", ["HASH-AGG", "SORT-AGG"])
def test_groupby_time_and_output_identical(groupby_data, setup, name):
    keys, values = groupby_data
    aggregates = [AggSpec("v1", "sum"), AggSpec("v2", "mean")]
    single = make_groupby_algorithm(name).group_by(
        keys, values, aggregates, device=setup.device, seed=5
    )
    clustered = sharded_group_by(
        keys, values, aggregates, algorithm=name, num_devices=1,
        device=setup.device, seed=5,
    )
    assert clustered.total_seconds == single.total_seconds  # bit-identical
    assert clustered.groups == single.groups
    assert sorted(clustered.output) == sorted(single.output)
    for column, array in single.output.items():
        assert np.array_equal(clustered.output[column], array)


def test_one_device_cluster_has_no_shuffle_steps(relations, setup):
    r, s = relations
    clustered = sharded_join(
        r, s, algorithm="PHJ-OM", num_devices=1, device=setup.device,
        config=setup.config, seed=5,
    )
    assert [step.kind for step in clustered.cluster.steps] == ["compute"]
    assert clustered.cluster.link_bytes().sum() == 0
