"""Perf-regression floors for the host-side hot path.

Each test measures the warm, best-of-N throughput of one hot-path
operation — no profiler, following the measurement discipline that the
simulated-kernel charges are *not* what these guard (those are pinned
bit-identically elsewhere): this is about the *host* wall-clock that
dominates native-scale (2^27) bench runs.

Floors live in ``baselines.json`` at half the reference-box throughput
(2x slack).  The ``perf`` marker lets slow or noisy environments skip
the whole module with ``-m "not perf"``; ``REPRO_PERF_SLACK=<k>``
divides every floor by ``k`` for known-slow runners.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gpusim import GPUContext, KernelStats
from repro.primitives.grouping import group_identify
from repro.primitives.sector_analysis import analyze_indices, set_sector_mode

pytestmark = pytest.mark.perf

_BASELINES = json.loads(
    (Path(__file__).parent / "baselines.json").read_text()
)
_SLACK = float(os.environ.get("REPRO_PERF_SLACK", "1") or "1")


def floor(name: str) -> float:
    return _BASELINES[name] / _SLACK


def best_seconds(fn, reps: int = 3) -> float:
    """Warm best-of-N wall-clock of ``fn()`` (one untimed warmup call)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_submit_throughput():
    """Batched kernel submission sustains the committed submits/s floor."""
    ctx = GPUContext()
    batch = [
        KernelStats(name="k", items=1024, seq_read_bytes=4096)
        for _ in range(5000)
    ]
    seconds = best_seconds(lambda: ctx.submit_many(batch, phase="match"))
    throughput = len(batch) / seconds
    assert throughput >= floor("kernel_submit_per_s"), (
        f"kernel submission at {throughput:.0f}/s, "
        f"floor {floor('kernel_submit_per_s'):.0f}/s"
    )


def test_group_identify_throughput():
    """Sort-based group identification sustains the keys/s floor."""
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 1 << 22, 1 << 20).astype(np.int32)
    seconds = best_seconds(lambda: group_identify(keys))
    throughput = keys.size / seconds
    assert throughput >= floor("group_identify_keys_per_s"), (
        f"group_identify at {throughput:.0f} keys/s, "
        f"floor {floor('group_identify_keys_per_s'):.0f}"
    )


def test_sector_count_throughput():
    """Sampled sector accounting sustains the indices/s floor."""
    rng = np.random.default_rng(3)
    indices = rng.permutation(1 << 21).astype(np.int64)
    previous = set_sector_mode("sampled")
    try:
        seconds = best_seconds(lambda: analyze_indices(indices, 4))
    finally:
        set_sector_mode(previous)
    throughput = indices.size / seconds
    assert throughput >= floor("sector_count_indices_per_s"), (
        f"sector analysis at {throughput:.0f} indices/s, "
        f"floor {floor('sector_count_indices_per_s'):.0f}"
    )
