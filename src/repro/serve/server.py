"""The multi-tenant query server: admission, caching, stream scheduling.

:class:`QueryServer` turns the one-query-at-a-time executor into a
simulated serving system.  The design keeps the repo's central
invariant — **scheduling never touches data** — by splitting every
query into two halves:

* **correctness** runs through the unchanged
  :class:`~repro.query.executor.QueryExecutor` at admission time, under
  a private :class:`~repro.obs.session.TraceSession` that captures each
  kernel's *solo* duration.  The output is therefore bit-identical to a
  direct ``execute()`` of the same plan, for every path: cached,
  uncached, sharded, fault-degraded.
* **timing** replays those kernel durations on the shared
  :class:`~repro.serve.streams.StreamScheduler`, where concurrent
  queries contend for bandwidth and individual kernels stretch.

Admission control reserves each query's estimated device footprint
against a :class:`~repro.gpusim.memory.DeviceMemory` before it may
start (bytes-only reservations — same OOM arithmetic as real
allocations, no backing arrays), holds a bounded priority queue in
front of the streams, and rejects with a typed
:class:`~repro.errors.AdmissionError` when the queue overflows, a query
cannot ever fit, or the server is closed.

Queries over *registered* relations flow through two caches (see
:mod:`repro.serve.cache`): hits on the plan cache skip planner work by
pinning resolved algorithms; hits on the result cache skip execution
entirely and cost one cache-lookup work item on the device.  Updating a
registered relation invalidates every dependent entry, so a stale read
is impossible by construction.  Fault-injected queries bypass both
caches (degraded recovery may permute row order) but still complete —
faults degrade the one query, never the server.

The reliability layer on top (this PR's subject):

* **Deadlines** — a per-query simulated deadline propagates as a
  :class:`~repro.cancel.CancellationToken` through the correctness half
  (checked at kernel/superstep/operator boundaries) and as a
  stream-scheduler deadline through the timing half.  Expiry anywhere
  produces a typed ``"cancelled"`` outcome and frees every reservation.
* **Tenant quotas** — :class:`~repro.serve.quota.TenantQuota` caps one
  tenant's concurrency, reserved bytes and queue depth; capped tenants
  are skipped at admission, not allowed to block others.
* **Retry budget** — :class:`~repro.serve.quota.RetryBudget` bounds the
  simulated time spent recovering injected faults server-wide.
* **Brownout** — a hysteretic
  :class:`~repro.serve.brownout.BrownoutController` degrades service
  under pressure (fusion off, cache population suspended) and sheds
  low-priority queued work at the highest level.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cancel import CancellationToken
from ..errors import (
    AdmissionError,
    DeviceOutOfMemoryError,
    GracefulDegradationError,
    QueryCancelledError,
    ReproError,
    ServeConfigError,
)
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.memory import DeviceMemory, MemoryReservation
from ..joins.base import JoinConfig
from ..obs.metrics import MetricsRegistry
from ..obs.session import TraceSession
from ..query.executor import QueryExecutor
from ..query.plan import Join, PlanNode, QueryResult, Scan, validate_plan
from ..relational.relation import Relation
from .brownout import LEVEL_NAMES, BrownoutController, BrownoutPolicy
from .cache import (
    PinnedPlan,
    PlanCache,
    ResultCache,
    output_nbytes,
    pin_plan,
    plan_relations,
    plan_signature,
)
from .quota import RetryBudget, TenantQuota, TenantState
from .streams import QueryCompletion, StreamScheduler, WorkItem

#: Fallback simulated seconds for one result-cache hit when the device
#: declares no launch overhead (a lookup plus a pointer hand-off).
FALLBACK_CACHE_HIT_COST_S = 5e-6

#: Device-bytes reserved per byte of scanned input: inputs resident plus
#: roughly 2x working state (partitions/tables/output), the high-water
#: shape of the paper's operators.
DEFAULT_MEM_OVERHEAD = 3.0


@dataclass
class QueryRequest:
    """One submitted query, waiting for or undergoing service."""

    query_id: int
    plan: PlanNode
    arrival_s: float
    priority: int = 0
    optimize: bool = True
    fault_plan: Optional[object] = None
    tag: str = ""
    #: Absolute simulated deadline (serving clock), or None.
    deadline_s: Optional[float] = None
    tenant: str = "default"


@dataclass
class QueryOutcome:
    """The server's record of one finished (or rejected) query.

    ``status`` is one of:

    * ``"completed"`` — output is bit-identical to a direct
      ``execute()`` (``deadline_missed`` may still be set if it
      finished late);
    * ``"rejected"`` — turned away at admission; ``error`` is a typed
      :class:`~repro.errors.AdmissionError`;
    * ``"cancelled"`` — cooperatively cancelled (deadline while queued,
      executing, or replaying on a stream); ``error`` is a typed
      :class:`~repro.errors.QueryCancelledError`;
    * ``"failed"`` — a typed runtime failure (e.g. every degradation
      level of a fault-recovery ladder exceeded memory); the server
      survives, the query carries the error.
    """

    query_id: int
    tag: str
    status: str  #: "completed" | "rejected" | "cancelled" | "failed"
    arrival_s: float
    output: object = None
    result: Optional[QueryResult] = None
    admitted_s: float = 0.0
    finish_s: float = 0.0
    stream: int = -1
    solo_seconds: float = 0.0
    reserved_bytes: int = 0
    plan_cache_hit: bool = False
    result_cache_hit: bool = False
    subresult_hits: int = 0
    degraded: bool = False
    error: Optional[ReproError] = None
    tenant: str = "default"
    deadline_s: Optional[float] = None
    #: Completed, but past its deadline (contention stretched it).
    deadline_missed: bool = False
    #: Served while the brownout controller was degraded (fusion off,
    #: cache population suspended); the output is still bit-identical.
    brownout_degraded: bool = False

    @property
    def queue_wait_s(self) -> float:
        return self.admitted_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.admitted_s

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def stretch(self) -> float:
        """Service time over solo time (1.0 = ran as if alone)."""
        if self.solo_seconds <= 0:
            return 1.0
        return self.service_s / self.solo_seconds


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _bit_identical(a, b) -> bool:
    """Exact (ordered, byte-for-byte) equality of two query outputs."""
    if isinstance(a, Relation) and isinstance(b, Relation):
        cols_a, cols_b = a.columns(), b.columns()
        if list(cols_a) != list(cols_b):
            return False
        return all(np.array_equal(cols_a[n], cols_b[n]) for n in cols_a)
    if isinstance(a, dict) and isinstance(b, dict):
        if list(a) != list(b):
            return False
        return all(
            np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
        )
    return type(a) is type(b) and bool(a == b)


@dataclass
class ServeReport:
    """Aggregate serving statistics over one server run."""

    submitted: int
    completed: int
    rejected: int
    cancelled: int
    failed: int
    makespan_s: float
    throughput_qps: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    mean_queue_wait_s: float
    mean_stretch: float
    peak_concurrency: int
    solo_seconds_total: float
    counters: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"queries: {self.submitted} submitted, {self.completed} "
            f"completed, {self.rejected} rejected, "
            f"{self.cancelled} cancelled, {self.failed} failed",
            f"makespan: {self.makespan_s * 1e3:.3f} ms simulated "
            f"(serial solo time {self.solo_seconds_total * 1e3:.3f} ms)",
            f"throughput: {self.throughput_qps:.1f} queries/s simulated",
            f"latency: p50 {self.latency_p50_s * 1e3:.3f} ms, "
            f"p95 {self.latency_p95_s * 1e3:.3f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.3f} ms",
            f"queueing: mean wait {self.mean_queue_wait_s * 1e3:.3f} ms, "
            f"mean stretch {self.mean_stretch:.3f}, "
            f"peak concurrency {self.peak_concurrency}",
        ]
        for name in sorted(self.counters):
            lines.append(f"counter: {name} = {self.counters[name]:g}")
        return "\n".join(lines)


@dataclass
class _InFlight:
    """Book-keeping for one admitted query in service."""

    request: QueryRequest
    result: QueryResult
    reservation: MemoryReservation
    admitted_s: float
    solo_seconds: float
    plan_cache_hit: bool
    result_cache_hit: bool
    subresult_hits: int
    degraded: bool
    #: Typed error from the correctness half (cancellation or runtime
    #: failure); the partial kernels still occupy a stream while they
    #: drain, and the outcome carries this error.
    error: Optional[ReproError] = None
    #: Simulated seconds this query spent in fault-retry recovery
    #: (spent against the server's RetryBudget).
    retry_seconds: float = 0.0
    brownout_degraded: bool = False


class QueryServer:
    """A simulated multi-tenant serving layer over the query executor.

    Parameters mirror :class:`~repro.query.executor.QueryExecutor`
    (``device``/``config``/``seed``/``shards``/``interconnect`` pass
    straight through) plus the serving knobs:

    streams:
        Logical concurrent streams (the closed-loop concurrency cap).
    interference:
        Bandwidth contention fraction of the occupancy model; see
        :class:`~repro.serve.streams.StreamScheduler`.
    queue_depth:
        Admission-queue bound; arrivals beyond it are rejected with
        ``AdmissionError(reason="queue-full")`` (backpressure).
    mem_overhead:
        Reserved device bytes per scanned input byte.
    session:
        Optional :class:`~repro.obs.session.TraceSession`: the server
        mirrors its counters into it and opens one ``serve`` span per
        finished query (args carry the serving-clock interval).
    tenants:
        Optional ``{tenant: TenantQuota}`` map; tenants not in the map
        (including the implicit ``"default"``) are unlimited.  Quotas
        can also be set later via :meth:`set_quota`.
    retry_budget:
        Server-wide :class:`~repro.serve.quota.RetryBudget` for
        fault-retry recovery time (a float is shorthand for
        ``RetryBudget(initial_s=value)``).  ``None`` disables the cap.
    brownout:
        Overload response: ``True`` for a default
        :class:`~repro.serve.brownout.BrownoutController`, a
        :class:`~repro.serve.brownout.BrownoutPolicy` or controller for
        custom thresholds, ``None`` (default) to disable.
    default_deadline_s:
        Relative deadline (simulated seconds after arrival) applied to
        submissions that do not pass their own; ``None`` means no
        implicit deadline.
    verify_cache_inserts:
        Debug oracle: before populating the result cache, re-execute
        the plan on a clean executor and assert the output is
        bit-identical (the cache-poisoning guard).  Defaults to the
        ``REPRO_SERVE_VERIFY_CACHE`` environment variable.  With
        tiering, the reference executor runs on a cold fork of the
        runtime — the placement-independence oracle.
    tiering:
        ``True`` attaches a :class:`~repro.tier.TieredRuntime` sharing
        this server's device memory (segments compete with admission
        reservations); a pre-built runtime is used as-is.  Submissions
        feed the placement policy's popularity stats, admission demotes
        cache segments before blocking on memory, and brownout
        escalation demotes the cache before shedding queued work.

    >>> import numpy as np
    >>> from repro.query.plan import Scan, Join
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_key_payloads(
    ...     np.arange(64, dtype=np.int32),
    ...     [np.arange(64, dtype=np.int32)], payload_prefix="r")
    >>> s = Relation.from_key_payloads(
    ...     np.arange(64, dtype=np.int32).repeat(2),
    ...     [np.arange(128, dtype=np.int32)], payload_prefix="s")
    >>> server = QueryServer(streams=2, seed=0)
    >>> _ = server.register("r", r); _ = server.register("s", s)
    >>> plan = Join(Scan(r), Scan(s), algorithm="PHJ-OM")
    >>> first = server.query(plan)
    >>> second = server.query(plan)       # served from the result cache
    >>> second.result_cache_hit and first.output.equals_unordered(second.output)
    True
    """

    def __init__(
        self,
        streams: int = 4,
        interference: float = 0.6,
        device: DeviceSpec = A100,
        config: Optional[JoinConfig] = None,
        seed: Optional[int] = None,
        shards: int = 1,
        interconnect="nvlink-mesh",
        queue_depth: int = 64,
        mem_overhead: float = DEFAULT_MEM_OVERHEAD,
        plan_cache_entries: int = 256,
        result_cache_bytes: int = 64 << 20,
        enable_plan_cache: bool = True,
        enable_result_cache: bool = True,
        cache_hit_cost_s: Optional[float] = None,
        session: Optional[TraceSession] = None,
        tenants: Optional[Dict[str, TenantQuota]] = None,
        retry_budget=None,
        brownout=None,
        default_deadline_s: Optional[float] = None,
        verify_cache_inserts: Optional[bool] = None,
        tiering=None,
    ):
        if queue_depth < 0:
            raise ServeConfigError(f"queue_depth must be >= 0, got {queue_depth}")
        if tiering is not None and tiering is not False and shards > 1:
            raise ServeConfigError(
                f"tiering is incompatible with shards > 1 (got shards={shards})"
            )
        if mem_overhead < 1.0:
            raise ServeConfigError(
                f"mem_overhead must be >= 1 (inputs are resident), "
                f"got {mem_overhead}"
            )
        self.device = device
        self.config = config
        self.seed = seed
        self.shards = shards
        self.interconnect = interconnect
        self.queue_depth = queue_depth
        self.mem_overhead = mem_overhead
        # A hit costs one kernel launch on this device (so it scales with
        # scaled-down device geometry like everything else).
        self.cache_hit_cost_s = (
            cache_hit_cost_s
            if cache_hit_cost_s is not None
            else (device.kernel_launch_overhead_s or FALLBACK_CACHE_HIT_COST_S)
        )
        self.scheduler = StreamScheduler(streams, interference=interference)
        self.memory = DeviceMemory(capacity_bytes=device.global_mem_bytes)
        # ``tiering=True`` builds a TieredRuntime over the server's own
        # DeviceMemory, so segment residency competes with admission
        # reservations for the same simulated bytes; a pre-built
        # TieredRuntime is used as-is (it may own a private memory).
        if tiering is True:
            from ..tier import TieredRuntime

            tiering = TieredRuntime(device=device, memory=self.memory)
        self.tiering = tiering or None
        self.plan_cache = PlanCache(max_entries=plan_cache_entries)
        self.result_cache = ResultCache(max_bytes=result_cache_bytes)
        self.enable_plan_cache = enable_plan_cache
        self.enable_result_cache = enable_result_cache
        self.metrics = MetricsRegistry()
        self.session = session
        self.quotas: Dict[str, TenantQuota] = dict(tenants or {})
        self.tenants: Dict[str, TenantState] = {}
        if isinstance(retry_budget, (int, float)):
            retry_budget = RetryBudget(initial_s=float(retry_budget))
        self.retry_budget: Optional[RetryBudget] = retry_budget
        if brownout is True:
            brownout = BrownoutController()
        elif isinstance(brownout, BrownoutPolicy):
            brownout = BrownoutController(brownout)
        self.brownout: Optional[BrownoutController] = brownout or None
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ServeConfigError(
                f"default_deadline_s must be positive, got {default_deadline_s}"
            )
        self.default_deadline_s = default_deadline_s
        if verify_cache_inserts is None:
            verify_cache_inserts = bool(
                os.environ.get("REPRO_SERVE_VERIFY_CACHE", "")
            )
        self.verify_cache_inserts = verify_cache_inserts
        self.outcomes: List[QueryOutcome] = []
        self._catalog: Dict[str, Relation] = {}
        self._names_by_id: Dict[int, str] = {}
        #: id(relation) -> (relation, fingerprint); the strong reference
        #: keeps ids from being recycled under the memo.
        self._fp_memo: Dict[int, Tuple[Relation, str]] = {}
        self._arrivals: List[Tuple[float, int, QueryRequest]] = []
        self._queue: List[Tuple[int, float, int, QueryRequest]] = []
        self._inflight: Dict[int, _InFlight] = {}
        self._next_id = 0
        self._closed = False

    # -- the catalog -------------------------------------------------------

    def register(self, name: str, relation: Relation) -> Relation:
        """Register *relation* under *name* for cache dependency tracking.

        Queries may scan unregistered relations too — caching still works
        (keys are content fingerprints) but only registered relations can
        be :meth:`update`-d, and only updates trigger invalidation.
        """
        if name in self._catalog:
            raise ServeConfigError(
                f"relation {name!r} already registered; use update()"
            )
        self._catalog[name] = relation
        self._names_by_id[id(relation)] = name
        self._fingerprint(relation)
        if self.tiering is not None:
            # Segment eagerly under the catalog name so tier counters,
            # popularity and placement spans read in catalog terms.
            self.tiering.register(relation, name=name)
        return relation

    def update(self, name: str, relation: Relation) -> int:
        """Replace a registered relation, evicting every dependent cache
        entry; returns the number of entries invalidated."""
        if name not in self._catalog:
            raise ServeConfigError(f"relation {name!r} is not registered")
        old = self._catalog[name]
        self._names_by_id.pop(id(old), None)
        # Drop the fingerprint memo too: it holds a strong reference to
        # the replaced relation, which would pin every superseded
        # version in host memory across a long update-heavy run.
        self._fp_memo.pop(id(old), None)
        self._catalog[name] = relation
        self._names_by_id[id(relation)] = name
        self._fingerprint(relation)
        invalidated = self.plan_cache.invalidate(name)
        invalidated += self.result_cache.invalidate(name)
        if self.tiering is not None:
            # Resident segments of the replaced relation are stale copies;
            # evict them and drop the old version's placement history.
            freed = self.tiering.invalidate_relation(old)
            if freed:
                self._count("serve.tier_invalidated_bytes", freed)
            self.tiering.register(relation, name=name)
        self._count("serve.invalidated_entries", invalidated)
        return invalidated

    def relation(self, name: str) -> Relation:
        if name not in self._catalog:
            raise ServeConfigError(f"relation {name!r} is not registered")
        return self._catalog[name]

    def _fingerprint(self, relation: Relation) -> str:
        from .cache import relation_fingerprint

        memo = self._fp_memo.get(id(relation))
        if memo is not None:
            return memo[1]
        fingerprint = relation_fingerprint(relation)
        self._fp_memo[id(relation)] = (relation, fingerprint)
        return fingerprint

    # -- tenants -----------------------------------------------------------

    def set_quota(self, tenant: str, quota: Optional[TenantQuota]) -> None:
        """Install (or clear, with ``None``) a quota for *tenant*."""
        if quota is None:
            self.quotas.pop(tenant, None)
        else:
            self.quotas[tenant] = quota

    def _tenant_state(self, tenant: str) -> TenantState:
        state = self.tenants.get(tenant)
        if state is None:
            state = self.tenants[tenant] = TenantState()
        return state

    def _tenant_capped(self, request: QueryRequest, estimate: int) -> bool:
        """True when admitting *request* now would exceed its tenant's quota."""
        quota = self.quotas.get(request.tenant)
        if quota is None:
            return False
        state = self._tenant_state(request.tenant)
        if (
            quota.max_concurrent is not None
            and state.inflight >= quota.max_concurrent
        ):
            return True
        if (
            quota.max_reserved_bytes is not None
            and state.reserved_bytes + estimate > quota.max_reserved_bytes
        ):
            return True
        return False

    def _plan_deps(self, plan: PlanNode) -> List[str]:
        """Registered names the plan reads (for invalidation tracking)."""
        names = []
        for relation in plan_relations(plan):
            name = self._names_by_id.get(id(relation))
            if name is not None and name not in names:
                names.append(name)
        return names

    # -- metrics -----------------------------------------------------------

    def _count(self, name: str, value: float = 1.0) -> None:
        self.metrics.increment(name, value)
        if self.session is not None:
            self.session.count(name, value)

    def _gauge(self, name: str, value: float) -> None:
        self.metrics.record_max(name, value)
        if self.session is not None:
            self.session.metrics.record_max(name, value)

    # -- submission --------------------------------------------------------

    @property
    def clock_s(self) -> float:
        """The serving clock (simulated seconds)."""
        return self.scheduler.clock_s

    def estimate_bytes(self, plan: PlanNode) -> int:
        """Admission-control footprint estimate for *plan*."""
        scanned = sum(rel.total_bytes for rel in plan_relations(plan))
        return int(scanned * self.mem_overhead)

    def submit(
        self,
        plan: PlanNode,
        at_s: Optional[float] = None,
        priority: int = 0,
        optimize: bool = True,
        fault_plan=None,
        tag: str = "",
        deadline_s: Optional[float] = None,
        tenant: str = "default",
    ) -> int:
        """Enqueue a query arriving at ``at_s`` (default: now).

        ``deadline_s`` is *relative*: the query's absolute deadline is
        ``arrival + deadline_s`` on the serving clock (falling back to
        the server's ``default_deadline_s``).  Expiry while queued,
        executing, or replaying on a stream yields a typed
        ``"cancelled"`` outcome.  ``tenant`` attributes the query for
        quota accounting.

        Raises :class:`~repro.errors.AdmissionError` immediately for
        queries that can never run (``reason="oversized"``: the footprint
        estimate exceeds device capacity even on an idle server) or when
        the server is :meth:`close`-d (``reason="closed"``).  Queue
        overflow, quota and budget decisions happen at arrival time and
        surface as rejected :class:`QueryOutcome`\\ s carrying the error.
        """
        if self._closed:
            raise AdmissionError("server is closed", reason="closed")
        validate_plan(plan)
        arrival = self.clock_s if at_s is None else float(at_s)
        if arrival < self.clock_s:
            raise ServeConfigError(
                f"arrival {arrival} precedes the serving clock {self.clock_s}"
            )
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        if deadline_s is not None and deadline_s <= 0:
            raise ServeConfigError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        estimate = self.estimate_bytes(plan)
        capacity = self.memory.capacity_bytes
        if capacity is not None and estimate > capacity:
            self._count("serve.rejected_oversized")
            raise AdmissionError(
                f"query needs ~{estimate} reserved bytes; device capacity "
                f"is {capacity}",
                reason="oversized",
            )
        request = QueryRequest(
            query_id=self._next_id,
            plan=plan,
            arrival_s=arrival,
            priority=priority,
            optimize=optimize,
            fault_plan=fault_plan,
            tag=tag,
            deadline_s=None if deadline_s is None else arrival + deadline_s,
            tenant=tenant,
        )
        self._next_id += 1
        self._tenant_state(tenant).submitted += 1
        heapq.heappush(self._arrivals, (arrival, request.query_id, request))
        self._count("serve.submitted")
        if self.tiering is not None:
            # Popularity feed: the placement policy sees the workload's
            # template mix (the driver's Zipf skew) at submission time,
            # before any of the query's segments are accessed.
            self.tiering.note_plan(plan)
        return request.query_id

    def close(self, cancel_queued: bool = False) -> None:
        """Stop accepting submissions.

        By default already-submitted work (queued and future arrivals)
        still runs.  With ``cancel_queued=True``, pending arrivals and
        queued requests are cancelled immediately with typed
        ``"cancelled"`` outcomes (``reason="server-closed"``); in-flight
        queries always drain — their reservations are freed at
        completion either way.
        """
        self._closed = True
        if not cancel_queued:
            return
        pending = [request for _, _, request in self._arrivals]
        self._arrivals.clear()
        queued = [entry[3] for entry in sorted(self._queue)]
        self._queue.clear()
        for request in queued:
            self._tenant_state(request.tenant).queued -= 1
        for request in queued + pending:
            self._cancel_unstarted(request, "server-closed")

    # -- the event loop ----------------------------------------------------

    def run(self, until_s: Optional[float] = None) -> List[QueryOutcome]:
        """Serve until all submitted work drains (or ``until_s``).

        Deterministic event order at equal timestamps: completions are
        processed before arrivals, streams in index order, queued
        queries in (priority desc, arrival, id) order.  Returns the full
        outcome list (completed and rejected), in finish order.
        """
        limit = float("inf") if until_s is None else float(until_s)
        while True:
            next_arrival = self._arrivals[0][0] if self._arrivals else float("inf")
            if (
                not self.scheduler.busy
                and not self._queue
                and next_arrival == float("inf")
            ):
                break
            horizon = min(next_arrival, limit)
            completion = self.scheduler.advance_to(horizon)
            if completion is not None:
                self._complete(completion)
                self._brownout_tick()
                self._admit_from_queue()
                continue
            # The clock reached the horizon without a query finishing.
            if next_arrival > limit:
                break
            while self._arrivals and self._arrivals[0][0] <= self.clock_s:
                _, _, request = heapq.heappop(self._arrivals)
                self._arrive(request)
            self._brownout_tick()
            self._admit_from_queue()
        return self.outcomes

    def query(
        self,
        plan: PlanNode,
        priority: int = 0,
        optimize: bool = True,
        fault_plan=None,
        tag: str = "",
        deadline_s: Optional[float] = None,
        tenant: str = "default",
    ) -> QueryOutcome:
        """Submit one query now, serve until it finishes, return its outcome.

        Raises the outcome's typed error if the query did not complete
        (rejected, cancelled, or failed), so interactive callers see
        backpressure and deadline expiry as exceptions rather than a
        status field.
        """
        query_id = self.submit(
            plan, priority=priority, optimize=optimize,
            fault_plan=fault_plan, tag=tag,
            deadline_s=deadline_s, tenant=tenant,
        )
        self.run()
        outcome = next(o for o in self.outcomes if o.query_id == query_id)
        if outcome.error is not None:
            raise outcome.error
        return outcome

    def report(self) -> ServeReport:
        """Aggregate statistics over everything served so far."""
        done = [o for o in self.outcomes if o.status == "completed"]
        rejected = [o for o in self.outcomes if o.status == "rejected"]
        cancelled = [o for o in self.outcomes if o.status == "cancelled"]
        failed = [o for o in self.outcomes if o.status == "failed"]
        latencies = [o.latency_s for o in done]
        makespan = max((o.finish_s for o in done), default=0.0)
        return ServeReport(
            submitted=len(self.outcomes),
            completed=len(done),
            rejected=len(rejected),
            cancelled=len(cancelled),
            failed=len(failed),
            makespan_s=makespan,
            throughput_qps=len(done) / makespan if makespan > 0 else 0.0,
            latency_p50_s=_percentile(latencies, 50),
            latency_p95_s=_percentile(latencies, 95),
            latency_p99_s=_percentile(latencies, 99),
            mean_queue_wait_s=(
                sum(o.queue_wait_s for o in done) / len(done) if done else 0.0
            ),
            mean_stretch=(
                sum(o.stretch for o in done) / len(done) if done else 0.0
            ),
            peak_concurrency=self.scheduler.peak_concurrency,
            solo_seconds_total=sum(o.solo_seconds for o in done),
            counters=self.metrics.as_dict(derived=False),
        )

    # -- admission ---------------------------------------------------------

    def _arrive(self, request: QueryRequest) -> None:
        if request.deadline_s is not None and self.clock_s >= request.deadline_s:
            # Dead on arrival (e.g. the run() horizon only reached it
            # past its deadline): never queue it.
            self._cancel_unstarted(request, "deadline-queued")
            return
        if (
            self.brownout is not None
            and self.brownout.shedding
            and request.priority <= self.brownout.policy.shed_priority_max
        ):
            self._reject(request, "brownout-shed")
            return
        if (
            self.retry_budget is not None
            and request.fault_plan is not None
            and getattr(request.fault_plan, "injects_anything", True)
            and self.retry_budget.exhausted(self.clock_s)
        ):
            self.retry_budget.rejections += 1
            self._reject(request, "retry-budget")
            return
        quota = self.quotas.get(request.tenant)
        state = self._tenant_state(request.tenant)
        if (
            quota is not None
            and quota.max_queue_depth is not None
            and state.queued >= quota.max_queue_depth
        ):
            self._reject(request, "tenant-queue-full")
            return
        if len(self._queue) >= self.queue_depth + self._admissible_now():
            # The queue bound covers *waiting* queries; anything the
            # streams can absorb immediately never occupies a slot.
            self._reject(request, "queue-full")
            return
        heapq.heappush(
            self._queue,
            (-request.priority, request.arrival_s, request.query_id, request),
        )
        state.queued += 1
        self._gauge("serve.queue_depth_peak", len(self._queue))

    def _admissible_now(self) -> int:
        return self.scheduler.free_streams()

    def _reject(self, request: QueryRequest, reason: str) -> None:
        error = AdmissionError(
            f"query {request.query_id} rejected at admission: {reason} "
            f"(queue depth {self.queue_depth}, "
            f"{self.scheduler.free_streams()} free streams)",
            reason=reason,
        )
        self._count(f"serve.rejected_{reason.replace('-', '_')}")
        self._tenant_state(request.tenant).rejected += 1
        self.outcomes.append(
            QueryOutcome(
                query_id=request.query_id,
                tag=request.tag,
                status="rejected",
                arrival_s=request.arrival_s,
                finish_s=self.clock_s,
                error=error,
                tenant=request.tenant,
                deadline_s=request.deadline_s,
            )
        )

    def _cancel_unstarted(self, request: QueryRequest, reason: str) -> None:
        """Record a cancelled outcome for a query that never started.

        Covers deadlines expiring while queued and server close with
        ``cancel_queued=True``; no reservation was ever taken, so there
        is nothing to free.
        """
        error = QueryCancelledError(
            f"query {request.query_id} cancelled before admission ({reason})",
            reason=reason,
            site="queue",
            deadline_s=request.deadline_s,
        )
        self._count("serve.cancelled_queued")
        self._tenant_state(request.tenant).cancelled += 1
        self.outcomes.append(
            QueryOutcome(
                query_id=request.query_id,
                tag=request.tag,
                status="cancelled",
                arrival_s=request.arrival_s,
                finish_s=self.clock_s,
                error=error,
                tenant=request.tenant,
                deadline_s=request.deadline_s,
            )
        )

    def _drop_queue_entries(self, entries) -> None:
        for entry in entries:
            self._queue.remove(entry)
            self._tenant_state(entry[3].tenant).queued -= 1
        heapq.heapify(self._queue)

    def _sweep_expired_queued(self) -> None:
        """Cancel queued queries whose deadline has already passed.

        They are never started: starting doomed work would only steal
        streams and memory from queries that can still make it.
        """
        expired = [
            entry
            for entry in self._queue
            if entry[3].deadline_s is not None
            and self.clock_s >= entry[3].deadline_s
        ]
        if not expired:
            return
        self._drop_queue_entries(expired)
        for entry in sorted(expired):
            self._cancel_unstarted(entry[3], "deadline-queued")

    def _admit_from_queue(self) -> None:
        """Admit queued queries in priority order until service blocks.

        Two deliberately different blocking behaviours:

        * a *memory*-blocked candidate stops admission entirely (no
          lower-priority query may jump the reservation queue — that
          would starve large queries forever);
        * a *quota*-capped tenant's candidates are skipped (its own
          order preserved) so one tenant at its cap cannot block the
          rest of the queue.
        """
        self._sweep_expired_queued()
        while self._queue and self.scheduler.free_streams() > 0:
            admitted = False
            for entry in sorted(self._queue):
                request = entry[3]
                estimate = self.estimate_bytes(request.plan)
                if self._tenant_capped(request, estimate):
                    self._tenant_state(request.tenant).quota_deferrals += 1
                    self._count("serve.quota_deferrals")
                    continue
                try:
                    reservation = self._reserve_demoting(request, estimate)
                except DeviceOutOfMemoryError:
                    if not self.scheduler.busy:
                        # Nothing holds memory yet the head still cannot
                        # fit: unservable under the current catalog, so
                        # reject rather than deadlock the queue.
                        self._drop_queue_entries([entry])
                        self._reject(request, "oversized")
                        admitted = True  # re-scan: the queue changed
                        break
                    return  # blocked behind running queries' reservations
                self._drop_queue_entries([entry])
                self._start(request, reservation)
                admitted = True
                break
            if not admitted:
                return  # every candidate is quota-capped

    def _reserve_demoting(
        self, request: QueryRequest, estimate: int
    ) -> MemoryReservation:
        """Reserve admission bytes, demoting tier-cache segments first.

        With tiering sharing the server's device memory, resident
        segments are *discretionary* bytes: before an admission
        reservation blocks (or an idle-server candidate is rejected as
        oversized), the cache gives bytes back — queries beat cached
        segments, which merely fall to the CPU tier.
        """
        try:
            return self.memory.reserve(estimate, label=f"query-{request.query_id}")
        except DeviceOutOfMemoryError:
            if self.tiering is None or self.tiering.cache.memory is not self.memory:
                raise
            cache = self.tiering.cache
            capacity = self.memory.capacity_bytes or 0
            shortfall = estimate - max(0, capacity - self.memory.current_bytes)
            if shortfall <= 0 or cache.resident_bytes == 0:
                raise
            freed = cache.demote_bytes(shortfall, policy=self.tiering.policy)
            if freed:
                self._count("serve.tier_admission_demoted_bytes", freed)
            return self.memory.reserve(estimate, label=f"query-{request.query_id}")

    # -- brownout ----------------------------------------------------------

    def _brownout_tick(self) -> None:
        """Feed the controller the current pressure; shed when at SHED."""
        ctl = self.brownout
        if ctl is None:
            return
        queue_frac = (
            len(self._queue) / self.queue_depth
            if self.queue_depth > 0
            else (1.0 if self._queue else 0.0)
        )
        occupancy = self.scheduler.active_count / self.scheduler.num_streams
        capacity = self.memory.capacity_bytes
        memory_frac = (
            self.memory.current_bytes / capacity if capacity else 0.0
        )
        before = ctl.level
        level = ctl.update(self.clock_s, queue_frac, occupancy, memory_frac)
        if level != before:
            self._count("serve.brownout_transitions")
            self._count(f"serve.brownout_to_{LEVEL_NAMES[level]}")
            if level > before and self.tiering is not None:
                # Escalation gives back cache bytes before any queued
                # work is shed — demoted segments just run on the CPU
                # tier, which beats rejecting queries outright.
                cache = self.tiering.cache
                target = int(
                    cache.resident_bytes * ctl.policy.cache_demote_fraction
                )
                if target > 0:
                    freed = cache.demote_bytes(
                        target, policy=self.tiering.policy
                    )
                    if freed:
                        self._count("serve.brownout_cache_demoted_bytes", freed)
            if self.session is not None:
                with self.session.span(
                    f"brownout:{LEVEL_NAMES[before]}->{LEVEL_NAMES[level]}",
                    category="brownout",
                    clock_s=self.clock_s,
                    pressure=ctl.pressure,
                ):
                    pass
        self._gauge("serve.brownout_level_peak", level)
        if ctl.shedding and self._queue:
            self._shed_queued(ctl.policy.shed_fraction)

    def _shed_queued(self, fraction: float) -> None:
        """Drop the lowest-priority, newest queued requests."""
        count = max(1, int(len(self._queue) * fraction))
        victims = sorted(
            self._queue, key=lambda e: (-e[0], -e[1], -e[2])
        )[:count]
        self._drop_queue_entries(victims)
        for entry in victims:
            self._count("serve.brownout_shed_queued")
            self._reject(entry[3], "brownout-shed")

    # -- execution ---------------------------------------------------------

    def _start(self, request: QueryRequest, reservation: MemoryReservation) -> None:
        try:
            flight = self._execute(request, reservation)
        except BaseException:
            # The correctness half raised something _execute does not
            # convert to an outcome (a config bug, a failed verify
            # assertion): never leak the admission reservation.
            reservation.free()
            raise
        if flight.retry_seconds > 0 and self.retry_budget is not None:
            self.retry_budget.spend(flight.retry_seconds)
            self._count("serve.retry_budget_spent_s", flight.retry_seconds)
        items = self._work_items(flight)
        # A query already cancelled or failed in the correctness half
        # only drains its partial kernels — no further deadline monitoring.
        deadline = request.deadline_s if flight.error is None else None
        stream = self.scheduler.start(
            request.query_id, items, at_s=self.clock_s, deadline_s=deadline
        )
        state = self._tenant_state(request.tenant)
        state.inflight += 1
        state.reserved_bytes += reservation.nbytes
        self._inflight[request.query_id] = flight
        self._count("serve.admitted")
        self._gauge("serve.concurrency_peak", self.scheduler.active_count)
        self._gauge("serve.reserved_bytes_peak", self.memory.current_bytes)
        del stream  # recorded by the scheduler; completion carries it

    def _execute(
        self, request: QueryRequest, reservation: MemoryReservation
    ) -> _InFlight:
        """Run the query's correctness half; timing replays later.

        Cache population happens here (admission order), which is
        deterministic for a fixed submission schedule.  With a deadline,
        a :class:`~repro.cancel.CancellationToken` is active for the
        whole half — kernel, superstep and operator boundaries check it
        — and expiry converts to a ``"cancelled"`` in-flight record
        whose partial kernels still drain on a stream.  Typed runtime
        failures (recovery ladder exhausted, simulated OOM) likewise
        become ``"failed"`` records instead of crashing the server.
        """
        fault_plan = request.fault_plan
        injects = fault_plan is not None and getattr(
            fault_plan, "injects_anything", True
        )
        degrade = self.brownout is not None and self.brownout.degraded
        # Degraded recovery and sharded shuffles may permute row order;
        # caching those outputs would break bit-identity with execute().
        lookup_ok = not injects and self.shards == 1
        # Brownout suspends cache *population* only (hits still serve):
        # pinning and verification are optional work the server stops
        # paying under pressure, and an unfused trace must never be
        # pinned as if it were the fused shape.
        populate_ok = lookup_ok and not degrade
        cache_key = ("opt" if request.optimize else "raw",
                     plan_signature(request.plan, self._fingerprint))
        deps = self._plan_deps(request.plan)

        if lookup_ok and self.enable_result_cache:
            entry = self.result_cache.get(cache_key)
            if entry is not None:
                self._count("serve.result_cache_hits")
                result = QueryResult(output=entry.value, trace=[])
                return _InFlight(
                    request=request,
                    result=result,
                    reservation=reservation,
                    admitted_s=self.clock_s,
                    solo_seconds=self.cache_hit_cost_s,
                    plan_cache_hit=False,
                    result_cache_hit=True,
                    subresult_hits=0,
                    degraded=False,
                    brownout_degraded=degrade,
                )
            self._count("serve.result_cache_misses")

        plan = request.plan
        plan_cache_hit = False
        if lookup_ok and self.enable_plan_cache:
            pinned = self.plan_cache.get(cache_key)
            if pinned is not None:
                plan = pinned.value.plan
                plan_cache_hit = True
                self._count("serve.plan_cache_hits")
            else:
                self._count("serve.plan_cache_misses")

        subresult_hits = 0
        if lookup_ok and self.enable_result_cache:
            plan, subresult_hits = self._substitute_subresults(
                plan, request.optimize
            )
            if subresult_hits:
                self._count("serve.subresult_hits", subresult_hits)

        captured: List[Tuple[Join, Relation]] = []
        executor = QueryExecutor(
            device=self.device,
            config=self.config,
            seed=self.seed,
            shards=self.shards,
            interconnect=self.interconnect,
            fault_plan=fault_plan,
            enable_fusion=not degrade,
            tiering=self.tiering,
            join_output_hook=(
                (lambda node, rel: captured.append((node, rel)))
                if populate_ok and self.enable_result_cache
                else None
            ),
        )
        session = TraceSession(f"serve-q{request.query_id}")
        error: Optional[ReproError] = None
        token = None
        if request.deadline_s is not None:
            token = CancellationToken(
                deadline_s=request.deadline_s,
                start_s=self.clock_s,
                label=f"q{request.query_id}",
            )
        try:
            if token is not None:
                with token.activated():
                    result = executor.execute(
                        plan, optimize=request.optimize, trace=session
                    )
            else:
                result = executor.execute(
                    plan, optimize=request.optimize, trace=session
                )
        except QueryCancelledError as err:
            # Cooperative unwind: every kernel charged so far stays on
            # the session and will occupy a stream while it drains.
            error = err
            result = QueryResult(output=None, trace=[], session=session)
            self._count("serve.cancelled_executing")
        except (GracefulDegradationError, DeviceOutOfMemoryError) as err:
            error = err
            result = QueryResult(output=None, trace=[], session=session)
            self._count("serve.failed_executing")

        if populate_ok and error is None:
            if (
                self.enable_plan_cache
                and not plan_cache_hit
                and subresult_hits == 0
                and cache_key not in self.plan_cache
            ):
                self.plan_cache.put(
                    cache_key,
                    PinnedPlan(
                        plan=pin_plan(
                            request.plan,
                            result.trace,
                            optimize=request.optimize,
                            # Tiering (like sharding) runs Aggregate-over-
                            # Join unfused, so the trace has two entries.
                            fused=request.optimize
                            and self.shards == 1
                            and self.tiering is None,
                        ),
                        pinned_from=request.plan.describe(),
                    ),
                    deps=deps,
                )
            if self.enable_result_cache:
                self._check_cache_insert(request, result.output)
                self.result_cache.put(
                    cache_key,
                    result.output,
                    deps=deps,
                    nbytes=output_nbytes(result.output),
                )
                for node, relation in captured:
                    self.result_cache.put(
                        ("opt" if request.optimize else "raw",
                         plan_signature(node, self._fingerprint)),
                        relation,
                        deps=deps,
                        nbytes=relation.total_bytes,
                    )

        return _InFlight(
            request=request,
            result=result,
            reservation=reservation,
            admitted_s=self.clock_s,
            solo_seconds=sum(
                event.record.seconds for event in session.kernel_events()
            ),
            plan_cache_hit=plan_cache_hit,
            result_cache_hit=False,
            subresult_hits=subresult_hits,
            degraded=error is None
            and any(
                "degraded" in op.extras or "OOC[" in op.algorithm
                for op in result.trace
            ),
            error=error,
            retry_seconds=session.metrics.value("fault_retry_seconds"),
            brownout_degraded=degrade,
        )

    def _check_cache_insert(self, request: QueryRequest, output) -> None:
        """Debug oracle against cache poisoning: assert the output about
        to be cached is bit-identical to a clean, fault-free execute().

        Off by default (it re-executes the plan); enabled via the
        ``verify_cache_inserts`` knob or ``REPRO_SERVE_VERIFY_CACHE``.
        """
        if not self.verify_cache_inserts:
            return
        # With tiering, the reference runs on a *cold fork* of the
        # runtime (same segmentation, empty cache): tiered outputs are
        # placement-independent by construction, so any mismatch is
        # corruption, not ordering.
        reference = QueryExecutor(
            device=self.device,
            config=self.config,
            seed=self.seed,
            shards=self.shards,
            interconnect=self.interconnect,
            tiering=None if self.tiering is None else self.tiering.fork_cold(),
        ).execute(request.plan, optimize=request.optimize)
        if not _bit_identical(output, reference.output):
            raise AssertionError(
                f"cache poisoning guard: query {request.query_id} output "
                f"differs from a clean execute(); refusing to populate "
                f"the result cache"
            )
        self._count("serve.cache_inserts_verified")

    def _substitute_subresults(
        self, plan: PlanNode, optimize: bool
    ) -> Tuple[PlanNode, int]:
        """Swap cached join intermediates in as scans.

        Only a Join subtree whose *parent is also a Join* is replaced:
        feeding the parent the identical materialized relation cannot
        change any downstream bit.  Under a Project or Aggregate parent
        the executor's pushdown/fusion rewrites would take a different
        path, so those subtrees always re-execute.
        """
        from dataclasses import replace

        hits = 0

        def lookup(node: Join) -> Optional[Relation]:
            key = ("opt" if optimize else "raw",
                   plan_signature(node, self._fingerprint))
            if key not in self.result_cache:
                return None
            entry = self.result_cache.get(key)
            value = entry.value if entry is not None else None
            return value if isinstance(value, Relation) else None

        def walk_child(node: PlanNode) -> PlanNode:
            nonlocal hits
            if isinstance(node, Join):
                cached = lookup(node)
                if cached is not None:
                    hits += 1
                    return Scan(cached, label="cached-subresult")
                return walk(node)
            return walk(node)

        def walk(node: PlanNode) -> PlanNode:
            if isinstance(node, Join):
                return replace(
                    node, left=walk_child(node.left), right=walk_child(node.right)
                )
            if hasattr(node, "child"):
                return replace(node, child=walk(node.child))
            return node

        return walk(plan), hits

    def _work_items(self, flight: _InFlight) -> List[WorkItem]:
        if flight.result_cache_hit:
            return [WorkItem("result-cache-hit", self.cache_hit_cost_s)]
        session = flight.result.session
        if session is not None and session.kernel_events():
            return [
                WorkItem(event.name, event.record.seconds)
                for event in session.kernel_events()
            ]
        # Kernel-free plans (pure scans) still occupy a stream briefly.
        return [WorkItem("noop", self.cache_hit_cost_s)]

    # -- completion --------------------------------------------------------

    def _complete(self, completion: QueryCompletion) -> None:
        flight = self._inflight.pop(completion.query_id)
        request = flight.request
        reserved = flight.reservation.nbytes
        flight.reservation.free()
        state = self._tenant_state(request.tenant)
        state.inflight -= 1
        state.reserved_bytes -= reserved

        error: Optional[ReproError] = flight.error
        if completion.cancelled:
            # The scheduler released the stream at a kernel boundary
            # past the deadline (contention stretched the query).
            error = QueryCancelledError(
                f"query {completion.query_id} cancelled on stream "
                f"{completion.stream}: deadline "
                f"{request.deadline_s:.6f}s passed at "
                f"{completion.finish_s:.6f}s",
                reason="deadline-stream",
                site=f"stream:{completion.stream}",
                deadline_s=request.deadline_s,
                consumed_s=completion.finish_s - completion.start_s,
            )
        if isinstance(error, QueryCancelledError):
            status = "cancelled"
        elif error is not None:
            status = "failed"
        else:
            status = "completed"
        deadline_missed = (
            status == "completed"
            and request.deadline_s is not None
            and completion.finish_s > request.deadline_s
        )

        outcome = QueryOutcome(
            query_id=completion.query_id,
            tag=request.tag,
            status=status,
            arrival_s=request.arrival_s,
            output=flight.result.output if status == "completed" else None,
            result=flight.result if status == "completed" else None,
            admitted_s=flight.admitted_s,
            finish_s=completion.finish_s,
            stream=completion.stream,
            solo_seconds=(
                completion.solo_seconds  # only the kernels that ran
                if completion.cancelled
                else flight.solo_seconds
            ),
            reserved_bytes=reserved,
            plan_cache_hit=flight.plan_cache_hit,
            result_cache_hit=flight.result_cache_hit,
            subresult_hits=flight.subresult_hits,
            degraded=flight.degraded,
            error=error,
            tenant=request.tenant,
            deadline_s=request.deadline_s,
            deadline_missed=deadline_missed,
            brownout_degraded=flight.brownout_degraded,
        )
        self.outcomes.append(outcome)
        if status == "completed":
            self._count("serve.completed")
            state.completed += 1
            if deadline_missed:
                self._count("serve.deadline_missed")
        elif status == "cancelled":
            self._count("serve.cancelled")
            state.cancelled += 1
        else:
            self._count("serve.failed")
            state.failed += 1
        if outcome.degraded:
            self._count("serve.degraded_queries")
        if outcome.brownout_degraded:
            self._count("serve.brownout_degraded_queries")
        if self.session is not None:
            with self.session.span(
                f"serve:q{outcome.query_id}" + (f":{outcome.tag}" if outcome.tag else ""),
                category="serve",
                status=outcome.status,
                tenant=outcome.tenant,
                stream=outcome.stream,
                arrival_s=outcome.arrival_s,
                admitted_s=outcome.admitted_s,
                finish_s=outcome.finish_s,
                latency_s=outcome.latency_s,
                stretch=outcome.stretch,
                result_cache_hit=outcome.result_cache_hit,
                plan_cache_hit=outcome.plan_cache_hit,
                degraded=outcome.degraded,
            ):
                pass
