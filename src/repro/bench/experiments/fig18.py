"""Figure 18: decision-tree validation (plus the calibrated cost planner).

Runs the four implementations over the microbenchmark grid (width x
match ratio x skew x data types) and checks two planners against the
measured winner: the Figure 18a decision tree and the Section 5.4
cost-based planner built on profiled primitives
(:mod:`repro.joins.cost_planner`).  A pick counts as correct if it is
the winner or within ``TOLERANCE`` of the winner's time (the paper's
trees are heuristics, not oracles).
"""

from __future__ import annotations

from itertools import product

from ...joins.cost_planner import (
    calibrate_primitives,
    recommend_join_algorithm_costbased,
)
from ...joins.planner import JoinWorkloadProfile, recommend_join_algorithm
from ...relational.types import INT32, INT64
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup, run_algorithm

PAPER_ROWS = 1 << 26
ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")
TOLERANCE = 0.15

GRID = {
    "payload_columns": (1, 3),
    "match_ratio": (0.1, 1.0),
    "zipf_factor": (0.0, 1.5),
    "payload_type": (INT32, INT64),
}


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    calibration = calibrate_primitives(
        setup.device, sample_items=setup.rows(1 << 27)
    )
    result = ExperimentResult(
        experiment_id="fig18",
        title="Planner validation over the microbenchmark grid",
        headers=["payloads", "match", "zipf", "ptype", "winner", "tree",
                 "tree_regret", "costbased", "cost_regret"],
    )
    tree_ok = cost_ok = cases = 0
    for cols, ratio, zipf, ptype in product(
        GRID["payload_columns"], GRID["match_ratio"],
        GRID["zipf_factor"], GRID["payload_type"],
    ):
        spec = JoinWorkloadSpec(
            r_rows=rows, s_rows=rows,
            r_payload_columns=cols, s_payload_columns=cols,
            match_ratio=ratio, zipf_factor=zipf,
            payload_type=ptype, seed=seed,
        )
        r, s = generate_join_workload(spec)
        times = {
            name: run_algorithm(name, r, s, setup).total_seconds
            for name in ALGORITHMS
        }
        winner = min(times, key=times.get)
        profile = JoinWorkloadProfile(
            r_rows=spec.r_rows, s_rows=spec.s_rows,
            r_payload_columns=cols, s_payload_columns=cols,
            key_bytes=4, payload_bytes=ptype.itemsize,
            match_ratio=ratio, zipf_factor=zipf,
        )
        tree_pick = recommend_join_algorithm(profile).algorithm
        cost_pick = recommend_join_algorithm_costbased(
            profile, calibration, setup.config.tuples_per_partition
        ).algorithm
        tree_regret = times[tree_pick] / times[winner] - 1.0
        cost_regret = times[cost_pick] / times[winner] - 1.0
        tree_ok += tree_regret <= TOLERANCE
        cost_ok += cost_regret <= TOLERANCE
        cases += 1
        result.add_row(cols, ratio, zipf, ptype.name, winner,
                       tree_pick, tree_regret, cost_pick, cost_regret)
    result.findings["planner_accuracy"] = tree_ok / cases
    result.findings["costbased_accuracy"] = cost_ok / cases
    result.add_note(
        f"a pick is correct if within {TOLERANCE:.0%} of the measured winner; "
        "'costbased' is the Section 5.4 profile-the-primitives planner"
    )
    return result
