"""One module per reproduced table/figure (see DESIGN.md's index).

Each module exposes ``run(scale=...) -> ExperimentResult`` (some take
extra knobs).  ``ALL_EXPERIMENTS`` maps experiment id to its runner for
programmatic sweeps.
"""

from . import (
    abl01,
    abl02,
    abl03,
    abl04,
    agg01,
    agg02,
    agg03,
    agg04,
    agg05,
    agg06,
    ext01,
    ext02,
    ext03,
    ext04,
    ext05,
    ext06,
    ext07,
    ext08,
    fig01,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    tab04,
    tab05,
)

ALL_EXPERIMENTS = {
    module.__name__.rsplit(".", 1)[-1]: module.run
    for module in (
        fig01, tab04, fig07, fig08, fig09, fig10, fig11, fig12, fig13,
        fig14, fig15, tab05, fig16, fig17, fig18,
        agg01, agg02, agg03, agg04, agg05, agg06,
        abl01, abl02, abl03, abl04,
        ext01, ext02, ext03, ext04, ext05, ext06, ext07, ext08,
    )
}

__all__ = ["ALL_EXPERIMENTS"]
