"""Admission control: reservations, backpressure, priorities, rejection."""

from dataclasses import replace

import pytest

from repro.errors import AdmissionError, ServeConfigError
from repro.gpusim.device import A100
from repro.query.plan import Join, Scan
from repro.serve import QueryServer


@pytest.fixture
def plan(r, s):
    return Join(Scan(r), Scan(s))


def test_config_validation():
    with pytest.raises(ServeConfigError, match="queue_depth"):
        QueryServer(queue_depth=-1)
    with pytest.raises(ServeConfigError, match="mem_overhead"):
        QueryServer(mem_overhead=0.5)


def test_oversized_query_rejected_at_submit(plan):
    tiny = replace(A100, global_mem_bytes=1024)
    server = QueryServer(streams=2, device=tiny, seed=0)
    with pytest.raises(AdmissionError) as excinfo:
        server.submit(plan)
    assert excinfo.value.reason == "oversized"
    assert server.metrics.value("serve.rejected_oversized") == 1.0


def test_closed_server_rejects_submissions(plan):
    server = QueryServer(streams=1, seed=0)
    query_id = server.submit(plan)
    server.close()
    with pytest.raises(AdmissionError) as excinfo:
        server.submit(plan)
    assert excinfo.value.reason == "closed"
    # Already-queued work still drains.
    outcomes = server.run()
    assert [o.query_id for o in outcomes] == [query_id]
    assert outcomes[0].status == "completed"


def test_queue_overflow_is_backpressure_not_an_exception(plan):
    server = QueryServer(streams=1, queue_depth=1, seed=0)
    ids = [server.submit(plan, at_s=0.0) for _ in range(4)]
    outcomes = {o.query_id: o for o in server.run()}
    assert len(outcomes) == 4
    # One stream absorbs one arrival, the queue holds one more; the rest
    # bounce with a typed, reason-carrying error on the outcome.
    completed = [i for i in ids if outcomes[i].status == "completed"]
    rejected = [i for i in ids if outcomes[i].status == "rejected"]
    assert (len(completed), len(rejected)) == (2, 2)
    for i in rejected:
        assert outcomes[i].error.reason == "queue-full"
    assert server.metrics.value("serve.rejected_queue_full") == 2.0
    assert server.report().rejected == 2


def test_priority_order_under_a_single_stream(plan):
    server = QueryServer(streams=1, queue_depth=8, seed=0)
    server.submit(plan, at_s=0.0, priority=0, tag="low")
    server.submit(plan, at_s=0.0, priority=5, tag="high")
    server.submit(plan, at_s=0.0, priority=1, tag="mid")
    outcomes = server.run()
    served = [o.tag for o in outcomes if o.status == "completed"]
    assert served == ["high", "mid", "low"]


def test_reservations_are_freed_and_accounted(plan, r, s):
    server = QueryServer(streams=2, seed=0)
    estimate = server.estimate_bytes(plan)
    assert estimate == int((r.total_bytes + s.total_bytes) * server.mem_overhead)
    for _ in range(3):
        server.submit(plan, at_s=0.0)
    outcomes = server.run()
    assert all(o.status == "completed" for o in outcomes)
    assert all(o.reserved_bytes == estimate for o in outcomes)
    assert server.memory.current_bytes == 0
    assert server.memory.reserve_count == 3
    assert server.memory.release_count == 3
    # Two queries overlapped, so the reservation peak saw both at once.
    assert server.metrics.value("serve.reserved_bytes_peak") >= 2 * estimate
    assert server.metrics.value("serve.concurrency_peak") == 2.0


def test_memory_pressure_blocks_admission_until_a_departure(plan, r, s):
    # Capacity fits 1.5 queries: the second waits on memory, not streams.
    estimate = int((r.total_bytes + s.total_bytes) * 3.0)
    device = replace(A100, global_mem_bytes=int(estimate * 1.5))
    server = QueryServer(streams=2, queue_depth=4, device=device, seed=0)
    first = server.submit(plan, at_s=0.0)
    second = server.submit(plan, at_s=0.0)
    outcomes = {o.query_id: o for o in server.run()}
    assert all(o.status == "completed" for o in outcomes.values())
    assert outcomes[second].admitted_s == pytest.approx(
        outcomes[first].finish_s
    )
    assert outcomes[second].queue_wait_s > 0
    assert server.metrics.value("serve.concurrency_peak") == 1.0


def test_arrival_cannot_precede_the_serving_clock(plan):
    server = QueryServer(streams=1, seed=0)
    server.submit(plan)
    server.run()
    assert server.clock_s > 0
    with pytest.raises(ServeConfigError, match="precedes"):
        server.submit(plan, at_s=0.0)


def test_run_until_horizon_leaves_future_arrivals_pending(plan):
    server = QueryServer(streams=1, seed=0)
    server.submit(plan, at_s=0.0, tag="now")
    server.submit(plan, at_s=1e6, tag="later")
    outcomes = server.run(until_s=10.0)
    assert [o.tag for o in outcomes] == ["now"]
    assert server.run() and server.outcomes[-1].tag == "later"
