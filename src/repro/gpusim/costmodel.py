"""Traffic-to-time conversion for simulated kernels.

The model is deliberately simple and fully documented because every
comparative claim in the reproduction flows through it.  For a kernel
described by :class:`~repro.gpusim.kernel.KernelStats` executing on a
:class:`~repro.gpusim.device.DeviceSpec`, the simulated time is the sum of

``launch``
    ``launches * kernel_launch_overhead_s`` — fixed launch cost.

``sequential``
    ``(seq_read + seq_write) / mem_bandwidth`` — coalesced streaming
    traffic moves at peak bandwidth.

``random``
    Gather/scatter traffic measured in 32-byte sectors.  Cold sectors
    (the first touch of each distinct sector) always pay the DRAM price.
    Repeated touches are served by L2 with probability
    ``min(1, l2_bytes / locality_footprint)`` — a warp whose addresses
    span less than the L2 stays cache resident; a warp spanning the whole
    array does not.  DRAM-bound random traffic is latency-limited and only
    achieves ``random_derating`` of peak bandwidth; L2-bound traffic runs
    ``l2_bandwidth_factor`` times faster than DRAM.

``atomic``
    ``atomic_ops * atomic_conflict_cost_s * (conflict_factor - 1) /
    execution_units`` — only *conflicting* atomics cost extra time (a
    conflict factor of 1 models perfectly spread atomics, which are
    already covered by their memory traffic).

``compute``
    ``items * per_item_cost_s / execution_units`` — per-tuple instruction
    cost.  Negligible for GPUs; dominant for the CPU baseline.

Calibration anchors (asserted by ``tests/gpusim/test_costmodel.py``):

* an unclustered GATHER of 2^27 4-byte values is ~8.5x slower than a
  clustered one on the A100 (Table 4 of the paper);
* the unclustered gather moves ~4.5 GB vs. ~1.5 GB clustered (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import SECTOR_BYTES, DeviceSpec
from .kernel import KernelStats


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-component simulated time of one kernel (seconds)."""

    launch: float
    sequential: float
    random: float
    atomic: float
    compute: float
    transfer: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.launch + self.sequential + self.random
            + self.atomic + self.compute + self.transfer
        )


class CostModel:
    """Converts :class:`KernelStats` into simulated seconds for a device."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    def l2_hit_probability(self, locality_footprint_bytes: float) -> float:
        """Probability that a repeated sector touch is served by L2."""
        if locality_footprint_bytes <= 0:
            return 1.0
        return min(1.0, self.device.l2_bytes / locality_footprint_bytes)

    def breakdown(self, stats: KernelStats) -> TimeBreakdown:
        """Compute the component times for one kernel."""
        dev = self.device
        launch = stats.launches * dev.kernel_launch_overhead_s
        sequential = stats.total_seq_bytes / dev.mem_bandwidth

        touches = stats.random_sector_touches
        cold = min(stats.random_cold_sectors, touches)
        warm = touches - cold
        l2_hit = self.l2_hit_probability(stats.locality_footprint_bytes)
        dram_random_bw = dev.mem_bandwidth * dev.random_derating
        l2_bw = dev.mem_bandwidth * dev.l2_bandwidth_factor

        # Cold sectors stream from DRAM; if the access pattern is local
        # (high L2 hit), consecutive cold sectors coalesce and approach peak
        # bandwidth, otherwise they pay the latency-bound random price.
        cold_bw = dev.mem_bandwidth * (
            l2_hit + (1.0 - l2_hit) * dev.random_derating
        )
        random_time = 0.0
        if cold:
            random_time += cold * SECTOR_BYTES / cold_bw
        if warm:
            dram_part = warm * (1.0 - l2_hit) * SECTOR_BYTES / dram_random_bw
            l2_part = warm * l2_hit * SECTOR_BYTES / l2_bw
            random_time += dram_part + l2_part

        atomic = (
            stats.atomic_ops
            * dev.atomic_conflict_cost_s
            * max(0.0, stats.atomic_conflict_factor - 1.0)
            / dev.num_execution_units
        )
        compute = stats.items * dev.per_item_cost_s / dev.num_execution_units
        transfer = stats.host_transfer_bytes / dev.interconnect_bandwidth
        return TimeBreakdown(launch, sequential, random_time, atomic, compute, transfer)

    def time(self, stats: KernelStats) -> float:
        """Simulated seconds for one kernel."""
        return self.breakdown(stats).total

    def cycles(self, stats: KernelStats) -> float:
        """Simulated device cycles for one kernel (profiler counter)."""
        return self.time(stats) * self.device.clock_hz
