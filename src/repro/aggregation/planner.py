"""Aggregation-strategy selection heuristics.

The group-by analogue of the Figure 18 decision trees, derived from the
same traffic arguments:

* **few groups** (accumulator table L2-resident): hash aggregation wins —
  its random updates are cache hits and it streams every value column
  exactly once;
* **many groups** (table past L2): every atomic fold is a latency-bound
  random access; partitioned aggregation turns them into sequential
  streams at the price of ~2 RADIX-PARTITION passes per column;
* **sort aggregation** needs ~4 radix passes per column, so it only
  matches the partitioned strategy when inputs are pre-sorted (not
  modeled here) — it is kept for completeness and validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..gpusim.device import A100, DeviceSpec
from ..primitives.grouping import count_distinct
from .hash_groupby import SLOT_BYTES

#: Above this many rows per group, global atomic folds contend enough
#: that partitioned aggregation wins in the L2-resident regime.
CONTENTION_ROWS_PER_GROUP = 128

#: Largest key sample examined when estimating group cardinality.
CARDINALITY_SAMPLE_LIMIT = 65536


def estimate_group_cardinality(
    keys: np.ndarray, sample_limit: int = CARDINALITY_SAMPLE_LIMIT
) -> int:
    """Group-cardinality estimate from a strided key sample.

    An optimizer would have catalog statistics; distinct-in-sample is a
    cheap lower bound that is exact for inputs of up to ``sample_limit``
    rows and deterministic (stride, not random sample) above it.  The
    single estimator behind every ``algorithm="auto"`` group-by path.

    >>> import numpy as np
    >>> estimate_group_cardinality(np.array([1, 1, 2, 3]))
    3
    >>> estimate_group_cardinality(np.zeros(1 << 20, dtype=np.int32))
    1
    """
    if keys.size <= sample_limit:
        return count_distinct(keys)
    return count_distinct(keys[:: max(1, keys.size // sample_limit)])


@dataclass
class GroupByWorkloadProfile:
    """Optimizer-visible statistics of a prospective aggregation."""

    rows: int
    estimated_groups: int
    value_columns: int = 1
    key_bytes: int = 4
    value_bytes: int = 4
    zipf_factor: float = 0.0


@dataclass
class Recommendation:
    algorithm: str
    reasons: List[str] = field(default_factory=list)

    def explain(self) -> str:
        return f"{self.algorithm}: " + "; ".join(self.reasons)


def recommend_groupby_algorithm(
    profile: GroupByWorkloadProfile, device: DeviceSpec = A100
) -> Recommendation:
    """Pick the best aggregation strategy for a workload on a device.

    >>> few = GroupByWorkloadProfile(rows=1 << 16, estimated_groups=64)
    >>> recommend_groupby_algorithm(few).algorithm
    'HASH-AGG'
    >>> many = GroupByWorkloadProfile(rows=1 << 24, estimated_groups=1 << 21)
    >>> recommend_groupby_algorithm(many).algorithm
    'PART-AGG'
    """
    reasons: List[str] = []
    table_bytes = profile.estimated_groups * SLOT_BYTES * 2
    if table_bytes <= device.shared_mem_bytes:
        reasons.append(
            f"accumulator table ~{table_bytes} B fits shared memory: "
            "per-block private tables, one sequential pass per column"
        )
        return Recommendation("HASH-AGG", reasons)
    if table_bytes <= device.l2_bytes:
        reasons.append(
            f"accumulator table ~{table_bytes} B fits L2 ({device.l2_bytes} B): "
            "random folds are cache resident"
        )
        rows_per_group = profile.rows / max(1, profile.estimated_groups)
        if rows_per_group > CONTENTION_ROWS_PER_GROUP:
            reasons.append(
                f"~{rows_per_group:.0f} rows per group: global atomics "
                "serialize on hot accumulators; partitioned folds avoid them"
            )
            return Recommendation("PART-AGG", reasons)
        if profile.zipf_factor > 1.0:
            reasons.append(
                "skewed keys contend on hot global accumulators; "
                "partitioned folds avoid global atomics"
            )
            return Recommendation("PART-AGG", reasons)
        return Recommendation("HASH-AGG", reasons)
    reasons.append(
        f"accumulator table ~{table_bytes} B exceeds L2 ({device.l2_bytes} B): "
        "each fold is a latency-bound random access"
    )
    reasons.append(
        "partitioning makes folds sequential at ~2 radix passes per column "
        "(sorting would need ~4)"
    )
    return Recommendation("PART-AGG", reasons)


def make_groupby_algorithm(name: str, config=None):
    """Instantiate a group-by strategy by name.

    >>> make_groupby_algorithm("PART-AGG").name
    'PART-AGG'
    """
    from .hash_groupby import HashGroupBy
    from .partitioned_groupby import PartitionedGroupBy
    from .sort_groupby import SortGroupBy

    factories = {
        "HASH-AGG": lambda: HashGroupBy(config),
        "SORT-AGG": lambda: SortGroupBy(config),
        "SORT-AGG/gfur": lambda: SortGroupBy(config, pattern="gfur"),
        "PART-AGG": lambda: PartitionedGroupBy(config),
        "PART-AGG/gfur": lambda: PartitionedGroupBy(config, pattern="gfur"),
    }
    try:
        return factories[name]()
    except KeyError:
        raise KeyError(
            f"unknown aggregation algorithm {name!r}; known: {sorted(factories)}"
        ) from None
