"""Device-capacity enforcement: joins fail cleanly when memory runs out."""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.gpusim import A100, GPUContext
from repro.joins import PartitionedHashJoin, SortMergeJoinUM
from repro.workloads import JoinWorkloadSpec, generate_join_workload


@pytest.fixture
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=4096, s_rows=8192, r_payload_columns=2,
                         s_payload_columns=2, seed=0)
    )


class TestEnforcedCapacity:
    def test_join_raises_oom_on_tiny_device(self, relations):
        r, s = relations
        ctx = GPUContext(device=A100, mem_capacity=1024, enforce_capacity=True)
        with pytest.raises(DeviceOutOfMemoryError):
            PartitionedHashJoin().join(r, s, ctx=ctx)

    def test_join_succeeds_with_headroom(self, relations):
        r, s = relations
        # Auxiliary footprint is a few hundred KB at this size.
        ctx = GPUContext(device=A100, mem_capacity=64 << 20, enforce_capacity=True)
        result = SortMergeJoinUM().join(r, s, ctx=ctx)
        assert result.matches == s.num_rows

    def test_oom_error_reports_numbers(self, relations):
        r, s = relations
        ctx = GPUContext(device=A100, mem_capacity=4096, enforce_capacity=True)
        with pytest.raises(DeviceOutOfMemoryError) as info:
            SortMergeJoinUM().join(r, s, ctx=ctx)
        assert info.value.capacity == 4096
        assert info.value.requested > 0

    def test_oom_error_names_live_join_state(self, relations):
        """The enriched OOM report points at the arrays actually holding
        device memory when a real join runs out."""
        r, s = relations
        ctx = GPUContext(device=A100, mem_capacity=32 << 10,
                         enforce_capacity=True)
        with pytest.raises(DeviceOutOfMemoryError) as info:
            SortMergeJoinUM().join(r, s, ctx=ctx)
        err = info.value
        assert err.label  # the allocation that tipped over is named
        assert err.top_live, "live allocations should be attached"
        nbytes = [n for _, n in err.top_live]
        assert nbytes == sorted(nbytes, reverse=True)
        assert sum(nbytes) == err.in_use
        assert err.top_live[0][0] in str(err)

    def test_default_context_does_not_enforce(self, relations):
        r, s = relations
        ctx = GPUContext(device=A100.with_overrides(global_mem_bytes=1))
        result = PartitionedHashJoin().join(r, s, ctx=ctx)  # no OOM
        assert result.matches == s.num_rows

    def test_gftr_fits_where_eager_would_not(self, relations):
        """Algorithm 1's memory claim, enforced: a budget sized between
        the lazy and eager peaks admits the lazy pattern."""
        r, s = relations
        probe = GPUContext(device=A100)
        PartitionedHashJoin().join(r, s, ctx=probe)
        lazy_peak = probe.mem.peak_bytes
        budget = int(lazy_peak * 1.1)
        ctx = GPUContext(device=A100, mem_capacity=budget, enforce_capacity=True)
        result = PartitionedHashJoin().join(r, s, ctx=ctx)
        assert result.matches == s.num_rows
