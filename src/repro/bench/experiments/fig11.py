"""Figure 11: effect of the |R|/|S| size ratio on wide joins.

|S| is fixed at 2^27 tuples (two payload columns per side, 100% match)
while |R| shrinks.  Even with a small build side — where unclustered
materialization of R is cheap — the *-OM implementations keep their
advantage because the probe side still dominates materialization.
"""

from __future__ import annotations

from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    run_algorithm,
    throughput_mtuples,
)

PAPER_S_ROWS = 1 << 27
RATIOS = (1 / 64, 1 / 16, 1 / 4, 1 / 2, 1.0)

ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    s_rows = setup.rows(PAPER_S_ROWS)
    result = ExperimentResult(
        experiment_id="fig11",
        title="Effect of |R|/|S| (throughput, Mtuples/s; |S| fixed)",
        headers=["|R|/|S|"] + list(ALGORITHMS),
    )
    om_wins = 0
    for ratio in RATIOS:
        spec = JoinWorkloadSpec(
            r_rows=max(64, int(s_rows * ratio)),
            s_rows=s_rows,
            r_payload_columns=2,
            s_payload_columns=2,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        throughputs = {
            name: throughput_mtuples(run_algorithm(name, r, s, setup))
            for name in ALGORITHMS
        }
        result.add_row(f"{ratio:g}", *[throughputs[a] for a in ALGORITHMS])
        if (
            throughputs["PHJ-OM"] >= throughputs["PHJ-UM"]
            and throughputs["SMJ-OM"] >= throughputs["SMJ-UM"]
        ):
            om_wins += 1
    result.findings["om_wins_all_ratios"] = float(om_wins == len(RATIOS))
    result.add_note("paper: *-OM outperform *-UM at every ratio")
    return result
