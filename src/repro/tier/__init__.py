"""repro.tier — heterogeneous segment cache with CPU+GPU co-execution.

Relations are split into fixed-size column segments
(:class:`SegmentedRelation`); a :class:`SegmentCache` keeps the hot ones
resident in simulated device memory as real ``DeviceArray`` allocations;
a cost-based :class:`PlacementPolicy` decides placement from per-segment
access history and the serving layer's template popularity; and a
:class:`TieredRuntime` splits join and group-by operators into a GPU
part over resident segments plus a CPU part over cold ones, merged
bit-identically to the single-device executor.
"""

from .cache import SegmentCache
from .costmodel import TierCostModel
from .executor import DEFAULT_SEGMENT_ROWS, TieredOpResult, TieredRuntime
from .policy import PlacementDecision, PlacementPolicy, SegmentStats
from .segments import SegmentedRelation, SegmentKey

__all__ = [
    "DEFAULT_SEGMENT_ROWS",
    "PlacementDecision",
    "PlacementPolicy",
    "SegmentCache",
    "SegmentKey",
    "SegmentStats",
    "SegmentedRelation",
    "TierCostModel",
    "TieredOpResult",
    "TieredRuntime",
]
