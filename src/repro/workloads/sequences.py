"""Star-schema workloads for sequences of joins (Section 5.2.7).

A fact table ``F`` has N foreign keys ``FK_1..FK_N`` referencing
dimension tables ``D_1..D_N``, each with a primary key and one payload
column.  The paper uses ``|F| = 2^27`` and ``|D_i| = 2^25``; the
generator takes arbitrary sizes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import WorkloadError
from ..relational.relation import Relation
from ..relational.types import INT32, ColumnType, column_type


def generate_star_schema(
    fact_rows: int,
    dim_rows: int,
    num_dimensions: int,
    key_type: ColumnType = INT32,
    payload_type: ColumnType = INT32,
    seed: int = 0,
) -> Tuple[Relation, List[str], List[Relation]]:
    """Build (fact, fk_column_names, dimensions) for an N-join pipeline.

    Every fact foreign key matches some dimension primary key (100%
    match ratio, as in Figure 16).
    """
    if fact_rows <= 0 or dim_rows <= 0 or num_dimensions <= 0:
        raise WorkloadError("fact_rows, dim_rows and num_dimensions must be positive")
    key_t = column_type(key_type)
    pay_t = column_type(payload_type)
    rng = np.random.default_rng(seed)

    fk_names = [f"FK{i + 1}" for i in range(num_dimensions)]
    fact_columns = [
        (name, rng.integers(0, dim_rows, fact_rows).astype(key_t.dtype))
        for name in fk_names
    ]
    fact = Relation(fact_columns, key=fk_names[0], name="F")

    dimensions = []
    for i in range(num_dimensions):
        keys = rng.permutation(dim_rows).astype(key_t.dtype)
        payload = rng.integers(0, 1 << 20, dim_rows).astype(pay_t.dtype)
        dimensions.append(
            Relation(
                [("key", keys), (f"P{i + 1}", payload)], key="key", name=f"D{i + 1}"
            )
        )
    return fact, fk_names, dimensions
