"""Workload driver: synthetic tenants against a :class:`QueryServer`.

Serving papers characterize systems with two arrival disciplines, both
provided here on the simulated clock:

* **open loop** — queries arrive by a Poisson process at a fixed rate,
  regardless of how the server keeps up.  Overload therefore surfaces
  honestly: queues grow, latency tails stretch, and past the admission
  bound arrivals are *rejected* (backpressure) rather than silently
  buffered.
* **closed loop** — a fixed population of clients each submits its next
  query the moment the previous one finishes.  With all queries
  submitted up front, the server's stream count is exactly the
  closed-loop concurrency, so this mode measures saturated throughput.

Template popularity is Zipf-distributed (rank ``i`` drawn with
probability proportional to ``(i+1)**-zipf_factor``), matching the
skewed query mix real serving sees — and what makes the plan/result
caches earn their keep: a hot template's second arrival hits.
All randomness comes from one seeded generator, so a driver run is a
pure function of ``(templates, discipline, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ServeConfigError
from ..query.plan import PlanNode
from .server import QueryServer, ServeReport


@dataclass(frozen=True)
class QueryTemplate:
    """One reusable logical plan with an optional popularity weight."""

    name: str
    plan: PlanNode
    weight: float = 1.0


@dataclass
class TemplateStats:
    """Per-template serving statistics."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    result_cache_hits: int = 0
    plan_cache_hits: int = 0
    latency_sum_s: float = 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.latency_sum_s / self.completed if self.completed else 0.0


@dataclass
class DriverReport:
    """A :class:`~repro.serve.server.ServeReport` plus the template mix."""

    discipline: str
    report: ServeReport
    templates: Dict[str, TemplateStats] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"discipline: {self.discipline}", self.report.render()]
        for name, stats in self.templates.items():
            lines.append(
                f"template {name}: {stats.submitted} submitted, "
                f"{stats.completed} completed, {stats.rejected} rejected, "
                f"{stats.result_cache_hits} result-cache hits, "
                f"{stats.plan_cache_hits} plan-cache hits, "
                f"mean latency {stats.mean_latency_s * 1e3:.3f} ms"
            )
        return "\n".join(lines)


class WorkloadDriver:
    """Drives Zipf-popular query templates at a server.

    The driver only *submits*; service order, admission and caching are
    the server's.  ``run_open_loop``/``run_closed_loop`` both drain the
    server completely and report over exactly the queries this driver
    submitted (tagged with their template names).
    """

    def __init__(
        self,
        server: QueryServer,
        templates: Sequence[QueryTemplate],
        zipf_factor: float = 1.1,
        seed: int = 0,
    ):
        if not templates:
            raise ServeConfigError("the driver needs at least one template")
        names = [t.name for t in templates]
        if len(set(names)) != len(names):
            raise ServeConfigError(f"duplicate template names in {names}")
        if zipf_factor < 0:
            raise ServeConfigError(
                f"zipf_factor must be >= 0, got {zipf_factor}"
            )
        self.server = server
        self.templates = list(templates)
        self.zipf_factor = zipf_factor
        self.rng = np.random.default_rng(seed)
        weights = np.array(
            [
                template.weight * (rank + 1) ** (-zipf_factor)
                for rank, template in enumerate(self.templates)
            ],
            dtype=np.float64,
        )
        if not np.all(weights > 0):
            raise ServeConfigError("template weights must be positive")
        self._cdf = np.cumsum(weights) / weights.sum()

    def _draw_template(self) -> QueryTemplate:
        rank = int(np.searchsorted(self._cdf, self.rng.random(), side="right"))
        return self.templates[min(rank, len(self.templates) - 1)]

    # -- disciplines -------------------------------------------------------

    def run_open_loop(
        self,
        num_queries: int,
        arrival_rate_qps: float,
        priority: int = 0,
    ) -> DriverReport:
        """Poisson arrivals at *arrival_rate_qps* on the simulated clock."""
        if arrival_rate_qps <= 0:
            raise ServeConfigError(
                f"arrival_rate_qps must be positive, got {arrival_rate_qps}"
            )
        submitted = []
        at_s = self.server.clock_s
        for _ in range(num_queries):
            at_s += float(self.rng.exponential(1.0 / arrival_rate_qps))
            template = self._draw_template()
            query_id = self.server.submit(
                template.plan, at_s=at_s, priority=priority, tag=template.name
            )
            submitted.append(query_id)
        self.server.run()
        return self._report("open-loop", submitted)

    def run_closed_loop(self, num_queries: int, priority: int = 0) -> DriverReport:
        """A saturated client population: everything submitted at once.

        The server's ``streams`` bound is the effective concurrency and
        its ``queue_depth`` must hold the waiting remainder, or the
        overflow is rejected as backpressure (reported, not raised).
        """
        submitted = []
        now = self.server.clock_s
        for _ in range(num_queries):
            template = self._draw_template()
            query_id = self.server.submit(
                template.plan, at_s=now, priority=priority, tag=template.name
            )
            submitted.append(query_id)
        self.server.run()
        return self._report("closed-loop", submitted)

    # -- reporting ---------------------------------------------------------

    def _report(self, discipline: str, query_ids: Sequence[int]) -> DriverReport:
        wanted = set(query_ids)
        stats: Dict[str, TemplateStats] = {
            template.name: TemplateStats() for template in self.templates
        }
        for outcome in self.server.outcomes:
            if outcome.query_id not in wanted:
                continue
            per = stats[outcome.tag]
            per.submitted += 1
            if outcome.status == "completed":
                per.completed += 1
                per.latency_sum_s += outcome.latency_s
                per.result_cache_hits += int(outcome.result_cache_hit)
                per.plan_cache_hits += int(outcome.plan_cache_hit)
            else:
                per.rejected += 1
        return DriverReport(
            discipline=discipline,
            report=self.server.report(),
            templates=stats,
        )
