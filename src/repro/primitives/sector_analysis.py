"""Sector analysis of gather/scatter index arrays (exact and sampled).

On Ampere GPUs, a warp's 32 loads are combined into memory transactions
of 32-byte *sectors*.  The number of distinct sectors a warp touches is
what Nsight Compute reports as "sectors per request" (Table 4 of the
paper) and is the physical quantity that separates clustered from
unclustered GATHERs.  This module computes it from the actual index
arrays the algorithms produce — the GFUR/GFTR difference stays an
emergent property of the maps, never a declared label.

Two accounting modes exist:

``exact``
    The original warp-by-warp analysis: reshape into 32-lane warps, sort
    each warp's sector ids, count distinct runs, and count the globally
    distinct sectors.  O(n log 32) per map — accurate but it dominates
    bench wall-clock at paper scale (2^27 tuples).

``sampled``
    A deterministic stride sample of at most :data:`SAMPLE_WARPS` full
    warps is analyzed exactly and scaled to the full map; the globally
    distinct ("cold") sector count uses the closed-form occupancy
    estimate ``R * (1 - (1 - 1/R)^n)`` over the map's sector range.
    O(sample) per map, within a few percent of exact on the access
    patterns the join/group-by algorithms produce (see
    ``tests/primitives/test_sector_equivalence.py`` for the asserted
    error bands).

The mode is selected with :func:`set_sector_mode` or the
``REPRO_SECTOR_MODE`` environment variable (``auto`` / ``exact`` /
``sampled``).  ``auto`` — the default — uses exact analysis below
:data:`AUTO_EXACT_THRESHOLD` indices and sampling above it, so
small-scale tests and smoke runs keep bit-identical accounting while
native-scale benches get the fast path.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from ..gpusim.device import SECTOR_BYTES, WARP_SIZE

#: Index-count threshold at which ``auto`` mode switches to sampling.
#: Sits above the default bench scale (2^27 * 2^-9 = 2^18 indices), so
#: every committed bench_results artifact keeps bit-identical exact
#: accounting; only native-scale runs (2^21 and up) sample.
AUTO_EXACT_THRESHOLD = 1 << 20

#: Maximum number of full warps analyzed exactly in sampled mode.
SAMPLE_WARPS = 2048

_VALID_MODES = ("auto", "exact", "sampled")

_mode = os.environ.get("REPRO_SECTOR_MODE", "auto").strip().lower() or "auto"
if _mode not in _VALID_MODES:
    raise ValueError(
        f"REPRO_SECTOR_MODE must be one of {_VALID_MODES}, got {_mode!r}"
    )


def set_sector_mode(mode: str) -> str:
    """Select the sector-accounting mode; returns the previous mode."""
    global _mode
    if mode not in _VALID_MODES:
        raise ValueError(f"sector mode must be one of {_VALID_MODES}, got {mode!r}")
    previous = _mode
    _mode = mode
    return previous


def get_sector_mode() -> str:
    """The currently selected sector-accounting mode."""
    return _mode


@dataclass(frozen=True)
class SectorStats:
    """Warp-level random-access statistics of an index array.

    Attributes
    ----------
    requests:
        Number of warp-level load/store requests (one per warp).
    sector_touches:
        Sum over warps of the number of distinct sectors the warp touches.
    cold_sectors:
        Number of globally distinct sectors touched by the whole map; the
        first touch of each must be served by DRAM regardless of locality.
    mean_warp_span_bytes:
        Mean over warps of (max byte address - min byte address + element
        size); the cost model compares this against the L2 capacity to
        decide whether repeated touches stay cache resident.
    """

    requests: int
    sector_touches: int
    cold_sectors: int
    mean_warp_span_bytes: float

    @property
    def sectors_per_request(self) -> float:
        if not self.requests:
            return 0.0
        return self.sector_touches / self.requests


def analyze_indices(indices: np.ndarray, element_bytes: int) -> SectorStats:
    """Compute :class:`SectorStats` for gathering elements at *indices*.

    ``indices`` are element positions into a source array whose elements
    are ``element_bytes`` wide (the source is assumed element-aligned, so
    a 4- or 8-byte element never crosses a 32-byte sector boundary).
    Dispatches to exact or sampled analysis per the current mode.
    """
    n = int(indices.size)
    if n == 0:
        return SectorStats(0, 0, 0, 0.0)
    if element_bytes <= 0 or element_bytes > SECTOR_BYTES:
        raise ValueError(f"unsupported element size {element_bytes}")
    if _mode == "exact" or (_mode == "auto" and n < AUTO_EXACT_THRESHOLD):
        return _analyze_exact(indices, element_bytes)
    return _analyze_sampled(indices, element_bytes)


def _analyze_exact(indices: np.ndarray, element_bytes: int) -> SectorStats:
    n = int(indices.size)
    offsets = indices.astype(np.int64, copy=False) * element_bytes
    sectors = offsets // SECTOR_BYTES

    # Pad the final partial warp by repeating its last entry so it adds no
    # spurious distinct sectors or span.
    pad = (-n) % WARP_SIZE
    if pad:
        offsets = np.concatenate([offsets, np.full(pad, offsets[-1])])
        sectors = np.concatenate([sectors, np.full(pad, sectors[-1])])

    warp_offsets = offsets.reshape(-1, WARP_SIZE)
    warp_sectors = np.sort(sectors.reshape(-1, WARP_SIZE), axis=1)

    distinct_per_warp = 1 + np.count_nonzero(np.diff(warp_sectors, axis=1), axis=1)
    spans = (
        warp_offsets.max(axis=1) - warp_offsets.min(axis=1) + element_bytes
    ).astype(np.float64)

    # Globally distinct sectors via sort + boundary count — same integer
    # as np.unique(sectors).size without the hash-based unique pass.
    flat = np.sort(sectors, kind="quicksort")
    cold = 1 + int(np.count_nonzero(flat[1:] != flat[:-1]))

    return SectorStats(
        requests=warp_sectors.shape[0],
        sector_touches=int(distinct_per_warp.sum()),
        cold_sectors=cold,
        mean_warp_span_bytes=float(spans.mean()),
    )


def _analyze_sampled(indices: np.ndarray, element_bytes: int) -> SectorStats:
    n = int(indices.size)
    requests = -(-n // WARP_SIZE)
    full_warps = n // WARP_SIZE
    if full_warps == 0:
        # Fewer than 32 indices: sampling buys nothing, analyze exactly.
        return _analyze_exact(indices, element_bytes)

    # Deterministic stride sample of full warps: exact per-warp analysis
    # on the sample, scaled to the whole map.  Only the sampled lanes are
    # materialized — no O(n) transform of the full index array.
    stride = max(1, full_warps // SAMPLE_WARPS)
    warp_starts = np.arange(0, full_warps * WARP_SIZE, stride * WARP_SIZE)
    lane = np.arange(WARP_SIZE)
    sample_idx = warp_starts[:, None] + lane[None, :]
    warp_offsets = indices[sample_idx].astype(np.int64) * element_bytes
    warp_sectors = np.sort(warp_offsets // SECTOR_BYTES, axis=1)

    distinct_per_warp = 1 + np.count_nonzero(np.diff(warp_sectors, axis=1), axis=1)
    spans = (
        warp_offsets.max(axis=1) - warp_offsets.min(axis=1) + element_bytes
    ).astype(np.float64)

    sector_touches = int(round(float(distinct_per_warp.mean()) * requests))
    sector_touches = min(max(sector_touches, requests), requests * WARP_SIZE)

    # Cold sectors: occupancy of the map's sector range under n draws.
    # E[distinct] = R * (1 - (1 - 1/R)^n), computed in log space.  The
    # range comes from exact min/max reductions over the full map (cheap,
    # allocation-free); floor division commutes with min/max for a
    # positive element size.
    lo = int(indices.min()) * element_bytes // SECTOR_BYTES
    hi = int(indices.max()) * element_bytes // SECTOR_BYTES
    sector_range = hi - lo + 1
    if sector_range <= 1:
        cold = 1
    else:
        occupied = sector_range * -math.expm1(n * math.log1p(-1.0 / sector_range))
        cold = max(1, int(round(occupied)))
    cold = min(cold, sector_touches)

    return SectorStats(
        requests=requests,
        sector_touches=sector_touches,
        cold_sectors=cold,
        mean_warp_span_bytes=float(spans.mean()),
    )


def sequential_stats(num_items: int, element_bytes: int) -> SectorStats:
    """Stats of a perfectly sequential access of *num_items* elements.

    Provided for reference and tests; a sequential stream touches
    ``element_bytes / SECTOR_BYTES`` sectors per element, all cold, with a
    one-warp span.
    """
    if num_items == 0:
        return SectorStats(0, 0, 0, 0.0)
    requests = -(-num_items // WARP_SIZE)
    total_bytes = num_items * element_bytes
    sectors = -(-total_bytes // SECTOR_BYTES)
    per_warp_span = min(num_items, WARP_SIZE) * element_bytes
    return SectorStats(
        requests=requests,
        sector_touches=sectors,
        cold_sectors=sectors,
        mean_warp_span_bytes=float(per_warp_span),
    )
