"""ext01: out-of-core joins across the device-memory boundary.

Extension beyond the paper's in-memory scope (its related work covers
the out-of-memory case).  Fixes the workload and sweeps the device
memory *budget* from comfortable to 1/8 of the join's footprint,
measuring the staging penalty: host partitioning, PCIe transfers, and
the per-chunk device time.  Throughput falls off a cliff at the memory
boundary — the behaviour systems like [35, 55, 60] engineer around.
"""

from __future__ import annotations

from ...joins.out_of_core import OutOfCoreJoin, estimate_join_footprint
from ...joins.planner import make_algorithm
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 26
BUDGET_FACTORS = (2.0, 1.0, 0.5, 0.25, 0.125)


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS),
        s_rows=setup.rows(2 * PAPER_ROWS),
        r_payload_columns=2,
        s_payload_columns=2,
        seed=seed,
    )
    r, s = generate_join_workload(spec)
    footprint = estimate_join_footprint(r, s)

    result = ExperimentResult(
        experiment_id="ext01",
        title="Out-of-core joins vs device memory budget (PHJ-OM inner)",
        headers=["budget/footprint", "chunks", "host_ms", "transfer_ms",
                 "device_ms", "total_ms", "Mtuples/s"],
    )
    throughputs = {}
    for factor in BUDGET_FACTORS:
        budget = int(footprint * factor)
        ooc = OutOfCoreJoin(
            make_algorithm("PHJ-OM", setup.config), device_budget_bytes=budget
        )
        res = ooc.join(r, s, device=setup.device, seed=seed)
        throughputs[factor] = res.throughput_tuples_per_s
        result.add_row(
            factor,
            res.num_chunks,
            res.host_partition_seconds * 1e3,
            res.transfer_seconds * 1e3,
            res.device_seconds * 1e3,
            res.total_seconds * 1e3,
            res.throughput_tuples_per_s / 1e6,
        )
    result.findings["in_memory_over_smallest_budget"] = (
        throughputs[BUDGET_FACTORS[0]] / throughputs[BUDGET_FACTORS[-1]]
    )
    result.findings["monotone_degradation"] = float(
        all(
            throughputs[a] >= throughputs[b] * 0.99
            for a, b in zip(BUDGET_FACTORS, BUDGET_FACTORS[1:])
        )
    )
    result.add_note(
        "all budget points verified to produce the identical join output"
    )
    return result
