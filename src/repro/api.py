"""Top-level convenience API.

Most users need three calls::

    from repro import Relation, join, group_by

    result = join(r, s)                      # planner picks the algorithm
    result = join(r, s, algorithm="PHJ-OM")  # force one
    agg = group_by(keys, {"v": values}, {"v": "sum"})

Scale-out across simulated devices is one keyword away
(``join(r, s, shards=4)``); lower-level control (explicit contexts,
configs, devices, per-phase inspection, cluster topologies) lives in
``repro.joins``, ``repro.aggregation`` and ``repro.cluster``.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Union

import numpy as np

from .errors import ShardedExecutionWarning

from .aggregation.base import AggSpec, GroupByConfig, GroupByResult
from .aggregation.planner import (
    GroupByWorkloadProfile,
    estimate_group_cardinality,
    make_groupby_algorithm,
    recommend_groupby_algorithm,
)
from .gpusim.device import A100, DeviceSpec, get_device
from .joins.base import JoinConfig, JoinResult
from .joins.planner import (
    JoinWorkloadProfile,
    make_algorithm,
    recommend_join_algorithm,
)
from .relational.relation import Relation


def _resolve_device(device: Union[str, DeviceSpec]) -> DeviceSpec:
    if isinstance(device, DeviceSpec):
        return device
    return get_device(device)


def query_server(device: Union[str, DeviceSpec] = A100, **kwargs):
    """A :class:`~repro.serve.server.QueryServer` on *device*.

    The serving layer multiplexes concurrent queries over logical
    streams with admission control and plan/result caching; every knob
    of :class:`~repro.serve.server.QueryServer` passes through
    (``streams=``, ``queue_depth=``, ``shards=``, ...).

    >>> import numpy as np
    >>> from repro import Relation, query_server
    >>> from repro.query.plan import Join, Scan
    >>> r = Relation.from_key_payloads(
    ...     np.arange(64, dtype=np.int32),
    ...     [np.arange(64, dtype=np.int32)], payload_prefix="r")
    >>> s = Relation.from_key_payloads(
    ...     np.arange(64, dtype=np.int32).repeat(2),
    ...     [np.arange(128, dtype=np.int32)], payload_prefix="s")
    >>> server = query_server(streams=2, seed=0)
    >>> _ = server.register("r", r); _ = server.register("s", s)
    >>> outcome = server.query(Join(Scan(r), Scan(s), algorithm="PHJ-OM"))
    >>> outcome.status, outcome.output.num_rows
    ('completed', 128)
    """
    from .serve.server import QueryServer

    return QueryServer(device=_resolve_device(device), **kwargs)


def _check_sharded_fault_plan(fault_plan, shards: int) -> None:
    """Warn when sharding strips a plan's single-device OOM pressure."""
    if fault_plan is not None and fault_plan.capacity_frac is not None:
        warnings.warn(
            ShardedExecutionWarning(
                f"shards={shards} ignores fault_plan.capacity_frac: "
                "device-OOM pressure and its graceful degradation are "
                "single-device mechanisms; transient faults still inject"
            ),
            stacklevel=3,
        )


def join(
    r: Relation,
    s: Relation,
    algorithm: str = "auto",
    device: Union[str, DeviceSpec] = A100,
    config: Optional[JoinConfig] = None,
    match_ratio: Optional[float] = None,
    zipf_factor: float = 0.0,
    seed: Optional[int] = None,
    shards: int = 1,
    interconnect="nvlink-mesh",
    fault_plan=None,
) -> JoinResult:
    """Inner equi-join ``R ⋈ S`` on each relation's key column.

    R is the build (primary-key) side, S the probe side.  With
    ``algorithm="auto"`` the Figure 18 decision tree picks the
    implementation from the relations' shapes (pass ``match_ratio`` /
    ``zipf_factor`` estimates for a better decision).  Returns a
    :class:`~repro.joins.base.JoinResult` whose ``output`` is the real
    materialized join and whose times/memory are simulated.

    ``shards=N`` with ``N > 1`` runs the join sharded across a simulated
    N-device cluster over *interconnect* (``"nvlink-mesh"``,
    ``"pcie-host"``, or an
    :class:`~repro.cluster.topology.InterconnectSpec`), returning a
    :class:`~repro.cluster.sharded.ShardedJoinResult` with the same
    rows and the cluster-clock timing.

    >>> import numpy as np
    >>> r = Relation.from_key_payloads(
    ...     np.arange(100, dtype=np.int32),
    ...     [np.arange(100, dtype=np.int32)], payload_prefix="r")
    >>> s = Relation.from_key_payloads(
    ...     np.arange(100, dtype=np.int32).repeat(3),
    ...     [np.arange(300, dtype=np.int32)], payload_prefix="s")
    >>> result = join(r, s, algorithm="PHJ-OM", seed=0)
    >>> result.algorithm, result.matches
    ('PHJ-OM', 300)
    >>> sharded = join(r, s, algorithm="PHJ-OM", seed=0, shards=2)
    >>> sharded.matches, sharded.num_devices
    (300, 2)

    ``fault_plan=`` injects a :class:`~repro.faults.FaultPlan`: kernels
    retry with simulated backoff, and under the plan's memory pressure
    the join degrades to the staged out-of-core path instead of raising
    (returning a :class:`~repro.faults.ResilientJoinResult` with the
    same rows).

    >>> from repro.faults import FaultPlan
    >>> faulty = join(r, s, algorithm="PHJ-OM", seed=0,
    ...               fault_plan=FaultPlan(seed=1, kernel_fault_rate=0.2))
    >>> faulty.output.equals_unordered(result.output), faulty.degraded
    (True, False)
    """
    spec = _resolve_device(device)
    if shards > 1:
        from .cluster.sharded import sharded_join

        _check_sharded_fault_plan(fault_plan, shards)
        return sharded_join(
            r,
            s,
            algorithm=algorithm,
            device=spec,
            num_devices=shards,
            interconnect=interconnect,
            config=config,
            seed=seed,
            fault_plan=fault_plan,
        )
    if fault_plan is not None:
        from .faults.recovery import resilient_join

        return resilient_join(
            r,
            s,
            algorithm=algorithm,
            device=spec,
            config=config,
            seed=seed,
            fault_plan=fault_plan,
        )
    if algorithm == "auto":
        profile = JoinWorkloadProfile.from_relations(
            r,
            s,
            match_ratio=match_ratio if match_ratio is not None else 1.0,
            zipf_factor=zipf_factor,
        )
        algorithm = recommend_join_algorithm(profile).algorithm
    impl = make_algorithm(algorithm, config)
    return impl.join(r, s, device=spec, seed=seed)


def _coerce_aggregates(aggregates) -> List[AggSpec]:
    if isinstance(aggregates, dict):
        return [AggSpec(column, op) for column, op in aggregates.items()]
    specs = []
    for item in aggregates:
        if isinstance(item, AggSpec):
            specs.append(item)
        else:
            column, op = item
            specs.append(AggSpec(column, op))
    return specs


def group_by(
    keys: np.ndarray,
    values: Dict[str, np.ndarray],
    aggregates,
    algorithm: str = "auto",
    device: Union[str, DeviceSpec] = A100,
    config: Optional[GroupByConfig] = None,
    zipf_factor: float = 0.0,
    seed: Optional[int] = None,
    shards: int = 1,
    interconnect="nvlink-mesh",
    fault_plan=None,
) -> GroupByResult:
    """Grouped aggregation of *values* by *keys*.

    ``aggregates`` maps value-column name to operator (``sum``,
    ``count``, ``min``, ``max``, ``mean``), or is a list of
    :class:`AggSpec` / ``(column, op)`` pairs.  With ``algorithm="auto"``
    the planner picks hash, sort, or partitioned aggregation from the
    estimated group cardinality.

    ``shards=N`` with ``N > 1`` shards the aggregation across a
    simulated N-device cluster (groups are shuffled whole, so results
    stay bit-identical), returning a
    :class:`~repro.cluster.sharded.ShardedGroupByResult`.

    >>> import numpy as np
    >>> keys = np.array([3, 1, 3, 1, 3], dtype=np.int32)
    >>> agg = group_by(keys, {"v": np.arange(5, dtype=np.int32)}, {"v": "sum"})
    >>> agg.output["group_key"].tolist(), agg.output["sum_v"].tolist()
    ([1, 3], [4, 6])
    >>> sharded = group_by(
    ...     keys, {"v": np.arange(5, dtype=np.int32)}, {"v": "sum"}, shards=2)
    >>> sharded.output["sum_v"].tolist()
    [4, 6]
    """
    spec = _resolve_device(device)
    agg_specs = _coerce_aggregates(aggregates)
    if shards > 1:
        from .cluster.sharded import sharded_group_by

        _check_sharded_fault_plan(fault_plan, shards)
        return sharded_group_by(
            keys,
            values,
            agg_specs,
            algorithm=algorithm,
            device=spec,
            num_devices=shards,
            interconnect=interconnect,
            config=config,
            seed=seed,
            fault_plan=fault_plan,
        )
    if fault_plan is not None:
        from .faults.recovery import resilient_group_by

        return resilient_group_by(
            keys,
            values,
            agg_specs,
            algorithm=algorithm,
            device=spec,
            config=config,
            seed=seed,
            fault_plan=fault_plan,
        )
    if algorithm == "auto":
        profile = GroupByWorkloadProfile(
            rows=int(keys.size),
            estimated_groups=estimate_group_cardinality(keys),
            value_columns=len(values),
            key_bytes=keys.dtype.itemsize,
            zipf_factor=zipf_factor,
        )
        algorithm = recommend_groupby_algorithm(profile, device=spec).algorithm
    impl = make_groupby_algorithm(algorithm, config)
    return impl.group_by(keys, values, agg_specs, device=spec, seed=seed)
