"""Linear-probing hash table: real inserts, probes, duplicates, touches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.primitives.hash_table import (
    EMPTY,
    build_table,
    probe_table,
    table_capacity,
)


class TestCapacity:
    def test_power_of_two_and_load_factor(self):
        assert table_capacity(100, 0.5) >= 200
        cap = table_capacity(100)
        assert cap & (cap - 1) == 0

    def test_minimum(self):
        assert table_capacity(0) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            table_capacity(-1)


class TestBuild:
    def test_all_keys_inserted(self):
        keys = np.arange(100, dtype=np.int64)
        result = build_table(keys, keys * 2, table_capacity(100))
        occupied = result.table_keys != EMPTY
        assert occupied.sum() == 100
        # values co-located with their keys
        assert np.array_equal(
            result.table_values[occupied], result.table_keys[occupied] * 2
        )

    def test_duplicates_get_separate_slots(self):
        keys = np.array([7, 7, 7], dtype=np.int64)
        result = build_table(keys, np.arange(3, dtype=np.int64), 8)
        assert (result.table_keys == 7).sum() == 3

    def test_touched_slots_at_least_one_per_insert(self):
        keys = np.arange(64, dtype=np.int64)
        result = build_table(keys, keys, 128)
        assert result.touched_slots.size >= 64

    def test_collisions_increase_touches(self):
        # Full-ish table forces probing chains.
        keys = np.arange(96, dtype=np.int64)
        loose = build_table(keys, keys, 1024)
        tight = build_table(keys, keys, 128)
        assert tight.touched_slots.size >= loose.touched_slots.size

    def test_overfull_rejected(self):
        with pytest.raises(ReproError, match="insert"):
            build_table(np.arange(10, dtype=np.int64), np.arange(10), 8)

    def test_negative_keys_rejected(self):
        with pytest.raises(ReproError, match="non-negative"):
            build_table(np.array([-1], dtype=np.int64), np.array([0]), 8)


class TestProbe:
    def test_finds_matches(self):
        keys = np.array([1, 5, 9], dtype=np.int64)
        built = build_table(keys, np.array([10, 50, 90], dtype=np.int64), 8)
        probe = probe_table(built.table_keys, built.table_values,
                            np.array([5, 2, 9], dtype=np.int64))
        assert list(probe.probe_indices) == [0, 2]
        assert list(probe.build_values) == [50, 90]

    def test_finds_all_duplicates(self):
        keys = np.array([4, 4, 8], dtype=np.int64)
        built = build_table(keys, np.array([0, 1, 2], dtype=np.int64), 16)
        probe = probe_table(built.table_keys, built.table_values,
                            np.array([4], dtype=np.int64))
        assert list(probe.probe_indices) == [0, 0]
        assert sorted(probe.build_values) == [0, 1]

    def test_probe_major_order(self):
        keys = np.arange(50, dtype=np.int64)
        built = build_table(keys, keys, 128)
        probe_keys = np.array([30, 10, 20, 10], dtype=np.int64)
        probe = probe_table(built.table_keys, built.table_values, probe_keys)
        assert list(probe.probe_indices) == [0, 1, 2, 3]

    def test_no_matches(self):
        built = build_table(np.array([1], dtype=np.int64), np.array([0]), 8)
        probe = probe_table(built.table_keys, built.table_values,
                            np.array([99], dtype=np.int64))
        assert probe.probe_indices.size == 0

    def test_empty_probe(self):
        built = build_table(np.array([1], dtype=np.int64), np.array([0]), 8)
        probe = probe_table(built.table_keys, built.table_values,
                            np.empty(0, dtype=np.int64))
        assert probe.probe_indices.size == 0
        assert probe.rounds == 0


@settings(max_examples=40, deadline=None)
@given(
    build=st.lists(st.integers(0, 200), min_size=1, max_size=120),
    probe=st.lists(st.integers(0, 250), max_size=120),
)
def test_probe_matches_reference_semantics(build, probe):
    build_arr = np.asarray(build, dtype=np.int64)
    probe_arr = np.asarray(probe, dtype=np.int64)
    built = build_table(build_arr, np.arange(build_arr.size, dtype=np.int64),
                        table_capacity(build_arr.size))
    result = probe_table(built.table_keys, built.table_values, probe_arr)
    pairs = set(zip(result.probe_indices.tolist(), result.build_values.tolist()))
    expected = {
        (si, bi)
        for si, sk in enumerate(probe)
        for bi, bk in enumerate(build)
        if sk == bk
    }
    assert pairs == expected
