"""Column data types.

The paper evaluates joins over mixtures of 4-byte and 8-byte integer
attributes (Section 5.2.5), with strings dictionary-encoded to integers
(Section 5.3).  We model exactly those physical types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ColumnType:
    """A physical column type: a numpy dtype plus a display name."""

    name: str
    dtype: np.dtype

    @property
    def itemsize(self) -> int:
        return int(self.dtype.itemsize)

    def __str__(self) -> str:
        return self.name


#: 4-byte signed integer — the conventional key/payload type of prior work.
INT32 = ColumnType("int32", np.dtype(np.int32))
#: 8-byte signed integer — wide keys/payloads (Section 5.2.5, Figure 15).
INT64 = ColumnType("int64", np.dtype(np.int64))

_BY_NAME = {t.name: t for t in (INT32, INT64)}
_BY_DTYPE = {t.dtype: t for t in (INT32, INT64)}


def column_type(spec) -> ColumnType:
    """Coerce a name, numpy dtype, or ColumnType into a ColumnType."""
    if isinstance(spec, ColumnType):
        return spec
    if isinstance(spec, str):
        if spec in _BY_NAME:
            return _BY_NAME[spec]
        raise KeyError(f"unknown column type {spec!r}; known: {sorted(_BY_NAME)}")
    dtype = np.dtype(spec)
    if dtype in _BY_DTYPE:
        return _BY_DTYPE[dtype]
    raise KeyError(f"unsupported dtype {dtype}; supported: int32, int64")


def id_dtype(num_rows: int) -> np.dtype:
    """Dtype for tuple identifiers: 4-byte while they fit (as in the paper)."""
    return np.dtype(np.int32) if num_rows <= np.iinfo(np.int32).max else np.dtype(np.int64)
