"""GATHER/SCATTER: data correctness and traffic accounting."""

import numpy as np
import pytest

from repro.gpusim import A100, GPUContext
from repro.primitives.gather import gather, gather_stats_only, scatter


@pytest.fixture
def ctx():
    return GPUContext(device=A100)


class TestGather:
    def test_gather_values(self, ctx):
        src = np.array([10, 20, 30, 40], dtype=np.int32)
        out = gather(ctx, src, np.array([3, 0, 2], dtype=np.int32))
        assert list(out) == [40, 10, 30]

    def test_gather_empty_map(self, ctx):
        out = gather(ctx, np.arange(4, dtype=np.int32), np.empty(0, dtype=np.int32))
        assert out.size == 0

    def test_stats_record_map_and_output_streams(self, ctx):
        src = np.arange(1000, dtype=np.int32)
        index_map = np.arange(1000, dtype=np.int32)
        gather(ctx, src, index_map, label="x")
        record = ctx.timeline.records()[-1]
        assert record.stats.seq_read_bytes == index_map.nbytes
        assert record.stats.seq_write_bytes == 4000
        assert record.stats.name == "gather:x"

    def test_random_map_costs_more_than_sorted(self):
        rng = np.random.default_rng(0)
        n = 1 << 16
        src = np.arange(n, dtype=np.int32)
        perm = rng.permutation(n).astype(np.int32)
        ctx_r = GPUContext(device=A100)
        gather(ctx_r, src, perm)
        ctx_s = GPUContext(device=A100)
        gather(ctx_s, src, np.sort(perm))
        assert ctx_r.elapsed_seconds > ctx_s.elapsed_seconds

    def test_phase_attribution(self, ctx):
        gather(ctx, np.arange(8, dtype=np.int32), np.arange(8, dtype=np.int32),
               phase="materialize")
        assert "materialize" in ctx.timeline.phase_seconds()

    def test_gather_preserves_dtype(self, ctx):
        src = np.arange(8, dtype=np.int64)
        out = gather(ctx, src, np.arange(8, dtype=np.int32))
        assert out.dtype == np.int64


class TestScatter:
    def test_scatter_values(self, ctx):
        out = np.zeros(4, dtype=np.int32)
        scatter(ctx, np.array([7, 8], dtype=np.int32),
                np.array([2, 0], dtype=np.int32), out)
        assert list(out) == [8, 0, 7, 0]

    def test_scatter_empty(self, ctx):
        out = np.zeros(4, dtype=np.int32)
        scatter(ctx, np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int32), out)
        assert list(out) == [0, 0, 0, 0]

    def test_scatter_returns_out(self, ctx):
        out = np.zeros(2, dtype=np.int32)
        assert scatter(ctx, np.array([1], dtype=np.int32),
                       np.array([1], dtype=np.int32), out) is out

    def test_scatter_charges_random_writes(self, ctx):
        rng = np.random.default_rng(1)
        n = 1 << 12
        out = np.zeros(n, dtype=np.int32)
        scatter(ctx, np.arange(n, dtype=np.int32),
                rng.permutation(n).astype(np.int32), out)
        record = ctx.timeline.records()[-1]
        assert record.stats.random_sector_touches > 0


class TestStatsOnly:
    def test_charges_without_moving_data(self, ctx):
        gather_stats_only(ctx, np.arange(64, dtype=np.int32), 4, 256)
        assert ctx.timeline.kernel_count() == 1
        assert ctx.elapsed_seconds > 0
