"""Shared machinery for the differential oracle suite.

Every algorithm in the library is checked against the *same* pure-numpy
oracle (:func:`repro.relational.reference_join` /
:func:`repro.relational.reference_groupby`) on a randomized workload
sweep.  The sweep is generated once, deterministically, from a fixed
seed so failures reproduce; it varies dtypes, match ratios, zipf skew
and payload widths (including the 1-payload narrow path).
"""

from __future__ import annotations

import numpy as np

from repro.relational import Relation
from repro.workloads import GroupByWorkloadSpec, JoinWorkloadSpec

#: Join algorithms constructed by name through the planner factory.
JOIN_NAMES = ["SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM", "NPJ"]

#: Group-by strategies, including the gfur write-pattern variants.
GROUPBY_NAMES = ["HASH-AGG", "SORT-AGG", "SORT-AGG/gfur", "PART-AGG", "PART-AGG/gfur"]


def _random_join_specs(count: int, seed: int = 20250806):
    """A deterministic sweep of randomized join workload specs."""
    rng = np.random.default_rng(seed)
    specs = {}
    for i in range(count):
        key_type = rng.choice(["int32", "int64"])
        match_ratio = float(rng.choice([0.0, 0.25, 0.5, 1.0]))
        zipf = float(rng.choice([0.0, 0.0, 0.75, 1.5]))
        # Every third spec is narrow (one payload per side) so the
        # specialised narrow execution path is part of the sweep.
        narrow = i % 3 == 0
        specs[f"rand{i}_{key_type}_m{match_ratio}_z{zipf}" + ("_narrow" if narrow else "")] = (
            JoinWorkloadSpec(
                r_rows=int(rng.integers(64, 2048)),
                s_rows=int(rng.integers(64, 4096)),
                r_payload_columns=1 if narrow else int(rng.integers(2, 4)),
                s_payload_columns=1 if narrow else int(rng.integers(2, 4)),
                key_type=key_type,
                payload_type=key_type,
                match_ratio=match_ratio,
                zipf_factor=zipf,
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return specs


def _random_groupby_specs(count: int, seed: int = 20250807):
    rng = np.random.default_rng(seed)
    specs = {}
    for i in range(count):
        key_type = rng.choice(["int32", "int64"])
        zipf = float(rng.choice([0.0, 0.0, 1.0, 2.0]))
        rows = int(rng.integers(32, 4096))
        specs[f"rand{i}_{key_type}_z{zipf}"] = GroupByWorkloadSpec(
            rows=rows,
            groups=int(rng.integers(1, max(2, rows))),
            value_columns=int(rng.integers(1, 4)),
            key_type=key_type,
            value_type=key_type,
            zipf_factor=zipf,
            seed=int(rng.integers(0, 2**31)),
        )
    return specs


JOIN_SPECS = _random_join_specs(9)
GROUPBY_SPECS = _random_groupby_specs(9)


def relation_from_keys(keys, payloads=2, prefix="r", seed=0):
    """Build a relation with *payloads* random payload columns."""
    keys = np.asarray(keys)
    rng = np.random.default_rng(seed)
    return Relation.from_key_payloads(
        keys,
        [rng.integers(0, 100, keys.size).astype(keys.dtype) for _ in range(payloads)],
        payload_prefix=prefix,
    )


def empty_relation(payloads=2, prefix="r", dtype=np.int32):
    return Relation.from_key_payloads(
        np.empty(0, dtype=dtype),
        [np.empty(0, dtype=dtype) for _ in range(payloads)],
        payload_prefix=prefix,
    )
