"""Chaos soak (ext07) as a test: the reliability invariants per seed.

Marked ``soak`` and excluded from the default (tier-1) run via
``addopts = -m "not soak"`` — run explicitly with ``-m soak`` (CI's
chaos-matrix job does, across seeds {3, 17, 123}).
"""

import pytest

from repro.bench.experiments import ext07

from tests.conftest import TEST_SCALE

pytestmark = pytest.mark.soak

INVARIANTS = (
    "no_stalls_all_outcomes_recorded",
    "zero_reservation_leaks",
    "completed_bit_identical",
    "non_completed_all_typed",
    "deterministic_replay",
)


@pytest.mark.parametrize("seed", [3, 17, 123])
def test_chaos_soak_invariants(seed):
    result = ext07.run(scale=TEST_SCALE, seed=seed)
    for invariant in INVARIANTS:
        assert result.findings[invariant] == 1.0, (seed, invariant)
    # The greedy tenant's max_concurrent=1 quota demonstrably binds...
    assert result.findings["greedy_peak_concurrency"] <= 1.0
    # ...without starving the polite tenant.
    assert result.findings["polite_completed_under_flood"] > 0
    # Deadlines actually fired somewhere in the soak.
    assert result.findings["cancelled_total"] > 0
    # The horizon is a genuine soak, not a smoke test.
    assert result.findings["soak_simulated_seconds"] >= 1000.0
