"""ext08: heterogeneous segment cache — hit ratio vs throughput.

Regenerates the experiment table into ``bench_results/ext08.txt``.
Run: ``pytest benchmarks/bench_ext08.py --benchmark-only -s``
"""

from repro.bench.experiments import ext08

from _common import SWEEP_SCALE, run_and_report


def test_ext08(benchmark):
    result = run_and_report(benchmark, ext08.run, SWEEP_SCALE)
    assert result.findings["bit_identity"] == 1.0
    assert result.findings["dataset_to_device_mem"] >= 4.0
    assert result.findings["speedup_vs_all_cpu"] >= 2.0
    assert result.findings["speedup_vs_no_cache"] > 1.0
    assert result.findings["tiered_hit_ratio"] > 0.3
    assert result.findings["staging_saved_mb"] > 0
    assert result.findings["tier_admission_spans_counted"] > 0
    assert result.findings["pool_metrics_observed"] == 1.0
