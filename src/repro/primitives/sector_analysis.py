"""Exact sector analysis of gather/scatter index arrays.

On Ampere GPUs, a warp's 32 loads are combined into memory transactions
of 32-byte *sectors*.  The number of distinct sectors a warp touches is
what Nsight Compute reports as "sectors per request" (Table 4 of the
paper) and is the physical quantity that separates clustered from
unclustered GATHERs.  This module computes it exactly from the actual
index arrays the algorithms produce — vectorized with numpy so analysis
of multi-million-entry maps stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.device import SECTOR_BYTES, WARP_SIZE


@dataclass(frozen=True)
class SectorStats:
    """Warp-level random-access statistics of an index array.

    Attributes
    ----------
    requests:
        Number of warp-level load/store requests (one per warp).
    sector_touches:
        Sum over warps of the number of distinct sectors the warp touches.
    cold_sectors:
        Number of globally distinct sectors touched by the whole map; the
        first touch of each must be served by DRAM regardless of locality.
    mean_warp_span_bytes:
        Mean over warps of (max byte address - min byte address + element
        size); the cost model compares this against the L2 capacity to
        decide whether repeated touches stay cache resident.
    """

    requests: int
    sector_touches: int
    cold_sectors: int
    mean_warp_span_bytes: float

    @property
    def sectors_per_request(self) -> float:
        if not self.requests:
            return 0.0
        return self.sector_touches / self.requests


def analyze_indices(indices: np.ndarray, element_bytes: int) -> SectorStats:
    """Compute :class:`SectorStats` for gathering elements at *indices*.

    ``indices`` are element positions into a source array whose elements
    are ``element_bytes`` wide (the source is assumed element-aligned, so
    a 4- or 8-byte element never crosses a 32-byte sector boundary).
    """
    n = int(indices.size)
    if n == 0:
        return SectorStats(0, 0, 0, 0.0)
    if element_bytes <= 0 or element_bytes > SECTOR_BYTES:
        raise ValueError(f"unsupported element size {element_bytes}")

    offsets = indices.astype(np.int64, copy=False) * element_bytes
    sectors = offsets // SECTOR_BYTES

    # Pad the final partial warp by repeating its last entry so it adds no
    # spurious distinct sectors or span.
    pad = (-n) % WARP_SIZE
    if pad:
        offsets = np.concatenate([offsets, np.full(pad, offsets[-1])])
        sectors = np.concatenate([sectors, np.full(pad, sectors[-1])])

    warp_offsets = offsets.reshape(-1, WARP_SIZE)
    warp_sectors = np.sort(sectors.reshape(-1, WARP_SIZE), axis=1)

    distinct_per_warp = 1 + np.count_nonzero(np.diff(warp_sectors, axis=1), axis=1)
    spans = (
        warp_offsets.max(axis=1) - warp_offsets.min(axis=1) + element_bytes
    ).astype(np.float64)

    return SectorStats(
        requests=warp_sectors.shape[0],
        sector_touches=int(distinct_per_warp.sum()),
        cold_sectors=int(np.unique(sectors).size),
        mean_warp_span_bytes=float(spans.mean()),
    )


def sequential_stats(num_items: int, element_bytes: int) -> SectorStats:
    """Stats of a perfectly sequential access of *num_items* elements.

    Provided for reference and tests; a sequential stream touches
    ``element_bytes / SECTOR_BYTES`` sectors per element, all cold, with a
    one-warp span.
    """
    if num_items == 0:
        return SectorStats(0, 0, 0, 0.0)
    requests = -(-num_items // WARP_SIZE)
    total_bytes = num_items * element_bytes
    sectors = -(-total_bytes // SECTOR_BYTES)
    per_warp_span = min(num_items, WARP_SIZE) * element_bytes
    return SectorStats(
        requests=requests,
        sector_touches=sectors,
        cold_sectors=sectors,
        mean_warp_span_bytes=float(per_warp_span),
    )
