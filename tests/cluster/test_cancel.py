"""Cooperative cancellation at cluster superstep boundaries.

The cluster's cancellation unit is the *superstep*: the ambient token
is checked on entry, charged with the barrier-max step time on exit,
and re-checked — per-device contexts inside the step deliberately carry
no token (per-device charges would double-count against the
cluster-clock charge).
"""

import pytest

from repro.cancel import CancellationToken
from repro.cluster import ClusterContext, sharded_join
from repro.errors import QueryCancelledError
from repro.gpusim import KernelStats
from repro.workloads import JoinWorkloadSpec, generate_join_workload


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=1024, s_rows=2048, r_payload_columns=1,
                         s_payload_columns=1, seed=21)
    )


def test_superstep_charges_the_ambient_token(relations, setup):
    r, s = relations
    token = CancellationToken(deadline_s=1e9)
    with token.activated():
        result = sharded_join(
            r, s, algorithm="PHJ-OM", device=setup.device,
            num_devices=2, config=setup.config, seed=0,
        )
    assert token.consumed_s == pytest.approx(result.total_seconds)
    assert token.checks > 0


def test_expiry_cancels_at_the_next_superstep_boundary(relations, setup):
    r, s = relations
    # Tiny but nonzero deadline: entry check passes (nothing consumed),
    # the first superstep completes and is charged, and the boundary
    # check after it observes expiry.
    token = CancellationToken(deadline_s=1e-12)
    with token.activated():
        with pytest.raises(QueryCancelledError) as excinfo:
            sharded_join(
                r, s, algorithm="PHJ-OM", device=setup.device,
                num_devices=2, config=setup.config, seed=0,
            )
    assert excinfo.value.site.startswith("superstep:")
    assert excinfo.value.reason == "deadline"
    # The completed superstep stays charged (it did run).
    assert token.consumed_s > 0


def test_already_cancelled_token_stops_before_any_compute(setup):
    token = CancellationToken()
    token.cancel("manual")
    with token.activated():
        cluster = ClusterContext(device=setup.device, num_devices=2, seed=0)
        with pytest.raises(QueryCancelledError) as excinfo:
            with cluster.compute_step("never-runs") as step:
                step.contexts[0].submit(
                    KernelStats(name="x", items=100, seq_read_bytes=1 << 12)
                )
    assert excinfo.value.reason == "manual"
    assert cluster.total_seconds == 0.0


def test_device_contexts_inside_a_step_carry_no_token(setup):
    # Per-device charges would double-count: the cluster charges the
    # barrier max, not the per-device sum.
    token = CancellationToken(deadline_s=1e9)
    with token.activated():
        cluster = ClusterContext(device=setup.device, num_devices=2, seed=0)
        with cluster.compute_step("probe") as step:
            assert all(ctx.cancel_token is None for ctx in step.contexts)
            for ctx in step.contexts:
                ctx.submit(
                    KernelStats(name="x", items=100, seq_read_bytes=1 << 12)
                )
    assert token.consumed_s == pytest.approx(cluster.total_seconds)


def test_no_ambient_token_means_no_cancellation_state(relations, setup):
    r, s = relations
    cluster = ClusterContext(device=setup.device, num_devices=2, seed=0)
    assert cluster.cancel_token is None
    result = sharded_join(
        r, s, algorithm="PHJ-OM", device=setup.device,
        num_devices=2, config=setup.config, seed=0,
    )
    assert result.matches > 0
