"""abl04: probe-side load balancing under skew.

Regenerates the experiment table into ``bench_results/abl04.txt``.
Run: ``pytest benchmarks/bench_abl04.py --benchmark-only -s``
"""

from repro.bench.experiments import abl04

from _common import REPORT_SCALE, run_and_report


def test_abl04(benchmark):
    result = run_and_report(benchmark, abl04.run, REPORT_SCALE)
    assert result.findings["skewed_penalty_without_balancing"] > 2.0
