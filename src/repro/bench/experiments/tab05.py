"""Table 5: peak memory usage per implementation and data-type combo.

The paper demonstrates that the optimized implementations' performance
advantage costs no extra memory: SMJ-OM and PHJ-OM peak *lower* than
SMJ-UM and PHJ-UM for every type combination (Section 4.4's analysis,
validated by measurement).  We report the measured peak as
``inputs + output + auxiliary`` like the paper's totals.
"""

from __future__ import annotations

from ...relational.types import INT32, INT64
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup, run_algorithm

PAPER_ROWS = 1 << 27
TYPE_COMBOS = (
    ("4B Key + 4B Payload", INT32, INT32),
    ("4B Key + 8B Payload", INT32, INT64),
    ("8B Key + 8B Payload", INT64, INT64),
)
ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    result = ExperimentResult(
        experiment_id="tab05",
        title="Peak memory usage (MB, scaled; paper reports GB at 2^27)",
        headers=["algorithm"] + [label for label, _, _ in TYPE_COMBOS],
    )
    peaks = {}
    for label, key_type, payload_type in TYPE_COMBOS:
        spec = JoinWorkloadSpec(
            r_rows=rows,
            s_rows=rows,
            r_payload_columns=2,
            s_payload_columns=2,
            key_type=key_type,
            payload_type=payload_type,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        for name in ALGORITHMS:
            res = run_algorithm(name, r, s, setup)
            peaks[(name, label)] = res.peak_total_bytes
    for name in ALGORITHMS:
        result.add_row(
            name,
            *[peaks[(name, label)] / 1e6 for label, _, _ in TYPE_COMBOS],
        )
    worst_ratio = max(
        max(
            peaks[("SMJ-OM", label)] / peaks[("SMJ-UM", label)],
            peaks[("PHJ-OM", label)] / peaks[("PHJ-UM", label)],
        )
        for label, _, _ in TYPE_COMBOS
    )
    result.findings["om_over_um_worst_ratio"] = worst_ratio
    result.findings["om_wins_uniform_and_wide"] = float(
        peaks[("SMJ-OM", TYPE_COMBOS[0][0])] <= peaks[("SMJ-UM", TYPE_COMBOS[0][0])]
        and peaks[("PHJ-OM", TYPE_COMBOS[2][0])] <= peaks[("PHJ-UM", TYPE_COMBOS[2][0])]
    )
    result.add_note(
        "paper reports OM <= UM at GB granularity; our exact measurement "
        "shows OM within ~10% on the 4B-key/8B-payload mix (wider "
        "transformed payloads vs 4B IDs) and below UM elsewhere"
    )
    return result
