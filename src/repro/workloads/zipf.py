"""Zipf-distributed foreign-key sampling (Section 5.2.4).

The paper generates skewed foreign keys from a Zipfian distribution and
varies the Zipf factor to adjust skew; factor 0 is uniform, factors
beyond 1 concentrate most of the mass on a handful of keys.  We sample
by inverse-CDF over the finite key domain, with the hot ranks scattered
to random key values so skew is not correlated with key magnitude.
"""

from __future__ import annotations

import numpy as np


def zipf_cdf(domain_size: int, zipf_factor: float) -> np.ndarray:
    """CDF of the Zipf(``zipf_factor``) distribution over ranks 1..n."""
    if domain_size <= 0:
        raise ValueError("domain_size must be positive")
    if zipf_factor < 0:
        raise ValueError("zipf_factor must be >= 0")
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks ** (-zipf_factor)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def sample_zipf(
    domain_size: int,
    size: int,
    zipf_factor: float,
    rng: np.random.Generator,
    shuffle_ranks: bool = True,
) -> np.ndarray:
    """Draw *size* keys from ``[0, domain_size)`` with Zipfian frequency.

    ``shuffle_ranks=True`` maps rank r to a random key value so that the
    hottest keys are spread across the domain (as after the paper's key
    shuffling) rather than clustered at 0.
    """
    if zipf_factor == 0.0:
        return rng.integers(0, domain_size, size=size, dtype=np.int64)
    cdf = zipf_cdf(domain_size, zipf_factor)
    u = rng.random(size)
    ranks = np.searchsorted(cdf, u, side="left")
    if shuffle_ranks:
        permutation = rng.permutation(domain_size)
        return permutation[ranks].astype(np.int64)
    return ranks.astype(np.int64)


def hottest_key_share(keys: np.ndarray) -> float:
    """Fraction of samples taken by the most frequent key (skew metric)."""
    if keys.size == 0:
        return 0.0
    counts = np.bincount(keys - keys.min())
    return float(counts.max()) / keys.size
