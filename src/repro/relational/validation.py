"""Plain-numpy reference implementations used to validate the algorithms.

These are deliberately simple (no simulated device, no phases): a
textbook inner equi-join and a textbook group-by.  Every join and
aggregation algorithm in the library is tested against them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..primitives.grouping import group_identify
from .relation import Relation


def join_match_indices(
    r_keys: np.ndarray, s_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All matching (r_index, s_index) pairs of an inner equi-join.

    Pairs are produced in s-major order (ascending s index; for a given s
    index, r partners appear in ascending r-sorted order).  Handles
    duplicate keys on both sides.
    """
    order = np.argsort(r_keys, kind="stable")
    r_sorted = r_keys[order]
    lo = np.searchsorted(r_sorted, s_keys, side="left")
    hi = np.searchsorted(r_sorted, s_keys, side="right")
    counts = (hi - lo).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    s_idx = np.repeat(np.arange(s_keys.size, dtype=np.int64), counts)
    starts = np.repeat(lo.astype(np.int64), counts)
    # Within-match offsets: 0..count-1 per s tuple.
    first_positions = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(first_positions, counts)
    r_idx = order[starts + within]
    return r_idx.astype(np.int64), s_idx


def reference_join(r: Relation, s: Relation, output_name: str = "T") -> Relation:
    """Materialized inner equi-join ``R ⋈ S`` on each relation's key.

    The output relation has the key column followed by R's payloads and
    then S's payloads, with S payload names suffixed ``_s`` on collision.
    """
    r_idx, s_idx = join_match_indices(r.key_values, s.key_values)
    columns = [("key", r.key_values[r_idx])]
    for name, array in r.payload_columns().items():
        columns.append((name, array[r_idx]))
    taken = {name for name, _ in columns}
    for name, array in s.payload_columns().items():
        out_name = name if name not in taken else f"{name}_s"
        columns.append((out_name, array[s_idx]))
        taken.add(out_name)
    return Relation(columns, key="key", name=output_name)


def reference_groupby(
    keys: np.ndarray,
    values: Dict[str, np.ndarray],
    aggregates: Dict[str, str],
) -> "OrderedDict[str, np.ndarray]":
    """Group-by with per-column aggregates.

    ``aggregates`` maps value-column name -> one of ``sum``, ``count``,
    ``min``, ``max``, ``mean``.  Returns an OrderedDict with ``group_key``
    (ascending distinct keys) followed by one aggregate column per entry.
    """
    # Sort-based identification: identical (group_keys, inverse) to
    # np.unique(keys, return_inverse=True) but ~15x faster on
    # high-cardinality integer keys, which validation runs at scale hit
    # constantly (np.unique's return_inverse path hashes per element).
    group_keys, inverse = group_identify(keys)
    num_groups = group_keys.size
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    out["group_key"] = group_keys
    counts = np.bincount(inverse, minlength=num_groups)
    for column, how in aggregates.items():
        if how == "count":
            out[f"count_{column}"] = counts.astype(np.int64)
            continue
        data = values[column]
        if how == "sum":
            agg = np.bincount(inverse, weights=data.astype(np.float64), minlength=num_groups)
            out[f"sum_{column}"] = agg.astype(np.int64)
        elif how == "mean":
            sums = np.bincount(inverse, weights=data.astype(np.float64), minlength=num_groups)
            out[f"mean_{column}"] = sums / np.maximum(counts, 1)
        elif how in ("min", "max"):
            reducer = np.minimum if how == "min" else np.maximum
            fill = (
                np.iinfo(np.int64).max if how == "min" else np.iinfo(np.int64).min
            )
            agg = np.full(num_groups, fill, dtype=np.int64)
            reducer.at(agg, inverse, data.astype(np.int64))
            out[f"{how}_{column}"] = agg
        else:
            raise ValueError(f"unknown aggregate {how!r}")
    return out


def assert_join_equal(result: Relation, expected: Relation) -> None:
    """Raise AssertionError with a diagnostic if two joins differ."""
    if result.column_names != expected.column_names:
        raise AssertionError(
            f"column mismatch: {result.column_names} != {expected.column_names}"
        )
    if result.num_rows != expected.num_rows:
        raise AssertionError(
            f"row-count mismatch: {result.num_rows} != {expected.num_rows}"
        )
    if not result.equals_unordered(expected):
        raise AssertionError("join outputs contain different rows")


def match_indices_with_counts(
    r_keys: np.ndarray, s_keys: np.ndarray, unique_build_keys: Optional[bool] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Alias of :func:`join_match_indices` kept for API symmetry."""
    del unique_build_keys
    return join_match_indices(r_keys, s_keys)
