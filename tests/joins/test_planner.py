"""Figure 18 decision trees."""

import pytest

from repro.joins import (
    JoinWorkloadProfile,
    make_algorithm,
    planner_choice,
    recommend_join_algorithm,
    recommend_smj_variant,
)
from repro.workloads import JoinWorkloadSpec, generate_join_workload


def _profile(**kw):
    defaults = dict(
        r_rows=1 << 20, s_rows=1 << 21,
        r_payload_columns=2, s_payload_columns=2,
        key_bytes=4, payload_bytes=4, match_ratio=1.0, zipf_factor=0.0,
    )
    defaults.update(kw)
    return JoinWorkloadProfile(**defaults)


class TestJoinTree:
    def test_narrow_uniform_picks_phj_um(self):
        rec = recommend_join_algorithm(
            _profile(r_payload_columns=1, s_payload_columns=1)
        )
        assert rec.algorithm == "PHJ-UM"

    def test_narrow_skewed_picks_phj_om(self):
        rec = recommend_join_algorithm(
            _profile(r_payload_columns=1, s_payload_columns=1, zipf_factor=1.5)
        )
        assert rec.algorithm == "PHJ-OM"

    def test_low_match_uniform_picks_phj_um(self):
        rec = recommend_join_algorithm(_profile(match_ratio=0.1))
        assert rec.algorithm == "PHJ-UM"

    def test_low_match_skewed_picks_smj_um(self):
        rec = recommend_join_algorithm(_profile(match_ratio=0.1, zipf_factor=1.5))
        assert rec.algorithm == "SMJ-UM"

    def test_wide_high_match_picks_phj_om(self):
        rec = recommend_join_algorithm(_profile())
        assert rec.algorithm == "PHJ-OM"

    def test_wide_types_still_phj_om(self):
        rec = recommend_join_algorithm(_profile(key_bytes=8, payload_bytes=8))
        assert rec.algorithm == "PHJ-OM"

    def test_reasons_are_explanatory(self):
        rec = recommend_join_algorithm(_profile())
        assert rec.reasons
        assert "materialization" in rec.explain()


class TestSMJTree:
    def test_narrow_is_um(self):
        rec = recommend_smj_variant(
            _profile(r_payload_columns=1, s_payload_columns=1)
        )
        assert rec.algorithm == "SMJ-UM"

    def test_wide_4byte_high_match_is_om(self):
        assert recommend_smj_variant(_profile()).algorithm == "SMJ-OM"

    def test_8byte_values_is_um(self):
        assert recommend_smj_variant(_profile(payload_bytes=8)).algorithm == "SMJ-UM"

    def test_low_match_is_um(self):
        assert recommend_smj_variant(_profile(match_ratio=0.05)).algorithm == "SMJ-UM"

    def test_skewed_is_um(self):
        assert recommend_smj_variant(_profile(zipf_factor=1.6)).algorithm == "SMJ-UM"


class TestProfileFromRelations:
    def test_reads_shapes(self):
        r, s = generate_join_workload(
            JoinWorkloadSpec(r_rows=100, s_rows=200, r_payload_columns=3,
                             s_payload_columns=1, payload_type="int64", seed=0)
        )
        profile = JoinWorkloadProfile.from_relations(r, s)
        assert profile.r_rows == 100
        assert profile.s_rows == 200
        assert profile.r_payload_columns == 3
        assert profile.payload_bytes == 8
        assert not profile.is_narrow

    def test_narrow_detection(self):
        r, s = generate_join_workload(
            JoinWorkloadSpec(r_rows=10, s_rows=10, r_payload_columns=1,
                             s_payload_columns=1, seed=0)
        )
        assert JoinWorkloadProfile.from_relations(r, s).is_narrow


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM", "PHJ-OM/gfur", "NPJ", "CPU"]
    )
    def test_make_algorithm_names(self, name):
        algo = make_algorithm(name)
        assert algo.name in (name, name.split("/")[0], "CPU")

    def test_planner_choice_runs(self):
        r, s = generate_join_workload(
            JoinWorkloadSpec(r_rows=500, s_rows=900, r_payload_columns=2,
                             s_payload_columns=2, seed=0)
        )
        algo, rec = planner_choice(r, s)
        assert algo.name == rec.algorithm
        result = algo.join(r, s, seed=0)
        assert result.matches == 900
