"""Differential oracle for the scale-out layer.

On the same randomized workload sweep the single-device oracle suite
uses, sharded execution must return *the same rows* as the
single-device algorithm for every device count — and for group-bys the
same bits, including float accumulations, because the shuffle is stable
and equal keys co-locate.
"""

import numpy as np
import pytest

from repro.aggregation import AggSpec
from repro.aggregation.planner import make_groupby_algorithm
from repro.cluster import sharded_group_by, sharded_join
from repro.joins.planner import make_algorithm
from repro.relational import reference_join
from repro.workloads import generate_groupby_workload, generate_join_workload

from .conftest import GROUPBY_SPECS, JOIN_SPECS

DEVICE_COUNTS = (1, 2, 4, 8)


@pytest.mark.parametrize("spec_name", sorted(JOIN_SPECS))
@pytest.mark.parametrize("num_devices", DEVICE_COUNTS)
def test_sharded_join_matches_single_device(spec_name, num_devices):
    r, s = generate_join_workload(JOIN_SPECS[spec_name])
    single = make_algorithm("PHJ-OM", None).join(r, s, seed=17)
    clustered = sharded_join(
        r, s, algorithm="PHJ-OM", num_devices=num_devices, seed=17
    )
    assert clustered.matches == single.matches
    # Shard concatenation permutes row order; the row *sets* must agree
    # exactly (and therefore with the pure-numpy reference).
    assert clustered.output.equals_unordered(single.output)
    assert clustered.output.equals_unordered(reference_join(r, s))


@pytest.mark.parametrize("spec_name", sorted(GROUPBY_SPECS))
@pytest.mark.parametrize("num_devices", DEVICE_COUNTS)
def test_sharded_groupby_bit_identical(spec_name, num_devices):
    spec = GROUPBY_SPECS[spec_name]
    keys, values = generate_groupby_workload(spec)
    aggregates = [AggSpec("v1", "sum")]
    if spec.value_columns >= 2:
        aggregates.append(AggSpec("v2", "mean"))
    single = make_groupby_algorithm("HASH-AGG").group_by(
        keys, values, aggregates, seed=17
    )
    clustered = sharded_group_by(
        keys, values, aggregates, algorithm="HASH-AGG",
        num_devices=num_devices, seed=17,
    )
    assert clustered.groups == single.groups
    assert list(clustered.output) == list(single.output)
    for column, array in single.output.items():
        # Bit-identical, not approx: the shuffle is stable so float
        # accumulation order matches the single-device run.
        assert np.array_equal(clustered.output[column], array), column


@pytest.mark.parametrize("num_devices", DEVICE_COUNTS[1:])
def test_auto_algorithm_resolves_globally(num_devices):
    """'auto' picks from the full relations, so every shard runs the
    same algorithm the single-device planner would choose."""
    from repro.joins.planner import JoinWorkloadProfile, recommend_join_algorithm

    spec = JOIN_SPECS[sorted(JOIN_SPECS)[0]]
    r, s = generate_join_workload(spec)
    expected = recommend_join_algorithm(
        JoinWorkloadProfile.from_relations(r, s)
    ).algorithm
    clustered = sharded_join(r, s, algorithm="auto", num_devices=num_devices)
    assert clustered.algorithm == expected
