"""Sort-based grouped aggregation.

Sort the rows by key, then reduce equal-key runs with a sequential
segmented reduction — no random traffic at all, at the price of a full
radix sort.  The two materialization patterns mirror the join study:

* ``gfur`` — sort ``(key, tuple ID)``, then *gather* each value column
  through the permuted IDs (an unclustered gather, exactly the cost the
  paper attacks) before reducing;
* ``gftr`` — re-sort ``(key, value column)`` per aggregate and reduce
  the sorted column sequentially (Algorithm 1's lazy per-column
  transform, applied to aggregation).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

from ..errors import AggregationConfigError
from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from ..primitives.gather import gather
from ..primitives.grouping import groups_from_sorted
from ..primitives.sort_pairs import sort_pairs
from ..relational.types import id_dtype
from .base import (
    AGGREGATE,
    MATERIALIZE,
    TRANSFORM,
    AggSpec,
    GroupByAlgorithm,
    GroupByConfig,
    segmented_aggregate,
)


def _charge_segmented_reduce(
    ctx: GPUContext, rows: int, value_bytes: int, out_bytes: int, name: str, phase: str
) -> None:
    """One sequential pass over the sorted column, writing group results."""
    ctx.submit(
        KernelStats(
            name=name,
            items=rows,
            seq_read_bytes=value_bytes,
            seq_write_bytes=out_bytes,
        ),
        phase=phase,
    )


class SortGroupBy(GroupByAlgorithm):
    """Radix-sort + segmented-reduce aggregation."""

    name = "SORT-AGG"
    pattern = "gftr"

    def __init__(self, config: Optional[GroupByConfig] = None, pattern: str = "gftr"):
        super().__init__(config)
        if pattern not in ("gftr", "gfur"):
            raise AggregationConfigError(f"unknown pattern {pattern!r}")
        self.pattern = pattern
        self.name = "SORT-AGG" if pattern == "gftr" else "SORT-AGG/gfur"

    def _execute(
        self,
        ctx: GPUContext,
        keys: np.ndarray,
        values: Dict[str, np.ndarray],
        aggregates: List[AggSpec],
    ) -> "OrderedDict[str, np.ndarray]":
        n = int(keys.size)
        with ctx.phase(TRANSFORM):
            if self.pattern == "gfur":
                ids = np.arange(n, dtype=id_dtype(n))
                ctx.submit(
                    KernelStats(name="init_ids", items=n, seq_write_bytes=int(ids.nbytes)),
                    phase=TRANSFORM,
                )
                a_ids = ctx.mem.adopt(ids, "ids")
                keys_sorted, (ids_sorted,) = sort_pairs(ctx, keys, [ids], phase=TRANSFORM)
                ctx.mem.free(a_ids)
                a_sorted_ids = ctx.mem.adopt(ids_sorted, "ids_sorted")
                key_order = None
            else:
                keys_sorted, _, key_order = sort_pairs(
                    ctx, keys, [], phase=TRANSFORM, return_order=True
                )
                a_sorted_ids = None
            a_keys = ctx.mem.adopt(keys_sorted, "keys_sorted")

        group_keys, inverse_sorted = groups_from_sorted(keys_sorted)
        num_groups = int(group_keys.size)
        output: "OrderedDict[str, np.ndarray]" = OrderedDict()
        output["group_key"] = group_keys

        with ctx.phase(AGGREGATE):
            # Flag group boundaries: one sequential pass over sorted keys.
            ctx.submit(
                KernelStats(
                    name="segment_boundaries",
                    items=n,
                    seq_read_bytes=int(keys_sorted.nbytes),
                    seq_write_bytes=num_groups * 8,
                ),
                phase=AGGREGATE,
            )

        with ctx.phase(MATERIALIZE):
            for spec in aggregates:
                if spec.op == "count":
                    output[spec.output_name] = segmented_aggregate(
                        inverse_sorted, num_groups, None, "count"
                    )
                    _charge_segmented_reduce(
                        ctx, n, 0, num_groups * 8, f"reduce:{spec.output_name}", MATERIALIZE
                    )
                    continue
                column = values[spec.column]
                if self.pattern == "gfur":
                    # Unclustered gather through the permuted IDs.
                    sorted_col = gather(
                        ctx,
                        column,
                        a_sorted_ids.data,
                        phase=MATERIALIZE,
                        label=spec.column,
                    )
                else:
                    # Lazily re-sort (key, column): Algorithm 1 for
                    # aggregations — sequential passes only.  The stable
                    # permutation is the one the transform sort computed.
                    _, (sorted_col,) = sort_pairs(
                        ctx, keys, [column], phase=MATERIALIZE, label=spec.column,
                        order=key_order,
                    )
                output[spec.output_name] = segmented_aggregate(
                    inverse_sorted, num_groups, sorted_col, spec.op
                )
                _charge_segmented_reduce(
                    ctx,
                    n,
                    int(sorted_col.nbytes),
                    num_groups * 8,
                    f"reduce:{spec.output_name}",
                    MATERIALIZE,
                )
            ctx.mem.free(a_keys)
            if a_sorted_ids is not None:
                ctx.mem.free(a_sorted_ids)
        return output
