"""Figure 8: CPU- and GPU-based narrow joins.

Regenerates the experiment table into ``bench_results/fig08.txt``.
Run: ``pytest benchmarks/bench_fig08.py --benchmark-only -s``
"""

from repro.bench.experiments import fig08

from _common import SWEEP_SCALE, run_and_report


def test_fig08(benchmark):
    result = run_and_report(benchmark, fig08.run, SWEEP_SCALE)
    assert result.findings["max_gpu_speedup_over_cpu"] > 10
