"""Phase structure, GFTR clusteredness, memory accounting, leaks."""

import numpy as np
import pytest

from repro.gpusim import GPUContext
from repro.joins import (
    ALGORITHMS,
    NonPartitionedHashJoin,
    PartitionedHashJoin,
    PartitionedHashJoinUM,
    SortMergeJoinOM,
    SortMergeJoinUM,
)
from repro.workloads import JoinWorkloadSpec, generate_join_workload

WIDE = JoinWorkloadSpec(
    r_rows=4096, s_rows=8192, r_payload_columns=2, s_payload_columns=2, seed=1
)
NARROW = JoinWorkloadSpec(
    r_rows=4096, s_rows=8192, r_payload_columns=1, s_payload_columns=1, seed=1
)


@pytest.fixture(scope="module")
def wide_relations():
    return generate_join_workload(WIDE)


@pytest.fixture(scope="module")
def narrow_relations():
    return generate_join_workload(NARROW)


class TestPhaseStructure:
    @pytest.mark.parametrize("cls", list(ALGORITHMS.values()), ids=lambda c: c.name)
    def test_wide_join_has_three_phases(self, cls, wide_relations, setup):
        r, s = wide_relations
        result = cls(setup.config).join(r, s, device=setup.device, seed=0)
        assert set(result.phase_seconds) == {"transform", "match", "materialize"}
        assert all(v >= 0 for v in result.phase_seconds.values())

    @pytest.mark.parametrize("cls", list(ALGORITHMS.values()), ids=lambda c: c.name)
    def test_narrow_join_has_two_phases(self, cls, narrow_relations, setup):
        """Section 2.2: narrow joins have no materialization phase."""
        r, s = narrow_relations
        result = cls(setup.config).join(r, s, device=setup.device, seed=0)
        assert set(result.phase_seconds) == {"transform", "match"}

    def test_npj_has_no_transform(self, wide_relations, setup):
        r, s = wide_relations
        result = NonPartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        assert "transform" not in result.phase_seconds

    def test_narrow_smj_variants_identical(self, narrow_relations, setup):
        r, s = narrow_relations
        um = SortMergeJoinUM(setup.config).join(r, s, device=setup.device, seed=0)
        om = SortMergeJoinOM(setup.config).join(r, s, device=setup.device, seed=0)
        assert um.total_seconds == pytest.approx(om.total_seconds)


class TestClusteredness:
    """GFTR's defining property: OM materialization touches fewer sectors."""

    def _materialize_sectors(self, cls, r, s, setup):
        ctx = GPUContext(device=setup.device, seed=0)
        cls(setup.config).join(r, s, ctx=ctx)
        gathers = [
            rec.stats
            for rec in ctx.timeline.records("materialize")
            if rec.stats.name.startswith("gather")
        ]
        return sum(g.random_sector_touches for g in gathers), gathers

    def test_smj_om_fewer_sector_touches(self, wide_relations, setup):
        r, s = wide_relations
        um, _ = self._materialize_sectors(SortMergeJoinUM, r, s, setup)
        om, _ = self._materialize_sectors(SortMergeJoinOM, r, s, setup)
        assert om < um / 2

    def test_phj_om_fewer_sector_touches(self, wide_relations, setup):
        r, s = wide_relations
        um, _ = self._materialize_sectors(PartitionedHashJoinUM, r, s, setup)
        om, _ = self._materialize_sectors(PartitionedHashJoin, r, s, setup)
        assert om < um / 2

    def test_om_gathers_are_nearly_sorted_maps(self, wide_relations, setup):
        r, s = wide_relations
        _, gathers = self._materialize_sectors(SortMergeJoinOM, r, s, setup)
        for stats in gathers:
            assert stats.sectors_per_request < 8


class TestMemoryAccounting:
    def test_no_leaked_device_arrays(self, wide_relations, setup):
        r, s = wide_relations
        for cls in list(ALGORITHMS.values()) + [NonPartitionedHashJoin]:
            ctx = GPUContext(device=setup.device, seed=0)
            cls(setup.config).join(r, s, ctx=ctx)
            ctx.mem.assert_no_leaks()
            assert ctx.mem.current_bytes == 0

    def test_phase_peaks_recorded(self, wide_relations, setup):
        r, s = wide_relations
        result = PartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        assert set(result.phase_aux_peaks) >= {"transform", "match"}

    def test_om_peak_not_above_um_uniform_types(self, wide_relations, setup):
        """Table 5's ordering for the all-4-byte combination."""
        r, s = wide_relations
        um = PartitionedHashJoinUM(setup.config).join(r, s, device=setup.device, seed=0)
        om = PartitionedHashJoin(setup.config).join(r, s, device=setup.device, seed=0)
        assert om.peak_total_bytes <= um.peak_total_bytes

    def test_fragmentation_charged_to_bucket_chain(self, wide_relations, setup):
        r, s = wide_relations
        ctx = GPUContext(device=setup.device, seed=0)
        PartitionedHashJoinUM(setup.config).join(r, s, ctx=ctx)
        # Peak must exceed the radix variant's peak (fragmentation + IDs).
        ctx2 = GPUContext(device=setup.device, seed=0)
        PartitionedHashJoin(setup.config).join(r, s, ctx=ctx2)
        assert ctx.mem.peak_bytes > ctx2.mem.peak_bytes

    def test_input_output_bytes_reported(self, wide_relations, setup):
        r, s = wide_relations
        result = PartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        assert result.input_bytes == r.total_bytes + s.total_bytes
        assert result.output_bytes == result.output.total_bytes
        assert result.peak_total_bytes == (
            result.input_bytes + result.output_bytes + result.peak_aux_bytes
        )


class TestResultMetrics:
    def test_throughput_definition(self, wide_relations, setup):
        r, s = wide_relations
        result = PartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        expected = (r.num_rows + s.num_rows) / result.total_seconds
        assert result.throughput_tuples_per_s == pytest.approx(expected)

    def test_phase_fraction_sums_to_one(self, wide_relations, setup):
        r, s = wide_relations
        result = SortMergeJoinUM(setup.config).join(r, s, device=setup.device)
        total = sum(result.phase_fraction(p) for p in result.phase_seconds)
        assert total == pytest.approx(1.0)

    def test_describe_mentions_algorithm(self, wide_relations, setup):
        r, s = wide_relations
        result = SortMergeJoinOM(setup.config).join(r, s, device=setup.device)
        assert "SMJ-OM" in result.describe()
        assert "gftr" in result.describe()
