"""Device memory allocator: tracking, peaks, phases, failure modes."""

import numpy as np
import pytest

from repro.errors import AllocationError, DeviceOutOfMemoryError
from repro.gpusim.memory import DeviceMemory


class TestAllocFree:
    def test_alloc_counts_bytes(self):
        mem = DeviceMemory()
        arr = mem.alloc(1024, np.int32, "a")
        assert mem.current_bytes == 4096
        assert arr.nbytes == 4096
        assert arr.size == 1024

    def test_free_returns_bytes(self):
        mem = DeviceMemory()
        arr = mem.alloc(10, np.int64)
        mem.free(arr)
        assert mem.current_bytes == 0
        assert arr.freed

    def test_double_free_rejected(self):
        mem = DeviceMemory()
        arr = mem.alloc(10, np.int64)
        mem.free(arr)
        with pytest.raises(AllocationError, match="double free"):
            mem.free(arr)

    def test_use_after_free_rejected(self):
        mem = DeviceMemory()
        arr = mem.alloc(10, np.int64, "victim")
        mem.free(arr)
        with pytest.raises(AllocationError, match="use after free"):
            _ = arr.data

    def test_free_foreign_array_rejected(self):
        mem_a, mem_b = DeviceMemory(), DeviceMemory()
        arr = mem_a.alloc(10, np.int64)
        with pytest.raises(AllocationError, match="not owned"):
            mem_b.free(arr)

    def test_from_host_copies(self):
        mem = DeviceMemory()
        host = np.arange(5)
        dev = mem.from_host(host, "copy")
        host[0] = 99
        assert dev.data[0] == 0

    def test_adopt_does_not_copy(self):
        mem = DeviceMemory()
        host = np.arange(5)
        dev = mem.adopt(host)
        assert dev.data is not None
        assert mem.current_bytes == host.nbytes

    def test_free_all_skips_already_freed(self):
        mem = DeviceMemory()
        a, b = mem.alloc(1, np.int8), mem.alloc(1, np.int8)
        mem.free(a)
        mem.free_all([a, b])
        assert mem.current_bytes == 0

    def test_free_by_prefix(self):
        mem = DeviceMemory()
        mem.alloc(1, np.int8, "part_keys_r")
        mem.alloc(1, np.int8, "part_keys_s")
        keep = mem.alloc(1, np.int8, "other")
        assert mem.free_by_prefix("part_keys_") == 2
        assert mem.live_labels == ["other"]
        mem.free(keep)


class TestPeaks:
    def test_peak_tracks_high_water_mark(self):
        mem = DeviceMemory()
        a = mem.alloc(1000, np.int8)
        b = mem.alloc(2000, np.int8)
        mem.free(a)
        mem.free(b)
        assert mem.peak_bytes == 3000
        assert mem.current_bytes == 0

    def test_phase_peaks(self):
        mem = DeviceMemory()
        mem.set_phase("transform")
        a = mem.alloc(100, np.int8)
        mem.set_phase("match")
        b = mem.alloc(50, np.int8)
        mem.free(a)
        mem.set_phase(None)
        assert mem.phase_peaks["transform"] == 100
        assert mem.phase_peaks["match"] == 150
        mem.free(b)

    def test_phase_records_entry_level(self):
        mem = DeviceMemory()
        a = mem.alloc(70, np.int8)
        mem.set_phase("late")
        assert mem.phase_peaks["late"] == 70
        mem.free(a)

    def test_reset_peak(self):
        mem = DeviceMemory()
        a = mem.alloc(100, np.int8)
        mem.free(a)
        mem.reset_peak()
        assert mem.peak_bytes == 0


class TestCapacity:
    def test_oom_raises_with_details(self):
        mem = DeviceMemory(capacity_bytes=100)
        mem.alloc(60, np.int8)
        with pytest.raises(DeviceOutOfMemoryError) as info:
            mem.alloc(60, np.int8)
        assert info.value.requested == 60
        assert info.value.in_use == 60
        assert info.value.capacity == 100

    def test_oom_names_failing_label_and_live_allocations(self):
        mem = DeviceMemory(capacity_bytes=100)
        mem.alloc(40, np.int8, "build_table")
        mem.alloc(20, np.int8, "probe_keys")
        with pytest.raises(DeviceOutOfMemoryError) as info:
            mem.alloc(60, np.int8, "matches")
        err = info.value
        assert err.label == "matches"
        assert err.top_live == [("build_table", 40), ("probe_keys", 20)]
        message = str(err)
        assert "'matches'" in message
        assert "build_table=40 B" in message

    def test_oom_top_live_sorted_largest_first_ties_on_label(self):
        mem = DeviceMemory(capacity_bytes=100)
        mem.alloc(30, np.int8, "b_array")
        mem.alloc(30, np.int8, "a_array")
        mem.alloc(40, np.int8, "big")
        with pytest.raises(DeviceOutOfMemoryError) as info:
            mem.alloc(1, np.int8)
        assert info.value.top_live == [
            ("big", 40), ("a_array", 30), ("b_array", 30)
        ]

    def test_oom_message_truncates_to_top_live_limit(self):
        mem = DeviceMemory(capacity_bytes=80)
        for i in range(DeviceOutOfMemoryError.TOP_LIVE_LIMIT + 2):
            mem.alloc(10, np.int8, f"chunk{i}")
        with pytest.raises(DeviceOutOfMemoryError) as info:
            mem.alloc(60, np.int8)
        err = info.value
        assert len(err.top_live) == DeviceOutOfMemoryError.TOP_LIVE_LIMIT + 2
        assert "(+2 more)" in str(err)

    def test_free_makes_room(self):
        mem = DeviceMemory(capacity_bytes=100)
        a = mem.alloc(80, np.int8)
        mem.free(a)
        mem.alloc(80, np.int8)  # does not raise

    def test_unlimited_when_capacity_none(self):
        mem = DeviceMemory()
        mem.alloc(10 ** 7, np.int8)  # no error


class TestLeakDetection:
    def test_assert_no_leaks_passes_when_clean(self):
        mem = DeviceMemory()
        a = mem.alloc(1, np.int8, "x")
        mem.free(a)
        mem.assert_no_leaks()

    def test_assert_no_leaks_reports_labels(self):
        mem = DeviceMemory()
        mem.alloc(1, np.int8, "leaky")
        with pytest.raises(AllocationError, match="leaky"):
            mem.assert_no_leaks()

    def test_allowed_labels_are_ignored(self):
        mem = DeviceMemory()
        mem.alloc(1, np.int8, "expected")
        mem.assert_no_leaks(allowed_labels=["expected"])

    def test_live_count(self):
        mem = DeviceMemory()
        a = mem.alloc(1, np.int8)
        assert mem.live_count == 1
        mem.free(a)
        assert mem.live_count == 0


class TestReservations:
    """Bytes-only reservations (the serving admission controller's claim)."""

    def test_reserve_counts_like_an_allocation(self):
        mem = DeviceMemory(capacity_bytes=1000)
        reservation = mem.reserve(600, "query-0")
        assert mem.current_bytes == 600
        assert mem.reserved_bytes == 600
        assert mem.reserve_count == 1
        reservation.free()
        assert mem.current_bytes == 0
        assert mem.release_count == 1
        assert reservation.freed

    def test_reservations_enforce_capacity_against_allocations(self):
        mem = DeviceMemory(capacity_bytes=1000)
        mem.reserve(900, "query-0")
        with pytest.raises(DeviceOutOfMemoryError):
            mem.alloc(200, np.int8, "spill")
        with pytest.raises(DeviceOutOfMemoryError):
            mem.reserve(200, "query-1")

    def test_reservation_peak_participates_in_high_water_mark(self):
        mem = DeviceMemory()
        reservation = mem.reserve(512)
        arr = mem.alloc(64, np.int8)
        assert mem.peak_bytes == 512 + 64
        mem.free(arr)
        reservation.free()
        assert mem.peak_bytes == 512 + 64

    def test_double_release_rejected(self):
        mem = DeviceMemory()
        reservation = mem.reserve(10, "q")
        reservation.free()
        with pytest.raises(AllocationError, match="double release"):
            reservation.free()

    def test_foreign_release_rejected(self):
        mem_a, mem_b = DeviceMemory(), DeviceMemory()
        reservation = mem_a.reserve(10, "q")
        with pytest.raises(AllocationError, match="not owned"):
            mem_b.release(reservation)

    def test_reservation_as_context_manager(self):
        mem = DeviceMemory()
        with mem.reserve(128, "scoped"):
            assert mem.current_bytes == 128
        assert mem.current_bytes == 0
