"""SORT-PAIRS: correctness, stability, pass accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import A100, GPUContext
from repro.primitives.sort_pairs import (
    argsort_cost_only,
    key_bits_for_dtype,
    sort_pairs,
    sort_passes_for_dtype,
)


@pytest.fixture
def ctx():
    return GPUContext(device=A100)


class TestCorrectness:
    def test_sorts_keys(self, ctx):
        keys = np.array([3, 1, 2], dtype=np.int32)
        out_keys, _ = sort_pairs(ctx, keys, [])
        assert list(out_keys) == [1, 2, 3]

    def test_payloads_follow_keys(self, ctx):
        keys = np.array([3, 1, 2], dtype=np.int32)
        payload = np.array([30, 10, 20], dtype=np.int32)
        out_keys, (out_payload,) = sort_pairs(ctx, keys, [payload])
        assert list(out_payload) == [10, 20, 30]

    def test_stability(self, ctx):
        keys = np.array([1, 0, 1, 0], dtype=np.int32)
        payload = np.array([100, 200, 101, 201], dtype=np.int32)
        _, (out_payload,) = sort_pairs(ctx, keys, [payload])
        assert list(out_payload) == [200, 201, 100, 101]

    def test_multiple_payloads(self, ctx):
        keys = np.array([2, 1], dtype=np.int32)
        a = np.array([20, 10], dtype=np.int32)
        b = np.array([21, 11], dtype=np.int64)
        _, (out_a, out_b) = sort_pairs(ctx, keys, [a, b])
        assert list(out_a) == [10, 20]
        assert list(out_b) == [11, 21]

    def test_empty(self, ctx):
        out_keys, payloads = sort_pairs(ctx, np.empty(0, dtype=np.int32), [])
        assert out_keys.size == 0
        assert payloads == []


class TestPassAccounting:
    def test_int32_keys_four_passes(self, ctx):
        sort_pairs(ctx, np.arange(100, dtype=np.int32), [])
        assert ctx.timeline.kernel_count() == 4

    def test_int64_keys_eight_passes(self, ctx):
        sort_pairs(ctx, np.arange(100, dtype=np.int64), [])
        assert ctx.timeline.kernel_count() == 8

    def test_custom_key_bits(self, ctx):
        sort_pairs(ctx, np.arange(100, dtype=np.int32), [], key_bits=10)
        assert ctx.timeline.kernel_count() == 2

    def test_pass_traffic_includes_payloads(self, ctx):
        keys = np.arange(1 << 10, dtype=np.int32)
        payload = keys.astype(np.int64)
        sort_pairs(ctx, keys, [payload])
        stats = ctx.timeline.records()[0].stats
        per_pass = keys.nbytes + payload.nbytes
        assert stats.seq_read_bytes == keys.nbytes + per_pass
        assert stats.seq_write_bytes == per_pass

    def test_dtype_helpers(self):
        assert key_bits_for_dtype(np.dtype(np.int32)) == 32
        assert sort_passes_for_dtype(np.dtype(np.int32)) == 4
        assert sort_passes_for_dtype(np.dtype(np.int64)) == 8

    def test_cost_only_matches_real_kernel_count(self, ctx):
        argsort_cost_only(ctx, 1000, 4, 4)
        assert ctx.timeline.kernel_count() == 4


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 2 ** 31 - 1), min_size=1, max_size=300))
def test_matches_numpy_stable_sort(keys):
    ctx = GPUContext(device=A100)
    arr = np.asarray(keys, dtype=np.int64)
    ids = np.arange(arr.size, dtype=np.int64)
    out_keys, (out_ids,) = sort_pairs(ctx, arr, [ids])
    expected = np.argsort(arr, kind="stable")
    assert np.array_equal(out_ids, expected)
    assert np.array_equal(out_keys, np.sort(arr))
