"""GATHER and SCATTER primitives with traffic accounting.

``GATHER(in, map, out)`` computes ``out[i] = in[map[i]]`` (Section 2.3 of
the paper).  Whether the gather is *clustered* (map mostly monotonic,
warps touch few sectors) or *unclustered* (random map, up to 32 sectors
per warp) is not declared by the caller — it is measured from the actual
map by :mod:`repro.primitives.sector_analysis`, so the GFUR/GFTR
difference is an emergent property of the index arrays the join
algorithms produce.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from .sector_analysis import analyze_indices


def _random_stats_fields(index_map: np.ndarray, element_bytes: int) -> dict:
    stats = analyze_indices(index_map, element_bytes)
    return {
        "random_requests": stats.requests,
        "random_sector_touches": stats.sector_touches,
        "random_cold_sectors": stats.cold_sectors,
        "locality_footprint_bytes": stats.mean_warp_span_bytes,
    }


def gather(
    ctx: GPUContext,
    src: np.ndarray,
    index_map: np.ndarray,
    phase: Optional[str] = None,
    label: str = "",
) -> np.ndarray:
    """Gather ``src[index_map]``, charging random-read traffic.

    The map itself is streamed sequentially; the output is written
    sequentially; the source reads are charged according to the measured
    per-warp sector counts of the map.
    """
    out = src[index_map]
    stats = KernelStats(
        name=f"gather:{label}" if label else "gather",
        items=int(index_map.size),
        seq_read_bytes=int(index_map.nbytes),
        seq_write_bytes=int(out.nbytes),
        **_random_stats_fields(index_map, src.dtype.itemsize),
    )
    ctx.submit(stats, phase=phase)
    return out


def scatter(
    ctx: GPUContext,
    src: np.ndarray,
    index_map: np.ndarray,
    out: np.ndarray,
    phase: Optional[str] = None,
    label: str = "",
) -> np.ndarray:
    """Scatter ``out[index_map[i]] = src[i]``, charging random-write traffic.

    The destination writes are random; source and map are streamed.
    Returns *out* for convenience.
    """
    if index_map.size:
        out[index_map] = src
    stats = KernelStats(
        name=f"scatter:{label}" if label else "scatter",
        items=int(index_map.size),
        seq_read_bytes=int(index_map.nbytes) + int(src.nbytes),
        **_random_stats_fields(index_map, out.dtype.itemsize),
    )
    ctx.submit(stats, phase=phase)
    return out


def gather_stats_only(
    ctx: GPUContext,
    index_map: np.ndarray,
    element_bytes: int,
    out_bytes: int,
    phase: Optional[str] = None,
    label: str = "",
) -> None:
    """Charge gather traffic without moving data.

    Used when an algorithm has already produced the gathered values as a
    by-product (e.g. keys written during match finding) but the simulated
    hardware would still have performed the loads.
    """
    stats = KernelStats(
        name=f"gather:{label}" if label else "gather",
        items=int(index_map.size),
        seq_read_bytes=int(index_map.nbytes),
        seq_write_bytes=int(out_bytes),
        **_random_stats_fields(index_map, element_bytes),
    )
    ctx.submit(stats, phase=phase)
