"""abl01: Algorithm 1's lazy per-column transform vs an eager variant.

The GFTR pattern could transform *all* payload columns up front instead
of one at a time during materialization (Algorithm 1 lines 4-9).  Time
is nearly identical (the same kernels run, just reordered), but the
eager variant must hold every transformed payload column simultaneously
— the memory saving is the design point this ablation quantifies
(Section 4.1: "transforming and gathering one payload column at a time
saves memory").
"""

from __future__ import annotations

from typing import Tuple

from ...gpusim.context import GPUContext
from ...joins.matching import match_positions
from ...joins.phj import charge_hash_match, charge_load_balancing, derive_partition_bits
from ...primitives.gather import gather
from ...primitives.radix_partition import radix_partition
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup, run_algorithm

PAPER_ROWS = 1 << 26
PAYLOAD_COLUMNS = 4


def _eager_gftr_join(ctx: GPUContext, r, s, setup) -> Tuple[float, int]:
    """PHJ-OM with every payload column partitioned up front."""
    bits = derive_partition_bits(r.num_rows, setup.config.tuples_per_partition)
    parts = {}
    adopted = {}
    with ctx.phase("transform"):
        for side, rel in (("r", r), ("s", s)):
            payload_arrays = list(rel.payload_columns().values())
            part = radix_partition(
                ctx, rel.key_values, payload_arrays, bits, phase="transform", label=side
            )
            parts[side] = part
            ctx.mem.adopt(part.keys, f"part_keys_{side}")
            adopted[side] = [
                ctx.mem.adopt(p, f"part_payload_{side}_{i}")
                for i, p in enumerate(part.payloads)
            ]
    with ctx.phase("match"):
        pr, ps = parts["r"], parts["s"]
        charge_load_balancing(ctx, ps.num_partitions)
        vid_r, vid_s = match_positions(pr.keys, ps.keys, True)
        key_bytes = pr.keys.dtype.itemsize
        charge_hash_match(
            ctx, pr.counts, ps.counts, key_bytes, key_bytes,
            matches=int(vid_s.size), key_bytes=key_bytes,
            tuples_per_partition=setup.config.tuples_per_partition,
        )
        ctx.mem.adopt(vid_r, "match_vids_r")
        ctx.mem.adopt(vid_s, "match_vids_s")
        ctx.mem.free_by_prefix("part_keys_")
    with ctx.phase("materialize"):
        for side, vids in (("r", vid_r), ("s", vid_s)):
            for handle in adopted[side]:
                gather(ctx, handle.data, vids, phase="materialize")
                ctx.mem.free(handle)
        ctx.mem.free_by_prefix("match_vids_")
    return ctx.elapsed_seconds, ctx.mem.peak_bytes


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS),
        s_rows=setup.rows(PAPER_ROWS),
        r_payload_columns=PAYLOAD_COLUMNS,
        s_payload_columns=PAYLOAD_COLUMNS,
        seed=seed,
    )
    r, s = generate_join_workload(spec)

    lazy = run_algorithm("PHJ-OM", r, s, setup)
    eager_ctx = GPUContext(device=setup.device, seed=seed)
    eager_seconds, eager_peak = _eager_gftr_join(eager_ctx, r, s, setup)

    result = ExperimentResult(
        experiment_id="abl01",
        title="GFTR transform scheduling: lazy (Algorithm 1) vs eager",
        headers=["variant", "total_ms", "peak_aux_MB"],
    )
    result.add_row("lazy (Algorithm 1)", lazy.total_seconds * 1e3,
                   lazy.peak_aux_bytes / 1e6)
    result.add_row("eager (all columns up front)", eager_seconds * 1e3,
                   eager_peak / 1e6)
    result.findings["memory_saving"] = eager_peak / max(1, lazy.peak_aux_bytes)
    result.findings["time_ratio"] = eager_seconds / lazy.total_seconds
    result.add_note(
        "lazy transform trades no time for a peak-memory reduction that "
        "grows with the payload column count"
    )
    return result
