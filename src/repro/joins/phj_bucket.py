"""Bucket-chain partitioned hash join — PHJ-UM (Sioulas et al., Section 3.2).

The state-of-the-art baseline the paper starts from: multi-pass radix
partitioning with bucket chains, shared-memory hash tables per
co-partition, and GFUR materialization through physical tuple IDs.

Because the bucket-chain partitioner is non-deterministic (atomic write
order) and fragmented (fixed-size buckets), the GFTR pattern cannot be
applied to it — :func:`demonstrate_gftr_incompatibility` reproduces the
failure the paper describes in Section 4.3.  The join below is correct
because the tuple IDs travel *with* their keys through the partitioner.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..gpusim.context import GPUContext
from ..primitives.bucket_chain import bucket_chain_partition
from ..primitives.gather import gather
from ..relational.relation import Relation
from .base import (
    MATCH,
    MATERIALIZE,
    TRANSFORM,
    JoinAlgorithm,
    init_tuple_ids,
    output_column_names,
)
from .matching import match_positions
from .narrow import narrow_partitioned_hash
from .phj import charge_hash_match, charge_load_balancing, derive_partition_bits


class PartitionedHashJoinUM(JoinAlgorithm):
    """Partitioned hash join with bucket chains and GFUR materialization."""

    name = "PHJ-UM"
    pattern = "gfur"

    def _execute_narrow(self, ctx, r, s, unique_build_keys):
        bits = derive_partition_bits(
            r.num_rows, self.config.tuples_per_partition, self.config.partition_bits
        )
        return narrow_partitioned_hash(
            ctx, r, s, unique_build_keys, self.config, bits, "bucket"
        )

    def _execute(
        self, ctx: GPUContext, r: Relation, s: Relation, unique_build_keys: bool
    ) -> List[Tuple[str, np.ndarray]]:
        bits = derive_partition_bits(
            r.num_rows, self.config.tuples_per_partition, self.config.partition_bits
        )
        parts = {}
        part_ids = {}
        with ctx.phase(TRANSFORM):
            for side, rel in (("r", r), ("s", s)):
                ids = init_tuple_ids(ctx, rel.num_rows, TRANSFORM, side, dtype=rel.key_values.dtype)
                a_ids = ctx.mem.adopt(ids, f"ids_{side}")
                part = bucket_chain_partition(
                    ctx,
                    rel.key_values,
                    [ids],
                    total_bits=bits,
                    bucket_tuples=self.config.bucket_tuples,
                    phase=TRANSFORM,
                    hashed=self.config.hashed_partitioning,
                    label=side,
                )
                ctx.mem.free(a_ids)
                parts[side] = part
                # Bucket chains over-allocate: account the fragmentation.
                ctx.mem.adopt(part.keys, f"part_keys_{side}")
                part_ids[side] = ctx.mem.adopt(part.payloads[0], f"part_ids_{side}")
                if part.fragmentation_bytes > 0:
                    ctx.mem.alloc(part.fragmentation_bytes, np.uint8, f"fragmentation_{side}")

        with ctx.phase(MATCH):
            pr, ps = parts["r"], parts["s"]
            charge_load_balancing(ctx, ps.num_partitions)
            pos_r, pos_s = match_positions(pr.keys, ps.keys, unique_build_keys)
            out_key = ps.keys[pos_s]
            key_bytes = pr.keys.dtype.itemsize
            id_bytes = part_ids["r"].data.dtype.itemsize
            charge_hash_match(
                ctx,
                pr.counts,
                ps.counts,
                build_tuple_bytes=key_bytes + id_bytes,
                probe_tuple_bytes=key_bytes + id_bytes,
                matches=int(out_key.size),
                key_bytes=key_bytes,
                tuples_per_partition=self.config.bucket_tuples,
                load_balanced=self.config.load_balance,
                num_execution_units=ctx.device.num_execution_units,
            )
            id_r = gather(ctx, part_ids["r"].data, pos_r, phase=MATCH, label="id_r")
            id_s = gather(ctx, part_ids["s"].data, pos_s, phase=MATCH, label="id_s")
            a_id_r = ctx.mem.adopt(id_r, "match_ids_r")
            a_id_s = ctx.mem.adopt(id_s, "match_ids_s")
            ctx.mem.free_by_prefix("part_keys_", "part_ids_", "fragmentation_")

        columns: List[Tuple[str, np.ndarray]] = [("key", out_key)]
        with ctx.phase(MATERIALIZE):
            for side, source, out_name in output_column_names(r, s, self.config.projection):
                if out_name == "key":
                    continue
                rel = r if side == "r" else s
                ids = a_id_r.data if side == "r" else a_id_s.data
                columns.append(
                    (out_name, gather(ctx, rel.column(source), ids, phase=MATERIALIZE, label=out_name))
                )
            ctx.mem.free(a_id_r)
            ctx.mem.free(a_id_s)
        return columns


def demonstrate_gftr_incompatibility(
    keys: np.ndarray,
    payload_1: np.ndarray,
    payload_2: np.ndarray,
    total_bits: int = 4,
    seed_a: int = 1,
    seed_b: int = 2,
) -> bool:
    """Show why GFTR cannot use the bucket-chain partitioner (Section 4.3).

    Partitions ``(key, payload_1)`` and ``(key, payload_2)`` in two
    independent runs (different atomic interleavings, simulated by
    different RNG seeds).  Returns True if the two layouts disagree —
    i.e. row i of the first partitioned column and row i of the second
    belong to *different original tuples*, which would corrupt a join
    that gathered both through the same virtual IDs.
    """
    ctx_a = GPUContext(seed=seed_a)
    ctx_b = GPUContext(seed=seed_b)
    run_a = bucket_chain_partition(ctx_a, keys, [payload_1, payload_2], total_bits)
    run_b = bucket_chain_partition(ctx_b, keys, [payload_1, payload_2], total_bits)
    # The same logical partitioning, two runs: if intra-partition order
    # differs anywhere, independently partitioned payload columns would
    # be misaligned.
    return not (
        np.array_equal(run_a.payloads[0], run_b.payloads[0])
        and np.array_equal(run_a.payloads[1], run_b.payloads[1])
    )
