"""Sequences of joins over a star schema (Section 5.2.7, Figure 16).

A fact table ``F`` with foreign keys ``FK_1..FK_N`` is joined against
dimension tables ``D_1..D_N``.  Following the paper, the fact table
carries physical tuple identifiers and each foreign-key column is
materialized *right before* the join that needs it, so no join drags
foreign keys it will not use.  The i-th join processes
``(FK_i, ID, P_1, ..., P_{i-1}) ⋈ D_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..errors import JoinConfigError
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.kernel import KernelStats
from ..primitives.gather import gather
from ..relational.relation import Relation
from ..relational.types import id_dtype
from .base import JoinAlgorithm, JoinResult


@dataclass
class PipelineResult:
    """Outcome of a join sequence."""

    output: Relation
    join_results: List[JoinResult]
    #: time spent outside the joins (ID init, inter-join FK gathers)
    glue_seconds: float
    fact_rows: int
    dimension_rows: List[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(r.total_seconds for r in self.join_results) + self.glue_seconds

    @property
    def throughput_tuples_per_s(self) -> float:
        """(|F| + sum |D_i|) / total time — Figure 16's metric."""
        tuples = self.fact_rows + sum(self.dimension_rows)
        return tuples / self.total_seconds if self.total_seconds else float("inf")


class JoinPipeline:
    """Executes N fact-to-dimension joins with one join algorithm."""

    def __init__(self, algorithm: JoinAlgorithm):
        self.algorithm = algorithm

    def run(
        self,
        fact: Relation,
        fk_columns: Sequence[str],
        dimensions: Sequence[Relation],
        device: DeviceSpec = A100,
        seed: int = 0,
    ) -> PipelineResult:
        """Join *fact* with each dimension through its foreign-key column.

        ``fk_columns[i]`` names the fact column joining ``dimensions[i]``
        (whose key column is its primary key).  Dimension payload names
        must be distinct across dimensions.
        """
        if len(fk_columns) != len(dimensions):
            raise JoinConfigError(
                f"{len(fk_columns)} foreign keys vs {len(dimensions)} dimensions"
            )
        if not dimensions:
            raise JoinConfigError("a join pipeline needs at least one dimension")

        glue_ctx = GPUContext(device=device, seed=seed)
        n = fact.num_rows
        ids = np.arange(n, dtype=id_dtype(n))
        glue_ctx.submit(
            KernelStats(name="init_fact_ids", items=n, seq_write_bytes=int(ids.nbytes)),
            phase="glue",
        )

        # Working set: current join key + fact tuple IDs + payloads
        # accumulated from prior joins.
        working = Relation(
            [("key", fact.column(fk_columns[0])), ("__id", ids)], key="key"
        )
        join_results: List[JoinResult] = []
        for i, (fk, dim) in enumerate(zip(fk_columns, dimensions)):
            if i > 0:
                # Materialize the next foreign key through the surviving
                # fact tuple IDs (unclustered after transforms — this is
                # exactly the cost the paper charges between joins).
                current_ids = working.column("__id")
                next_fk = gather(
                    glue_ctx,
                    fact.column(fk),
                    current_ids,
                    phase="glue",
                    label=f"fk_{i + 1}",
                )
                columns = [("key", next_fk)]
                columns += [
                    (name, arr)
                    for name, arr in working.columns().items()
                    if name != "key"
                ]
                working = Relation(columns, key="key")
            result = self.algorithm.join(
                dim, working, device=device, seed=seed + i + 1
            )
            join_results.append(result)
            working = result.output
        output_columns = [
            (name, arr)
            for name, arr in working.columns().items()
            if name != "__id"
        ]
        output = Relation(output_columns, key="key", name="pipeline_output")
        return PipelineResult(
            output=output,
            join_results=join_results,
            glue_seconds=glue_ctx.elapsed_seconds,
            fact_rows=fact.num_rows,
            dimension_rows=[d.num_rows for d in dimensions],
        )
