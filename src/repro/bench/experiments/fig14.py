"""Figure 14: effect of foreign-key skewness (Zipf factor sweep).

1.5G ⋈ 1.5G with two payload columns per side, the foreign keys drawn
from a Zipf distribution.  The paper observes:

* PHJ-UM's bucket-chain partitioning degrades sharply past Zipf ~1
  (atomic contention on hot chains);
* RADIX-PARTITION (PHJ-OM, SMJ-*) stays flat;
* materialization shrinks with skew (few primary keys have matches),
  making SMJ-UM competitive at extreme skew;
* PHJ-OM is best everywhere.
"""

from __future__ import annotations

from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    run_algorithm,
)

PAPER_ROWS = 1 << 27
ZIPF_FACTORS = (0.0, 0.5, 0.9, 1.05, 1.25, 1.5, 1.75)
ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    result = ExperimentResult(
        experiment_id="fig14",
        title="Effect of foreign-key skewness (total ms; PHJ-UM transform ms)",
        headers=["zipf"] + list(ALGORITHMS) + ["phj_um_transform_ms", "winner"],
    )
    phj_um_transform = {}
    totals = {}
    for zipf in ZIPF_FACTORS:
        spec = JoinWorkloadSpec(
            r_rows=rows,
            s_rows=rows,
            r_payload_columns=2,
            s_payload_columns=2,
            zipf_factor=zipf,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        times = {}
        for name in ALGORITHMS:
            res = run_algorithm(name, r, s, setup)
            times[name] = res.total_seconds * 1e3
            if name == "PHJ-UM":
                phj_um_transform[zipf] = res.phase_seconds.get("transform", 0.0) * 1e3
        winner = min(times, key=times.get)
        result.add_row(zipf, *[times[a] for a in ALGORITHMS],
                       phj_um_transform[zipf], winner)
        totals[zipf] = times
    result.findings["phj_um_transform_blowup"] = (
        phj_um_transform[ZIPF_FACTORS[-1]] / phj_um_transform[0.0]
    )
    result.findings["phj_om_flatness"] = (
        totals[ZIPF_FACTORS[-1]]["PHJ-OM"] / totals[0.0]["PHJ-OM"]
    )
    result.findings["phj_om_always_best"] = float(
        all(min(t, key=t.get) == "PHJ-OM" for t in totals.values())
    )
    result.add_note("paper: PHJ-UM partitioning blows up past Zipf 1; PHJ-OM flat and best")
    return result
