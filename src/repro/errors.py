"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DeviceOutOfMemoryError(ReproError):
    """Raised when a simulated device allocation exceeds device capacity.

    Carries the allocator's largest live allocations at failure time
    (``top_live``: ``(label, nbytes)`` pairs, largest first) so OOM
    reports name the arrays actually holding the memory.
    """

    #: How many live allocations the message names.
    TOP_LIVE_LIMIT = 5

    def __init__(
        self,
        requested: int,
        in_use: int,
        capacity: int,
        label: str = "",
        top_live: Optional[Sequence[Tuple[str, int]]] = None,
    ):
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        self.label = label
        self.top_live = list(top_live or [])
        message = (
            f"device out of memory: requested {requested} B"
            + (f" for {label!r}" if label else "")
            + f" with {in_use} B in use exceeds capacity {capacity} B"
        )
        if self.top_live:
            shown = self.top_live[: self.TOP_LIVE_LIMIT]
            listed = ", ".join(
                f"{name or '<unlabeled>'}={nbytes} B" for name, nbytes in shown
            )
            more = len(self.top_live) - len(shown)
            message += f"; top live allocations: {listed}"
            if more > 0:
                message += f" (+{more} more)"
        super().__init__(message)


class AllocationError(ReproError):
    """Raised on invalid allocator usage (e.g. double free)."""


class InvalidRelationError(ReproError):
    """Raised when a relation or column is malformed for the operation."""


class JoinConfigError(ReproError):
    """Raised when a join is configured with invalid or unsupported options."""


class AggregationConfigError(ReproError):
    """Raised when a group-by is configured with invalid options."""


class WorkloadError(ReproError):
    """Raised when workload generator parameters are invalid."""


class FaultPlanError(ReproError):
    """Raised when a fault-injection plan is configured with invalid rates."""


class GracefulDegradationError(ReproError):
    """Raised when every degradation level of a recovery ladder still
    exceeds the (injected or real) device memory budget."""

    def __init__(self, message: str, attempts: Optional[Sequence[str]] = None):
        self.attempts = list(attempts or [])
        if self.attempts:
            message += f" (tried: {', '.join(self.attempts)})"
        super().__init__(message)


class QueryCancelledError(ReproError):
    """Raised when a query is cancelled cooperatively.

    Cancellation is *cooperative*: a :class:`~repro.cancel.CancellationToken`
    is checked at kernel-submission, superstep and operator boundaries,
    so in-flight work always completes before the query unwinds.

    ``reason`` is a stable machine-readable tag:

    * ``"deadline"`` — the query's simulated deadline passed while it
      was executing (the token expired mid-run);
    * ``"deadline-queued"`` — the deadline passed before the query was
      ever admitted (it was never started);
    * ``"deadline-stream"`` — the deadline passed while the query's
      kernels were replaying on the shared stream scheduler;
    * ``"manual"`` — the token was cancelled explicitly.

    ``site`` names the boundary that observed the cancellation (e.g.
    ``"kernel:probe"``, ``"superstep:partition"``, ``"operator:Join"``).
    """

    def __init__(
        self,
        message: str,
        reason: str = "manual",
        site: str = "",
        deadline_s: Optional[float] = None,
        consumed_s: float = 0.0,
    ):
        self.reason = reason
        self.site = site
        self.deadline_s = deadline_s
        self.consumed_s = consumed_s
        super().__init__(message)


class ServeConfigError(ReproError):
    """Raised when a :class:`~repro.serve.QueryServer` is configured with
    invalid options (stream counts, queue depths, cache budgets)."""


class AdmissionError(ReproError):
    """Raised when the serving layer rejects a query at admission.

    ``reason`` is a stable machine-readable tag:

    * ``"queue-full"`` — the bounded admission queue is saturated
      (backpressure: the client should retry later);
    * ``"oversized"`` — the query's memory reservation exceeds the
      server's total capacity, so it can never be admitted;
    * ``"closed"`` — the server is not accepting requests;
    * ``"tenant-queue-full"`` — the submitting tenant's own queue-depth
      quota is saturated (other tenants are unaffected);
    * ``"retry-budget"`` — the server-wide fault-retry budget is
      exhausted, so fault-injected queries are turned away until the
      budget refills;
    * ``"brownout-shed"`` — the server is in its SHED brownout level
      and dropped this low-priority query to protect the rest.
    """

    def __init__(self, message: str, reason: str = "queue-full"):
        self.reason = reason
        super().__init__(message)


class ShardedExecutionWarning(UserWarning):
    """Warned when ``shards > 1`` silently disables a requested
    optimization (e.g. join-aggregate fusion) rather than erroring."""
