"""Zipf sampling, TPC join extracts, star schemas, group-by generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.relational import join_match_indices
from repro.workloads import (
    GroupByWorkloadSpec,
    TPC_JOINS,
    TPC_JOINS_BY_ID,
    generate_groupby_workload,
    generate_star_schema,
    generate_tpc_join,
    hottest_key_share,
    sample_zipf,
    tpch_lineitem_like,
    zipf_cdf,
)


class TestZipf:
    def test_uniform_at_zero(self):
        rng = np.random.default_rng(0)
        keys = sample_zipf(1000, 50000, 0.0, rng)
        counts = np.bincount(keys, minlength=1000)
        assert counts.max() < 3 * counts.mean()

    def test_skew_monotonic_in_factor(self):
        rng = np.random.default_rng(1)
        shares = [
            hottest_key_share(sample_zipf(4096, 1 << 15, z, rng))
            for z in (0.0, 0.9, 1.5)
        ]
        assert shares[0] < shares[1] < shares[2]

    def test_domain_respected(self):
        rng = np.random.default_rng(2)
        keys = sample_zipf(64, 10000, 1.5, rng)
        assert keys.min() >= 0 and keys.max() < 64

    def test_cdf_normalized(self):
        cdf = zipf_cdf(100, 1.2)
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= 0)

    def test_cdf_validation(self):
        with pytest.raises(ValueError):
            zipf_cdf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_cdf(10, -0.5)

    def test_hot_ranks_shuffled(self):
        rng = np.random.default_rng(3)
        keys = sample_zipf(1 << 12, 1 << 14, 1.5, rng, shuffle_ranks=True)
        counts = np.bincount(keys, minlength=1 << 12)
        # The hottest key should usually not be key 0 once shuffled.
        assert counts.argmax() != 0

    def test_hottest_share_empty(self):
        assert hottest_key_share(np.empty(0, dtype=np.int64)) == 0.0


class TestTPCJoins:
    def test_table6_inventory(self):
        assert [s.join_id for s in TPC_JOINS] == ["J1", "J2", "J3", "J4", "J5"]
        assert TPC_JOINS_BY_ID["J5"].self_join
        assert TPC_JOINS_BY_ID["J4"].s_key_payloads == 3
        assert TPC_JOINS_BY_ID["J4"].s_nonkey_payloads == 7

    @pytest.mark.parametrize("join_id", ["J1", "J2", "J3", "J4"])
    def test_pk_fk_match_cardinality(self, join_id):
        spec = TPC_JOINS_BY_ID[join_id]
        r, s = generate_tpc_join(spec, scale=1e-4, seed=0)
        _, s_idx = join_match_indices(r.key_values, s.key_values)
        # Table 6: |R ⋈ S| == |S| for the PK-FK joins.
        assert s_idx.size == s.num_rows

    def test_j5_multiplicity(self):
        spec = TPC_JOINS_BY_ID["J5"]
        r, s = generate_tpc_join(spec, scale=2e-5, seed=0)
        r_idx, _ = join_match_indices(r.key_values, s.key_values)
        multiplicity = r_idx.size / s.num_rows
        assert multiplicity == pytest.approx(spec.multiplicity, rel=0.4)

    def test_mixed_variant_types(self):
        r, s = generate_tpc_join(TPC_JOINS_BY_ID["J1"], scale=1e-4, variant="mixed")
        assert r.key_values.dtype == np.int32
        assert r.column("rk1").dtype == np.int32  # key-typed payload
        assert r.column("rn1").dtype == np.int64  # non-key payload

    def test_wide_variant_types(self):
        r, _ = generate_tpc_join(TPC_JOINS_BY_ID["J1"], scale=1e-4, variant="wide")
        assert r.key_values.dtype == np.int64

    def test_payload_column_counts(self):
        r, s = generate_tpc_join(TPC_JOINS_BY_ID["J4"], scale=1e-4)
        assert r.num_payload_columns == 1
        assert s.num_payload_columns == 10  # 3 key + 7 non-key

    def test_bad_variant(self):
        with pytest.raises(WorkloadError):
            generate_tpc_join(TPC_JOINS[0], scale=1e-4, variant="huge")

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            generate_tpc_join(TPC_JOINS[0], scale=2.0)


class TestStarSchema:
    def test_shapes(self):
        fact, fk_names, dims = generate_star_schema(1000, 100, 4, seed=0)
        assert fact.num_rows == 1000
        assert fk_names == ["FK1", "FK2", "FK3", "FK4"]
        assert len(dims) == 4
        assert dims[2].payload_names == ["P3"]

    def test_full_match(self):
        fact, fk_names, dims = generate_star_schema(500, 50, 2, seed=1)
        for fk, dim in zip(fk_names, dims):
            _, s_idx = join_match_indices(dim.key_values, fact.column(fk))
            assert s_idx.size == fact.num_rows

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_star_schema(0, 10, 1)
        with pytest.raises(WorkloadError):
            generate_star_schema(10, 10, 0)


class TestGroupByGenerator:
    def test_shapes(self):
        keys, values = generate_groupby_workload(
            GroupByWorkloadSpec(rows=500, groups=10, value_columns=3, seed=0)
        )
        assert keys.size == 500
        assert sorted(values) == ["v1", "v2", "v3"]
        assert np.unique(keys).size <= 10

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_groupby_workload(GroupByWorkloadSpec(rows=0, groups=1))
        with pytest.raises(WorkloadError):
            generate_groupby_workload(GroupByWorkloadSpec(rows=1, groups=0))

    def test_lineitem_like(self):
        order_key, columns = tpch_lineitem_like(1000, seed=0)
        assert order_key.size == 1000
        assert set(columns) == {"quantity", "extendedprice", "returnflag", "linestatus"}
        assert columns["returnflag"].max() < 4
        assert columns["linestatus"].max() < 2
        assert columns["quantity"].min() >= 1
