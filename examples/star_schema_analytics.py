"""Star-schema analytics: a sequence of joins feeding an aggregation.

Reproduces the Section 5.2.7 scenario end to end: a fact table with N
foreign keys is joined against N dimension tables (materializing each
foreign key right before its join), then the enriched rows are grouped
and aggregated — the canonical OLAP pattern the SIGMOD 2025 title spans
(joins AND grouped aggregations).

Run: ``python examples/star_schema_analytics.py``
"""

import numpy as np

from repro import A100, AggSpec, JoinConfig, JoinPipeline, scaled_device
from repro.aggregation import make_groupby_algorithm, recommend_groupby_algorithm
from repro.aggregation.planner import GroupByWorkloadProfile
from repro.joins import make_algorithm
from repro.workloads import generate_star_schema

SCALE = 2.0 ** -10
DEVICE = scaled_device(A100, SCALE)
CONFIG = JoinConfig(
    tuples_per_partition=max(32, int(4096 * SCALE)),
    bucket_tuples=max(32, int(4096 * SCALE)),
)

NUM_JOINS = 4
fact, fk_names, dims = generate_star_schema(
    fact_rows=1 << 17, dim_rows=1 << 15, num_dimensions=NUM_JOINS, seed=3
)
print(f"Star schema: fact {fact.num_rows} rows x {NUM_JOINS} dimensions "
      f"of {dims[0].num_rows} rows\n")

# --- The join sequence, once per algorithm (Figure 16) -----------------
print(f"{'algorithm':10s} {'total ms':>10s} {'Mtuples/s':>10s}")
outputs = {}
for name in ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM"):
    pipeline = JoinPipeline(make_algorithm(name, CONFIG))
    result = pipeline.run(fact, fk_names, dims, device=DEVICE, seed=0)
    outputs[name] = result
    print(f"{name:10s} {result.total_seconds * 1e3:10.3f} "
          f"{result.throughput_tuples_per_s / 1e6:10.0f}")

best = min(outputs, key=lambda n: outputs[n].total_seconds)
ratio = outputs["PHJ-UM"].total_seconds / outputs["PHJ-OM"].total_seconds
print(f"\nBest: {best}; PHJ-OM is {ratio:.2f}x PHJ-UM over {NUM_JOINS} joins "
      f"(the advantage grows with sequence length — Figure 16)\n")

# --- Aggregate the enriched output --------------------------------------
enriched = outputs["PHJ-OM"].output
group_keys = enriched.column("P1") % 64  # derive a 64-ary grouping key
values = {"P2": enriched.column("P2"), "P3": enriched.column("P3")}
aggregates = [AggSpec("P2", "sum"), AggSpec("P3", "max"), AggSpec("P2", "count")]

profile = GroupByWorkloadProfile(rows=enriched.num_rows, estimated_groups=64)
recommendation = recommend_groupby_algorithm(profile, device=DEVICE)
print(f"Aggregation planner: {recommendation.explain()}")

agg = make_groupby_algorithm(recommendation.algorithm).group_by(
    group_keys.astype(np.int32), values, aggregates, device=DEVICE
)
print(f"\n{agg.groups} groups in {agg.total_seconds * 1e3:.3f} ms simulated")
print("first groups:", dict(zip(agg.output["group_key"][:4].tolist(),
                                agg.output["sum_P2"][:4].tolist())))
