"""Caching: fingerprints, the dependent LRU, and no-stale-reads."""

import numpy as np
import pytest

from repro.query import execute
from repro.query.plan import Aggregate, Join, Scan
from repro.aggregation import AggSpec
from repro.relational.relation import Relation
from repro.serve import (
    DependentLRU,
    QueryServer,
    plan_signature,
    relation_fingerprint,
)

from tests.serve.conftest import SERVE_SEED, assert_bit_identical, make_relation


# -- fingerprints -------------------------------------------------------------


def test_fingerprint_is_content_addressed():
    a = make_relation(64, seed=5, prefix="a")
    b = make_relation(64, seed=5, prefix="a")
    assert relation_fingerprint(a) == relation_fingerprint(b)


def test_fingerprint_sees_every_byte_and_the_schema():
    base = make_relation(64, seed=5, prefix="a")
    fingerprint = relation_fingerprint(base)
    columns = base.columns()
    changed = dict(columns)
    changed["a1"] = columns["a1"].copy()
    changed["a1"][17] += 1
    one_value = Relation(list(changed.items()), key=base.key)
    renamed = Relation(
        [("z" + n if n != base.key else n, col) for n, col in columns.items()],
        key=base.key,
    )
    recast = Relation(
        [(n, col.astype(np.int64) if n == "a2" else col)
         for n, col in columns.items()],
        key=base.key,
    )
    for other in (one_value, renamed, recast):
        assert relation_fingerprint(other) != fingerprint


def test_plan_signature_distinguishes_structure_and_algorithms(r, s):
    fp = relation_fingerprint
    auto = plan_signature(Join(Scan(r), Scan(s)), fp)
    forced = plan_signature(Join(Scan(r), Scan(s), algorithm="SMJ-OM"), fp)
    flipped = plan_signature(Join(Scan(s), Scan(r)), fp)
    agg = plan_signature(
        Aggregate(Join(Scan(r), Scan(s)), "r1", (AggSpec("s1", "sum"),)), fp
    )
    assert len({auto, forced, flipped, agg}) == 4
    assert auto == plan_signature(Join(Scan(r), Scan(s)), fp)


# -- the dependent LRU --------------------------------------------------------


def test_lru_evicts_by_entry_count_in_recency_order():
    cache = DependentLRU(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a").value == 1  # refreshes "a"
    cache.put("c", 3)
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.evictions == 1


def test_lru_evicts_by_byte_budget():
    cache = DependentLRU(max_bytes=100)
    cache.put("a", 1, nbytes=60)
    cache.put("b", 2, nbytes=60)
    assert "a" not in cache
    assert cache.current_bytes == 60
    # A value larger than the whole budget is uncacheable, not admitted.
    assert cache.put("huge", 3, nbytes=101) is None
    assert "huge" not in cache


def test_lru_invalidation_tracks_dependencies():
    cache = DependentLRU()
    cache.put("rs", 1, deps=("r", "s"))
    cache.put("rt", 2, deps=("r", "t"))
    cache.put("t", 3, deps=("t",))
    assert cache.invalidate("t") == 2
    assert "rs" in cache and "rt" not in cache and "t" not in cache
    assert cache.invalidations == 2
    # The dependency index forgets removed entries: no double-counting.
    assert cache.invalidate("t") == 0
    assert cache.invalidate("r") == 1
    assert len(cache) == 0


def test_lru_put_refresh_replaces_bytes_and_deps():
    cache = DependentLRU(max_bytes=1000)
    cache.put("k", 1, deps=("r",), nbytes=100)
    cache.put("k", 2, deps=("s",), nbytes=40)
    assert cache.current_bytes == 40
    assert cache.invalidate("r") == 0
    assert cache.get("k").value == 2
    cache.clear()
    assert len(cache) == 0 and cache.current_bytes == 0


# -- the server's caches ------------------------------------------------------


def test_repeat_query_hits_the_result_cache(r, s):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.register("r", r)
    server.register("s", s)
    plan = Join(Scan(r), Scan(s))
    first = server.query(plan)
    second = server.query(plan)
    assert not first.result_cache_hit and second.result_cache_hit
    assert second.solo_seconds < first.solo_seconds
    assert_bit_identical(second.output, first.output)
    assert server.metrics.value("serve.result_cache_hits") == 1.0


def test_plan_cache_pins_algorithms_without_result_reuse(r, s):
    server = QueryServer(streams=2, seed=SERVE_SEED, enable_result_cache=False)
    plan = Join(Scan(r), Scan(s))
    first = server.query(plan)
    second = server.query(plan)
    assert not first.plan_cache_hit and second.plan_cache_hit
    assert not second.result_cache_hit
    assert_bit_identical(second.output, first.output)


def test_updating_a_relation_evicts_every_dependent_entry(r, s, t):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.register("r", r)
    server.register("s", s)
    server.register("t", t)
    server.query(Join(Scan(r), Scan(s)), tag="rs")
    server.query(Join(Scan(r), Scan(t)), tag="rt")
    assert len(server.result_cache) == 2 and len(server.plan_cache) == 2
    invalidated = server.update("s", make_relation(256, seed=99, prefix="s", fanout=2))
    assert invalidated == 2  # the rs plan-cache and result-cache entries
    assert len(server.result_cache) == 1 and len(server.plan_cache) == 1
    assert server.metrics.value("serve.invalidated_entries") == 2.0
    # The surviving entries still serve the untouched template.
    assert server.query(Join(Scan(r), Scan(t))).result_cache_hit


def test_stale_reads_are_impossible_after_update(r, s):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.register("r", r)
    server.register("s", s)
    old = server.query(Join(Scan(r), Scan(s)))
    s2 = make_relation(256, seed=77, prefix="s", fanout=2)
    server.update("s", s2)
    fresh = server.query(Join(Scan(server.relation("r")), Scan(s2)))
    assert not fresh.result_cache_hit and not fresh.plan_cache_hit
    assert_bit_identical(
        fresh.output, execute(Join(Scan(r), Scan(s2)), seed=SERVE_SEED).output
    )
    assert not np.array_equal(
        np.sort(fresh.output.columns()["s1"]),
        np.sort(old.output.columns()["s1"]),
    )


def test_catalog_misuse_raises(r):
    server = QueryServer(seed=SERVE_SEED)
    server.register("r", r)
    with pytest.raises(Exception, match="already registered"):
        server.register("r", r)
    with pytest.raises(Exception, match="not registered"):
        server.update("ghost", r)
    with pytest.raises(Exception, match="not registered"):
        server.relation("ghost")


def test_fault_injected_queries_never_populate_the_caches(r, s):
    # A faulted execution is only guaranteed equal up to row order, so
    # admitting its output would poison every later exact-match lookup.
    from repro.faults import FaultPlan

    storm = FaultPlan(seed=9, kernel_fault_rate=0.5)
    server = QueryServer(streams=1, seed=SERVE_SEED)
    plan = Join(Scan(r), Scan(s))
    server.submit(plan, fault_plan=storm)
    server.run()
    assert len(server.result_cache) == 0 and len(server.plan_cache) == 0
    # A later clean query misses (no stale faulted entry) and populates.
    clean = server.query(plan)
    assert not clean.result_cache_hit
    assert len(server.result_cache) == 1
    assert_bit_identical(clean.output, execute(plan, seed=SERVE_SEED).output)


def test_failed_queries_never_populate_the_result_cache(r, s):
    from repro.aggregation import AggSpec
    from repro.faults import FaultPlan
    from repro.query.plan import Aggregate

    plan = Aggregate(Join(Scan(r), Scan(s)), group_column="r1",
                     aggregates=(AggSpec("s1", "sum"),))
    server = QueryServer(streams=1, seed=SERVE_SEED)
    server.submit(plan, fault_plan=FaultPlan(seed=5, capacity_frac=1e-10))
    (outcome,) = server.run()
    assert outcome.status == "failed"
    assert len(server.result_cache) == 0


def test_verify_cache_inserts_oracle_accepts_clean_outputs(r, s):
    server = QueryServer(streams=1, seed=SERVE_SEED, verify_cache_inserts=True)
    plan = Join(Scan(r), Scan(s))
    first = server.query(plan)
    assert server.metrics.value("serve.cache_inserts_verified") == 1.0
    assert server.query(plan).result_cache_hit
    assert_bit_identical(first.output, execute(plan, seed=SERVE_SEED).output)


def test_verify_cache_inserts_env_var_enables_the_oracle(r, s, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_VERIFY_CACHE", "1")
    server = QueryServer(streams=1, seed=SERVE_SEED)
    assert server.verify_cache_inserts
    server.query(Join(Scan(r), Scan(s)))
    assert server.metrics.value("serve.cache_inserts_verified") == 1.0
    monkeypatch.delenv("REPRO_SERVE_VERIFY_CACHE")
    assert not QueryServer(streams=1, seed=SERVE_SEED).verify_cache_inserts


def test_verify_cache_inserts_catches_a_poisoned_output(r, s, monkeypatch):
    # Sabotage the serving-side execution (it runs under a trace
    # session) while leaving the oracle's clean re-execution (no trace)
    # untouched: the guard must refuse the corrupted output.
    from repro.query.executor import QueryExecutor

    real_execute = QueryExecutor.execute

    def corrupting(self, plan, optimize=True, trace=None):
        result = real_execute(self, plan, optimize=optimize, trace=trace)
        if trace is not None and result.output is not None:
            columns = list(result.output.columns().items())
            name, column = columns[0]
            column = column.copy()
            column[0] += 1
            result.output = Relation(
                [(name, column)] + columns[1:], key=result.output.key
            )
        return result

    monkeypatch.setattr(
        "repro.query.executor.QueryExecutor.execute", corrupting
    )
    server = QueryServer(streams=1, seed=SERVE_SEED, verify_cache_inserts=True)
    plan = Join(Scan(r), Scan(s))
    server.submit(plan)
    with pytest.raises(AssertionError, match="cache poisoning"):
        server.run()
    # The guard fired before the poisoned entry landed, and the
    # unwinding path freed the admission reservation.
    assert len(server.result_cache) == 0
    assert server.memory.reserved_bytes == 0


def test_tiny_result_cache_evicts_but_stays_correct(r, s, t):
    baseline_rs = execute(Join(Scan(r), Scan(s)), seed=SERVE_SEED).output
    baseline_rt = execute(Join(Scan(r), Scan(t)), seed=SERVE_SEED).output
    server = QueryServer(
        streams=1, seed=SERVE_SEED, result_cache_bytes=baseline_rs.total_bytes + 1
    )
    for _ in range(2):
        assert_bit_identical(server.query(Join(Scan(r), Scan(s))).output, baseline_rs)
        assert_bit_identical(server.query(Join(Scan(r), Scan(t))).output, baseline_rt)
    assert server.result_cache.evictions > 0
