"""ext03: cross-device validation (A100 vs RTX 3090).

Regenerates the experiment table into ``bench_results/ext03.txt``.
Run: ``pytest benchmarks/bench_ext03.py --benchmark-only -s``
"""

from repro.bench.experiments import ext03

from _common import SWEEP_SCALE, run_and_report


def test_ext03(benchmark):
    result = run_and_report(benchmark, ext03.run, SWEEP_SCALE)
    assert result.findings["phj_om_wins_both_devices"] == 1.0
    assert result.findings["a100_faster_absolute"] == 1.0
