"""Segment cache: residency, counters, pressure, accounting invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.memory import DeviceMemory
from repro.tier import PlacementPolicy, SegmentCache, SegmentKey

K = lambda i, col="c", rel="R": SegmentKey(rel, col, i)  # noqa: E731


def seg_data(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def make_cache(capacity=None, mem_capacity=None):
    return SegmentCache(DeviceMemory(mem_capacity), capacity_bytes=capacity)


def test_admit_then_get_round_trips_data():
    cache = make_cache()
    data = seg_data(100)
    assert cache.admit(K(0), data)
    got = cache.get(K(0))
    np.testing.assert_array_equal(got, data)
    assert got is not data  # a device copy, not the host view
    assert cache.is_resident(K(0))
    assert cache.resident_bytes == data.nbytes
    assert cache.memory.current_bytes == data.nbytes


def test_admit_is_idempotent():
    cache = make_cache()
    assert cache.admit(K(0), seg_data(10))
    assert cache.admit(K(0), seg_data(10))
    assert cache.admissions == 1


def test_budget_decline_leaves_segment_cold():
    cache = make_cache(capacity=100)
    assert not cache.admit(K(0), seg_data(100))  # 800 bytes > 100
    assert cache.declined == 1
    assert not cache.is_resident(K(0))
    assert cache.resident_bytes == 0


def test_memory_oom_decline_is_graceful():
    cache = make_cache(mem_capacity=100)
    assert cache.can_fit(80)
    assert not cache.admit(K(0), seg_data(100))
    assert cache.declined == 1
    assert cache.memory.current_bytes == 0


def test_reservations_compete_with_segments():
    memory = DeviceMemory(1000)
    cache = SegmentCache(memory)
    reservation = memory.reserve(900, label="admission")
    assert not cache.admit(K(0), seg_data(50))  # 400 bytes do not fit
    reservation.free()
    assert cache.admit(K(0), seg_data(50))


def test_evict_frees_device_bytes():
    cache = make_cache()
    cache.admit(K(0), seg_data(10))
    freed = cache.evict(K(0))
    assert freed == 80
    assert cache.evictions == 1
    assert cache.resident_bytes == 0
    assert cache.memory.current_bytes == 0
    assert cache.get(K(0)) is None
    assert cache.evict(K(0)) == 0  # double evict is a no-op


def test_demote_bytes_cheapest_first_with_policy():
    cache = make_cache()
    policy = PlacementPolicy()
    for i in range(3):
        cache.admit(K(i), seg_data(10))
    for _ in range(5):
        policy.note_access(K(2))
    policy.note_access(K(1))
    freed = cache.demote_bytes(100, policy=policy)
    assert freed == 160  # two cheapest segments
    assert cache.is_resident(K(2))  # most valuable survives
    assert cache.demotions == 2


def test_apply_pressure_demotes_to_cap_and_lifts():
    cache = make_cache()
    for i in range(4):
        cache.admit(K(i), seg_data(10))  # 320 bytes resident
    freed = cache.apply_pressure(150)
    assert freed >= 170
    assert cache.resident_bytes <= 150
    assert cache.pressure_demotions == 1
    assert not cache.can_fit(80)
    cache.apply_pressure(None)
    assert cache.can_fit(80)


def test_hit_ratio_is_byte_weighted():
    cache = make_cache()
    cache.record_access(True, 300)
    cache.record_access(False, 100)
    assert cache.hit_ratio == pytest.approx(0.75)


def test_evict_relation_and_clear():
    cache = make_cache()
    cache.admit(K(0, rel="A"), seg_data(10))
    cache.admit(K(0, rel="B"), seg_data(10))
    assert cache.evict_relation("A") == 80
    assert not cache.is_resident(K(0, rel="A"))
    assert cache.is_resident(K(0, rel="B"))
    assert cache.clear() == 80
    assert cache.resident_bytes == 0


# -- the property: resident_bytes == sum of resident segment sizes ----------

OPS = st.lists(
    st.tuples(
        st.sampled_from(["admit", "evict", "demote", "pressure", "lift"]),
        st.integers(0, 11),  # key index
        st.integers(1, 64),  # segment length (x8 bytes)
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=OPS, capacity=st.integers(200, 4000))
def test_accounting_invariant_across_interleavings(ops, capacity):
    """The tentpole invariant: across ANY interleaving of placement
    operations, the cache's byte accounting never drifts from the sum of
    the resident segments, and the backing DeviceMemory agrees."""
    memory = DeviceMemory(capacity)
    cache = SegmentCache(memory, capacity_bytes=capacity)
    policy = PlacementPolicy(min_residency_ticks=0)
    for op, idx, length in ops:
        if op == "admit":
            policy.note_access(K(idx))
            cache.admit(K(idx), seg_data(length))
        elif op == "evict":
            cache.evict(K(idx))
        elif op == "demote":
            cache.demote_bytes(length * 8, policy=policy)
        elif op == "pressure":
            cache.apply_pressure(length * 8)
        else:
            cache.apply_pressure(None)
        cache.assert_consistent()
        assert cache.resident_bytes == sum(
            n for _, n in cache.resident_items()
        )
        assert memory.current_bytes == cache.resident_bytes
        cap = cache.effective_capacity_bytes
        if cap is not None:
            assert cache.resident_bytes <= cap
