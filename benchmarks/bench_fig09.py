"""Figure 9: time breakdown of narrow joins.

Regenerates the experiment table into ``bench_results/fig09.txt``.
Run: ``pytest benchmarks/bench_fig09.py --benchmark-only -s``
"""

from repro.bench.experiments import fig09

from _common import SWEEP_SCALE, run_and_report


def test_fig09(benchmark):
    result = run_and_report(benchmark, fig09.run, SWEEP_SCALE)
    assert abs(result.findings["smj_om_vs_smj_um_largest"] - 1.0) < 0.05
