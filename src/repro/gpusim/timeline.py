"""Phase-structured execution timeline.

Join and group-by algorithms in this library report their simulated time
split into the three phases the paper uses throughout its evaluation
(Figures 1, 9, 10, 14, 17): ``transform``, ``match`` (match finding /
aggregation) and ``materialize``.  A :class:`PhaseTimeline` accumulates
:class:`~repro.gpusim.kernel.KernelRecord` entries per phase.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .kernel import KernelRecord, KernelStats

#: Canonical phase names used by all algorithms, in display order.
PHASES = ("transform", "match", "materialize")


class PhaseTimeline:
    """Accumulates kernel records grouped by phase.

    When built with a :class:`~repro.obs.session.TraceSession`, every
    :meth:`phase` block additionally opens a phase span on the session,
    so exported traces show the same transform/match/materialize
    structure the breakdown reports.
    """

    def __init__(self, trace=None):
        self._records: "OrderedDict[str, List[KernelRecord]]" = OrderedDict()
        self.current_phase: Optional[str] = None
        self.trace = trace

    def add(self, record: KernelRecord) -> None:
        phase = record.phase or self.current_phase or "other"
        record.phase = phase
        self._records.setdefault(phase, []).append(record)

    def add_many(self, records: List[KernelRecord]) -> None:
        """Append a batch of records, resolving each record's phase.

        Equivalent to calling :meth:`add` per record but amortizes the
        per-phase bucket lookup across runs of same-phase records — the
        common case for a batched primitive pipeline.
        """
        bucket: Optional[List[KernelRecord]] = None
        bucket_phase: Optional[str] = None
        for record in records:
            phase = record.phase or self.current_phase or "other"
            record.phase = phase
            if phase != bucket_phase:
                bucket = self._records.setdefault(phase, [])
                bucket_phase = phase
            bucket.append(record)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute kernels submitted inside the block to *name*."""
        previous = self.current_phase
        self.current_phase = name
        span = (
            self.trace.span(name, category="phase") if self.trace is not None else None
        )
        if span is not None:
            span.__enter__()
        try:
            yield
        finally:
            self.current_phase = previous
            if span is not None:
                span.__exit__(None, None, None)

    # -- queries -----------------------------------------------------------

    def phase_seconds(self) -> Dict[str, float]:
        """Total simulated seconds per phase."""
        return {
            phase: sum(r.seconds for r in records)
            for phase, records in self._records.items()
        }

    def total_seconds(self) -> float:
        return sum(sum(r.seconds for r in records) for records in self._records.values())

    def records(self, phase: Optional[str] = None) -> List[KernelRecord]:
        if phase is None:
            return [r for records in self._records.values() for r in records]
        return list(self._records.get(phase, []))

    def kernel_count(self) -> int:
        return sum(len(records) for records in self._records.values())

    def merged_stats(self, phase: Optional[str] = None) -> KernelStats:
        """Merge all kernel stats (optionally for one phase) into one record."""
        merged = KernelStats(name=phase or "all", launches=0)
        for record in self.records(phase):
            merged = merged.merged_with(record.stats, name=merged.name)
        return merged

    def breakdown(self) -> "OrderedDict[str, float]":
        """Phase seconds in canonical order, then any extra phases."""
        seconds = self.phase_seconds()
        ordered: "OrderedDict[str, float]" = OrderedDict()
        for phase in PHASES:
            if phase in seconds:
                ordered[phase] = seconds[phase]
        for phase, value in seconds.items():
            if phase not in ordered:
                ordered[phase] = value
        return ordered
