"""Table 4: micro-architectural GATHER counters.

Regenerates the experiment table into ``bench_results/tab04.txt``.
Run: ``pytest benchmarks/bench_tab04.py --benchmark-only -s``
"""

from repro.bench.experiments import tab04

from _common import REPORT_SCALE, run_and_report


def test_tab04(benchmark):
    result = run_and_report(benchmark, tab04.run, REPORT_SCALE)
    assert 5.0 <= result.findings["cycle_ratio"] <= 12.0
