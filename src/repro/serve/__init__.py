"""Simulated multi-tenant query serving.

The layers below (``gpusim`` -> algorithms -> ``query`` -> ``cluster``
/ ``faults``) execute one query at a time; this package serves *many*:

* :mod:`~repro.serve.streams` — N logical streams multiplexed on one
  simulated device under a deterministic bandwidth-occupancy model;
* :mod:`~repro.serve.server` — :class:`QueryServer`: admission control
  with memory reservations and a bounded priority queue, plan pinning
  and result caching with relation-update invalidation, fault-degraded
  queries that finish without stalling the rest;
* :mod:`~repro.serve.driver` — open/closed-loop workload generation
  over Zipf-popular templates, reporting simulated throughput and
  latency percentiles;
* :mod:`~repro.serve.trace` — the serving timeline as a multi-track
  Chrome trace.

The invariant everything here preserves: serving only re-times queries.
Every output is bit-identical to a direct
:func:`repro.query.executor.execute` of the same plan.
"""

from .cache import (
    DependentLRU,
    PinnedPlan,
    PlanCache,
    ResultCache,
    pin_plan,
    plan_signature,
    relation_fingerprint,
)
from .driver import DriverReport, QueryTemplate, TemplateStats, WorkloadDriver
from .server import (
    QueryOutcome,
    QueryRequest,
    QueryServer,
    ServeReport,
)
from .streams import QueryCompletion, ScheduledItem, StreamScheduler, WorkItem
from .trace import serve_chrome_trace, write_serve_trace

__all__ = [
    "DependentLRU",
    "DriverReport",
    "PinnedPlan",
    "PlanCache",
    "QueryCompletion",
    "QueryOutcome",
    "QueryRequest",
    "QueryServer",
    "QueryTemplate",
    "ResultCache",
    "ScheduledItem",
    "ServeReport",
    "StreamScheduler",
    "TemplateStats",
    "WorkItem",
    "WorkloadDriver",
    "pin_plan",
    "plan_signature",
    "relation_fingerprint",
    "serve_chrome_trace",
    "write_serve_trace",
]
