"""Deterministic fault injection and graceful-degradation recovery.

``FaultPlan`` describes a reproducible fault workload (transient kernel
faults, device-OOM pressure, cluster link failures, stragglers, device
replays); the execution layers accept it as a ``fault_plan=`` keyword
and recover without changing any relational result.  See
``ARCHITECTURE.md`` ("Fault model & graceful degradation").
"""

from .plan import FAULT_COUNTERS, FaultEvent, FaultInjector, FaultPlan, site_seed
from .recovery import (
    ResilientGroupByResult,
    ResilientJoinResult,
    resilient_group_by,
    resilient_join,
)

__all__ = [
    "FAULT_COUNTERS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ResilientGroupByResult",
    "ResilientJoinResult",
    "resilient_group_by",
    "resilient_join",
    "site_seed",
]
