"""ext05: resilience sweep under injected faults and memory pressure.

Regenerates the experiment table into ``bench_results/ext05.txt``.
Run: ``pytest benchmarks/bench_ext05.py --benchmark-only -s``
"""

from repro.bench.experiments import ext05

from _common import SWEEP_SCALE, run_and_report


def test_ext05(benchmark):
    result = run_and_report(benchmark, ext05.run, SWEEP_SCALE)
    assert result.findings["results_bit_identical_all_points"] == 1.0
    assert result.findings["capacity_pressure_degrades_not_raises"] == 1.0
    assert result.findings["fault_free_point_matches_baseline"] == 1.0
    assert result.findings["retry_overhead_monotone_in_rate"] == 1.0
