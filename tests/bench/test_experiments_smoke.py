"""Every experiment runs end-to-end at tiny scale and reproduces the
paper's qualitative findings.

These are *shape* assertions with generous bands — the quantitative
reproduction at the reporting scale lives in ``benchmarks/`` and
EXPERIMENTS.md; here we guard against regressions in the directions.
"""

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS

#: Tiny scale so the full matrix stays fast.
SCALE = 2.0 ** -11


@pytest.fixture(scope="module")
def results():
    cache = {}

    def run(name):
        if name not in cache:
            cache[name] = ALL_EXPERIMENTS[name](scale=SCALE)
        return cache[name]

    return run


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_runs_and_renders(results, name):
    result = results(name)
    assert result.experiment_id == name
    assert result.rows, f"{name} produced no rows"
    text = result.render()
    assert name in text


class TestJoinFindings:
    def test_fig01_materialization_dominates_um(self, results):
        result = results("fig01")
        assert result.findings["phj_om_speedup_over_phj_um"] > 1.5
        assert result.findings["smj_om_speedup_over_smj_um"] > 1.2
        # *-UM rows have a materialization fraction above 50%.
        um_rows = [row for row in result.rows if str(row[0]).endswith("UM")]
        assert all(row[5] > 0.5 for row in um_rows)

    def test_tab04_gather_gap(self, results):
        result = results("tab04")
        assert 5.0 <= result.findings["cycle_ratio"] <= 12.0
        assert result.findings["sectors_per_request_unclustered"] > 24
        assert result.findings["sectors_per_request_clustered"] < 8

    def test_fig07_transform_plus_clustered_wins(self, results):
        result = results("fig07")
        assert result.findings["A100_partition_speedup"] > 1.3
        assert result.findings["RTX3090_partition_speedup"] > 1.3

    def test_fig08_gpu_beats_cpu_and_npj(self, results):
        result = results("fig08")
        assert result.findings["max_gpu_speedup_over_cpu"] > 10
        assert result.findings["max_speedup_over_npj"] > 2

    def test_fig09_narrow_variants_coincide(self, results):
        result = results("fig09")
        assert result.findings["smj_om_vs_smj_um_largest"] == pytest.approx(1.0, abs=0.05)
        assert result.findings["phj_um_vs_phj_om_largest"] == pytest.approx(1.0, abs=0.3)

    def test_fig10_headline_speedups(self, results):
        result = results("fig10")
        assert result.findings["phj_om_speedup_over_phj_um"] > 1.7
        assert result.findings["smj_om_speedup_over_smj_um"] > 1.2
        assert result.findings["phj_om_speedup_over_smj_om"] > 1.1

    def test_fig11_om_wins_all_ratios(self, results):
        assert results("fig11").findings["om_wins_all_ratios"] == 1.0

    def test_fig12_advantage_persists_with_width(self, results):
        assert results("fig12").findings["phj_om_over_phj_um_widest"] > 1.5

    def test_fig13_match_ratio_crossover(self, results):
        result = results("fig13")
        assert result.findings["low_ratio_winner_is_um"] == 1.0
        assert result.findings["high_ratio_winner_is_om"] == 1.0

    def test_fig14_skew(self, results):
        result = results("fig14")
        assert result.findings["phj_um_transform_blowup"] > 3.0
        assert result.findings["phj_om_flatness"] < 1.3
        assert result.findings["phj_om_always_best"] == 1.0

    def test_fig15_types(self, results):
        result = results("fig15")
        assert result.findings["phj_om_best_all_types"] == 1.0
        assert result.findings["smj_om_loses_edge_wide"] < 1.2

    def test_tab05_memory(self, results):
        result = results("tab05")
        assert result.findings["om_over_um_worst_ratio"] < 1.15
        assert result.findings["om_wins_uniform_and_wide"] == 1.0

    def test_fig16_sequences(self, results):
        result = results("fig16")
        assert result.findings["phj_om_ratio_at_8"] > 1.4
        assert result.findings["advantage_grows"] == 1.0

    def test_fig17_phj_om_dominates(self, results):
        assert results("fig17").findings["phj_om_win_fraction"] >= 0.5

    def test_fig18_planner(self, results):
        assert results("fig18").findings["planner_accuracy"] >= 0.8


class TestAggregationFindings:
    def test_agg01_regimes(self, results):
        result = results("agg01")
        assert result.findings["hash_wins_smallest"] == 1.0
        assert result.findings["part_wins_largest"] == 1.0

    def test_agg02_partitioned_flat_under_skew(self, results):
        assert results("agg02").findings["part_agg_flatness"] < 1.3

    def test_agg03_gftr_folds_win(self, results):
        result = results("agg03")
        assert result.findings["gftr_wins_all_widths"] == 1.0

    def test_agg04_type_asymmetry(self, results):
        result = results("agg04")
        assert result.findings["part_agg_wins_4b_keys"] == 1.0
        assert result.findings["hash_less_type_sensitive"] == 1.0

    def test_agg05_planner(self, results):
        assert results("agg05").findings["planner_accuracy"] >= 0.8

    def test_agg06_tpch_shapes(self, results):
        result = results("agg06")
        assert result.findings["q1_hash_wins"] == 1.0
        assert result.findings["q18_part_wins"] == 1.0


class TestExtensionFindings:
    def test_ext01_out_of_core_degrades_monotonically(self, results):
        result = results("ext01")
        assert result.findings["monotone_degradation"] == 1.0
        assert result.findings["in_memory_over_smallest_budget"] > 1.0

    def test_ext02_fusion_benefit_grows(self, results):
        result = results("ext02")
        assert result.findings["speedup_widest"] > 1.3
        assert result.findings["benefit_grows_with_width"] == 1.0

    def test_ext03_cross_device(self, results):
        result = results("ext03")
        assert result.findings["phj_om_wins_both_devices"] == 1.0
        assert result.findings["a100_faster_absolute"] == 1.0

    def test_fig18_costbased_planner(self, results):
        assert results("fig18").findings["costbased_accuracy"] >= 0.8

    def test_ext04_scale_out_consistency(self, results):
        result = results("ext04")
        assert result.findings["results_bit_identical_all_points"] == 1.0
        assert result.findings["one_device_cluster_matches_single"] == 1.0

    def test_ext05_resilience(self, results):
        result = results("ext05")
        assert result.findings["results_bit_identical_all_points"] == 1.0
        assert result.findings["capacity_pressure_degrades_not_raises"] == 1.0
        assert result.findings["fault_free_point_matches_baseline"] == 1.0
        assert result.findings["retry_overhead_monotone_in_rate"] == 1.0


class TestAblationFindings:
    def test_abl01_lazy_saves_memory_not_time(self, results):
        result = results("abl01")
        assert result.findings["memory_saving"] > 1.5
        assert result.findings["time_ratio"] < 1.2

    def test_abl02_single_pass_faster(self, results):
        assert results("abl02").findings["match_phase_saving"] > 1.2

    def test_abl03_derived_bits_near_optimal(self, results):
        assert results("abl03").findings["derived_regret"] < 0.35

    def test_abl04_load_balancing(self, results):
        result = results("abl04")
        assert result.findings["skewed_penalty_without_balancing"] > 2.0
        assert result.findings["uniform_penalty_without_balancing"] < 1.3
