"""Benchmark-suite options.

``--trace-dir DIR`` captures a :class:`repro.obs.TraceSession` around
every benchmark and writes ``<benchmark>.trace.json`` (open in
``chrome://tracing`` or Perfetto), ``<benchmark>.counters.csv`` and
``<benchmark>.report.txt`` into DIR::

    pytest benchmarks/bench_fig10.py --benchmark-only --trace-dir traces/

(The name avoids pytest's built-in ``--trace`` debugging flag; the
``python -m repro.bench`` CLI spells it ``--trace``.)  Without the
flag, tracing stays disabled and benchmarks run with zero
instrumentation overhead.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--trace-dir",
        action="store",
        default=None,
        metavar="DIR",
        help="export a Chrome-trace JSON + counter CSV + report per benchmark",
    )


@pytest.fixture
def trace_dir(request):
    """The --trace-dir output directory, or None when tracing is off."""
    return request.config.getoption("--trace-dir")


@pytest.fixture(autouse=True)
def _traced_benchmark(request, trace_dir):
    """Capture every benchmark into a TraceSession when --trace-dir is set."""
    if not trace_dir:
        yield
        return
    from repro.obs import TraceSession, export_session

    with TraceSession(request.node.name) as session:
        yield
    export_session(session, trace_dir)
