"""Deadline semantics end to end: queued expiry, execution cancel,
stream-boundary cancel, and the fault-retry interaction.

Edge cases pinned here:

* expiry while *queued* → the query is never started (starting doomed
  work would steal streams/memory from queries that can still make it);
* a deadline landing *exactly* on a kernel boundary cancels at that
  boundary (``>=``, not ``>``);
* the in-flight kernel always completes — a deadline inside the *last*
  kernel yields a completed-late outcome (``deadline_missed``), never a
  cancellation;
* fault retries recharge the token, so a deadline can expire inside the
  retry loop of an otherwise-affordable query.
"""

import pytest

from repro.errors import QueryCancelledError, ServeConfigError
from repro.faults import FaultPlan
from repro.query import execute
from repro.query.plan import Join, Scan
from repro.serve import QueryServer
from repro.serve.streams import StreamScheduler, WorkItem

from tests.serve.conftest import SERVE_SEED, assert_bit_identical


@pytest.fixture
def plan(r, s):
    return Join(Scan(r), Scan(s))


@pytest.fixture
def solo_s(plan):
    return execute(plan, seed=SERVE_SEED).total_seconds


def drained(server):
    """Every reservation and byte returned after the run."""
    return (
        server.memory.reserved_bytes == 0
        and server.memory.current_bytes == 0
        and not server._inflight
    )


# -- scheduler-level boundary semantics (exact arithmetic) --------------------


def test_stream_cancel_exactly_at_a_kernel_boundary():
    sched = StreamScheduler(streams=1)
    sched.start(0, [WorkItem("k0", 1.0), WorkItem("k1", 1.0)], at_s=0.0,
                deadline_s=1.0)
    done = sched.advance_to(float("inf"))
    assert done.cancelled
    assert done.finish_s == 1.0
    assert done.solo_seconds == 1.0  # only the kernel that actually ran
    assert sched.free_streams() == 1  # the stream was released


def test_deadline_inside_the_final_kernel_completes_late():
    sched = StreamScheduler(streams=1)
    sched.start(0, [WorkItem("k0", 1.0)], at_s=0.0, deadline_s=0.5)
    done = sched.advance_to(float("inf"))
    assert not done.cancelled  # the launched kernel always completes
    assert done.finish_s == 1.0


def test_deadline_just_past_the_boundary_lets_the_next_kernel_run():
    sched = StreamScheduler(streams=1)
    sched.start(0, [WorkItem("k0", 1.0), WorkItem("k1", 1.0)], at_s=0.0,
                deadline_s=1.5)
    done = sched.advance_to(float("inf"))
    # Boundary at 1.0 precedes the deadline, so k1 starts — and then
    # must finish (completed-late), not be cut mid-kernel.
    assert not done.cancelled
    assert done.finish_s == 2.0


# -- server-level paths -------------------------------------------------------


def test_expiry_during_execution_cancels_and_frees_memory(plan):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    query_id = server.submit(plan, deadline_s=1e-9)
    (outcome,) = server.run()
    assert outcome.query_id == query_id
    assert outcome.status == "cancelled"
    assert isinstance(outcome.error, QueryCancelledError)
    assert outcome.error.reason == "deadline"
    assert outcome.error.site  # the boundary that observed it
    assert outcome.output is None
    assert server.metrics.value("serve.cancelled_executing") == 1.0
    assert drained(server)


def test_generous_deadline_completes_without_the_missed_flag(plan, solo_s):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.submit(plan, deadline_s=solo_s * 100)
    (outcome,) = server.run()
    assert outcome.status == "completed"
    assert not outcome.deadline_missed
    assert_bit_identical(outcome.output, execute(plan, seed=SERVE_SEED).output)
    assert drained(server)


def test_expiry_while_queued_rejects_without_starting(plan, solo_s):
    server = QueryServer(streams=1, seed=SERVE_SEED, enable_result_cache=False)
    blocker = server.submit(plan)  # occupies the only stream
    doomed = server.submit(plan, deadline_s=solo_s / 100)
    outcomes = {o.query_id: o for o in server.run()}
    assert outcomes[blocker].status == "completed"
    victim = outcomes[doomed]
    assert victim.status == "cancelled"
    assert victim.error.reason == "deadline-queued"
    assert victim.error.site == "queue"
    assert victim.stream == -1  # never admitted to a stream
    assert server.metrics.value("serve.cancelled_queued") == 1.0
    assert drained(server)


def test_dead_on_arrival_is_cancelled_not_queued(plan, solo_s):
    # The horizon only reaches the arrival after its deadline passed.
    server = QueryServer(streams=1, seed=SERVE_SEED, enable_result_cache=False)
    server.submit(plan, at_s=0.0)
    server.submit(plan, at_s=0.0, deadline_s=solo_s / 100)
    server.run()
    doa = [o for o in server.outcomes if o.status == "cancelled"]
    assert len(doa) == 1 and doa[0].error.reason == "deadline-queued"


def test_contention_can_push_a_solo_affordable_deadline_over(plan, solo_s):
    # Deadline > solo time, but two queries sharing the device stretch
    # each other past it: cancellation happens on the *stream*, after
    # the correctness half already succeeded.
    server = QueryServer(
        streams=2, seed=SERVE_SEED, enable_result_cache=False, interference=1.0
    )
    server.submit(plan, at_s=0.0, deadline_s=solo_s * 1.2)
    server.submit(plan, at_s=0.0, deadline_s=solo_s * 1.2)
    outcomes = server.run()
    stream_cancelled = [
        o for o in outcomes
        if o.status == "cancelled" and o.error.reason == "deadline-stream"
    ]
    assert stream_cancelled
    for o in stream_cancelled:
        assert o.error.site.startswith("stream:")
        assert o.output is None
    assert drained(server)


def test_fault_retries_consume_deadline_budget(plan, solo_s):
    # Generous against the solo time, hopeless against retry backoff
    # (absolute backoff constants dwarf scaled kernel times).
    storm = FaultPlan(seed=3, kernel_fault_rate=0.9)
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.submit(plan, fault_plan=storm, deadline_s=solo_s * 10)
    (outcome,) = server.run()
    assert outcome.status == "cancelled"
    assert outcome.error.reason == "deadline"
    assert outcome.error.site.startswith(("retry:", "kernel", "operator:"))
    assert drained(server)

    # The same deadline without faults completes comfortably.
    clean = QueryServer(streams=2, seed=SERVE_SEED)
    clean.submit(plan, deadline_s=solo_s * 10)
    assert clean.run()[0].status == "completed"


def test_default_deadline_applies_when_submit_gives_none(plan):
    server = QueryServer(streams=2, seed=SERVE_SEED, default_deadline_s=1e-9)
    server.submit(plan)
    (outcome,) = server.run()
    assert outcome.status == "cancelled"
    # An explicit deadline overrides the default.
    server2 = QueryServer(streams=2, seed=SERVE_SEED, default_deadline_s=1e-9)
    server2.submit(plan, deadline_s=1e6)
    assert server2.run()[0].status == "completed"


def test_nonpositive_deadline_is_a_config_error(plan):
    server = QueryServer(streams=1, seed=SERVE_SEED)
    with pytest.raises(ServeConfigError, match="deadline_s"):
        server.submit(plan, deadline_s=0.0)
    with pytest.raises(ServeConfigError, match="deadline_s"):
        server.submit(plan, deadline_s=-1.0)


def test_cancelled_queries_count_in_the_report(plan):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.submit(plan, deadline_s=1e-9)
    server.submit(plan)
    server.run()
    report = server.report()
    assert report.submitted == 2
    assert report.completed == 1
    assert report.cancelled == 1
    assert "cancelled" in report.render()
