"""RADIX-PARTITION: stability, grouping, multi-pass composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import A100, GPUContext
from repro.primitives.radix_partition import (
    MAX_BITS_PER_PASS,
    partition_codes,
    plan_passes,
    radix_partition,
    radix_partition_pass,
)


@pytest.fixture
def ctx():
    return GPUContext(device=A100)


class TestSinglePass:
    def test_groups_by_digit(self, ctx):
        keys = np.array([5, 2, 7, 0, 6, 3], dtype=np.int32)
        out_keys, _ = radix_partition_pass(ctx, keys, [], 0, 2)
        digits = out_keys & 3
        assert np.array_equal(digits, np.sort(digits))

    def test_stable_within_digit(self, ctx):
        keys = np.array([4, 0, 8, 12], dtype=np.int32)  # all digit 0 (2 bits)
        payload = np.array([1, 2, 3, 4], dtype=np.int32)
        out_keys, (out_payload,) = radix_partition_pass(ctx, keys, [payload], 0, 2)
        assert list(out_keys) == [4, 0, 8, 12]
        assert list(out_payload) == [1, 2, 3, 4]

    def test_payloads_travel_with_keys(self, ctx):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 256, 1000).astype(np.int32)
        payload = keys * 10
        out_keys, (out_payload,) = radix_partition_pass(ctx, keys, [payload], 0, 8)
        assert np.array_equal(out_payload, out_keys * 10)

    def test_more_than_8_bits_rejected(self, ctx):
        with pytest.raises(ValueError, match="at most"):
            radix_partition_pass(ctx, np.arange(4, dtype=np.int32), [], 0, 9)

    def test_traffic_charged_per_invocation(self, ctx):
        keys = np.arange(1 << 12, dtype=np.int32)
        radix_partition_pass(ctx, keys, [keys.copy()], 0, 8)
        stats = ctx.timeline.records()[-1].stats
        # fused histogram read + data in/out: 2 reads of keys + 1 of
        # payload in; 1 write each.
        assert stats.seq_read_bytes == 3 * keys.nbytes
        assert stats.seq_write_bytes == 2 * keys.nbytes


class TestPlanPasses:
    def test_exact_multiple(self):
        assert plan_passes(16) == [(0, 8), (8, 8)]

    def test_remainder(self):
        assert plan_passes(11) == [(0, 8), (8, 3)]

    def test_single(self):
        assert plan_passes(5) == [(0, 5)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            plan_passes(0)


class TestMultiPass:
    def test_full_partition_groups_contiguously(self, ctx):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1 << 16, 5000).astype(np.int32)
        part = radix_partition(ctx, keys, [], total_bits=12)
        codes = partition_codes(part.keys, 12)
        assert np.array_equal(codes, np.sort(codes))
        assert part.passes == 2

    def test_counts_and_offsets_consistent(self, ctx):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 64, 4000).astype(np.int32)
        part = radix_partition(ctx, keys, [], total_bits=6)
        assert part.counts.sum() == keys.size
        assert part.num_partitions == 64
        np.testing.assert_array_equal(
            part.offsets, np.concatenate(([0], np.cumsum(part.counts)[:-1]))
        )
        # Offsets really delimit the partitions.
        codes = partition_codes(part.keys, 6)
        for p in (0, 13, 63):
            lo, count = part.offsets[p], part.counts[p]
            assert np.all(codes[lo : lo + count] == p)

    def test_stability_across_payload_choices(self, ctx):
        """The GFTR prerequisite: same layout for (k, c1) and (k, c2)."""
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 4096, 3000).astype(np.int32)
        c1 = rng.integers(0, 100, 3000).astype(np.int32)
        c2 = rng.integers(0, 100, 3000).astype(np.int32)
        run1 = radix_partition(ctx, keys, [c1], total_bits=10)
        run2 = radix_partition(ctx, keys, [c2], total_bits=10)
        # Reconstruct original row ids via the values: both layouts must
        # place every original row at the same position.
        ids = np.arange(3000, dtype=np.int32)
        ref1 = radix_partition(GPUContext(device=A100), keys, [ids], total_bits=10)
        ref2 = radix_partition(GPUContext(device=A100), keys, [ids], total_bits=10)
        assert np.array_equal(ref1.payloads[0], ref2.payloads[0])
        assert np.array_equal(run1.keys, run2.keys)

    def test_hashed_partitioning_spreads_but_preserves_rows(self, ctx):
        keys = np.arange(4096, dtype=np.int32)
        part = radix_partition(ctx, keys, [], total_bits=6, hashed=True)
        assert np.array_equal(np.sort(part.keys), keys)
        assert part.counts.max() < 3 * part.counts.mean()

    def test_compute_boundaries_false_skips_kernel(self, ctx):
        keys = np.arange(1024, dtype=np.int32)
        radix_partition(ctx, keys, [], total_bits=4, compute_boundaries=True)
        with_boundaries = ctx.timeline.kernel_count()
        ctx2 = GPUContext(device=A100)
        radix_partition(ctx2, keys, [], total_bits=4, compute_boundaries=False)
        assert ctx2.timeline.kernel_count() == with_boundaries - 1

    def test_two_invocations_per_16_bits(self, ctx):
        """The paper's accounting: 15-16 bits -> 2 RADIX-PARTITION calls."""
        keys = np.arange(1 << 12, dtype=np.int32)
        part = radix_partition(ctx, keys, [], total_bits=16)
        assert part.passes == 2


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(0, 2 ** 20), min_size=1, max_size=400),
    bits=st.integers(1, 12),
)
def test_partition_is_a_permutation(keys, bits):
    ctx = GPUContext(device=A100)
    arr = np.asarray(keys, dtype=np.int64)
    payload = np.arange(arr.size, dtype=np.int64)
    part = radix_partition(ctx, arr, [payload], total_bits=bits)
    assert np.array_equal(np.sort(part.keys), np.sort(arr))
    # payload permutation is consistent with the key permutation
    assert np.array_equal(arr[part.payloads[0]], part.keys)
