"""Leak invariants: every exit path returns every byte.

Each test drives one outcome type (completed, rejected, cancelled
while queued / executing / on-stream, failed, server-closed) and then
asserts the same postcondition: zero reserved bytes, zero live
allocation bytes, balanced reserve/release counts, and zeroed
per-tenant accounting.  This is the regression net for the exit-path
audit — an unwound query must be indistinguishable from one that never
ran, resource-wise.
"""

from dataclasses import replace

import pytest

from repro.faults import FaultPlan
from repro.gpusim.device import A100
from repro.query import execute
from repro.query.plan import Join, Scan
from repro.serve import QueryServer, TenantQuota

from tests.serve.conftest import SERVE_SEED


@pytest.fixture
def plan(r, s):
    return Join(Scan(r), Scan(s))


def assert_no_leaks(server):
    assert server.memory.reserved_bytes == 0
    assert server.memory.current_bytes == 0
    assert server.memory.reserve_count == server.memory.release_count
    assert not server._inflight
    for tenant, state in server.tenants.items():
        assert state.inflight == 0, tenant
        assert state.reserved_bytes == 0, tenant
        assert state.queued == 0, tenant


def test_completed_queries_release_everything(plan):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    for _ in range(3):
        server.submit(plan, at_s=0.0)
    assert all(o.status == "completed" for o in server.run())
    assert_no_leaks(server)


def test_rejected_queries_never_reserve(plan):
    server = QueryServer(streams=1, queue_depth=1, seed=SERVE_SEED)
    for _ in range(5):
        server.submit(plan, at_s=0.0)
    outcomes = server.run()
    assert any(o.status == "rejected" for o in outcomes)
    assert_no_leaks(server)
    # Rejections took no reservation at all: only the served queries did.
    served = sum(1 for o in outcomes if o.status == "completed")
    assert server.memory.reserve_count == served


def test_cancelled_while_executing_releases_the_reservation(plan):
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.submit(plan, deadline_s=1e-9)
    (outcome,) = server.run()
    assert outcome.status == "cancelled"
    assert_no_leaks(server)


def test_cancelled_on_the_stream_releases_the_reservation(plan, r, s):
    solo = execute(plan, seed=SERVE_SEED).total_seconds
    server = QueryServer(
        streams=2, seed=SERVE_SEED, enable_result_cache=False, interference=1.0
    )
    server.submit(plan, at_s=0.0, deadline_s=solo * 1.2)
    server.submit(plan, at_s=0.0, deadline_s=solo * 1.2)
    outcomes = server.run()
    assert any(
        o.status == "cancelled" and o.error.reason == "deadline-stream"
        for o in outcomes
    )
    assert_no_leaks(server)


def test_cancelled_while_queued_never_reserves(plan):
    solo = execute(plan, seed=SERVE_SEED).total_seconds
    server = QueryServer(streams=1, seed=SERVE_SEED, enable_result_cache=False)
    server.submit(plan, at_s=0.0)
    server.submit(plan, at_s=0.0, deadline_s=solo / 100)
    outcomes = server.run()
    assert any(o.error and o.error.reason == "deadline-queued" for o in outcomes)
    assert_no_leaks(server)
    assert server.memory.reserve_count == 1  # only the query that ran


def test_failed_queries_release_the_reservation(r, s):
    # A capacity squeeze so deep even block-staged out-of-core execution
    # cannot fit: the ladder exhausts, the serving layer converts the
    # raise to a "failed" outcome, and the reservation still comes back.
    from repro.aggregation import AggSpec
    from repro.query.plan import Aggregate

    plan = Aggregate(Join(Scan(r), Scan(s)), group_column="r1",
                     aggregates=(AggSpec("s1", "sum"),))
    hopeless = FaultPlan(seed=5, capacity_frac=1e-10)
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.submit(plan, fault_plan=hopeless)
    (outcome,) = server.run()
    assert outcome.status == "failed"
    assert outcome.error is not None and outcome.output is None
    assert server.metrics.value("serve.failed_executing") == 1.0
    assert_no_leaks(server)


def test_close_with_cancel_queued_drains_without_leaks(plan):
    solo = execute(plan, seed=SERVE_SEED).total_seconds
    server = QueryServer(streams=1, seed=SERVE_SEED, enable_result_cache=False)
    running = server.submit(plan, at_s=0.0)
    queued = [server.submit(plan, at_s=0.0) for _ in range(2)]
    future = server.submit(plan, at_s=1e6)
    # Park mid-service: the first query is on the stream, the rest wait.
    server.run(until_s=solo / 2)
    server.close(cancel_queued=True)
    outcomes = {o.query_id: o for o in server.run()}
    assert outcomes[running].status == "completed"
    for i in queued + [future]:
        assert outcomes[i].status == "cancelled"
        assert outcomes[i].error.reason == "server-closed"
    assert_no_leaks(server)


def test_quota_deferral_holds_no_memory(plan):
    server = QueryServer(
        streams=4,
        seed=SERVE_SEED,
        enable_result_cache=False,
        tenants={"capped": TenantQuota(max_concurrent=1)},
    )
    for _ in range(4):
        server.submit(plan, at_s=0.0, tenant="capped")
    server.run()
    assert_no_leaks(server)


def test_memory_blocked_admission_reserves_nothing_while_waiting(plan, r, s):
    estimate = int((r.total_bytes + s.total_bytes) * 3.0)
    device = replace(A100, global_mem_bytes=int(estimate * 1.5))
    server = QueryServer(
        streams=2, queue_depth=4, device=device, seed=SERVE_SEED,
        enable_result_cache=False,
    )
    for _ in range(3):
        server.submit(plan, at_s=0.0)
    outcomes = server.run()
    assert all(o.status == "completed" for o in outcomes)
    assert_no_leaks(server)


def test_update_releases_the_replaced_relations_memo(plan, r, s):
    # The fingerprint memo is keyed by object identity; replacing a
    # relation must drop the old entry or the server pins every replaced
    # relation's arrays in host memory for its whole lifetime.
    server = QueryServer(streams=1, seed=SERVE_SEED)
    server.register("r", r)
    server.register("s", s)
    server.query(plan)
    assert id(r) in server._fp_memo
    from tests.serve.conftest import make_relation

    server.update("r", make_relation(256, seed=44, prefix="r"))
    assert id(r) not in server._fp_memo
