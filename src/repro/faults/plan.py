"""Deterministic, seed-driven fault injection.

The paper's out-of-core joins (Section 6, Table 6) exist because real
GPU runs die at the memory cliff; production deployments additionally
lose devices and links.  A :class:`FaultPlan` describes a reproducible
fault workload — transient kernel faults, shrunk device-memory capacity
(OOM pressure), cluster link failures and stragglers, whole-device
failures — and hands out per-site :class:`FaultInjector` streams.

Design invariants, asserted by ``tests/faults/``:

* **Determinism** — every injection decision is a pure function of
  ``(plan.seed, site, draw index)``.  Each site gets its own
  ``numpy`` generator seeded from the plan seed and a stable hash of
  the site name, so adding an injection point at one site never
  perturbs the draws of another.
* **Isolation from the data path** — injectors never touch the
  workload RNGs (e.g. ``GPUContext.rng``) and never mutate relational
  data.  Faults only add *simulated recovery time* and *recovery
  traffic*; every recovery path reproduces the fault-free relational
  output bit for bit.
* **Bounded recovery** — faults are transient: a retry, retransmit or
  replay eventually succeeds.  ``max_retries`` bounds the number of
  *charged* failed attempts per event, mirroring the bounded-retry
  loops of MapReduce-style GPU join systems.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..errors import FaultPlanError

#: Canonical session counter names incremented by the injection points
#: (via ``TraceSession.count``) so fault/recovery totals surface in the
#: :class:`~repro.obs.metrics.MetricsRegistry`, the counters CSV and the
#: recovery-overhead report section.
FAULT_COUNTERS = (
    "faults_injected_kernel",
    "faults_injected_oom",
    "faults_injected_link",
    "faults_injected_device",
    "faults_injected_straggler",
    "fault_kernel_retries",
    "fault_retry_seconds",
    "fault_retransmit_bytes",
    "fault_retransmit_seconds",
    "fault_replays",
    "fault_replay_seconds",
    "fault_straggler_seconds",
    "degraded_operators",
    "degraded_extra_passes",
)


def site_seed(seed: int, site: str) -> int:
    """Stable (platform-independent) seed for one injection site."""
    return (int(seed) & 0xFFFFFFFF) ^ zlib.crc32(site.encode("utf-8"))


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault workload, applied via per-site injectors.

    All rates are per-event Bernoulli probabilities in ``[0, 1)``.
    The default plan injects nothing — every layer treats
    ``fault_plan=None`` and ``FaultPlan()`` identically on the happy
    path.

    Attributes
    ----------
    seed:
        Base seed; together with the site name it fully determines
        every injection decision.
    kernel_fault_rate:
        Probability that one submitted kernel transiently faults and is
        retried with simulated backoff (idempotent re-execution).
    capacity_frac:
        When set, shrink every fault-planned device's
        :class:`~repro.gpusim.memory.DeviceMemory` to this fraction of
        its physical capacity *and* enforce it — the OOM-pressure
        injection that drives the planners' graceful degradation.
    link_failure_rate:
        Probability that one shuffle transfer (a directed link's bucket)
        fails and must be retransmitted.
    straggler_rate / straggler_slowdown:
        Probability that a device (compute step) or link (shuffle step)
        runs ``straggler_slowdown`` times slower than modeled.
    device_failure_rate:
        Probability that a device fails during one cluster compute
        superstep; its shard is replayed from the superstep checkpoint.
    max_retries:
        Bound on charged failed attempts per fault event.
    backoff_base_s:
        Simulated backoff before retry attempt ``k`` is
        ``backoff_base_s * 2**k`` (exponential).

    >>> plan = FaultPlan(seed=7, kernel_fault_rate=0.5)
    >>> a = plan.injector("gpu0")
    >>> b = plan.injector("gpu0")
    >>> [a.kernel_faults("probe") for _ in range(6)] == [
    ...     b.kernel_faults("probe") for _ in range(6)]
    True
    """

    seed: int = 0
    kernel_fault_rate: float = 0.0
    capacity_frac: Optional[float] = None
    link_failure_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_slowdown: float = 4.0
    device_failure_rate: float = 0.0
    max_retries: int = 3
    backoff_base_s: float = 50e-6

    def __post_init__(self):
        for name in (
            "kernel_fault_rate",
            "link_failure_rate",
            "straggler_rate",
            "device_failure_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1), got {rate}")
        if self.capacity_frac is not None and not 0.0 < self.capacity_frac <= 1.0:
            raise FaultPlanError(
                f"capacity_frac must be in (0, 1], got {self.capacity_frac}"
            )
        if self.straggler_slowdown < 1.0:
            raise FaultPlanError("straggler_slowdown must be >= 1")
        if self.max_retries < 1:
            raise FaultPlanError("max_retries must be >= 1")
        if self.backoff_base_s < 0:
            raise FaultPlanError("backoff_base_s must be >= 0")

    @property
    def injects_anything(self) -> bool:
        """True when any injection point can fire."""
        return bool(
            self.kernel_fault_rate
            or self.capacity_frac is not None
            or self.link_failure_rate
            or self.straggler_rate
            or self.device_failure_rate
        )

    def injector(self, site: str) -> "FaultInjector":
        """A fresh deterministic injector stream for one site."""
        return FaultInjector(self, site)

    def capacity_bytes(self, device) -> Optional[int]:
        """Injected capacity for a device, or ``None`` (no pressure)."""
        if self.capacity_frac is None:
            return None
        return max(1, int(device.global_mem_bytes * self.capacity_frac))

    def backoff_seconds(self, attempt: int) -> float:
        """Simulated backoff before retry ``attempt`` (0-based)."""
        return self.backoff_base_s * (2.0 ** attempt)

    def without_capacity(self) -> "FaultPlan":
        """This plan minus the OOM pressure.

        Used by recovery paths that already degraded around the memory
        cliff (out-of-core chunks, cluster shards): transient faults
        keep injecting, but the degraded execution itself is not
        re-broken by the very pressure it is escaping.
        """
        if self.capacity_frac is None:
            return self
        return replace(self, capacity_frac=None)


@dataclass
class FaultEvent:
    """One injected fault, as recorded by the injector that drew it."""

    kind: str  #: "kernel" | "link" | "device" | "straggler" | "oom"
    site: str
    detail: str
    attempts: int = 1


class FaultInjector:
    """A deterministic per-site stream of injection decisions.

    One injector per injection site (one simulated device context, one
    cluster fabric, ...).  Decisions are drawn from a private generator
    seeded by ``(plan.seed, site)``; the draw *order* at a site is the
    site's own event order, which is deterministic for a fixed
    workload.  Injectors record every fired fault in :attr:`events` so
    tests and reports can audit injection without an active trace.
    """

    def __init__(self, plan: FaultPlan, site: str):
        self.plan = plan
        self.site = site
        self._rng = np.random.default_rng(site_seed(plan.seed, site))
        self.events: List[FaultEvent] = []
        self.counts: Dict[str, int] = {}

    def _note(self, kind: str, detail: str, attempts: int = 1) -> None:
        self.events.append(
            FaultEvent(kind=kind, site=self.site, detail=detail, attempts=attempts)
        )
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def _consecutive_failures(self, rate: float) -> int:
        """Failed Bernoulli(rate) draws before success, capped.

        Faults are transient by definition, so recovery always succeeds
        within ``max_retries`` charged attempts (the cap models the point
        where a real system escalates rather than spins).
        """
        if rate <= 0.0:
            return 0
        failures = 0
        while failures < self.plan.max_retries and self._rng.random() < rate:
            failures += 1
        return failures

    # -- injection points --------------------------------------------------

    def kernel_faults(self, kernel_name: str) -> int:
        """Failed attempts to charge before one kernel succeeds (>= 0)."""
        failures = self._consecutive_failures(self.plan.kernel_fault_rate)
        if failures:
            self._note("kernel", kernel_name, attempts=failures + 1)
        return failures

    def link_failures(self, src: int, dst: int) -> int:
        """Retransmissions one directed link's bucket needs (>= 0)."""
        failures = self._consecutive_failures(self.plan.link_failure_rate)
        if failures:
            self._note("link", f"{src}->{dst}", attempts=failures + 1)
        return failures

    def device_replays(self, step: str, device: int) -> int:
        """Lost executions of one device's superstep shard (>= 0)."""
        failures = self._consecutive_failures(self.plan.device_failure_rate)
        if failures:
            self._note("device", f"{step}@gpu{device}", attempts=failures + 1)
        return failures

    def straggler_factor(self, detail: str) -> float:
        """Slowdown multiplier for one device/link (1.0 = healthy)."""
        if self.plan.straggler_rate and self._rng.random() < self.plan.straggler_rate:
            self._note("straggler", detail)
            return self.plan.straggler_slowdown
        return 1.0

    def note_oom(self, detail: str) -> None:
        """Record that injected memory pressure triggered an OOM."""
        self._note("oom", detail)
