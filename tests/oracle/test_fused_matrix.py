"""The full join × group-by matrix through FusedJoinAggregate.

Every (join algorithm, group-by strategy) pair is diffed against the
composition of the two numpy oracles: ``reference_groupby`` applied to
the columns of ``reference_join``.  Fused and unfused execution must
both reproduce it.
"""

import numpy as np
import pytest

from repro.aggregation import AggSpec, make_groupby_algorithm
from repro.joins import FusedJoinAggregate, make_algorithm
from repro.relational import reference_groupby, reference_join
from repro.workloads import generate_join_workload

from .conftest import GROUPBY_NAMES, JOIN_NAMES, JOIN_SPECS, relation_from_keys

AGGREGATES = (AggSpec("r1", "sum"), AggSpec("s1", "max"), AggSpec("r1", "count"))


def _expected(r, s):
    joined = reference_join(r, s)
    keys = joined.column("key")
    values = {"r1": joined.column("r1"), "s1": joined.column("s1")}
    out = {"group_key": reference_groupby(keys, values, {"r1": "sum"})["group_key"]}
    out["sum_r1"] = reference_groupby(keys, values, {"r1": "sum"})["sum_r1"]
    out["max_s1"] = reference_groupby(keys, values, {"s1": "max"})["max_s1"]
    out["count_r1"] = reference_groupby(keys, values, {"r1": "count"})["count_r1"]
    return out


def _diff(result, expected):
    for name, array in expected.items():
        assert np.array_equal(result.output[name], array), name


@pytest.mark.parametrize("groupby", GROUPBY_NAMES)
@pytest.mark.parametrize("join", JOIN_NAMES)
def test_matrix_fused_matches_oracle_composition(join, groupby):
    r, s = generate_join_workload(JOIN_SPECS[sorted(JOIN_SPECS)[2]])
    fused = FusedJoinAggregate(make_algorithm(join), make_groupby_algorithm(groupby))
    result = fused.run(r, s, group_column="key", aggregates=AGGREGATES, seed=5)
    _diff(result, _expected(r, s))


@pytest.mark.parametrize("join", JOIN_NAMES)
def test_unfused_pipeline_same_answer(join):
    """fuse=False (materialize, then aggregate) is result-identical."""
    r, s = generate_join_workload(JOIN_SPECS[sorted(JOIN_SPECS)[3]])
    fused = FusedJoinAggregate(make_algorithm(join))
    expected = _expected(r, s)
    a = fused.run(r, s, group_column="key", aggregates=AGGREGATES, seed=6, fuse=True)
    b = fused.run(r, s, group_column="key", aggregates=AGGREGATES, seed=6, fuse=False)
    _diff(a, expected)
    _diff(b, expected)
    assert a.fusion_credit_seconds >= 0.0


def test_planner_chosen_groupby_matches_oracle():
    """groupby_algorithm=None lets the planner pick; answer unchanged."""
    r, s = generate_join_workload(JOIN_SPECS[sorted(JOIN_SPECS)[4]])
    fused = FusedJoinAggregate(make_algorithm("PHJ-OM"))
    result = fused.run(r, s, group_column="key", aggregates=AGGREGATES, seed=7)
    _diff(result, _expected(r, s))


def test_fused_all_duplicate_keys():
    r = relation_from_keys(np.full(60, 4, dtype=np.int32), prefix="r", seed=30)
    s = relation_from_keys(np.full(80, 4, dtype=np.int32), prefix="s", seed=31)
    fused = FusedJoinAggregate(make_algorithm("SMJ-OM"), make_groupby_algorithm("HASH-AGG"))
    result = fused.run(r, s, group_column="key", aggregates=AGGREGATES, seed=8)
    expected = _expected(r, s)
    assert expected["count_r1"][0] == 60 * 80
    _diff(result, expected)
