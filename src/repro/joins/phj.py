"""Partitioned hash join over stable RADIX-PARTITION (PHJ-OM, Section 4.3).

The paper's new partitioner fixes the two properties that make bucket
chaining (Section 3.2) incompatible with GFTR:

* **determinism** — RADIX-PARTITION is stable, so partitioning
  ``(key, col_1)`` and ``(key, col_2)`` independently produces mutually
  consistent layouts;
* **contiguity** — partitions are dense array ranges, so positional
  lookup into a partitioned column is O(1) and gathers are clustered.

Partition boundaries are recovered with a histogram + prefix sum, large
partitions are decomposed into sub-partitions for load balance, and each
co-partition pair is hash-joined with the build side in shared memory.

The same class supports the GFUR pattern (``pattern="gfur"``) by
partitioning ``(key, physical ID)`` instead of the payload columns —
the paper notes this flexibility makes PHJ-OM competitive on
low-match-ratio workloads too (end of Section 4.3).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..errors import JoinConfigError
from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from ..primitives.gather import gather
from ..primitives.radix_partition import radix_partition
from ..relational.relation import Relation
from .base import (
    MATCH,
    MATERIALIZE,
    TRANSFORM,
    JoinAlgorithm,
    JoinConfig,
    init_tuple_ids,
    output_column_names,
)
from .matching import match_positions
from .narrow import narrow_partitioned_hash


def derive_partition_bits(
    build_rows: int, tuples_per_partition: int, forced: Optional[int] = None
) -> int:
    """Radix bits so the average build partition fits in shared memory."""
    if forced is not None:
        return forced
    if build_rows <= tuples_per_partition:
        return 1
    return min(16, max(1, math.ceil(math.log2(build_rows / tuples_per_partition))))


def charge_load_balancing(ctx: GPUContext, num_partitions: int) -> None:
    """Decompose oversized partitions into sub-partitions (tiny pass)."""
    ctx.submit(
        KernelStats(
            name="load_balance",
            items=num_partitions,
            seq_read_bytes=num_partitions * 8,
            seq_write_bytes=num_partitions * 8,
        ),
        phase=MATCH,
    )


def charge_hash_match(
    ctx: GPUContext,
    build_counts: np.ndarray,
    probe_counts: np.ndarray,
    build_tuple_bytes: int,
    probe_tuple_bytes: int,
    matches: int,
    key_bytes: int,
    tuples_per_partition: int,
    id_bytes: int = 4,
    conflict_factor: float = 1.0,
    load_balanced: bool = True,
    num_execution_units: int = 108,
) -> None:
    """Traffic of the co-partitioned hash-join kernels.

    A thread block builds a shared-memory hash table from one build-side
    sub-partition and streams the co-partition's probe side through it.
    If a build partition needs ``b`` sub-partitions, its probe side is
    re-streamed ``b`` times (block-nested-loop behaviour, Section 3.2).

    With ``load_balanced=False`` (ablation abl04) oversized probe
    partitions are *not* decomposed, so under skew one block processes a
    disproportionate share of the probe side while the rest idle; the
    idle-unit time is charged as equivalent extra streaming bytes.
    """
    build_subparts = np.maximum(1, -(-build_counts // tuples_per_partition))
    build_read = int((build_counts * build_tuple_bytes).sum())
    probe_work = probe_counts * build_subparts * probe_tuple_bytes
    probe_read = int(probe_work.sum())
    ctx.count("hash_table_probe_slots", int((probe_counts * build_subparts).sum()))
    skew_stall_bytes = 0
    if not load_balanced and probe_work.size:
        # Wall time ~ the hottest partition's work times the unit count
        # (everyone else waits); charge the excess over the balanced case.
        hottest = int(probe_work.max())
        skew_stall_bytes = max(0, hottest * num_execution_units - probe_read)
    ctx.submit(
        KernelStats(
            name="hash_match",
            items=int(build_counts.sum() + probe_counts.sum()),
            seq_read_bytes=build_read + probe_read + skew_stall_bytes,
            seq_write_bytes=matches * (key_bytes + 2 * id_bytes),
            atomic_ops=matches,
            atomic_conflict_factor=conflict_factor,
        ),
        phase=MATCH,
    )


class PartitionedHashJoin(JoinAlgorithm):
    """Radix-partitioned hash join; GFTR by default, GFUR on request."""

    name = "PHJ-OM"
    pattern = "gftr"

    def __init__(self, config: Optional[JoinConfig] = None, pattern: str = "gftr"):
        super().__init__(config)
        if pattern not in ("gftr", "gfur"):
            raise JoinConfigError(f"unknown pattern {pattern!r}")
        self.pattern = pattern
        if pattern == "gfur":
            self.name = "PHJ-OM/gfur"

    # -- helpers -----------------------------------------------------------

    def _partition(
        self, ctx: GPUContext, rel: Relation, payloads, bits, phase, label,
        compute_boundaries: bool = True, order=None,
    ):
        temp = ctx.mem.alloc((1 << bits) * 8 * 2, np.uint8, "partition_temp")
        part = radix_partition(
            ctx,
            rel.key_values,
            payloads,
            total_bits=bits,
            phase=phase,
            hashed=self.config.hashed_partitioning,
            label=label,
            compute_boundaries=compute_boundaries,
            order=order,
        )
        ctx.mem.free(temp)
        return part

    # -- execution -----------------------------------------------------------

    def _execute(
        self, ctx: GPUContext, r: Relation, s: Relation, unique_build_keys: bool
    ) -> List[Tuple[str, np.ndarray]]:
        bits = derive_partition_bits(
            r.num_rows, self.config.tuples_per_partition, self.config.partition_bits
        )
        if self.pattern == "gftr":
            return self._execute_gftr(ctx, r, s, unique_build_keys, bits)
        return self._execute_gfur(ctx, r, s, unique_build_keys, bits)

    def _execute_narrow(self, ctx, r, s, unique_build_keys):
        bits = derive_partition_bits(
            r.num_rows, self.config.tuples_per_partition, self.config.partition_bits
        )
        return narrow_partitioned_hash(
            ctx, r, s, unique_build_keys, self.config, bits, "radix"
        )

    def _execute_gftr(self, ctx, r, s, unique_build_keys, bits):
        parts = {}
        first_payload = {}
        with ctx.phase(TRANSFORM):
            for side, rel in (("r", r), ("s", s)):
                names = rel.payload_names
                first = names[0] if names else None
                payloads = [rel.column(first)] if first else []
                part = self._partition(ctx, rel, payloads, bits, TRANSFORM, side)
                parts[side] = part
                ctx.mem.adopt(part.keys, f"part_keys_{side}")
                if first:
                    first_payload[side] = (first, ctx.mem.adopt(part.payloads[0], f"part_payload1_{side}"))

        with ctx.phase(MATCH):
            pr, ps = parts["r"], parts["s"]
            charge_load_balancing(ctx, ps.num_partitions)
            vid_r, vid_s = match_positions(pr.keys, ps.keys, unique_build_keys)
            out_key = ps.keys[vid_s]
            key_bytes = pr.keys.dtype.itemsize
            charge_hash_match(
                ctx,
                pr.counts,
                ps.counts,
                build_tuple_bytes=key_bytes,
                probe_tuple_bytes=key_bytes,
                matches=int(out_key.size),
                key_bytes=key_bytes,
                tuples_per_partition=self.config.tuples_per_partition,
                load_balanced=self.config.load_balance,
                num_execution_units=ctx.device.num_execution_units,
            )
            a_vid_r = ctx.mem.adopt(vid_r.astype(np.int32, copy=False), "match_vids_r")
            a_vid_s = ctx.mem.adopt(vid_s.astype(np.int32, copy=False), "match_vids_s")
            ctx.mem.free_by_prefix("part_keys_")

        columns: List[Tuple[str, np.ndarray]] = [("key", out_key)]
        with ctx.phase(MATERIALIZE):
            for side, source, out_name in output_column_names(r, s, self.config.projection):
                if out_name == "key":
                    continue
                rel = r if side == "r" else s
                vids = a_vid_r.data if side == "r" else a_vid_s.data
                first = first_payload.get(side)
                if first and first[0] == source:
                    transformed = first[1]
                    columns.append(
                        (out_name, gather(ctx, transformed.data, vids, phase=MATERIALIZE, label=out_name))
                    )
                    ctx.mem.free(transformed)
                    continue
                # Lazily partition this payload column with the keys
                # (Algorithm 1), discard the partitioned keys, gather.
                # Boundaries and the stable permutation are reused from
                # the transform phase (stable partitioner -> identical
                # layout): no boundary pass, no host-side re-sort.
                part = self._partition(
                    ctx, rel, [rel.column(source)], bits, MATERIALIZE, out_name,
                    compute_boundaries=False, order=parts[side].order,
                )
                a_col = ctx.mem.adopt(part.payloads[0], f"part_payload_{out_name}")
                columns.append(
                    (out_name, gather(ctx, a_col.data, vids, phase=MATERIALIZE, label=out_name))
                )
                ctx.mem.free(a_col)
            # A projection may skip the eagerly transformed first payloads.
            for _, handle in first_payload.values():
                if not handle.freed:
                    ctx.mem.free(handle)
            ctx.mem.free(a_vid_r)
            ctx.mem.free(a_vid_s)
        return columns

    def _execute_gfur(self, ctx, r, s, unique_build_keys, bits):
        parts = {}
        part_ids = {}
        with ctx.phase(TRANSFORM):
            for side, rel in (("r", r), ("s", s)):
                ids = init_tuple_ids(ctx, rel.num_rows, TRANSFORM, side, dtype=rel.key_values.dtype)
                a_ids = ctx.mem.adopt(ids, f"ids_{side}")
                part = self._partition(ctx, rel, [ids], bits, TRANSFORM, side)
                ctx.mem.free(a_ids)
                parts[side] = part
                ctx.mem.adopt(part.keys, f"part_keys_{side}")
                part_ids[side] = ctx.mem.adopt(part.payloads[0], f"part_ids_{side}")

        with ctx.phase(MATCH):
            pr, ps = parts["r"], parts["s"]
            charge_load_balancing(ctx, ps.num_partitions)
            pos_r, pos_s = match_positions(pr.keys, ps.keys, unique_build_keys)
            out_key = ps.keys[pos_s]
            key_bytes = pr.keys.dtype.itemsize
            id_bytes = part_ids["r"].data.dtype.itemsize
            charge_hash_match(
                ctx,
                pr.counts,
                ps.counts,
                build_tuple_bytes=key_bytes + id_bytes,
                probe_tuple_bytes=key_bytes + id_bytes,
                matches=int(out_key.size),
                key_bytes=key_bytes,
                tuples_per_partition=self.config.tuples_per_partition,
                load_balanced=self.config.load_balance,
                num_execution_units=ctx.device.num_execution_units,
            )
            id_r = gather(ctx, part_ids["r"].data, pos_r, phase=MATCH, label="id_r")
            id_s = gather(ctx, part_ids["s"].data, pos_s, phase=MATCH, label="id_s")
            a_id_r = ctx.mem.adopt(id_r, "match_ids_r")
            a_id_s = ctx.mem.adopt(id_s, "match_ids_s")
            ctx.mem.free_by_prefix("part_keys_", "part_ids_")

        columns: List[Tuple[str, np.ndarray]] = [("key", out_key)]
        with ctx.phase(MATERIALIZE):
            for side, source, out_name in output_column_names(r, s, self.config.projection):
                if out_name == "key":
                    continue
                rel = r if side == "r" else s
                ids = a_id_r.data if side == "r" else a_id_s.data
                columns.append(
                    (out_name, gather(ctx, rel.column(source), ids, phase=MATERIALIZE, label=out_name))
                )
            ctx.mem.free(a_id_r)
            ctx.mem.free(a_id_s)
        return columns
