"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DeviceOutOfMemoryError(ReproError):
    """Raised when a simulated device allocation exceeds device capacity."""

    def __init__(self, requested: int, in_use: int, capacity: int):
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"device out of memory: requested {requested} B with {in_use} B "
            f"in use exceeds capacity {capacity} B"
        )


class AllocationError(ReproError):
    """Raised on invalid allocator usage (e.g. double free)."""


class InvalidRelationError(ReproError):
    """Raised when a relation or column is malformed for the operation."""


class JoinConfigError(ReproError):
    """Raised when a join is configured with invalid or unsupported options."""


class AggregationConfigError(ReproError):
    """Raised when a group-by is configured with invalid options."""


class WorkloadError(ReproError):
    """Raised when workload generator parameters are invalid."""
