"""agg01: grouped aggregation vs group cardinality.

The aggregation analogue of the match-ratio study: 2^27 rows, one sum,
sweeping the number of groups from a handful to ~|rows|/4.  Expected
regimes (emergent from the traffic model):

* tiny cardinality — hash aggregation with privatized shared-memory
  tables wins (one sequential pass);
* large cardinality — the global accumulator table spills L2 and every
  fold is random; partitioned aggregation wins;
* sort aggregation is flat but pays ~4 radix passes per column.
"""

from __future__ import annotations

from ...aggregation.base import AggSpec
from ...aggregation.planner import make_groupby_algorithm
from ...workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 27
#: Group counts as fractions of the row count (scale invariant).
GROUP_FRACTIONS = (2 ** -16, 2 ** -12, 2 ** -8, 2 ** -4, 2 ** -2)
ALGORITHMS = ("HASH-AGG", "SORT-AGG", "PART-AGG")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    result = ExperimentResult(
        experiment_id="agg01",
        title="Grouped aggregation vs group cardinality (total ms)",
        headers=["groups"] + list(ALGORITHMS) + ["winner"],
    )
    winners = {}
    for fraction in GROUP_FRACTIONS:
        groups = max(4, int(rows * fraction))
        keys, values = generate_groupby_workload(
            GroupByWorkloadSpec(rows=rows, groups=groups, value_columns=1, seed=seed)
        )
        times = {}
        for name in ALGORITHMS:
            res = make_groupby_algorithm(name).group_by(
                keys, values, [AggSpec("v1", "sum")], device=setup.device, seed=seed
            )
            times[name] = res.total_seconds * 1e3
        winner = min(times, key=times.get)
        winners[groups] = winner
        result.add_row(groups, *[times[a] for a in ALGORITHMS], winner)
    group_list = sorted(winners)
    result.findings["hash_wins_smallest"] = float(winners[group_list[0]] == "HASH-AGG")
    result.findings["part_wins_largest"] = float(winners[group_list[-1]] == "PART-AGG")
    return result
