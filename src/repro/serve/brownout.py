"""Hysteretic brownout controller for overload load-shedding.

Under sustained overload a server has two bad options: queue without
bound (latency collapses for everyone) or reject blindly (throughput
collapses).  *Brownout* is the middle path — degrade service quality
deterministically, in steps, and recover the same way:

* ``NORMAL`` — full service.
* ``DEGRADED`` — queries still complete bit-identically, but the server
  stops paying optional costs: join-aggregate fusion is disabled (its
  fused-plan credit is forfeited, shortening planner work), and cache
  *population* is suspended (hits are still served) so the admission
  path does no verification or pinning work.
* ``SHED`` — additionally, a fraction of the lowest-priority queued
  requests is dropped with typed rejections
  (:class:`~repro.errors.AdmissionError`, ``reason="brownout-shed"``),
  and newly arriving work at or below the shed priority is turned away
  at the door.

Transitions are driven by a scalar *pressure* — the max of queue
fullness, stream occupancy and memory fullness — through a hysteresis
band: the controller enters a level at a high threshold and only leaves
it at a strictly lower one, so pressure oscillating around a single
threshold cannot flap the level.  All inputs are simulated-clock
quantities, so the trajectory is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import ServeConfigError

#: Brownout levels, ordered by severity.
NORMAL, DEGRADED, SHED = 0, 1, 2

LEVEL_NAMES: Tuple[str, ...] = ("normal", "degraded", "shed")


@dataclass(frozen=True)
class BrownoutPolicy:
    """Thresholds and knobs for the brownout state machine.

    Pressure is in ``[0, 1]``-ish units (occupancy and fullness
    fractions; queue fraction may exceed 1 when the queue is deeper than
    its soft bound).  Each level's ``*_enter`` must be strictly above
    its ``*_exit`` — the gap is the hysteresis band.
    """

    degrade_enter: float = 0.70
    degrade_exit: float = 0.40
    shed_enter: float = 0.90
    shed_exit: float = 0.60
    #: Fraction of the queued requests shed (lowest priority, newest
    #: first) each time the controller is at SHED after an update.
    shed_fraction: float = 0.5
    #: Arrivals with priority <= this are rejected at the door while
    #: shedding; higher-priority work is still queued.
    shed_priority_max: int = 0
    #: Fraction of the tier cache's resident bytes demoted to the CPU
    #: tier on each escalation into DEGRADED or SHED (when the server
    #: has a tiering runtime attached).  Demotion happens *before*
    #: queued work is shed: giving back cache bytes is cheaper than
    #: rejecting queries.
    cache_demote_fraction: float = 0.5

    def __post_init__(self) -> None:
        for enter, exit_, name in (
            (self.degrade_enter, self.degrade_exit, "degrade"),
            (self.shed_enter, self.shed_exit, "shed"),
        ):
            if not 0.0 < enter <= 10.0:
                raise ServeConfigError(f"{name}_enter must be in (0, 10], got {enter}")
            if not 0.0 <= exit_ < enter:
                raise ServeConfigError(
                    f"{name}_exit must satisfy 0 <= exit < enter, "
                    f"got exit={exit_} enter={enter}"
                )
        if self.shed_enter < self.degrade_enter:
            raise ServeConfigError(
                "shed_enter must be >= degrade_enter "
                f"(got {self.shed_enter} < {self.degrade_enter})"
            )
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ServeConfigError(
                f"shed_fraction must be in (0, 1], got {self.shed_fraction}"
            )
        if not 0.0 <= self.cache_demote_fraction <= 1.0:
            raise ServeConfigError(
                f"cache_demote_fraction must be in [0, 1], "
                f"got {self.cache_demote_fraction}"
            )


@dataclass(frozen=True)
class BrownoutTransition:
    """One recorded level change (for observability and tests)."""

    clock_s: float
    from_level: int
    to_level: int
    pressure: float

    def describe(self) -> str:
        return (
            f"t={self.clock_s:.6f}s {LEVEL_NAMES[self.from_level]}"
            f"->{LEVEL_NAMES[self.to_level]} (pressure={self.pressure:.3f})"
        )


class BrownoutController:
    """Hysteretic three-level state machine over a scalar pressure signal.

    >>> ctl = BrownoutController()
    >>> ctl.update(0.0, queue_frac=0.2, occupancy=0.5, memory_frac=0.1)
    0
    >>> ctl.update(1.0, queue_frac=0.95, occupancy=1.0, memory_frac=0.3)
    2
    >>> ctl.update(2.0, queue_frac=0.55, occupancy=0.5, memory_frac=0.3)
    1
    >>> ctl.update(3.0, queue_frac=0.1, occupancy=0.2, memory_frac=0.1)
    0
    >>> [t.describe().split(" ", 1)[1].split(" (")[0] for t in ctl.transitions]
    ['normal->shed', 'shed->degraded', 'degraded->normal']
    """

    def __init__(self, policy: BrownoutPolicy = BrownoutPolicy()):
        self.policy = policy
        self.level: int = NORMAL
        self.pressure: float = 0.0
        self.transitions: List[BrownoutTransition] = []
        #: Simulated seconds spent at each level (integrated by update()).
        self.level_seconds: List[float] = [0.0, 0.0, 0.0]
        self._last_clock_s: float = 0.0

    # -- queries -----------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True at DEGRADED or SHED: optional service quality is off."""
        return self.level >= DEGRADED

    @property
    def shedding(self) -> bool:
        """True at SHED: queued low-priority work is being dropped."""
        return self.level >= SHED

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    # -- state machine -----------------------------------------------------

    @staticmethod
    def pressure_of(queue_frac: float, occupancy: float, memory_frac: float) -> float:
        """Combined pressure: the worst of the three signals."""
        return max(queue_frac, occupancy, memory_frac)

    def update(
        self,
        clock_s: float,
        queue_frac: float,
        occupancy: float,
        memory_frac: float,
    ) -> int:
        """Feed one observation; returns the (possibly new) level.

        Escalation is immediate (pressure above ``shed_enter`` jumps
        NORMAL -> SHED in one step — overload does not wait); recovery
        steps down one level at a time through the exit thresholds.
        """
        if clock_s > self._last_clock_s:
            self.level_seconds[self.level] += clock_s - self._last_clock_s
            self._last_clock_s = clock_s
        p = self.pressure_of(queue_frac, occupancy, memory_frac)
        self.pressure = p
        policy = self.policy
        new = self.level
        if p >= policy.shed_enter:
            new = SHED
        elif p >= policy.degrade_enter:
            new = max(self.level, DEGRADED)
        elif self.level == SHED:
            if p <= policy.degrade_exit:
                new = NORMAL
            elif p <= policy.shed_exit:
                new = DEGRADED
        elif self.level == DEGRADED and p <= policy.degrade_exit:
            new = NORMAL
        if new != self.level:
            self.transitions.append(
                BrownoutTransition(
                    clock_s=clock_s, from_level=self.level, to_level=new, pressure=p
                )
            )
            self.level = new
        return self.level
