"""Figure 7: clustered vs unclustered GATHER with transformation costs.

Compares, on both GPUs, the end-to-end throughput of materializing one
payload column three ways:

* ``*-UM``: a single unclustered GATHER through permuted physical IDs;
* ``SMJ-OM``: SORT-PAIRS of (key, payload) followed by a clustered GATHER;
* ``PHJ-OM``: RADIX-PARTITION of (key, payload) followed by a clustered
  GATHER.

Paper anchors on the A100: partition+clustered is ~1.79x the unclustered
throughput; sort+clustered ~1.23x (RTX 3090: 2.2x / 1.37x).
"""

from __future__ import annotations

import numpy as np

from ...gpusim.context import GPUContext
from ...gpusim.device import A100, RTX3090
from ...primitives.gather import gather
from ...primitives.radix_partition import radix_partition
from ...primitives.sort_pairs import sort_pairs
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ITEMS = 1 << 27


def _make_workload(n: int, seed: int) -> tuple:
    """One workload per (n, seed), shared by all variants and devices.

    The rng draw order matches the original per-variant generation
    (keys, payload, match_map, then physical_ids), so results are
    bit-identical to regenerating inside each variant.
    """
    rng = np.random.default_rng(seed)
    keys = rng.permutation(n).astype(np.int32)
    payload = rng.integers(0, 1 << 30, n).astype(np.int32)
    match_map = np.sort(rng.permutation(n).astype(np.int32))  # matched, s-major
    physical_ids = rng.permutation(n).astype(np.int32)
    return keys, payload, match_map, physical_ids


def _variant_seconds(device, workload, variant: str, bits: int, replay_cache: dict) -> float:
    """Simulated seconds of one variant on one device.

    The host-side data movement of a variant is device-independent (the
    cost model is the only thing a :class:`DeviceSpec` feeds), so the
    first device runs the variant for real and caches the submitted
    ``(stats, phase)`` stream; later devices *replay* that stream through
    a fresh context — identical kernels, identical accounting, no
    re-execution of the array work.
    """
    cache_key = (variant, bits)
    ctx = GPUContext(device=device)
    cached = replay_cache.get(cache_key)
    if cached is not None:
        for stats, phase in cached:
            ctx.submit(stats, phase=phase)
        return ctx.elapsed_seconds

    keys, payload, match_map, physical_ids = workload
    if variant == "unclustered":
        gather(ctx, payload, physical_ids[match_map], phase="materialize")
    elif variant == "sort+clustered":
        _, (sorted_payload,) = sort_pairs(ctx, keys, [payload], phase="transform")
        gather(ctx, sorted_payload, match_map, phase="materialize")
    elif variant == "partition+clustered":
        part = radix_partition(ctx, keys, [payload], total_bits=bits, phase="transform")
        gather(ctx, part.payloads[0], match_map, phase="materialize")
    else:  # pragma: no cover - guarded by caller
        raise ValueError(variant)
    replay_cache[cache_key] = [(r.stats, r.phase) for r in ctx.profiler.records]
    return ctx.elapsed_seconds


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig07",
        title="Un/clustered GATHER with transformation cost (throughput, Mtuples/s)",
        headers=["device", "unclustered", "sort+clustered", "partition+clustered",
                 "partition_speedup", "sort_speedup"],
    )
    workloads: dict = {}
    replay_cache: dict = {}
    for base_device in (A100, RTX3090):
        setup = make_setup(scale, device=base_device)
        n = setup.rows(PAPER_ITEMS)
        bits = max(1, int(np.ceil(np.log2(max(2, n / setup.config.tuples_per_partition)))))
        if (n, seed) not in workloads:
            workloads[(n, seed)] = _make_workload(n, seed)
        workload = workloads[(n, seed)]
        seconds = {
            variant: _variant_seconds(setup.device, workload, variant, bits, replay_cache)
            for variant in ("unclustered", "sort+clustered", "partition+clustered")
        }
        throughput = {k: n / v / 1e6 for k, v in seconds.items()}
        result.add_row(
            base_device.name,
            throughput["unclustered"],
            throughput["sort+clustered"],
            throughput["partition+clustered"],
            seconds["unclustered"] / seconds["partition+clustered"],
            seconds["unclustered"] / seconds["sort+clustered"],
        )
        result.findings[f"{base_device.name}_partition_speedup"] = (
            seconds["unclustered"] / seconds["partition+clustered"]
        )
        result.findings[f"{base_device.name}_sort_speedup"] = (
            seconds["unclustered"] / seconds["sort+clustered"]
        )
    result.add_note(f"items scaled to ~{PAPER_ITEMS * scale:.0f} (paper: 2^27)")
    return result
