"""Figure 8: CPU- vs GPU-based narrow joins across input sizes.

Narrow joins (one payload column per relation), |S| = 2|R|, 100% match.
The paper sweeps total sizes up to 1G ⋈ 2G and reports throughput for
the CPU radix join (Balkesen et al.), the cuDF-style non-partitioned
hash join, and the four partitioned/sorted GPU implementations.

Anchors: GPU joins up to ~34.5x the CPU join and ~4x cuDF; PHJ-* beats
SMJ-* on narrow inputs.
"""

from __future__ import annotations

from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_setup,
    run_algorithm,
    throughput_mtuples,
)

#: Paper size points: 0.25G⋈0.5G, 0.5G⋈1G, 1G⋈2G (in |R| tuples).
PAPER_R_SIZES = (1 << 25, 1 << 26, 1 << 27)

ALGORITHMS = ("CPU", "NPJ", "SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="fig08",
        title="CPU- and GPU-based narrow joins (throughput, Mtuples/s)",
        headers=["|R| tuples"] + list(ALGORITHMS),
    )
    best_gpu_vs_cpu = 0.0
    best_vs_npj = 0.0
    for paper_rows in PAPER_R_SIZES:
        spec = JoinWorkloadSpec(
            r_rows=setup.rows(paper_rows),
            s_rows=setup.rows(2 * paper_rows),
            r_payload_columns=1,
            s_payload_columns=1,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        throughputs = {}
        for name in ALGORITHMS:
            res = run_algorithm(name, r, s, setup)
            throughputs[name] = throughput_mtuples(res)
        result.add_row(spec.r_rows, *[throughputs[a] for a in ALGORITHMS])
        gpu_best = max(throughputs[a] for a in ALGORITHMS if a != "CPU")
        best_gpu_vs_cpu = max(best_gpu_vs_cpu, gpu_best / throughputs["CPU"])
        best_vs_npj = max(best_vs_npj, gpu_best / throughputs["NPJ"])
    result.findings["max_gpu_speedup_over_cpu"] = best_gpu_vs_cpu
    result.findings["max_speedup_over_npj"] = best_vs_npj
    result.add_note("narrow joins: 1 payload column per relation, |S| = 2|R|")
    return result
