"""agg02: grouped aggregation under skew.

Regenerates the experiment table into ``bench_results/agg02.txt``.
Run: ``pytest benchmarks/bench_agg02.py --benchmark-only -s``
"""

from repro.bench.experiments import agg02

from _common import REPORT_SCALE, run_and_report


def test_agg02(benchmark):
    result = run_and_report(benchmark, agg02.run, REPORT_SCALE)
    assert result.findings["part_agg_flatness"] < 1.3
