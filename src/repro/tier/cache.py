"""Device-resident segment cache.

Hot segments live as real :class:`~repro.gpusim.memory.DeviceArray`
allocations in a :class:`~repro.gpusim.memory.DeviceMemory`, so cache
residency competes with everything else that memory backs — the serving
layer's admission reservations in particular — and device-OOM pressure
is felt as real allocation failures, which the cache converts into
graceful admission declines instead of query failures.

Accounting invariant (property-tested): ``resident_bytes`` equals the
sum of the resident segments' sizes across any interleaving of
admissions, evictions, demotions and pressure shrinks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import DeviceOutOfMemoryError
from ..gpusim.memory import DeviceArray, DeviceMemory
from .policy import PlacementPolicy
from .segments import SegmentKey


class SegmentCache:
    """Maps :class:`SegmentKey` -> resident :class:`DeviceArray`.

    Parameters
    ----------
    memory:
        The :class:`DeviceMemory` backing residency.  May be private to
        the cache or shared with the serving layer's admission
        controller (then reservations and segments compete for bytes).
    capacity_bytes:
        The cache's own byte budget within *memory*; admissions beyond
        it are declined even if *memory* itself has room.  ``None``
        defers entirely to *memory*'s capacity.
    """

    def __init__(
        self,
        memory: DeviceMemory,
        capacity_bytes: Optional[int] = None,
        label_prefix: str = "tier",
    ):
        self.memory = memory
        self.capacity_bytes = capacity_bytes
        self.label_prefix = label_prefix
        #: effective cap under fault-injected capacity pressure (<= capacity)
        self.pressure_capacity_bytes: Optional[int] = None
        self._resident: "OrderedDict[SegmentKey, DeviceArray]" = OrderedDict()
        self.resident_bytes = 0
        # cumulative counters (mirrored into obs as tier.* metrics)
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.admissions = 0
        self.admitted_bytes = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.demotions = 0
        self.demoted_bytes = 0
        self.pressure_demotions = 0
        self.declined = 0

    # -- capacity ------------------------------------------------------------

    @property
    def effective_capacity_bytes(self) -> Optional[int]:
        caps = [
            cap
            for cap in (self.capacity_bytes, self.pressure_capacity_bytes)
            if cap is not None
        ]
        return min(caps) if caps else None

    def can_fit(self, nbytes: int) -> bool:
        cap = self.effective_capacity_bytes
        if cap is not None and self.resident_bytes + nbytes > cap:
            return False
        if (
            self.memory.capacity_bytes is not None
            and self.memory.current_bytes + nbytes > self.memory.capacity_bytes
        ):
            return False
        return True

    def apply_pressure(self, capacity_bytes: Optional[int]) -> int:
        """Constrain the cache to *capacity_bytes* (``None`` lifts it).

        Demotes segments until the budget holds — the graceful response
        to fault-injected ``capacity_frac`` pressure; queries keep
        completing with the demoted segments served by the CPU tier.
        Returns the bytes demoted.
        """
        self.pressure_capacity_bytes = capacity_bytes
        if capacity_bytes is None or self.resident_bytes <= capacity_bytes:
            return 0
        freed = self.demote_bytes(self.resident_bytes - capacity_bytes)
        self.pressure_demotions += 1
        return freed

    # -- lookup --------------------------------------------------------------

    def is_resident(self, key: SegmentKey) -> bool:
        return key in self._resident

    def get(self, key: SegmentKey) -> Optional[np.ndarray]:
        """The resident device data for *key*, or ``None``.

        Does not touch hit/miss counters — operators record one
        byte-weighted access per row range via :meth:`record_access`.
        """
        arr = self._resident.get(key)
        return None if arr is None else arr.data

    def record_access(self, hit: bool, nbytes: int) -> None:
        if hit:
            self.hits += 1
            self.hit_bytes += int(nbytes)
        else:
            self.misses += 1
            self.miss_bytes += int(nbytes)

    @property
    def hit_ratio(self) -> float:
        """Byte-weighted fraction of segment reads served from the cache."""
        total = self.hit_bytes + self.miss_bytes
        return self.hit_bytes / total if total else 0.0

    def resident_items(self) -> List[Tuple[SegmentKey, int]]:
        return [(key, arr.nbytes) for key, arr in self._resident.items()]

    def resident_keys(self) -> List[SegmentKey]:
        return list(self._resident)

    # -- placement ops -------------------------------------------------------

    def admit(self, key: SegmentKey, host_data: np.ndarray) -> bool:
        """Copy *host_data* device-resident under *key*; False = declined.

        A decline (budget exhausted or the backing memory raising OOM,
        e.g. because serving reservations hold the bytes) leaves the
        segment cold — never an error.
        """
        if key in self._resident:
            return True
        nbytes = int(host_data.nbytes)
        if not self.can_fit(nbytes):
            self.declined += 1
            return False
        try:
            arr = self.memory.from_host(
                host_data, label=f"{self.label_prefix}:{key.describe()}"
            )
        except DeviceOutOfMemoryError:
            self.declined += 1
            return False
        self._resident[key] = arr
        self.resident_bytes += arr.nbytes
        self.admissions += 1
        self.admitted_bytes += arr.nbytes
        return True

    def evict(self, key: SegmentKey, demotion: bool = False) -> int:
        """Drop *key* from the device; returns the bytes freed.

        Segments are read-only copies of host columns, so eviction needs
        no writeback — the bytes are simply released.
        """
        arr = self._resident.pop(key, None)
        if arr is None:
            return 0
        nbytes = arr.nbytes
        arr.free()
        self.resident_bytes -= nbytes
        if demotion:
            self.demotions += 1
            self.demoted_bytes += nbytes
        else:
            self.evictions += 1
            self.evicted_bytes += nbytes
        return nbytes

    def demote_bytes(
        self,
        nbytes: int,
        policy: Optional[PlacementPolicy] = None,
        protect: Optional[Set[SegmentKey]] = None,
    ) -> int:
        """Demote >= *nbytes* of resident segments (best effort).

        Cheapest-first by policy score when a policy is given, FIFO
        otherwise.  Used by admission interplay (the server frees cache
        bytes before rejecting a query as oversized), brownout, and
        capacity pressure.  Returns the bytes actually freed.
        """
        protect = protect or set()
        order = [key for key in self._resident if key not in protect]
        if policy is not None:
            order.sort(key=lambda key: (policy.score(key, self._resident[key].nbytes), key))
        freed = 0
        for key in order:
            if freed >= nbytes:
                break
            if policy is not None:
                policy.note_evicted(key)
            freed += self.evict(key, demotion=True)
        return freed

    def evict_relation(self, relation: str) -> int:
        """Evict every resident segment of *relation* (post-update)."""
        victims = [key for key in self._resident if key.relation == relation]
        freed = 0
        for key in victims:
            freed += self.evict(key, demotion=True)
        return freed

    def clear(self) -> int:
        """Drop everything resident; returns the bytes freed."""
        return self.demote_bytes(self.resident_bytes) if self._resident else 0

    def assert_consistent(self) -> None:
        """Raise if ``resident_bytes`` drifted from the resident set."""
        actual = sum(arr.nbytes for arr in self._resident.values())
        if actual != self.resident_bytes:
            raise AssertionError(
                f"segment accounting drift: resident_bytes={self.resident_bytes} "
                f"!= sum of resident segments {actual}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentCache({len(self._resident)} segments, "
            f"{self.resident_bytes} B resident)"
        )
