"""Cluster topology: interconnect models and multi-device specs.

The single-device simulator already charges host staging traffic to a
``DeviceSpec.interconnect_bandwidth`` constant (out-of-core joins).  A
:class:`InterconnectSpec` generalizes that constant into a device-to-
device fabric model with two built-in shapes:

* ``p2p-mesh`` — every ordered device pair has a dedicated full-duplex
  link (NVLink-style).  All links drain concurrently, so a shuffle
  completes when its most-loaded link drains.
* ``host-bridge`` — all cross-device traffic is staged through one
  shared host root complex (PCIe without peer-to-peer).  A shuffle
  completes when the aggregate cross-device byte volume has crossed the
  shared link once.

Both models charge a fixed per-transfer latency on every non-empty
link, mirroring ``DeviceSpec.kernel_launch_overhead_s`` for kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..gpusim.device import A100, DeviceSpec

#: Interconnect shapes understood by :func:`interconnect_seconds`.
INTERCONNECT_KINDS = ("p2p-mesh", "host-bridge")


@dataclass(frozen=True)
class InterconnectSpec:
    """Static description of the device-to-device fabric.

    ``link_bandwidth`` is bytes/second per directed link for a
    ``p2p-mesh`` and bytes/second through the shared root complex for a
    ``host-bridge``.  ``transfer_latency_s`` is the fixed setup cost of
    one non-empty transfer (driver + DMA engine launch).
    """

    name: str
    kind: str
    link_bandwidth: float
    transfer_latency_s: float = 5e-6

    def __post_init__(self):
        if self.kind not in INTERCONNECT_KINDS:
            raise ValueError(
                f"unknown interconnect kind {self.kind!r}; "
                f"known: {INTERCONNECT_KINDS}"
            )
        if self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.transfer_latency_s < 0:
            raise ValueError("transfer_latency_s must be >= 0")

    def with_overrides(self, **kwargs) -> "InterconnectSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Human-readable one-line summary of the fabric."""
        return (
            f"{self.name} ({self.kind}, "
            f"{self.link_bandwidth / 1e9:.0f} GB/s per link)"
        )


#: NVLink-style all-to-all mesh: dedicated 50 GB/s full-duplex links.
NVLINK_MESH = InterconnectSpec(
    name="nvlink-mesh", kind="p2p-mesh", link_bandwidth=50e9,
    transfer_latency_s=2e-6,
)

#: PCIe 4.0 x16 without peer-to-peer: all traffic through one shared
#: host bridge at the same 25 GB/s the out-of-core joins model.
PCIE_HOST = InterconnectSpec(
    name="pcie-host", kind="host-bridge", link_bandwidth=25e9,
    transfer_latency_s=5e-6,
)

#: Registry of the built-in interconnects keyed by name.
BUILTIN_INTERCONNECTS = {spec.name: spec for spec in (NVLINK_MESH, PCIE_HOST)}


def get_interconnect(name: str) -> InterconnectSpec:
    """Look up a built-in interconnect by name.

    >>> get_interconnect("nvlink-mesh").kind
    'p2p-mesh'
    >>> get_interconnect("pcie-host").kind
    'host-bridge'
    """
    try:
        return BUILTIN_INTERCONNECTS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_INTERCONNECTS))
        raise KeyError(
            f"unknown interconnect {name!r}; known interconnects: {known}"
        ) from None


@dataclass(frozen=True)
class ClusterSpec:
    """N identical devices joined by one interconnect fabric.

    >>> spec = ClusterSpec(num_devices=4)
    >>> spec.device.name, spec.interconnect.name
    ('A100', 'nvlink-mesh')
    >>> len(spec.links())
    12
    """

    device: DeviceSpec = A100
    num_devices: int = 1
    interconnect: InterconnectSpec = NVLINK_MESH

    def __post_init__(self):
        if self.num_devices < 1:
            raise ValueError(
                f"a cluster needs at least one device, got {self.num_devices}"
            )

    def links(self):
        """All ordered (src, dst) device pairs, src != dst."""
        return [
            (src, dst)
            for src in range(self.num_devices)
            for dst in range(self.num_devices)
            if src != dst
        ]

    def describe(self) -> str:
        """Human-readable one-line summary of the cluster."""
        return (
            f"{self.num_devices}x {self.device.name} over "
            f"{self.interconnect.describe()}"
        )


def interconnect_seconds(spec: InterconnectSpec, matrix: np.ndarray) -> float:
    """Simulated seconds to drain one shuffle's transfer *matrix*.

    ``matrix[src, dst]`` holds the bytes device ``src`` sends to device
    ``dst``; the diagonal (device-local bucket moves) is free and
    ignored.  For a ``p2p-mesh`` all links drain concurrently, so the
    shuffle takes as long as its slowest link; for a ``host-bridge``
    every cross-device byte crosses the shared root complex once.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    off_diagonal = matrix.copy()
    np.fill_diagonal(off_diagonal, 0)
    if not off_diagonal.any():
        return 0.0
    if spec.kind == "p2p-mesh":
        per_link = np.where(
            off_diagonal > 0,
            spec.transfer_latency_s + off_diagonal / spec.link_bandwidth,
            0.0,
        )
        return float(per_link.max())
    # host-bridge: serialized through the shared root complex.
    return float(
        spec.transfer_latency_s + off_diagonal.sum() / spec.link_bandwidth
    )
