"""agg03: aggregate-column sweep — GFTR vs GFUR for wide aggregations.

The aggregation analogue of Figure 12: one group-by computing 1..8 sums.
``PART-AGG`` (GFTR-style: partition each value column with the keys,
fold sequentially) is compared against ``PART-AGG/gfur`` (partition
(key, ID), fetch value columns by unclustered gathers) and the global
hash table.  The GFTR advantage grows with the number of aggregated
columns, exactly as materialization cost did for joins.
"""

from __future__ import annotations

from ...aggregation.base import AggSpec
from ...aggregation.planner import make_groupby_algorithm
from ...workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 27
GROUP_FRACTION = 2 ** -4  # large cardinality: the regime that matters
COLUMN_COUNTS = (1, 2, 4, 8)
ALGORITHMS = ("HASH-AGG", "PART-AGG/gfur", "PART-AGG")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    groups = max(4, int(rows * GROUP_FRACTION))
    result = ExperimentResult(
        experiment_id="agg03",
        title="Wide aggregations: GFTR vs GFUR folds (total ms)",
        headers=["value_cols"] + list(ALGORITHMS) + ["gftr_over_gfur"],
    )
    ratios = {}
    for cols in COLUMN_COUNTS:
        keys, values = generate_groupby_workload(
            GroupByWorkloadSpec(rows=rows, groups=groups, value_columns=cols, seed=seed)
        )
        aggs = [AggSpec(f"v{i + 1}", "sum") for i in range(cols)]
        times = {}
        for name in ALGORITHMS:
            res = make_groupby_algorithm(name).group_by(
                keys, values, aggs, device=setup.device, seed=seed
            )
            times[name] = res.total_seconds * 1e3
        ratio = times["PART-AGG/gfur"] / times["PART-AGG"]
        ratios[cols] = ratio
        result.add_row(cols, *[times[a] for a in ALGORITHMS], ratio)
    result.findings["gftr_speedup_widest"] = ratios[COLUMN_COUNTS[-1]]
    result.findings["gftr_wins_all_widths"] = float(
        all(ratio > 1.0 for ratio in ratios.values())
    )
    result.add_note(
        "GFUR's fixed cost (ID init + ID partition) amortizes over more "
        "columns, so the ratio approaches the per-column asymptote from above"
    )
    return result
