"""Synthetic join workload generators (Section 5.1, "Workload Description").

The paper's microbenchmarks join a primary-key relation R with a
foreign-key relation S: R's keys take the values ``0 .. |R|-1`` randomly
shuffled; S's keys are drawn uniformly (or Zipf-skewed) from R's key
domain.  The match ratio is adjusted "by replacing a corresponding
fraction of primary keys with non-matching values".  Payload columns are
random integers of the configured width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import WorkloadError
from ..relational.relation import Relation
from ..relational.types import INT32, ColumnType, column_type
from .zipf import sample_zipf


@dataclass
class JoinWorkloadSpec:
    """Parameters of a synthetic R ⋈ S workload.

    ``match_ratio`` is the expected fraction of S tuples that find a
    partner.  ``zipf_factor`` skews the foreign keys.  The spec mirrors
    the knobs varied across Figures 8-15.
    """

    r_rows: int
    s_rows: int
    r_payload_columns: int = 1
    s_payload_columns: int = 1
    key_type: ColumnType = INT32
    payload_type: ColumnType = INT32
    match_ratio: float = 1.0
    zipf_factor: float = 0.0
    seed: int = 0

    def validate(self) -> None:
        if self.r_rows <= 0 or self.s_rows <= 0:
            raise WorkloadError("relation sizes must be positive")
        if not 0.0 <= self.match_ratio <= 1.0:
            raise WorkloadError("match_ratio must be within [0, 1]")
        if self.zipf_factor < 0:
            raise WorkloadError("zipf_factor must be >= 0")
        if self.r_payload_columns < 0 or self.s_payload_columns < 0:
            raise WorkloadError("payload column counts must be >= 0")

    @property
    def total_bytes(self) -> int:
        key_b = column_type(self.key_type).itemsize
        pay_b = column_type(self.payload_type).itemsize
        return self.r_rows * (key_b + self.r_payload_columns * pay_b) + self.s_rows * (
            key_b + self.s_payload_columns * pay_b
        )


def _payloads(
    rng: np.random.Generator, rows: int, count: int, ctype: ColumnType
) -> List[np.ndarray]:
    hi = min(np.iinfo(ctype.dtype).max, 2**31 - 1)
    return [
        rng.integers(0, hi, size=rows, dtype=ctype.dtype) for _ in range(count)
    ]


def generate_join_workload(spec: JoinWorkloadSpec) -> Tuple[Relation, Relation]:
    """Materialize the (R, S) relations of a workload spec.

    R keys are a shuffled permutation of ``0..|R|-1``; the fraction
    ``1 - match_ratio`` of them is displaced outside S's key domain so
    the expected match ratio holds.  S keys are uniform or Zipfian over
    ``0..|R|-1``.
    """
    spec.validate()
    rng = np.random.default_rng(spec.seed)
    key_t = column_type(spec.key_type)
    pay_t = column_type(spec.payload_type)

    # Displaced primary keys can reach 2 * |R| - 1; check the key type
    # can hold them before allocating anything.
    largest_possible_key = (
        2 * spec.r_rows - 1 if spec.match_ratio < 1.0 else spec.r_rows - 1
    )
    if largest_possible_key > np.iinfo(key_t.dtype).max:
        raise WorkloadError(
            f"keys up to {largest_possible_key} do not fit the key type {key_t}"
        )

    r_keys = rng.permutation(spec.r_rows)
    if spec.match_ratio < 1.0:
        # Displace primary keys to non-matching values.  The displaced
        # keys stay unique: value + |R| is outside the FK domain.
        num_displaced = int(round(spec.r_rows * (1.0 - spec.match_ratio)))
        displaced = rng.choice(spec.r_rows, size=num_displaced, replace=False)
        r_keys = r_keys.copy()
        r_keys[displaced] += spec.r_rows
    max_key = int(r_keys.max()) if spec.r_rows else 0
    if max_key > np.iinfo(key_t.dtype).max:
        raise WorkloadError(
            f"keys up to {max_key} do not fit the key type {key_t}"
        )
    r_keys = r_keys.astype(key_t.dtype)

    s_keys = sample_zipf(spec.r_rows, spec.s_rows, spec.zipf_factor, rng).astype(
        key_t.dtype
    )

    r = Relation.from_key_payloads(
        r_keys,
        _payloads(rng, spec.r_rows, spec.r_payload_columns, pay_t),
        payload_prefix="r",
        name="R",
    )
    s = Relation.from_key_payloads(
        s_keys,
        _payloads(rng, spec.s_rows, spec.s_payload_columns, pay_t),
        payload_prefix="s",
        name="S",
    )
    return r, s


def rows_for_bytes(total_bytes: int, payload_columns: int, key_type=INT32, payload_type=INT32) -> int:
    """Rows such that a relation occupies roughly *total_bytes*.

    Used to translate the paper's "1G ⋈ 2G" notation (relation sizes in
    bytes, payload included) into row counts.
    """
    key_b = column_type(key_type).itemsize
    pay_b = column_type(payload_type).itemsize
    row_bytes = key_b + payload_columns * pay_b
    return max(1, total_bytes // row_bytes)


@dataclass
class ScaledSize:
    """A paper-scale workload shrunk by ``scale`` for simulation speed."""

    paper_bytes: int
    scale: float

    @property
    def scaled_bytes(self) -> int:
        return max(1, int(self.paper_bytes * self.scale))


def gb(x: float) -> int:
    """Bytes of x gigabytes (the paper's 1G/2G/3G shorthand)."""
    return int(x * (1 << 30))


def workload_from_gb(
    r_gb: float,
    s_gb: float,
    scale: float = 1.0,
    r_payload_columns: int = 1,
    s_payload_columns: int = 1,
    key_type=INT32,
    payload_type=INT32,
    match_ratio: float = 1.0,
    zipf_factor: float = 0.0,
    seed: int = 0,
) -> JoinWorkloadSpec:
    """Spec for the paper's ``xG ⋈ yG`` notation, optionally down-scaled."""
    r_rows = rows_for_bytes(int(gb(r_gb) * scale), r_payload_columns, key_type, payload_type)
    s_rows = rows_for_bytes(int(gb(s_gb) * scale), s_payload_columns, key_type, payload_type)
    return JoinWorkloadSpec(
        r_rows=r_rows,
        s_rows=s_rows,
        r_payload_columns=r_payload_columns,
        s_payload_columns=s_payload_columns,
        key_type=key_type,
        payload_type=payload_type,
        match_ratio=match_ratio,
        zipf_factor=zipf_factor,
        seed=seed,
    )
