"""The serving determinism oracle.

The central serving invariant: :class:`QueryServer` returns outputs
**bit-identical** to a direct ``execute()`` of the same plan with the
same executor arguments, on every path — uncached, plan-cache hit,
result-cache hit, sub-result substitution, sharded, fault-degraded.
Scheduling and caching may only move *time*.

The hypothesis property drives the same invariant through arbitrary
stream counts, interference levels, arrival spacings and submission
orders: interleaving never changes a single output bit.
"""

import pytest

from repro.aggregation import AggSpec
from repro.faults import FaultPlan
from repro.query import execute
from repro.query.plan import Aggregate, Join, Project, Scan
from repro.serve import QueryServer

from tests.serve.conftest import SERVE_SEED, assert_bit_identical


def plans_under_test(r, s, t):
    return [
        Join(Scan(r), Scan(s)),
        Aggregate(Join(Scan(r), Scan(s)), "r1",
                  (AggSpec("s1", "sum"), AggSpec("s2", "max"))),
        Project(Join(Scan(r), Scan(s)), ("r1", "s1")),
        Join(Join(Scan(r), Scan(s)), Scan(t)),
    ]


@pytest.mark.parametrize("optimize", [True, False])
@pytest.mark.parametrize("index", range(4))
def test_first_execution_matches_execute(r, s, t, index, optimize):
    plan = plans_under_test(r, s, t)[index]
    server = QueryServer(streams=2, seed=SERVE_SEED)
    outcome = server.query(plan, optimize=optimize)
    expected = execute(plan, seed=SERVE_SEED, optimize=optimize)
    assert_bit_identical(outcome.output, expected.output)


@pytest.mark.parametrize("index", range(4))
def test_result_cache_hit_matches_execute(r, s, t, index):
    plan = plans_under_test(r, s, t)[index]
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.query(plan)
    hit = server.query(plan)
    assert hit.result_cache_hit
    assert_bit_identical(hit.output, execute(plan, seed=SERVE_SEED).output)


@pytest.mark.parametrize("optimize", [True, False])
@pytest.mark.parametrize("index", range(4))
def test_plan_cache_hit_matches_execute(r, s, t, index, optimize):
    plan = plans_under_test(r, s, t)[index]
    server = QueryServer(streams=2, seed=SERVE_SEED, enable_result_cache=False)
    server.query(plan, optimize=optimize)
    hit = server.query(plan, optimize=optimize)
    assert hit.plan_cache_hit
    expected = execute(plan, seed=SERVE_SEED, optimize=optimize)
    assert_bit_identical(hit.output, expected.output)


def test_subresult_substitution_matches_execute(r, s, t):
    inner = Join(Scan(r), Scan(s))
    nested = Join(inner, Scan(t))
    server = QueryServer(streams=2, seed=SERVE_SEED, enable_plan_cache=False)
    server.query(inner)
    outcome = server.query(nested)
    assert outcome.subresult_hits == 1
    assert_bit_identical(outcome.output, execute(nested, seed=SERVE_SEED).output)


def test_sharded_path_matches_execute_and_bypasses_caches(r, s):
    plan = Aggregate(Join(Scan(r), Scan(s)), "r1", (AggSpec("s1", "sum"),))
    server = QueryServer(streams=2, seed=SERVE_SEED, shards=2)
    first = server.query(plan)
    second = server.query(plan)
    expected = execute(plan, seed=SERVE_SEED, shards=2)
    assert_bit_identical(first.output, expected.output)
    assert_bit_identical(second.output, expected.output)
    assert not second.result_cache_hit and not second.plan_cache_hit


def test_faulted_query_matches_execute_and_bypasses_caches(r, s):
    plan = Join(Scan(r), Scan(s))
    fault_plan = FaultPlan(seed=3, kernel_fault_rate=0.5)
    server = QueryServer(streams=2, seed=SERVE_SEED)
    first = server.query(plan, fault_plan=fault_plan)
    second = server.query(plan, fault_plan=fault_plan)
    expected = execute(plan, seed=SERVE_SEED, fault_plan=fault_plan)
    assert first.status == "completed" and second.status == "completed"
    assert_bit_identical(first.output, expected.output)
    assert not second.result_cache_hit and not second.plan_cache_hit
    # Kernel retries stretch the faulted query's own service time only;
    # a later fault-free query is unaffected and may cache normally.
    clean = server.query(plan)
    assert_bit_identical(clean.output, execute(plan, seed=SERVE_SEED).output)
    assert not clean.result_cache_hit


def test_noop_fault_plan_still_caches(r, s):
    plan = Join(Scan(r), Scan(s))
    server = QueryServer(streams=2, seed=SERVE_SEED)
    server.query(plan, fault_plan=FaultPlan())
    assert server.query(plan, fault_plan=FaultPlan()).result_cache_hit


def test_two_identical_server_runs_are_identical(r, s, t):
    def one_run():
        server = QueryServer(streams=3, seed=SERVE_SEED)
        server.register("r", r)
        server.register("s", s)
        plans = plans_under_test(r, s, t)
        at_s = 0.0
        for round_index in range(2):
            for index, plan in enumerate(plans):
                fault_plan = (
                    FaultPlan(seed=5, kernel_fault_rate=0.3)
                    if (round_index, index) == (1, 0) else None
                )
                server.submit(
                    plan, at_s=at_s, priority=index % 2,
                    fault_plan=fault_plan, tag=f"q{index}",
                )
                at_s += 1e-4
        server.run()
        return server
    first, second = one_run(), one_run()
    assert len(first.outcomes) == len(second.outcomes) == 8
    for a, b in zip(first.outcomes, second.outcomes):
        assert (a.query_id, a.tag, a.status, a.stream) == (
            b.query_id, b.tag, b.status, b.stream
        )
        assert a.finish_s == b.finish_s
        assert a.admitted_s == b.admitted_s
        assert_bit_identical(a.output, b.output)
    assert first.metrics.as_dict(derived=False) == second.metrics.as_dict(
        derived=False
    )


# -- the interleaving property ------------------------------------------------


@pytest.fixture(scope="module")
def expected_outputs(r, s, t):
    """One execute() oracle per template, shared across examples."""
    return {
        index: execute(plan, seed=SERVE_SEED).output
        for index, plan in enumerate(plans_under_test(r, s, t))
    }


pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    streams=st.integers(min_value=1, max_value=5),
    interference=st.floats(min_value=0.0, max_value=1.0),
    order=st.permutations(list(range(4))),
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=5e-4), min_size=4, max_size=4
    ),
    caches=st.booleans(),
)
def test_interleaving_never_changes_results(
    expected_outputs, r, s, t, streams, interference, order, gaps, caches
):
    """Any schedule of the template mix yields execute()'s exact bits."""
    plans = plans_under_test(r, s, t)
    expected = expected_outputs
    server = QueryServer(
        streams=streams,
        interference=interference,
        seed=SERVE_SEED,
        enable_plan_cache=caches,
        enable_result_cache=caches,
    )
    at_s = 0.0
    submitted = {}
    for index, gap in zip(order, gaps):
        at_s += gap
        submitted[server.submit(plans[index], at_s=at_s, tag=str(index))] = index
    outcomes = server.run()
    assert len(outcomes) == 4
    for outcome in outcomes:
        assert outcome.status == "completed"
        assert_bit_identical(outcome.output, expected[submitted[outcome.query_id]])
