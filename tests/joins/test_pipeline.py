"""Join pipelines (sequences of joins, Figure 16)."""

import numpy as np
import pytest

from repro.errors import JoinConfigError
from repro.joins import JoinPipeline, PartitionedHashJoin, SortMergeJoinUM
from repro.relational import reference_join
from repro.workloads import generate_star_schema


@pytest.fixture(scope="module")
def star():
    return generate_star_schema(fact_rows=2000, dim_rows=500, num_dimensions=3, seed=0)


def _reference_pipeline(fact, fk_names, dims):
    """Compose reference joins the same way the pipeline does."""
    import numpy as np

    ids = np.arange(fact.num_rows, dtype=np.int64)
    working_key = fact.column(fk_names[0])
    carried = {"__id": ids}
    for i, (fk, dim) in enumerate(zip(fk_names, dims)):
        if i > 0:
            working_key = fact.column(fk)[carried["__id"]]
        order = np.argsort(dim.key_values, kind="stable")
        sorted_keys = dim.key_values[order]
        pos = np.searchsorted(sorted_keys, working_key)
        pos_clipped = np.minimum(pos, sorted_keys.size - 1)
        matched = sorted_keys[pos_clipped] == working_key
        dim_rows = order[pos_clipped[matched]]
        carried = {name: arr[matched] for name, arr in carried.items()}
        working_key = working_key[matched]
        carried[dim.payload_names[0]] = dim.column(dim.payload_names[0])[dim_rows]
    return working_key, carried


class TestPipelineCorrectness:
    def test_final_row_count_full_match(self, star):
        fact, fk_names, dims = star
        pipeline = JoinPipeline(PartitionedHashJoin())
        result = pipeline.run(fact, fk_names, dims, seed=0)
        # 100% match ratio: every fact row survives every join.
        assert result.output.num_rows == fact.num_rows

    def test_payloads_accumulate(self, star):
        fact, fk_names, dims = star
        result = JoinPipeline(PartitionedHashJoin()).run(fact, fk_names, dims, seed=0)
        for i in range(len(dims)):
            assert f"P{i + 1}" in result.output

    def test_matches_reference_composition(self, star):
        fact, fk_names, dims = star
        result = JoinPipeline(SortMergeJoinUM()).run(fact, fk_names, dims, seed=0)
        ref_key, ref_carried = _reference_pipeline(fact, fk_names, dims)
        assert result.output.num_rows == ref_key.size
        for name in ("P1", "P2", "P3"):
            assert sorted(result.output.column(name)) == sorted(ref_carried[name])

    def test_algorithms_agree(self, star):
        fact, fk_names, dims = star
        a = JoinPipeline(PartitionedHashJoin()).run(fact, fk_names, dims, seed=0)
        b = JoinPipeline(SortMergeJoinUM()).run(fact, fk_names, dims, seed=0)
        assert a.output.equals_unordered(b.output)


class TestPipelineAccounting:
    def test_per_join_results_recorded(self, star):
        fact, fk_names, dims = star
        result = JoinPipeline(PartitionedHashJoin()).run(fact, fk_names, dims, seed=0)
        assert len(result.join_results) == 3
        assert result.glue_seconds > 0
        assert result.total_seconds > sum(0 for _ in result.join_results)

    def test_throughput_uses_all_input_tuples(self, star):
        fact, fk_names, dims = star
        result = JoinPipeline(PartitionedHashJoin()).run(fact, fk_names, dims, seed=0)
        tuples = fact.num_rows + sum(d.num_rows for d in dims)
        assert result.throughput_tuples_per_s == pytest.approx(
            tuples / result.total_seconds
        )

    def test_longer_sequences_cost_more(self):
        fact, fk_names, dims = generate_star_schema(2000, 500, 4, seed=1)
        short = JoinPipeline(PartitionedHashJoin()).run(
            fact, fk_names[:2], dims[:2], seed=0
        )
        long = JoinPipeline(PartitionedHashJoin()).run(fact, fk_names, dims, seed=0)
        assert long.total_seconds > short.total_seconds


class TestPipelineValidation:
    def test_mismatched_lengths(self, star):
        fact, fk_names, dims = star
        with pytest.raises(JoinConfigError, match="foreign keys"):
            JoinPipeline(PartitionedHashJoin()).run(fact, fk_names[:2], dims, seed=0)

    def test_empty_pipeline(self, star):
        fact, _, _ = star
        with pytest.raises(JoinConfigError, match="at least one"):
            JoinPipeline(PartitionedHashJoin()).run(fact, [], [], seed=0)
