"""abl04: probe-side load balancing under skew.

Both partitioned hash joins decompose oversized probe partitions into
sub-partitions before match finding (Section 3.2).  Without it, the
thread block assigned the hot partition of a Zipf-skewed probe side
serializes the whole match phase.  This ablation toggles the step.
"""

from __future__ import annotations

from ...joins.base import JoinConfig
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup, run_algorithm

PAPER_ROWS = 1 << 27
ZIPF_FACTORS = (0.0, 1.5)


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="abl04",
        title="Probe-side load balancing under skew (PHJ-OM match phase)",
        headers=["zipf", "load_balance", "match_ms", "total_ms"],
    )
    match_ms = {}
    for zipf in ZIPF_FACTORS:
        spec = JoinWorkloadSpec(
            r_rows=setup.rows(PAPER_ROWS),
            s_rows=setup.rows(PAPER_ROWS),
            r_payload_columns=2,
            s_payload_columns=2,
            zipf_factor=zipf,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        for balanced in (True, False):
            cfg = JoinConfig(
                tuples_per_partition=setup.config.tuples_per_partition,
                bucket_tuples=setup.config.bucket_tuples,
                load_balance=balanced,
            )
            res = run_algorithm("PHJ-OM", r, s, setup, config=cfg)
            match_ms[(zipf, balanced)] = res.phase_seconds["match"] * 1e3
            result.add_row(zipf, balanced, match_ms[(zipf, balanced)],
                           res.total_seconds * 1e3)
    result.findings["skewed_penalty_without_balancing"] = (
        match_ms[(1.5, False)] / match_ms[(1.5, True)]
    )
    result.findings["uniform_penalty_without_balancing"] = (
        match_ms[(0.0, False)] / match_ms[(0.0, True)]
    )
    result.add_note(
        "uniform data barely needs the step; skewed data pays heavily without it"
    )
    return result
