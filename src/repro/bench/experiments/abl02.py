"""abl02: one vs two Merge Path passes for PK-FK sort-merge joins.

Prior work runs the Merge Path algorithm twice (lower and upper bounds).
For a primary-foreign-key join a foreign key has at most one partner, so
one pass plus an equality check suffices (Section 3.1).  This ablation
measures the match-phase saving.
"""

from __future__ import annotations

from ...joins.base import JoinConfig
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup, run_algorithm

PAPER_ROWS = 1 << 27


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS),
        s_rows=setup.rows(2 * PAPER_ROWS),
        r_payload_columns=1,
        s_payload_columns=1,
        seed=seed,
    )
    r, s = generate_join_workload(spec)

    single = run_algorithm("SMJ-OM", r, s, setup)
    double_cfg = JoinConfig(
        tuples_per_partition=setup.config.tuples_per_partition,
        bucket_tuples=setup.config.bucket_tuples,
        double_merge_pass=True,
    )
    double = run_algorithm("SMJ-OM", r, s, setup, config=double_cfg)

    result = ExperimentResult(
        experiment_id="abl02",
        title="Merge Path passes for PK-FK joins (SMJ-OM match phase)",
        headers=["variant", "match_ms", "total_ms"],
    )
    result.add_row("single pass (ours)", single.phase_seconds["match"] * 1e3,
                   single.total_seconds * 1e3)
    result.add_row("double pass (prior work)", double.phase_seconds["match"] * 1e3,
                   double.total_seconds * 1e3)
    result.findings["match_phase_saving"] = (
        double.phase_seconds["match"] / single.phase_seconds["match"]
    )
    assert single.output.equals_unordered(double.output)
    result.add_note("both variants verified to produce identical join output")
    return result
