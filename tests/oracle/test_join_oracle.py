"""Differential testing: every join algorithm vs the numpy oracle.

The oracle is :func:`repro.relational.reference_join`.  The sweep in
``conftest.py`` randomizes relation sizes, dtypes, match ratios, zipf
skew and payload widths; the edge-case tests pin down empty inputs,
all-duplicate keys and zero-match joins for the whole algorithm set,
including the out-of-core wrapper.
"""

import numpy as np
import pytest

from repro.joins import CPURadixJoin, OutOfCoreJoin, make_algorithm
from repro.relational import assert_join_equal, reference_join
from repro.workloads import generate_join_workload

from .conftest import JOIN_NAMES, JOIN_SPECS, empty_relation, relation_from_keys


def _make(name):
    return CPURadixJoin() if name == "CPU-RADIX" else make_algorithm(name)


ALL_NAMES = JOIN_NAMES + ["CPU-RADIX"]


@pytest.mark.parametrize("algorithm", ALL_NAMES)
@pytest.mark.parametrize("spec_name", sorted(JOIN_SPECS), ids=str)
def test_randomized_sweep_matches_oracle(algorithm, spec_name):
    r, s = generate_join_workload(JOIN_SPECS[spec_name])
    expected = reference_join(r, s)
    result = _make(algorithm).join(r, s, seed=7)
    assert_join_equal(result.output, expected)
    assert result.matches == expected.num_rows


class TestEdgeCases:
    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_empty_build_side(self, algorithm):
        r = empty_relation(prefix="r")
        s = relation_from_keys(np.arange(64, dtype=np.int32), prefix="s", seed=1)
        result = _make(algorithm).join(r, s, seed=1)
        assert result.output.num_rows == 0
        assert_join_equal(result.output, reference_join(r, s))

    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_empty_probe_side(self, algorithm):
        r = relation_from_keys(np.arange(64, dtype=np.int32), prefix="r", seed=2)
        s = empty_relation(prefix="s")
        result = _make(algorithm).join(r, s, seed=2)
        assert result.output.num_rows == 0

    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_both_sides_empty(self, algorithm):
        result = _make(algorithm).join(
            empty_relation(prefix="r"), empty_relation(prefix="s"), seed=3
        )
        assert result.output.num_rows == 0

    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_all_duplicate_keys_both_sides(self, algorithm):
        """Worst-case multiplicity: every tuple matches every other."""
        r = relation_from_keys(np.full(40, 7, dtype=np.int32), prefix="r", seed=4)
        s = relation_from_keys(np.full(50, 7, dtype=np.int32), prefix="s", seed=5)
        expected = reference_join(r, s)
        assert expected.num_rows == 40 * 50
        assert_join_equal(_make(algorithm).join(r, s, seed=4).output, expected)

    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_disjoint_key_domains(self, algorithm):
        r = relation_from_keys(np.arange(100, dtype=np.int32), prefix="r", seed=6)
        s = relation_from_keys(
            np.arange(1000, 1100, dtype=np.int32), prefix="s", seed=7
        )
        result = _make(algorithm).join(r, s, seed=6)
        assert result.output.num_rows == 0
        assert result.matches == 0

    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_single_row_each_side(self, algorithm):
        r = relation_from_keys(np.array([5], dtype=np.int64), prefix="r", seed=8)
        s = relation_from_keys(np.array([5], dtype=np.int64), prefix="s", seed=9)
        result = _make(algorithm).join(r, s, seed=8)
        assert_join_equal(result.output, reference_join(r, s))

    @pytest.mark.parametrize("algorithm", JOIN_NAMES)
    def test_narrow_single_payload(self, algorithm):
        """The 1-payload narrow execution path agrees with the oracle."""
        rng = np.random.default_rng(10)
        r = relation_from_keys(
            rng.permutation(512).astype(np.int32), payloads=1, prefix="r", seed=10
        )
        s = relation_from_keys(
            rng.integers(0, 512, 2048).astype(np.int32), payloads=1, prefix="s", seed=11
        )
        assert_join_equal(
            _make(algorithm).join(r, s, seed=10).output, reference_join(r, s)
        )


class TestOutOfCoreOracle:
    @pytest.mark.parametrize("inner", ["PHJ-OM", "SMJ-OM"])
    def test_staged_join_matches_oracle(self, inner):
        """A budget far below the footprint forces multi-chunk staging."""
        r, s = generate_join_workload(JOIN_SPECS[sorted(JOIN_SPECS)[0]])
        expected = reference_join(r, s)
        budget = (r.total_bytes + s.total_bytes) // 4
        result = OutOfCoreJoin(make_algorithm(inner), device_budget_bytes=budget).join(
            r, s, seed=12
        )
        assert result.staged and result.num_chunks > 1
        assert_join_equal(result.output, expected)

    def test_in_core_fallback_matches_oracle(self):
        r, s = generate_join_workload(JOIN_SPECS[sorted(JOIN_SPECS)[1]])
        result = OutOfCoreJoin(
            make_algorithm("PHJ-OM"), device_budget_bytes=1 << 40
        ).join(r, s, seed=13)
        assert not result.staged and result.num_chunks == 1
        assert_join_equal(result.output, reference_join(r, s))

    def test_staged_all_duplicates(self):
        r = relation_from_keys(np.full(64, 3, dtype=np.int32), prefix="r", seed=14)
        s = relation_from_keys(np.full(96, 3, dtype=np.int32), prefix="s", seed=15)
        result = OutOfCoreJoin(
            make_algorithm("PHJ-OM"), device_budget_bytes=256
        ).join(r, s, seed=16)
        assert_join_equal(result.output, reference_join(r, s))
